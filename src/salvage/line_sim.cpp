#include "salvage/line_sim.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace nvmsec {

namespace {

/// Draw one cell's endurance: lognormal around the mean (the exp(-s^2/2)
/// factor keeps the arithmetic mean at cell_endurance_mean).
WriteCount draw_cell_budget(const LineSimConfig& config, Rng& rng) {
  const double factor =
      std::exp(config.cell_endurance_sigma * rng.normal() -
               0.5 * config.cell_endurance_sigma * config.cell_endurance_sigma);
  const double e = config.cell_endurance_mean * factor;
  return static_cast<WriteCount>(std::llround(std::max(1.0, e)));
}

}  // namespace

LineSimResult simulate_line_lifetime(WriteCodec& codec, PayloadModel& payload,
                                     const LineSimConfig& config, Rng& rng) {
  if (config.cell_endurance_mean <= 0) {
    throw std::invalid_argument("LineSimConfig: cell endurance must be > 0");
  }
  if (config.cell_endurance_sigma < 0) {
    throw std::invalid_argument("LineSimConfig: negative endurance sigma");
  }
  payload.reset();

  // Positions 0..511 are data cells, 512..519 the per-word flag cells.
  constexpr std::size_t kPositions = LineData::kBits + LineData::kWords;
  std::vector<WriteCount> remaining(kPositions);
  for (auto& r : remaining) r = draw_cell_budget(config, rng);

  StoredLine stored;
  ProgramMask mask;
  LineSimResult result;
  std::uint64_t cells_programmed_total = 0;

  // Wear one position; returns false when the line is beyond salvage.
  const auto wear = [&](std::size_t position) {
    if (--remaining[position] > 0) return true;
    ++result.cells_failed;
    if (result.cells_failed > config.ecp_entries) return false;
    // ECP entry consumed: the position is permanently redirected to a
    // fresh spare cell in the line's ECP area.
    remaining[position] = draw_cell_budget(config, rng);
    return true;
  };

  bool alive = true;
  while (alive && (config.max_writes == 0 ||
                   result.writes_to_failure < config.max_writes)) {
    const LineData data = payload.next(rng, LogicalLineAddr{0});
    const WriteCost cost = codec.program(stored, data, &mask);
    cells_programmed_total += cost.total();
    ++result.writes_to_failure;

    for (std::size_t w = 0; w < LineData::kWords && alive; ++w) {
      std::uint64_t bits = mask.cells.words[w];
      while (bits && alive) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        alive = wear(w * 64 + static_cast<std::size_t>(bit));
      }
      if (alive && mask.flags[w]) {
        alive = wear(LineData::kBits + w);
      }
    }
  }

  result.hit_cap = alive;
  result.avg_cells_programmed =
      result.writes_to_failure > 0
          ? static_cast<double>(cells_programmed_total) /
                static_cast<double>(result.writes_to_failure)
          : 0.0;
  return result;
}

LineSimResult average_line_lifetime(WriteCodec& codec, PayloadModel& payload,
                                    const LineSimConfig& config, Rng& rng,
                                    std::uint32_t trials) {
  if (trials == 0) {
    throw std::invalid_argument("average_line_lifetime: trials must be > 0");
  }
  LineSimResult acc;
  double writes = 0, failed = 0, cells = 0;
  bool any_cap = false;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const LineSimResult r = simulate_line_lifetime(codec, payload, config, rng);
    writes += static_cast<double>(r.writes_to_failure);
    failed += r.cells_failed;
    cells += r.avg_cells_programmed;
    any_cap = any_cap || r.hit_cap;
  }
  acc.writes_to_failure =
      static_cast<WriteCount>(writes / trials);
  acc.cells_failed = static_cast<std::uint32_t>(failed / trials);
  acc.avg_cells_programmed = cells / trials;
  acc.hit_cap = any_cap;
  return acc;
}

}  // namespace nvmsec
