// Cell-level line lifetime simulation with ECP salvaging (paper §2.2.2).
//
// ECP (Schechter et al., ISCA'10) adds per-line error-correcting pointers:
// when a cell hard-fails, an ECP entry permanently redirects that cell to a
// spare cell in the line's ECP area. A line survives until it accumulates
// more failed cells than it has entries ("ECP can correct six hard failures
// per line with 11.9% capacity overhead").
//
// This simulator drives one line with a write codec and a payload model,
// wears individual cells (each with its own endurance draw), consumes ECP
// entries as cells fail, and reports the write count at which the line
// dies. The paper's §2.2.2 critique — salvaging caps out when an attack
// concentrates failures — drops out of the measurements: the lifetime gain
// is linear in the entry count and bounded by ~(1 + k/failing-cohort),
// nowhere near the 9.5x a spare-line scheme achieves.
#pragma once

#include <cstdint>
#include <memory>

#include "reduction/codec.h"
#include "reduction/payload.h"
#include "util/rng.h"
#include "util/types.h"

namespace nvmsec {

struct LineSimConfig {
  /// Mean cell endurance in programs (scaled for simulation speed).
  double cell_endurance_mean{20000.0};
  /// Lognormal sigma of per-cell endurance (process variation inside a
  /// line).
  double cell_endurance_sigma{0.15};
  /// ECP entries: cell failures tolerated before the line dies. 0 models a
  /// device without salvaging; the ISCA'10 design point is 6.
  std::uint32_t ecp_entries{0};
  /// Safety cap on simulated writes (0 = none). A constant payload under a
  /// differential codec never wears anything, so callers studying such
  /// workloads must set a cap.
  WriteCount max_writes{0};
};

struct LineSimResult {
  /// Writes absorbed before the line became uncorrectable (or the cap).
  WriteCount writes_to_failure{0};
  /// Cell failures observed (== ecp_entries + 1 on a natural death).
  std::uint32_t cells_failed{0};
  /// Mean cells (data + flag) programmed per write — the codec's cost.
  double avg_cells_programmed{0.0};
  /// True if max_writes stopped the run before the line died.
  bool hit_cap{false};
};

/// Simulate one line to death. The codec and payload are reset first, so
/// repeated calls with the same objects are independent trials.
LineSimResult simulate_line_lifetime(WriteCodec& codec, PayloadModel& payload,
                                     const LineSimConfig& config, Rng& rng);

/// Convenience: average `trials` independent lines.
LineSimResult average_line_lifetime(WriteCodec& codec, PayloadModel& payload,
                                    const LineSimConfig& config, Rng& rng,
                                    std::uint32_t trials);

}  // namespace nvmsec
