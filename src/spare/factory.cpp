#include "spare/none.h"
#include "spare/pcd.h"
#include "spare/ps.h"
#include "spare/spare_scheme.h"

namespace nvmsec {

std::unique_ptr<SpareScheme> make_no_spare(
    std::shared_ptr<const EnduranceMap> endurance) {
  return std::make_unique<NoSpare>(std::move(endurance));
}

std::unique_ptr<SpareScheme> make_pcd(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines,
    Rng& rng) {
  return std::make_unique<Pcd>(std::move(endurance), spare_lines, rng);
}

std::unique_ptr<SpareScheme> make_ps(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines,
    Rng& rng) {
  return std::make_unique<PhysicalSparing>(std::move(endurance), spare_lines,
                                           PsPoolPolicy::kRandom, rng);
}

std::unique_ptr<SpareScheme> make_ps_worst(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines,
    Rng& rng) {
  return std::make_unique<PhysicalSparing>(std::move(endurance), spare_lines,
                                           PsPoolPolicy::kStrongest, rng);
}

}  // namespace nvmsec
