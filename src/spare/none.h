// No-protection baseline: every line backs itself and the first wear-out
// kills the device. This is the configuration behind the paper's headline
// "UAA reduces lifetime to 4.1% of ideal" measurement (Fig. 6, 0% spares).
#pragma once

#include "spare/spare_scheme.h"

namespace nvmsec {

class NoSpare final : public SpareScheme {
 public:
  explicit NoSpare(std::shared_ptr<const EnduranceMap> endurance);

  [[nodiscard]] std::uint64_t working_lines() const override {
    return num_lines_;
  }
  [[nodiscard]] PhysLineAddr working_line(std::uint64_t idx) const override;
  PhysLineAddr resolve(std::uint64_t idx) override;
  [[nodiscard]] bool resolve_cacheable() const override { return true; }
  bool on_wear_out(std::uint64_t idx) override;
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] SpareSchemeStats stats() const override { return stats_; }
  void reset() override { stats_ = {}; }

  void save_state(StateWriter& w) const override {
    w.u64(stats_.line_deaths);
  }
  [[nodiscard]] Status load_state(StateReader& r) override {
    return r.u64(stats_.line_deaths);
  }

 private:
  std::uint64_t num_lines_;
  SpareSchemeStats stats_;
};

}  // namespace nvmsec
