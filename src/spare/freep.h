// FREE-p-style spare-line replacement (Yoon et al., HPCA'11; paper §2.2.2).
//
// Instead of an SRAM mapping table, FREE-p stores the remap pointer *inside
// the dead line itself* (a few heavily-ECC'd bits survive in any worn-out
// line). The trade: zero dedicated table storage, but every access to a
// remapped line walks the pointer chain through memory — one extra array
// read per replacement generation — and the pool is allocated in address
// order because the scheme has no endurance knowledge. The paper's §2.2.2
// critique ("Free-p ... simply interpret[s] process variation as
// non-uniform error rate without considering the endurance distribution of
// different regions") falls out of the measurements: lifetime tracks
// PS-average while the pointer-walk cost grows with wear.
#pragma once

#include <vector>

#include "spare/spare_scheme.h"

namespace nvmsec {

class FreeP final : public SpareScheme {
 public:
  /// Reserves the `spare_lines` highest physical addresses as the pool
  /// (FREE-p reserves a fixed region; it has no endurance map to be
  /// cleverer with).
  FreeP(std::shared_ptr<const EnduranceMap> endurance,
        std::uint64_t spare_lines);

  [[nodiscard]] std::uint64_t working_lines() const override {
    return working_lines_;
  }
  [[nodiscard]] PhysLineAddr working_line(std::uint64_t idx) const override;
  PhysLineAddr resolve(std::uint64_t idx) override;
  bool on_wear_out(std::uint64_t idx) override;
  /// resolve() charges pointer-walk reads (hops_/resolves_), and those
  /// counters are checkpointed — caching would change checkpoint bytes.
  [[nodiscard]] bool resolve_cacheable() const override { return false; }
  [[nodiscard]] std::string name() const override { return "freep"; }
  [[nodiscard]] SpareSchemeStats stats() const override;
  void reset() override;

  /// Pointer-walk accounting: resolving a line remapped through k
  /// generations costs k extra array reads.
  [[nodiscard]] std::uint64_t chain_depth(std::uint64_t idx) const;
  [[nodiscard]] std::uint64_t max_chain_depth() const { return max_chain_; }
  /// Total extra array reads performed by resolve() so far.
  [[nodiscard]] std::uint64_t total_pointer_hops() const { return hops_; }
  /// Extra array reads per resolve, averaged over all resolve() calls.
  [[nodiscard]] double mean_pointer_hops() const {
    return resolves_ > 0 ? static_cast<double>(hops_) /
                               static_cast<double>(resolves_)
                         : 0.0;
  }

  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

  /// Event-log instrumentation only (FREE-p predates the metrics the
  /// Max-WE gauges describe): pool allocations and exhaustion, so the
  /// post-mortem report can compare schemes decision by decision.
  void set_observer(const Observer& obs) override;

 private:
  Observer obs_{};
  std::uint64_t working_lines_;
  std::uint64_t num_lines_;
  std::vector<std::uint32_t> backing_;
  std::vector<std::uint32_t> chain_depth_;
  std::size_t next_spare_{0};
  std::uint64_t spare_lines_;
  std::uint64_t max_chain_{0};
  std::uint64_t hops_{0};
  std::uint64_t resolves_{0};
  SpareSchemeStats stats_;
};

std::unique_ptr<SpareScheme> make_freep(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines);

}  // namespace nvmsec
