// Spare-line replacement scheme interface (paper §2.2.3).
//
// A spare scheme decides (a) which physical lines form the *working set*
// that backs the attacker-visible address space, (b) how a working index is
// resolved to its current backing line after replacements, and (c) what
// happens when a backing line wears out. The device is declared dead the
// first time on_wear_out() cannot replace a line (§4.2: "If there are no
// spare lines ... the replacement procedure fails and the whole NVM device
// is worn out").
//
// resolve() is non-const because schemes with shared backing lines (PCD)
// repair stale mappings lazily on access.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nvm/endurance_map.h"
#include "obs/observer.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

struct SpareSchemeStats {
  /// Distinct backing lines that wore out.
  std::uint64_t line_deaths{0};
  /// Successful redirects of a working index to a new backing line.
  std::uint64_t replacements{0};
  /// Unallocated spare lines remaining (0 for schemes without a pool).
  std::uint64_t spares_remaining{0};
  /// Max-WE only: populated entries in the line/region mapping tables.
  std::uint64_t lmt_entries{0};
  std::uint64_t rmt_entries{0};
};

class SpareScheme {
 public:
  virtual ~SpareScheme() = default;

  /// Number of lines backing the attacker-visible space at boot.
  [[nodiscard]] virtual std::uint64_t working_lines() const = 0;

  /// Boot-time physical line behind working index `idx`.
  [[nodiscard]] virtual PhysLineAddr working_line(std::uint64_t idx) const = 0;

  /// Current physical line behind working index `idx` (after replacements).
  virtual PhysLineAddr resolve(std::uint64_t idx) = 0;

  /// The line currently backing `idx` just wore out. Returns true if the
  /// scheme redirected `idx` to a replacement; false means device failure.
  virtual bool on_wear_out(std::uint64_t idx) = 0;

  /// Monotone counter bumped on every change to the working-index ->
  /// backing-line mapping: replacements, lazy repairs (PCD's rehome),
  /// scrub rebuilds (Max-WE), reset, and state load. A batched engine
  /// caches resolve() results only while this value is unchanged.
  [[nodiscard]] std::uint64_t mapping_epoch() const { return mapping_epoch_; }

  /// True when resolve() is a pure lookup whose result may be cached while
  /// mapping_epoch() is unchanged. The default is false — the safe answer
  /// for a scheme that doesn't know about epochs. A scheme may opt in only
  /// if (a) resolve() mutates nothing observable and (b) *every* mapping
  /// change calls bump_mapping_epoch(). FREE-p stays false even though it
  /// bumps: its resolve() charges pointer-walk reads into checkpointed
  /// counters, so skipping calls would change checkpoint bytes.
  [[nodiscard]] virtual bool resolve_cacheable() const { return false; }

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual SpareSchemeStats stats() const = 0;

  /// Restore boot state (mappings, pools, death counters).
  virtual void reset() = 0;

  /// Re-target the scheme at a different endurance map, restoring boot
  /// state and re-deriving the boot-time allocation — the fleet runner's
  /// setup-amortization hook, so one scheme object serves many devices.
  /// An implementation must leave the scheme indistinguishable from one
  /// freshly constructed on `endurance` (consuming identical draws from
  /// `rng` if its construction samples any). Returns false when the scheme
  /// does not support rebinding (the default); the caller then constructs
  /// a fresh instance.
  virtual bool rebind(const std::shared_ptr<const EnduranceMap>& endurance,
                      Rng& rng) {
    (void)endurance;
    (void)rng;
    return false;
  }

  /// Attach observability sinks. The default is a no-op; schemes with
  /// interesting internal events (Max-WE's RMT redirects and spare-pool
  /// allocations) override it to emit trace events and counters.
  virtual void set_observer(const Observer& obs) { (void)obs; }

  /// Checkpointing: serialize every run-time-mutable field (mappings,
  /// pools, stats, internal RNGs) into `w`. The boot-time allocation is
  /// *not* saved — it is rebuilt deterministically from the config — so a
  /// scheme only writes what diverges from its freshly-constructed state.
  virtual void save_state(StateWriter& w) const { (void)w; }

  /// Restore what save_state wrote. Called on a freshly-built instance of
  /// the identical configuration; returns a structured error (and leaves
  /// the scheme unusable) on malformed input.
  [[nodiscard]] virtual Status load_state(StateReader& r) {
    (void)r;
    return Status{};
  }

 protected:
  void bump_mapping_epoch() { ++mapping_epoch_; }

 private:
  std::uint64_t mapping_epoch_{0};
};

/// Parameters shared by the bundled spare schemes. `spare_lines` is an
/// absolute line count so PS/PCD can be budget-matched exactly to Max-WE's
/// region-granular allocation.
struct SpareSchemeParams {
  std::uint64_t spare_lines{0};
};

std::unique_ptr<SpareScheme> make_no_spare(
    std::shared_ptr<const EnduranceMap> endurance);
std::unique_ptr<SpareScheme> make_pcd(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines,
    Rng& rng);
std::unique_ptr<SpareScheme> make_ps(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines,
    Rng& rng);
std::unique_ptr<SpareScheme> make_ps_worst(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines,
    Rng& rng);

}  // namespace nvmsec
