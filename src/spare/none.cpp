#include "spare/none.h"

#include <stdexcept>

namespace nvmsec {

NoSpare::NoSpare(std::shared_ptr<const EnduranceMap> endurance)
    : num_lines_(endurance->geometry().num_lines()) {}

PhysLineAddr NoSpare::working_line(std::uint64_t idx) const {
  if (idx >= num_lines_) {
    throw std::out_of_range("NoSpare::working_line: index out of range");
  }
  return PhysLineAddr{idx};
}

PhysLineAddr NoSpare::resolve(std::uint64_t idx) { return working_line(idx); }

bool NoSpare::on_wear_out(std::uint64_t idx) {
  if (idx >= num_lines_) {
    throw std::out_of_range("NoSpare::on_wear_out: index out of range");
  }
  ++stats_.line_deaths;
  bump_mapping_epoch();
  return false;  // nothing to replace with: first death is device failure
}

}  // namespace nvmsec
