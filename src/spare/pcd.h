// PCD: Physical Capacity Degradation (§2.2.3, Ferreira et al. DATE'11).
//
// All physical lines are initially in use; when a line wears out its
// address is re-homed onto a surviving line and the device's usable
// capacity shrinks by one line. The device fails when the capacity
// guarantee is broken, i.e. when more lines have died than the configured
// degradation budget allows. The paper uses PCD to approximate the average
// case of Physical Sparing as well ("PCD and the average case of PS have
// the similar effect (less than 3.0%)", §4.3), labelling the pair "PCD/PS".
#pragma once

#include <vector>

#include "spare/spare_scheme.h"

namespace nvmsec {

class Pcd final : public SpareScheme {
 public:
  /// `degradation_budget`: number of line deaths tolerated before the
  /// capacity guarantee (and hence the device) fails.
  Pcd(std::shared_ptr<const EnduranceMap> endurance,
      std::uint64_t degradation_budget, Rng& rng);

  [[nodiscard]] std::uint64_t working_lines() const override {
    return num_lines_;
  }
  [[nodiscard]] PhysLineAddr working_line(std::uint64_t idx) const override;
  PhysLineAddr resolve(std::uint64_t idx) override;
  // Lazy rehoming mutates the mapping, but every rehome (and every death
  // that makes one necessary) bumps the epoch, so cached entries are
  // flushed before they can go stale.
  [[nodiscard]] bool resolve_cacheable() const override { return true; }
  bool on_wear_out(std::uint64_t idx) override;
  [[nodiscard]] std::string name() const override { return "pcd"; }
  [[nodiscard]] SpareSchemeStats stats() const override;
  void reset() override;

  [[nodiscard]] std::uint64_t alive_lines() const { return alive_list_.size(); }

  /// PCD owns a private Rng (survivor picks), so its stream position is
  /// part of the checkpointed state.
  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

 private:
  /// Mark the backing line dead and move `idx` to a random survivor.
  void rehome(std::uint64_t idx);
  void mark_dead(PhysLineAddr line);

  std::uint64_t num_lines_;
  std::uint64_t degradation_budget_;
  Rng rng_;
  std::vector<std::uint32_t> backing_;
  std::vector<bool> dead_;
  /// Survivors, order-irrelevant, supporting O(1) random pick + removal.
  std::vector<std::uint32_t> alive_list_;
  std::vector<std::uint32_t> alive_pos_;
  SpareSchemeStats stats_;
};

}  // namespace nvmsec
