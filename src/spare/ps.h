// PS: Physical Sparing (§2.2.3) — failed lines are replaced from an excess
// spare pool. Two pool policies reproduce the paper's comparison points:
//
//   * kRandom   — the traditional schemes "randomly allocate the spare
//                 lines" (§2.2.3): a uniform random pool, allocated in
//                 random order. This is the *average case* of PS, which
//                 §4.3 shows behaves like PCD.
//   * kStrongest — PS-worst (§4.3): the pool is drawn from the strongest
//                 lines, so the weakest lines all stay in the working set
//                 and each early death burns a spare whose extra endurance
//                 is wasted. The device dies on the (S+1)-th weakest line.
#pragma once

#include <vector>

#include "spare/spare_scheme.h"

namespace nvmsec {

enum class PsPoolPolicy {
  kRandom,     ///< average case: uniform random pool
  kStrongest,  ///< worst case: pool taken from the strongest lines
};

class PhysicalSparing final : public SpareScheme {
 public:
  PhysicalSparing(std::shared_ptr<const EnduranceMap> endurance,
                  std::uint64_t spare_lines, PsPoolPolicy policy, Rng& rng);

  [[nodiscard]] std::uint64_t working_lines() const override {
    return working_.size();
  }
  [[nodiscard]] PhysLineAddr working_line(std::uint64_t idx) const override;
  PhysLineAddr resolve(std::uint64_t idx) override;
  [[nodiscard]] bool resolve_cacheable() const override { return true; }
  bool on_wear_out(std::uint64_t idx) override;
  [[nodiscard]] std::string name() const override {
    return policy_ == PsPoolPolicy::kRandom ? "ps" : "ps-worst";
  }
  [[nodiscard]] SpareSchemeStats stats() const override;
  void reset() override;

  /// Unallocated spares left in the pool.
  [[nodiscard]] std::uint64_t pool_remaining() const {
    return pool_.size() - next_spare_;
  }

  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

 private:
  std::shared_ptr<const EnduranceMap> endurance_;
  PsPoolPolicy policy_;
  /// Working set (boot backing), ascending physical order.
  std::vector<std::uint32_t> working_;
  /// Spare pool in allocation order.
  std::vector<std::uint32_t> pool_;
  std::vector<std::uint32_t> backing_;
  std::size_t next_spare_{0};
  SpareSchemeStats stats_;
};

}  // namespace nvmsec
