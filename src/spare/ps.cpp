#include "spare/ps.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

PhysicalSparing::PhysicalSparing(std::shared_ptr<const EnduranceMap> endurance,
                                 std::uint64_t spare_lines,
                                 PsPoolPolicy policy, Rng& rng)
    : endurance_(std::move(endurance)), policy_(policy) {
  const std::uint64_t n = endurance_->geometry().num_lines();
  if (n > UINT32_MAX) {
    throw std::invalid_argument("PhysicalSparing: device exceeds 2^32 lines");
  }
  if (spare_lines == 0 || spare_lines >= n) {
    throw std::invalid_argument(
        "PhysicalSparing: spare_lines must be in (0, num_lines)");
  }

  std::vector<bool> is_spare(n, false);
  pool_.reserve(spare_lines);
  if (policy_ == PsPoolPolicy::kRandom) {
    for (std::uint64_t l : rng.sample_without_replacement(n, spare_lines)) {
      is_spare[l] = true;
      pool_.push_back(static_cast<std::uint32_t>(l));
    }
    // sample_without_replacement returns a random order, which doubles as
    // the random allocation order of the traditional schemes.
  } else {
    const auto strongest_last = endurance_->lines_weakest_first();
    for (std::uint64_t k = 0; k < spare_lines; ++k) {
      const PhysLineAddr line = strongest_last[n - 1 - k];
      is_spare[line.value()] = true;
      pool_.push_back(static_cast<std::uint32_t>(line.value()));
    }
    // Allocation order: strongest first.
  }

  working_.reserve(n - spare_lines);
  for (std::uint64_t l = 0; l < n; ++l) {
    if (!is_spare[l]) working_.push_back(static_cast<std::uint32_t>(l));
  }
  reset();
}

PhysLineAddr PhysicalSparing::working_line(std::uint64_t idx) const {
  if (idx >= working_.size()) {
    throw std::out_of_range("PhysicalSparing::working_line: out of range");
  }
  return PhysLineAddr{working_[idx]};
}

PhysLineAddr PhysicalSparing::resolve(std::uint64_t idx) {
  if (idx >= working_.size()) {
    throw std::out_of_range("PhysicalSparing::resolve: out of range");
  }
  return PhysLineAddr{backing_[idx]};
}

bool PhysicalSparing::on_wear_out(std::uint64_t idx) {
  if (idx >= working_.size()) {
    throw std::out_of_range("PhysicalSparing::on_wear_out: out of range");
  }
  ++stats_.line_deaths;
  bump_mapping_epoch();
  if (next_spare_ >= pool_.size()) {
    return false;  // pool exhausted: replacement procedure fails
  }
  backing_[idx] = pool_[next_spare_++];
  ++stats_.replacements;
  return true;
}

SpareSchemeStats PhysicalSparing::stats() const {
  SpareSchemeStats s = stats_;
  s.spares_remaining = pool_remaining();
  return s;
}

void PhysicalSparing::reset() {
  stats_ = {};
  next_spare_ = 0;
  backing_ = working_;
  bump_mapping_epoch();
}

void PhysicalSparing::save_state(StateWriter& w) const {
  w.u64(stats_.line_deaths);
  w.u64(stats_.replacements);
  w.u64(static_cast<std::uint64_t>(next_spare_));
  w.vec_u32(backing_);
}

Status PhysicalSparing::load_state(StateReader& r) {
  std::uint64_t line_deaths = 0, replacements = 0, next_spare = 0;
  if (Status st = r.u64(line_deaths); !st.ok()) return st;
  if (Status st = r.u64(replacements); !st.ok()) return st;
  if (Status st = r.u64(next_spare); !st.ok()) return st;
  std::vector<std::uint32_t> backing;
  if (Status st = r.vec_u32(backing); !st.ok()) return st;
  if (backing.size() != working_.size()) {
    return Status::corruption("ps state: backing size mismatch");
  }
  if (next_spare > pool_.size()) {
    return Status::corruption("ps state: spare cursor exceeds pool");
  }
  stats_ = {};
  stats_.line_deaths = line_deaths;
  stats_.replacements = replacements;
  next_spare_ = static_cast<std::size_t>(next_spare);
  backing_ = std::move(backing);
  bump_mapping_epoch();
  return Status{};
}

}  // namespace nvmsec
