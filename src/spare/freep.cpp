#include "spare/freep.h"

#include <stdexcept>

#include "obs/event_log.h"

namespace nvmsec {

FreeP::FreeP(std::shared_ptr<const EnduranceMap> endurance,
             std::uint64_t spare_lines)
    : num_lines_(endurance->geometry().num_lines()), spare_lines_(spare_lines) {
  if (num_lines_ > UINT32_MAX) {
    throw std::invalid_argument("FreeP: device exceeds 2^32 lines");
  }
  if (spare_lines == 0 || spare_lines >= num_lines_) {
    throw std::invalid_argument(
        "FreeP: spare_lines must be in (0, num_lines)");
  }
  working_lines_ = num_lines_ - spare_lines;
  reset();
}

PhysLineAddr FreeP::working_line(std::uint64_t idx) const {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::working_line: index out of range");
  }
  return PhysLineAddr{idx};  // pool occupies the address tail
}

PhysLineAddr FreeP::resolve(std::uint64_t idx) {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::resolve: index out of range");
  }
  // The controller must read each dead line in the chain to find the next
  // pointer: chain_depth extra array reads.
  ++resolves_;
  hops_ += chain_depth_[idx];
  return PhysLineAddr{backing_[idx]};
}

bool FreeP::on_wear_out(std::uint64_t idx) {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::on_wear_out: index out of range");
  }
  ++stats_.line_deaths;
  bump_mapping_epoch();
  const std::uint32_t worn = backing_[idx];
  if (next_spare_ >= spare_lines_) {
    if (obs_.events != nullptr) {
      obs_.events->emit("pool_exhausted",
                        {{"scheme", "freep"},
                         {"working_index", static_cast<double>(idx)},
                         {"raw_line", static_cast<double>(worn)}});
    }
    return false;  // pool exhausted
  }
  backing_[idx] =
      static_cast<std::uint32_t>(working_lines_ + next_spare_++);
  ++chain_depth_[idx];
  max_chain_ = std::max<std::uint64_t>(max_chain_, chain_depth_[idx]);
  ++stats_.replacements;
  if (obs_.events != nullptr) {
    obs_.events->emit(
        "spare_alloc",
        {{"scheme", "freep"},
         {"working_index", static_cast<double>(idx)},
         {"raw_line", static_cast<double>(worn)},
         {"spare_line", static_cast<double>(backing_[idx])},
         {"chain_depth", static_cast<double>(chain_depth_[idx])},
         {"pool_remaining",
          static_cast<double>(spare_lines_ - next_spare_)}});
  }
  return true;
}

SpareSchemeStats FreeP::stats() const {
  SpareSchemeStats s = stats_;
  s.spares_remaining = spare_lines_ - next_spare_;
  return s;
}

std::uint64_t FreeP::chain_depth(std::uint64_t idx) const {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::chain_depth: index out of range");
  }
  return chain_depth_[idx];
}

void FreeP::reset() {
  bump_mapping_epoch();
  stats_ = {};
  next_spare_ = 0;
  max_chain_ = 0;
  hops_ = 0;
  resolves_ = 0;
  backing_.resize(working_lines_);
  chain_depth_.assign(working_lines_, 0);
  for (std::uint64_t i = 0; i < working_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(i);
  }
}

void FreeP::save_state(StateWriter& w) const {
  w.u64(stats_.line_deaths);
  w.u64(stats_.replacements);
  w.u64(static_cast<std::uint64_t>(next_spare_));
  w.u64(max_chain_);
  w.u64(hops_);
  w.u64(resolves_);
  w.vec_u32(backing_);
  w.vec_u32(chain_depth_);
}

Status FreeP::load_state(StateReader& r) {
  std::uint64_t line_deaths = 0, replacements = 0, next_spare = 0;
  std::uint64_t max_chain = 0, hops = 0, resolves = 0;
  if (Status st = r.u64(line_deaths); !st.ok()) return st;
  if (Status st = r.u64(replacements); !st.ok()) return st;
  if (Status st = r.u64(next_spare); !st.ok()) return st;
  if (Status st = r.u64(max_chain); !st.ok()) return st;
  if (Status st = r.u64(hops); !st.ok()) return st;
  if (Status st = r.u64(resolves); !st.ok()) return st;
  std::vector<std::uint32_t> backing, chain_depth;
  if (Status st = r.vec_u32(backing); !st.ok()) return st;
  if (Status st = r.vec_u32(chain_depth); !st.ok()) return st;
  if (backing.size() != working_lines_ ||
      chain_depth.size() != working_lines_) {
    return Status::corruption("freep state: table size mismatch");
  }
  if (next_spare > spare_lines_) {
    return Status::corruption("freep state: spare cursor exceeds pool");
  }
  for (std::uint32_t b : backing) {
    if (b >= num_lines_) {
      return Status::corruption("freep state: backing line out of range");
    }
  }
  stats_ = {};
  stats_.line_deaths = line_deaths;
  stats_.replacements = replacements;
  next_spare_ = static_cast<std::size_t>(next_spare);
  max_chain_ = max_chain;
  hops_ = hops;
  resolves_ = resolves;
  backing_ = std::move(backing);
  chain_depth_ = std::move(chain_depth);
  return Status{};
}

void FreeP::set_observer(const Observer& obs) {
  obs_ = obs;
  if (obs.events != nullptr) {
    // Boot-time allocation: one address-tail pool, no endurance knowledge.
    obs.events->emit("spare_roles",
                     {{"scheme", "freep"},
                      {"user_lines", static_cast<double>(working_lines_)},
                      {"pool_lines", static_cast<double>(spare_lines_)}});
  }
}

std::unique_ptr<SpareScheme> make_freep(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines) {
  return std::make_unique<FreeP>(std::move(endurance), spare_lines);
}

}  // namespace nvmsec
