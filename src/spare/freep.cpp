#include "spare/freep.h"

#include <stdexcept>

namespace nvmsec {

FreeP::FreeP(std::shared_ptr<const EnduranceMap> endurance,
             std::uint64_t spare_lines)
    : num_lines_(endurance->geometry().num_lines()), spare_lines_(spare_lines) {
  if (num_lines_ > UINT32_MAX) {
    throw std::invalid_argument("FreeP: device exceeds 2^32 lines");
  }
  if (spare_lines == 0 || spare_lines >= num_lines_) {
    throw std::invalid_argument(
        "FreeP: spare_lines must be in (0, num_lines)");
  }
  working_lines_ = num_lines_ - spare_lines;
  reset();
}

PhysLineAddr FreeP::working_line(std::uint64_t idx) const {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::working_line: index out of range");
  }
  return PhysLineAddr{idx};  // pool occupies the address tail
}

PhysLineAddr FreeP::resolve(std::uint64_t idx) {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::resolve: index out of range");
  }
  // The controller must read each dead line in the chain to find the next
  // pointer: chain_depth extra array reads.
  ++resolves_;
  hops_ += chain_depth_[idx];
  return PhysLineAddr{backing_[idx]};
}

bool FreeP::on_wear_out(std::uint64_t idx) {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::on_wear_out: index out of range");
  }
  ++stats_.line_deaths;
  if (next_spare_ >= spare_lines_) {
    return false;  // pool exhausted
  }
  backing_[idx] =
      static_cast<std::uint32_t>(working_lines_ + next_spare_++);
  ++chain_depth_[idx];
  max_chain_ = std::max<std::uint64_t>(max_chain_, chain_depth_[idx]);
  ++stats_.replacements;
  return true;
}

SpareSchemeStats FreeP::stats() const {
  SpareSchemeStats s = stats_;
  s.spares_remaining = spare_lines_ - next_spare_;
  return s;
}

std::uint64_t FreeP::chain_depth(std::uint64_t idx) const {
  if (idx >= working_lines_) {
    throw std::out_of_range("FreeP::chain_depth: index out of range");
  }
  return chain_depth_[idx];
}

void FreeP::reset() {
  stats_ = {};
  next_spare_ = 0;
  max_chain_ = 0;
  hops_ = 0;
  resolves_ = 0;
  backing_.resize(working_lines_);
  chain_depth_.assign(working_lines_, 0);
  for (std::uint64_t i = 0; i < working_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(i);
  }
}

std::unique_ptr<SpareScheme> make_freep(
    std::shared_ptr<const EnduranceMap> endurance, std::uint64_t spare_lines) {
  return std::make_unique<FreeP>(std::move(endurance), spare_lines);
}

}  // namespace nvmsec
