#include "spare/pcd.h"

#include <stdexcept>

namespace nvmsec {

Pcd::Pcd(std::shared_ptr<const EnduranceMap> endurance,
         std::uint64_t degradation_budget, Rng& rng)
    : num_lines_(endurance->geometry().num_lines()),
      degradation_budget_(degradation_budget),
      rng_(rng.fork()) {
  if (num_lines_ > UINT32_MAX) {
    throw std::invalid_argument("Pcd: device exceeds 2^32 lines");
  }
  if (degradation_budget >= num_lines_) {
    throw std::invalid_argument("Pcd: budget must be < line count");
  }
  reset();
}

PhysLineAddr Pcd::working_line(std::uint64_t idx) const {
  if (idx >= num_lines_) {
    throw std::out_of_range("Pcd::working_line: index out of range");
  }
  return PhysLineAddr{idx};
}

void Pcd::mark_dead(PhysLineAddr line) {
  const auto l = static_cast<std::uint32_t>(line.value());
  if (dead_[l]) return;
  dead_[l] = true;
  ++stats_.line_deaths;
  // O(1) removal from the alive list: swap with the tail.
  const std::uint32_t pos = alive_pos_[l];
  const std::uint32_t tail = alive_list_.back();
  alive_list_[pos] = tail;
  alive_pos_[tail] = pos;
  alive_list_.pop_back();
}

void Pcd::rehome(std::uint64_t idx) {
  if (alive_list_.empty()) {
    throw std::logic_error("Pcd::rehome: no survivors (failure missed)");
  }
  backing_[idx] = alive_list_[static_cast<std::size_t>(
      rng_.uniform_u64(alive_list_.size()))];
  ++stats_.replacements;
  bump_mapping_epoch();
}

PhysLineAddr Pcd::resolve(std::uint64_t idx) {
  if (idx >= num_lines_) {
    throw std::out_of_range("Pcd::resolve: index out of range");
  }
  // Lazy repair: the backing may have died while serving another address
  // (several addresses can share a survivor).
  if (dead_[backing_[idx]]) rehome(idx);
  return PhysLineAddr{backing_[idx]};
}

bool Pcd::on_wear_out(std::uint64_t idx) {
  if (idx >= num_lines_) {
    throw std::out_of_range("Pcd::on_wear_out: index out of range");
  }
  mark_dead(PhysLineAddr{backing_[idx]});
  // A death invalidates every cached resolve of an index sharing the dead
  // backing line, not just `idx` — bump even when rehome() will bump again.
  bump_mapping_epoch();
  if (stats_.line_deaths > degradation_budget_) {
    return false;  // capacity guarantee broken
  }
  rehome(idx);
  return true;
}

SpareSchemeStats Pcd::stats() const {
  SpareSchemeStats s = stats_;
  s.spares_remaining = degradation_budget_ - std::min(degradation_budget_,
                                                      stats_.line_deaths);
  return s;
}

void Pcd::save_state(StateWriter& w) const {
  w.u64(stats_.line_deaths);
  w.u64(stats_.replacements);
  w.vec_u32(backing_);
  // alive_list_ order matters: survivors are picked by position, so the
  // exact swap-remove history must be reproduced.
  w.vec_u32(alive_list_);
  rng_.save_state(w);
}

Status Pcd::load_state(StateReader& r) {
  std::uint64_t line_deaths = 0, replacements = 0;
  if (Status st = r.u64(line_deaths); !st.ok()) return st;
  if (Status st = r.u64(replacements); !st.ok()) return st;
  std::vector<std::uint32_t> backing, alive;
  if (Status st = r.vec_u32(backing); !st.ok()) return st;
  if (Status st = r.vec_u32(alive); !st.ok()) return st;
  if (backing.size() != num_lines_ || alive.size() > num_lines_) {
    return Status::corruption("pcd state: table sizes do not fit geometry");
  }
  std::vector<bool> dead(num_lines_, true);
  std::vector<std::uint32_t> alive_pos(num_lines_, 0);
  for (std::uint32_t i = 0; i < alive.size(); ++i) {
    const std::uint32_t l = alive[i];
    if (l >= num_lines_ || !dead[l]) {
      return Status::corruption("pcd state: alive list invalid");
    }
    dead[l] = false;
    alive_pos[l] = i;
  }
  for (std::uint32_t b : backing) {
    if (b >= num_lines_) {
      return Status::corruption("pcd state: backing line out of range");
    }
  }
  if (num_lines_ - alive.size() != line_deaths) {
    return Status::corruption("pcd state: death count inconsistent");
  }
  if (Status st = rng_.load_state(r); !st.ok()) return st;
  stats_ = {};
  stats_.line_deaths = line_deaths;
  stats_.replacements = replacements;
  backing_ = std::move(backing);
  alive_list_ = std::move(alive);
  dead_ = std::move(dead);
  alive_pos_ = std::move(alive_pos);
  bump_mapping_epoch();
  return Status{};
}

void Pcd::reset() {
  bump_mapping_epoch();
  stats_ = {};
  backing_.resize(num_lines_);
  dead_.assign(num_lines_, false);
  alive_list_.resize(num_lines_);
  alive_pos_.resize(num_lines_);
  for (std::uint64_t i = 0; i < num_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(i);
    alive_list_[i] = static_cast<std::uint32_t>(i);
    alive_pos_[i] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace nvmsec
