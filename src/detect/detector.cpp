#include "detect/detector.h"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.h"

namespace nvmsec {

const char* alarm_level_name(AlarmLevel level) {
  switch (level) {
    case AlarmLevel::kBenign: return "benign";
    case AlarmLevel::kSuspicious: return "suspicious";
    case AlarmLevel::kUnderAttack: return "under_attack";
  }
  return "unknown";
}

const char* attack_kind_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kSweep: return "sweep";
    case AttackKind::kConcentration: return "concentration";
  }
  return "unknown";
}

AttackDetector::AttackDetector(const DetectorParams& params,
                               std::uint64_t logical_lines)
    : params_(params),
      logical_lines_(logical_lines),
      next_window_at_(params.window_writes) {
  if (params_.window_writes == 0) {
    throw std::invalid_argument("AttackDetector: window_writes must be > 0");
  }
  if (params_.coarse_buckets == 0 || params_.fine_buckets == 0) {
    throw std::invalid_argument("AttackDetector: bucket counts must be > 0");
  }
  if (logical_lines_ == 0) {
    throw std::invalid_argument("AttackDetector: logical_lines must be > 0");
  }
  // A bucket narrower than one line would sit permanently empty and bias
  // both statistics; clamp the resolutions to the address space.
  params_.coarse_buckets = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      params_.coarse_buckets, logical_lines_));
  params_.fine_buckets = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.fine_buckets, logical_lines_));
  coarse_.assign(params_.coarse_buckets, 0);
  fine_.assign(params_.fine_buckets, 0);
}

void AttackDetector::bucket_add(std::uint64_t addr, std::uint64_t count) {
  coarse_[addr * coarse_.size() / logical_lines_] += count;
  fine_[addr * fine_.size() / logical_lines_] += count;
}

void AttackDetector::range_add(std::vector<std::uint64_t>& counts,
                               std::uint64_t start, std::uint64_t end) {
  const std::uint64_t buckets = counts.size();
  std::uint64_t b = start * buckets / logical_lines_;
  const std::uint64_t b_last = (end - 1) * buckets / logical_lines_;
  std::uint64_t lo = start;
  while (b < b_last) {
    // First address belonging to bucket b+1: ceil((b+1) * L / B).
    const std::uint64_t hi =
        ((b + 1) * logical_lines_ + buckets - 1) / buckets;
    counts[b] += hi - lo;
    lo = hi;
    ++b;
  }
  counts[b] += end - lo;
}

void AttackDetector::observe(std::uint64_t addr, std::uint64_t count) {
  if (count == 0) return;
  bucket_add(addr, count);
  window_total_ += count;
  if (have_last_ && addr == last_addr_ + 1) ++seq_steps_;
  last_addr_ = addr;
  have_last_ = true;
}

void AttackDetector::observe_run(std::uint64_t start, std::uint64_t count,
                                 std::uint64_t stride) {
  if (count == 0) return;
  if (stride == 0) {
    // Repeated writes to one address: only the first write can extend a
    // sequential chain (addr == addr + 1 never holds for the repeats) —
    // exactly what `count` observe() calls would record.
    bucket_add(start, count);
    window_total_ += count;
    if (have_last_ && start == last_addr_ + 1) ++seq_steps_;
    last_addr_ = start;
    have_last_ = true;
    return;
  }
  if (stride == 1) {
    range_add(coarse_, start, start + count);
    range_add(fine_, start, start + count);
    window_total_ += count;
    seq_steps_ += count - 1;
    if (have_last_ && start == last_addr_ + 1) ++seq_steps_;
    last_addr_ = start + count - 1;
    have_last_ = true;
    return;
  }
  for (std::uint64_t i = 0; i < count; ++i) observe(start + i * stride, 1);
}

void AttackDetector::observe_counts(const WriteCountVector& counts) {
  for (std::size_t i = 0; i < counts.size(); ++i) {
    bucket_add(counts.addrs[i], counts.counts[i]);
    window_total_ += counts.counts[i];
  }
  have_last_ = false;
}

WindowVerdict AttackDetector::close_window() {
  WindowVerdict v;
  v.window_index = windows_closed_;
  v.writes = window_total_;
  v.level_before = level_;

  if (window_total_ > 0) {
    const auto total = static_cast<double>(window_total_);
    const std::uint64_t buckets = coarse_.size();
    const double expected = total / static_cast<double>(buckets);
    double chi2 = 0;
    for (std::uint64_t c : coarse_) {
      const double d = static_cast<double>(c) - expected;
      chi2 += d * d;
    }
    chi2 /= expected;
    v.uniformity =
        buckets > 1 ? chi2 / static_cast<double>(buckets - 1) : 1.0;

    std::uint64_t occupied = 0;
    for (std::uint64_t c : fine_) occupied += c != 0 ? 1 : 0;
    const std::uint64_t reachable =
        std::min<std::uint64_t>(window_total_, fine_.size());
    v.occupancy =
        static_cast<double>(occupied) / static_cast<double>(reachable);
    v.sequential = static_cast<double>(seq_steps_) / total;

    if (v.occupancy < params_.concentration_occupancy_max) {
      v.anomalous = true;
      v.kind = AttackKind::kConcentration;
    } else if (v.sequential > params_.sweep_sequential_min ||
               v.uniformity < params_.sweep_uniformity_max) {
      v.anomalous = true;
      v.kind = AttackKind::kSweep;
    }
    uniformity_summary_.add(v.uniformity);
    occupancy_summary_.add(v.occupancy);
  }

  if (v.anomalous) {
    ++consecutive_anomalous_;
    consecutive_normal_ = 0;
    active_kind_ = v.kind;
    if (level_ != AlarmLevel::kUnderAttack) {
      level_ = consecutive_anomalous_ >= params_.raise_windows
                   ? AlarmLevel::kUnderAttack
                   : AlarmLevel::kSuspicious;
    }
  } else {
    ++consecutive_normal_;
    consecutive_anomalous_ = 0;
    if (level_ == AlarmLevel::kSuspicious) {
      // One normal window kills a pending raise: transients never escalate.
      level_ = AlarmLevel::kBenign;
      active_kind_ = AttackKind::kNone;
    } else if (level_ == AlarmLevel::kUnderAttack &&
               consecutive_normal_ >= params_.clear_windows) {
      level_ = AlarmLevel::kBenign;
      active_kind_ = AttackKind::kNone;
    }
  }
  if (level_ == AlarmLevel::kUnderAttack) {
    ++windows_in_alarm_;
    if (v.level_before != AlarmLevel::kUnderAttack) ++alarms_raised_;
  }
  v.level_after = level_;

  ++windows_closed_;
  anomalous_windows_ += v.anomalous ? 1 : 0;
  std::fill(coarse_.begin(), coarse_.end(), 0);
  std::fill(fine_.begin(), fine_.end(), 0);
  window_total_ = 0;
  seq_steps_ = 0;
  next_window_at_ += params_.window_writes;
  return v;
}

void AttackDetector::reset() {
  std::fill(coarse_.begin(), coarse_.end(), 0);
  std::fill(fine_.begin(), fine_.end(), 0);
  window_total_ = 0;
  seq_steps_ = 0;
  last_addr_ = 0;
  have_last_ = false;
  next_window_at_ = params_.window_writes;
  level_ = AlarmLevel::kBenign;
  active_kind_ = AttackKind::kNone;
  consecutive_anomalous_ = 0;
  consecutive_normal_ = 0;
  windows_closed_ = 0;
  anomalous_windows_ = 0;
  alarms_raised_ = 0;
  windows_in_alarm_ = 0;
  uniformity_summary_ = StreamSummary();
  occupancy_summary_ = StreamSummary();
}

void AttackDetector::save_state(StateWriter& w) const {
  w.vec_u64(coarse_);
  w.vec_u64(fine_);
  w.u64(window_total_);
  w.u64(seq_steps_);
  w.u64(last_addr_);
  w.boolean(have_last_);
  w.u64(next_window_at_);
  w.u8(static_cast<std::uint8_t>(level_));
  w.u8(static_cast<std::uint8_t>(active_kind_));
  w.u32(consecutive_anomalous_);
  w.u32(consecutive_normal_);
  w.u64(windows_closed_);
  w.u64(anomalous_windows_);
  w.u64(alarms_raised_);
  w.u64(windows_in_alarm_);
  uniformity_summary_.save_state(w);
  occupancy_summary_.save_state(w);
}

Status AttackDetector::load_state(StateReader& r) {
  std::vector<std::uint64_t> coarse, fine;
  if (Status st = r.vec_u64(coarse); !st.ok()) return st;
  if (Status st = r.vec_u64(fine); !st.ok()) return st;
  if (coarse.size() != coarse_.size() || fine.size() != fine_.size()) {
    return Status::corruption(
        "detector state: bucket resolution mismatch with configuration");
  }
  if (Status st = r.u64(window_total_); !st.ok()) return st;
  if (Status st = r.u64(seq_steps_); !st.ok()) return st;
  if (Status st = r.u64(last_addr_); !st.ok()) return st;
  if (Status st = r.boolean(have_last_); !st.ok()) return st;
  if (Status st = r.u64(next_window_at_); !st.ok()) return st;
  std::uint8_t level = 0, kind = 0;
  if (Status st = r.u8(level); !st.ok()) return st;
  if (Status st = r.u8(kind); !st.ok()) return st;
  if (level > static_cast<std::uint8_t>(AlarmLevel::kUnderAttack) ||
      kind > static_cast<std::uint8_t>(AttackKind::kConcentration)) {
    return Status::corruption("detector state: invalid alarm level or kind");
  }
  if (Status st = r.u32(consecutive_anomalous_); !st.ok()) return st;
  if (Status st = r.u32(consecutive_normal_); !st.ok()) return st;
  if (Status st = r.u64(windows_closed_); !st.ok()) return st;
  if (Status st = r.u64(anomalous_windows_); !st.ok()) return st;
  if (Status st = r.u64(alarms_raised_); !st.ok()) return st;
  if (Status st = r.u64(windows_in_alarm_); !st.ok()) return st;
  if (Status st = uniformity_summary_.load_state(r); !st.ok()) return st;
  if (Status st = occupancy_summary_.load_state(r); !st.ok()) return st;
  coarse_ = std::move(coarse);
  fine_ = std::move(fine);
  level_ = static_cast<AlarmLevel>(level);
  active_kind_ = static_cast<AttackKind>(kind);
  return Status{};
}

}  // namespace nvmsec
