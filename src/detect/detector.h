// Online attack detection over the user write stream (ROADMAP: "Adaptive
// defenses and online attack detection").
//
// The detector watches the logical address stream through three cheap,
// multiset-invariant window statistics and folds them into a hysteresis-
// filtered alarm level the adaptive wear leveler (wearlevel/adaptive.h)
// consumes as its control signal:
//
//   * uniformity u = chi-square vs. uniform over a coarse bucket histogram,
//     normalized so natural i.i.d. traffic sits near 1. A UAA sweep packs
//     every bucket to within one write of its expectation — u collapses
//     toward 0, an "unnaturally even" signature no benign workload emits.
//   * occupancy = fraction of fine address-range buckets touched during the
//     window. Concentration attacks (BPA bursts, hotspot hammering) touch a
//     handful of distinct lines per window; benign zipf traffic scatters
//     across thousands.
//   * sequential fraction = share of writes whose address is exactly the
//     predecessor plus one. A sweep is contiguous even when it is slower
//     than one window per pass (where the chi-square alone would miss it).
//
// All three are computed from per-bucket counters that can be fed three
// ways — one address at a time, as an AttackRun (stride-0 or stride-1 runs
// update bucket ranges analytically, keeping the batched fast path O(1)
// per run), or as a WriteCountVector chunk — and the per-write and run
// forms produce *identical* counters for the same write sequence, so
// bit-identical attacks keep byte-identical event logs across fastpath
// on/off. Windows close at absolute multiples of `window_writes` on the
// engine's user-write clock; the engine caps batches at the boundary the
// same way it does for checkpoints and snapshots, which is what makes
// alarm transitions land at identical write counts at any --jobs and
// across crash/resume (state rides the MXWECKPT payload via save_state).
#pragma once

#include <cstdint>
#include <vector>

#include "util/multinomial.h"
#include "util/sketch.h"
#include "util/status.h"

namespace nvmsec {

class StateWriter;
class StateReader;

/// Hysteresis-filtered alarm level. kSuspicious is the one-window
/// intermediate on the way up; a single normal window drops it back to
/// benign, so transient bursts never reach the escalation policy.
enum class AlarmLevel : std::uint8_t {
  kBenign = 0,
  kSuspicious = 1,
  kUnderAttack = 2,
};

/// What kind of anomaly the detector believes it is seeing. The adaptive
/// policy steers in *opposite directions* for the two kinds: a sweep feeds
/// on remap overhead (lengthen the interval), a concentration attack feeds
/// on dwell time (shorten it).
enum class AttackKind : std::uint8_t {
  kNone = 0,
  kSweep = 1,
  kConcentration = 2,
};

const char* alarm_level_name(AlarmLevel level);
const char* attack_kind_name(AttackKind kind);

struct DetectorParams {
  /// User writes per detection window. Batches are capped at window
  /// boundaries, so smaller windows detect faster but shave the fast path.
  std::uint64_t window_writes{16384};
  /// Coarse histogram resolution for the chi-square statistic (clamped to
  /// the logical space). Keep window_writes / coarse_buckets well above 1
  /// so the normalized statistic concentrates near 1 for i.i.d. traffic.
  std::uint32_t coarse_buckets{64};
  /// Fine histogram resolution for the occupancy statistic.
  std::uint32_t fine_buckets{1024};
  /// Window is sweep-anomalous when u < this (too uniform to be natural)...
  double sweep_uniformity_max{0.25};
  /// ...or when the sequential fraction exceeds this (contiguous sweep).
  double sweep_sequential_min{0.60};
  /// Window is concentration-anomalous when occupancy falls below this.
  double concentration_occupancy_max{0.15};
  /// Consecutive anomalous windows before kUnderAttack is declared.
  std::uint32_t raise_windows{2};
  /// Consecutive normal windows before an alarm clears back to kBenign.
  std::uint32_t clear_windows{4};
};

/// Everything one window close decided, for event emission and tests.
struct WindowVerdict {
  std::uint64_t window_index{0};
  std::uint64_t writes{0};
  double uniformity{0};
  double occupancy{0};
  double sequential{0};
  bool anomalous{false};
  /// Kind of *this window's* anomaly (kNone for a normal window).
  AttackKind kind{AttackKind::kNone};
  AlarmLevel level_before{AlarmLevel::kBenign};
  AlarmLevel level_after{AlarmLevel::kBenign};
};

class AttackDetector {
 public:
  AttackDetector(const DetectorParams& params, std::uint64_t logical_lines);

  // --- observation (user writes only; overhead writes are invisible to an
  // attacker-facing monitor and are not fed in) -----------------------------
  void observe(std::uint64_t addr, std::uint64_t count = 1);
  /// Analytic form of `count` observe() calls at start, start+stride, ...:
  /// stride 0 is a single bucket add, stride 1 a bucket range add. Produces
  /// exactly the counters the per-write calls would.
  void observe_run(std::uint64_t start, std::uint64_t count,
                   std::uint64_t stride);
  /// Count-vector chunks are unordered multisets: buckets update per entry
  /// and the sequential tracker resets (adjacency is meaningless across a
  /// multinomial draw) — consistent with the distribution-equivalent
  /// contract those chunks already run under.
  void observe_counts(const WriteCountVector& counts);

  // --- window clock --------------------------------------------------------
  [[nodiscard]] bool window_due(std::uint64_t user_writes) const {
    return user_writes >= next_window_at_;
  }
  /// Batch cap: user writes until the next window boundary.
  [[nodiscard]] std::uint64_t writes_until_window(
      std::uint64_t user_writes) const {
    return user_writes >= next_window_at_ ? 0 : next_window_at_ - user_writes;
  }
  /// Close the current window: compute the signals, step the hysteresis
  /// state machine, fold the signals into the running summaries, reset the
  /// window counters, and advance the boundary.
  WindowVerdict close_window();

  // --- state ---------------------------------------------------------------
  [[nodiscard]] AlarmLevel level() const { return level_; }
  /// Kind of the active alarm (kNone unless suspicious/under attack).
  [[nodiscard]] AttackKind kind() const { return active_kind_; }
  [[nodiscard]] const DetectorParams& params() const { return params_; }

  // --- lifetime statistics (LifetimeResult / fleet aggregation) ------------
  [[nodiscard]] std::uint64_t windows_closed() const { return windows_closed_; }
  [[nodiscard]] std::uint64_t anomalous_windows() const {
    return anomalous_windows_;
  }
  [[nodiscard]] std::uint64_t alarms_raised() const { return alarms_raised_; }
  [[nodiscard]] std::uint64_t windows_in_alarm() const {
    return windows_in_alarm_;
  }
  /// Per-window signal distributions over the whole run (mergeable, so the
  /// fleet layer can aggregate them across devices).
  [[nodiscard]] const StreamSummary& uniformity_summary() const {
    return uniformity_summary_;
  }
  [[nodiscard]] const StreamSummary& occupancy_summary() const {
    return occupancy_summary_;
  }

  void reset();
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  void bucket_add(std::uint64_t addr, std::uint64_t count);
  void range_add(std::vector<std::uint64_t>& counts, std::uint64_t start,
                 std::uint64_t end);

  DetectorParams params_;
  std::uint64_t logical_lines_;

  // Current-window accumulators.
  std::vector<std::uint64_t> coarse_;
  std::vector<std::uint64_t> fine_;
  std::uint64_t window_total_{0};
  std::uint64_t seq_steps_{0};
  std::uint64_t last_addr_{0};
  bool have_last_{false};
  std::uint64_t next_window_at_;

  // Hysteresis state machine.
  AlarmLevel level_{AlarmLevel::kBenign};
  AttackKind active_kind_{AttackKind::kNone};
  std::uint32_t consecutive_anomalous_{0};
  std::uint32_t consecutive_normal_{0};

  // Lifetime statistics.
  std::uint64_t windows_closed_{0};
  std::uint64_t anomalous_windows_{0};
  std::uint64_t alarms_raised_{0};
  std::uint64_t windows_in_alarm_{0};
  StreamSummary uniformity_summary_;
  StreamSummary occupancy_summary_;
};

}  // namespace nvmsec
