// Mapping-table storage-overhead model (paper §4.4 and §5.3.2).
//
// With N lines, R regions, S spare lines and fraction q of the spare lines
// region-mapped (SWRs), the paper gives:
//   LMT  = (1-q) * S * log2(N)            bits
//   RMT  = q * S * R * log2(R) / N        bits   (= #pairs * log2(R))
//   tags = q * S                          bits
// versus a traditional all-line-level table of S * log2(N) bits. For the
// evaluation configuration (1 GB / 2048 regions / 10% spares / q = 0.9)
// this is ~0.16 MB vs ~1.1 MB — an 85% reduction.
#pragma once

#include <cstdint>

#include "nvm/geometry.h"

namespace nvmsec {

struct MappingOverheadInputs {
  std::uint64_t num_lines{0};    // N
  std::uint64_t num_regions{0};  // R
  std::uint64_t spare_lines{0};  // S
  double swr_fraction{0.9};      // q

  void validate() const;

  static MappingOverheadInputs from_geometry(const DeviceGeometry& geometry,
                                             double spare_fraction,
                                             double swr_fraction);
};

struct MappingOverheadResult {
  double lmt_bits{0};
  double rmt_bits{0};
  double wear_out_tag_bits{0};
  double maxwe_total_bits{0};
  /// Traditional line-level-only table: S * log2(N).
  double traditional_bits{0};
  /// maxwe_total_bits / traditional_bits.
  double ratio{0};

  [[nodiscard]] double maxwe_total_mb() const;
  [[nodiscard]] double traditional_mb() const;
};

/// Evaluate the paper's formulas exactly as printed (real-valued log2).
MappingOverheadResult mapping_overhead(const MappingOverheadInputs& in);

}  // namespace nvmsec
