#include "core/maxwe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nvm/device.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nvmsec {

void MaxWeParams::validate() const {
  if (spare_fraction < 0.0 || spare_fraction >= 1.0) {
    throw std::invalid_argument("MaxWeParams: spare_fraction must be in [0,1)");
  }
  if (swr_fraction < 0.0 || swr_fraction > 1.0) {
    throw std::invalid_argument("MaxWeParams: swr_fraction must be in [0,1]");
  }
}

MaxWe::MaxWe(std::shared_ptr<const EnduranceMap> endurance, MaxWeParams params)
    : endurance_(std::move(endurance)),
      params_(params),
      rmt_(endurance_->geometry().num_regions(),
           endurance_->geometry().lines_per_region()),
      lmt_(0, endurance_->geometry().num_lines()) {
  params_.validate();
  if (endurance_->geometry().num_lines() > UINT32_MAX) {
    throw std::invalid_argument("MaxWe: device exceeds 2^32 lines");
  }
  build_allocation();
}

void MaxWe::build_allocation() {
  const DeviceGeometry& geom = endurance_->geometry();
  const std::uint64_t num_regions = geom.num_regions();
  const std::uint64_t lpr = geom.lines_per_region();

  const auto n_spare = static_cast<std::uint64_t>(
      std::llround(params_.spare_fraction * static_cast<double>(num_regions)));
  const auto n_swr = static_cast<std::uint64_t>(
      std::llround(params_.swr_fraction * static_cast<double>(n_spare)));
  const std::uint64_t n_asr = n_spare - n_swr;

  // SWRs need an equal number of RWRs left in the user space, and at least
  // one region must remain purely user capacity.
  if (2 * n_swr + n_asr >= num_regions) {
    throw std::invalid_argument(
        "MaxWe: spare configuration leaves no user capacity");
  }

  const std::vector<RegionId> order = endurance_->regions_weakest_first();
  if (params_.selection == SpareSelectionPolicy::kWeakPriority) {
    // Weak-priority: carve the spare roles off the weak end of the
    // manufacture-time endurance ordering (Fig. 3's worked example).
    swrs_.assign(order.begin(),
                 order.begin() + static_cast<std::ptrdiff_t>(n_swr));
    rwrs_.assign(order.begin() + static_cast<std::ptrdiff_t>(n_swr),
                 order.begin() + static_cast<std::ptrdiff_t>(2 * n_swr));
    asrs_.assign(order.begin() + static_cast<std::ptrdiff_t>(2 * n_swr),
                 order.begin() + static_cast<std::ptrdiff_t>(2 * n_swr + n_asr));
  } else {
    // Ablation baseline: spares picked uniformly at random (traditional
    // schemes' behaviour). The SWR/ASR split and the RWR choice still use
    // the endurance ordering so only the *selection* differs.
    Rng selection_rng(params_.selection_seed);
    std::vector<RegionId> spares;
    for (std::uint64_t r : selection_rng.sample_without_replacement(
             num_regions, n_swr + n_asr)) {
      spares.push_back(RegionId{r});
    }
    std::sort(spares.begin(), spares.end(), [&](RegionId a, RegionId b) {
      const Endurance ea = endurance_->region_endurance(a);
      const Endurance eb = endurance_->region_endurance(b);
      if (ea != eb) return ea < eb;
      return a.value() < b.value();
    });
    swrs_.assign(spares.begin(),
                 spares.begin() + static_cast<std::ptrdiff_t>(n_swr));
    asrs_.assign(spares.begin() + static_cast<std::ptrdiff_t>(n_swr),
                 spares.end());
    std::vector<bool> is_spare(num_regions, false);
    for (RegionId r : spares) is_spare[r.value()] = true;
    rwrs_.clear();
    for (RegionId r : order) {
      if (rwrs_.size() == n_swr) break;
      if (!is_spare[r.value()]) rwrs_.push_back(r);
    }
  }

  std::vector<bool> is_spare_region(num_regions, false);
  for (RegionId r : swrs_) is_spare_region[r.value()] = true;
  for (RegionId r : asrs_) is_spare_region[r.value()] = true;

  user_regions_.clear();
  for (std::uint64_t r = 0; r < num_regions; ++r) {
    if (!is_spare_region[r]) user_regions_.push_back(RegionId{r});
  }
  user_lines_ = user_regions_.size() * lpr;

  // rwrs_ and swrs_ are both ascending by endurance. Weak-strong matching
  // pairs the weakest RWR with the strongest SWR (walk the SWR slice
  // backwards); the identity-matching ablation pairs them in like order.
  for (std::uint64_t i = 0; i < n_swr; ++i) {
    const RegionId sra = params_.matching == MatchingPolicy::kWeakStrong
                             ? swrs_[n_swr - 1 - i]
                             : swrs_[i];
    rmt_.add_pair(/*pra=*/rwrs_[i], sra);
  }

  // Additional spare pool, strongest line first (§4.2: "allocates the
  // strongest spare line"). Regions have constant endurance, so order the
  // regions strongest-first and take their lines in address order.
  std::vector<RegionId> asr_by_strength = asrs_;
  std::sort(asr_by_strength.begin(), asr_by_strength.end(),
            [&](RegionId a, RegionId b) {
              const Endurance ea = endurance_->region_endurance(a);
              const Endurance eb = endurance_->region_endurance(b);
              if (ea != eb) return ea > eb;
              return a.value() < b.value();
            });
  asr_pool_.clear();
  asr_pool_.reserve(n_asr * lpr);
  for (RegionId r : asr_by_strength) {
    for (std::uint64_t k = 0; k < lpr; ++k) {
      asr_pool_.push_back(static_cast<std::uint32_t>(
          geom.line_at(r, LineInRegion{k}).value()));
    }
  }
  lmt_ = LineMappingTable(asr_pool_.size(), geom.num_lines());
  next_asr_ = 0;

  backing_.resize(user_lines_);
  for (std::uint64_t i = 0; i < user_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(working_line(i).value());
  }
}

PhysLineAddr MaxWe::working_line(std::uint64_t idx) const {
  if (idx >= user_lines_) {
    throw std::out_of_range("MaxWe::working_line: index out of range");
  }
  const std::uint64_t lpr = endurance_->geometry().lines_per_region();
  return endurance_->geometry().line_at(user_regions_[idx / lpr],
                                        LineInRegion{idx % lpr});
}

PhysLineAddr MaxWe::resolve(std::uint64_t idx) {
  if (idx >= user_lines_) {
    throw std::out_of_range("MaxWe::resolve: index out of range");
  }
  return PhysLineAddr{backing_[idx]};
}

bool MaxWe::allocate_from_asr(std::uint64_t idx, PhysLineAddr pla) {
  if (next_asr_ >= asr_pool_.size()) {
    if (obs_.events != nullptr) {
      obs_.events->emit("pool_exhausted",
                        {{"scheme", "maxwe"},
                         {"working_index", static_cast<double>(idx)},
                         {"raw_line", static_cast<double>(pla.value())}});
    }
    return false;  // no spare lines left: device worn out (§4.2)
  }
  const PhysLineAddr sla{asr_pool_[next_asr_++]};
  const std::optional<PhysLineAddr> evicted = lmt_.insert_or_replace(pla, sla);
  backing_[idx] = static_cast<std::uint32_t>(sla.value());
  ++stats_.replacements;
  if (asr_allocs_ != nullptr) asr_allocs_->inc();
  if (obs_.events != nullptr) {
    const double spare_region = static_cast<double>(
        endurance_->geometry().region_of(sla).value());
    if (evicted.has_value()) {
      // The line that died was itself an earlier spare (LMT entry or the
      // SWR partner); name it so the report can chain rescues.
      obs_.events->emit(
          "asr_alloc",
          {{"working_index", static_cast<double>(idx)},
           {"raw_line", static_cast<double>(pla.value())},
           {"spare_line", static_cast<double>(sla.value())},
           {"spare_region", spare_region},
           {"replaces_spare", static_cast<double>(evicted->value())},
           {"pool_remaining", static_cast<double>(asr_pool_remaining())}});
    } else {
      obs_.events->emit(
          "asr_alloc",
          {{"working_index", static_cast<double>(idx)},
           {"raw_line", static_cast<double>(pla.value())},
           {"spare_line", static_cast<double>(sla.value())},
           {"spare_region", spare_region},
           {"pool_remaining", static_cast<double>(asr_pool_remaining())}});
    }
  }
  if (obs_.trace != nullptr) {
    obs_.trace->instant(
        "maxwe.asr_alloc",
        {{"working_index", static_cast<double>(idx)},
         {"original_line", static_cast<double>(pla.value())},
         {"spare_line", static_cast<double>(sla.value())},
         {"pool_remaining", static_cast<double>(asr_pool_remaining())}});
  }
  if (obs_.metrics != nullptr) publish_table_gauges();
  return true;
}

bool MaxWe::on_wear_out(std::uint64_t idx) {
  if (idx >= user_lines_) {
    throw std::out_of_range("MaxWe::on_wear_out: index out of range");
  }
  ++stats_.line_deaths;
  bump_mapping_epoch();
  const DeviceGeometry& geom = endurance_->geometry();
  const PhysLineAddr pla = working_line(idx);
  const PhysLineAddr worn{backing_[idx]};

  if (worn == pla) {
    // First failure of this user line.
    const RegionId region = geom.region_of(pla);
    if (rmt_.has_region(region)) {
      // RWR line: flip the wear-out tag and redirect to the permanently
      // paired line of the matched SWR.
      const LineInRegion offset = geom.offset_in_region(pla);
      rmt_.set_wear_out_tag(region, offset);
      const PhysLineAddr spare = geom.line_at(*rmt_.spare_of(region), offset);
      backing_[idx] = static_cast<std::uint32_t>(spare.value());
      ++stats_.replacements;
      if (rmt_redirects_ != nullptr) rmt_redirects_->inc();
      if (obs_.events != nullptr) {
        obs_.events->emit(
            "rmt_redirect",
            {{"region", static_cast<double>(region.value())},
             {"offset", static_cast<double>(offset.value())},
             {"spare_region",
              static_cast<double>(rmt_.spare_of(region)->value())},
             {"raw_line", static_cast<double>(pla.value())},
             {"spare_line", static_cast<double>(spare.value())}});
      }
      if (obs_.trace != nullptr) {
        obs_.trace->instant(
            "maxwe.rmt_redirect",
            {{"region", static_cast<double>(region.value())},
             {"offset", static_cast<double>(offset.value())},
             {"spare_region",
              static_cast<double>(rmt_.spare_of(region)->value())}});
      }
      return true;
    }
    return allocate_from_asr(idx, pla);
  }
  // A replacement line died (the SWR partner or an LMT spare): fall back to
  // a fresh additional spare, replacing any existing LMT entry for pla.
  return allocate_from_asr(idx, pla);
}

PhysLineAddr MaxWe::translate_read(PhysLineAddr pla) const {
  const DeviceGeometry& geom = endurance_->geometry();
  if (!geom.contains(pla)) {
    throw std::out_of_range("MaxWe::translate_read: address out of range");
  }
  if (const auto sla = lmt_.lookup(pla)) return *sla;
  const RegionId region = geom.region_of(pla);
  if (rmt_.has_region(region)) {
    const LineInRegion offset = geom.offset_in_region(pla);
    if (rmt_.wear_out_tag(region, offset)) {
      return geom.line_at(*rmt_.spare_of(region), offset);
    }
  }
  return pla;
}

ScrubReport MaxWe::scrub(const Device& device) {
  ScrubReport report;
  report.rmt_corrupt_detected = rmt_.verify().size();
  report.lmt_corrupt_detected = lmt_.verify().size();

  const DeviceGeometry& geom = endurance_->geometry();
  const std::uint64_t lpr = geom.lines_per_region();
  const std::uint64_t n_swr = swrs_.size();

  // Rebuild the RMT from ground truth. The permanent pairing is a pure
  // function of the boot-time region roles (themselves derived from the
  // manufacture-time endurance map), and a wear-out tag is set exactly when
  // the corresponding RWR line is worn out on the device.
  RegionMappingTable fresh_rmt(geom.num_regions(), lpr);
  for (std::uint64_t i = 0; i < n_swr; ++i) {
    const RegionId sra = params_.matching == MatchingPolicy::kWeakStrong
                             ? swrs_[n_swr - 1 - i]
                             : swrs_[i];
    fresh_rmt.add_pair(rwrs_[i], sra);
  }
  for (RegionId pra : rwrs_) {
    for (std::uint64_t k = 0; k < lpr; ++k) {
      if (device.is_worn_out(geom.line_at(pra, LineInRegion{k}))) {
        fresh_rmt.set_wear_out_tag(pra, LineInRegion{k});
      }
    }
  }
  for (RegionId pra : rwrs_) {
    if (rmt_.spare_of(pra) != fresh_rmt.spare_of(pra)) {
      ++report.entries_repaired;
    }
    for (std::uint64_t k = 0; k < lpr; ++k) {
      if (rmt_.wear_out_tag(pra, LineInRegion{k}) !=
          fresh_rmt.wear_out_tag(pra, LineInRegion{k})) {
        ++report.entries_repaired;
      }
    }
  }

  // Rebuild the LMT from the current backing lines (modelled as FREE-p
  // style back-pointers stored with the data on the device): a user line
  // has an LMT entry exactly when its backing is neither the original line
  // nor the RMT-paired spare slot.
  LineMappingTable fresh_lmt(asr_pool_.size(), geom.num_lines());
  for (std::uint64_t idx = 0; idx < user_lines_; ++idx) {
    const PhysLineAddr pla = working_line(idx);
    const PhysLineAddr current{backing_[idx]};
    if (current == pla) continue;
    const RegionId region = geom.region_of(pla);
    if (fresh_rmt.has_region(region)) {
      const LineInRegion offset = geom.offset_in_region(pla);
      if (fresh_rmt.wear_out_tag(region, offset) &&
          current == geom.line_at(*fresh_rmt.spare_of(region), offset)) {
        continue;  // RMT redirect; no line-level entry
      }
    }
    fresh_lmt.insert_or_replace(pla, current);
  }
  for (PhysLineAddr pla : fresh_lmt.sorted_keys()) {
    if (lmt_.lookup(pla) != fresh_lmt.lookup(pla)) ++report.entries_repaired;
  }
  for (PhysLineAddr pla : lmt_.sorted_keys()) {
    if (!fresh_lmt.lookup(pla).has_value()) ++report.entries_repaired;
  }

  rmt_ = std::move(fresh_rmt);
  lmt_ = std::move(fresh_lmt);
  bump_mapping_epoch();

  if (obs_.events != nullptr) {
    obs_.events->emit(
        "scrub",
        {{"rmt_corrupt", static_cast<double>(report.rmt_corrupt_detected)},
         {"lmt_corrupt", static_cast<double>(report.lmt_corrupt_detected)},
         {"repaired", static_cast<double>(report.entries_repaired)}});
  }
  if (obs_.trace != nullptr) {
    obs_.trace->instant(
        "maxwe.scrub",
        {{"rmt_corrupt", static_cast<double>(report.rmt_corrupt_detected)},
         {"lmt_corrupt", static_cast<double>(report.lmt_corrupt_detected)},
         {"repaired", static_cast<double>(report.entries_repaired)}});
  }
  if (obs_.metrics != nullptr) publish_table_gauges();
  return report;
}

void MaxWe::save_state(StateWriter& w) const {
  w.u64(next_asr_);
  w.u64(stats_.line_deaths);
  w.u64(stats_.replacements);
  w.vec_u32(backing_);
  // Wear-out tags, one bit-vector per permanent pair in pairing order.
  const std::uint64_t lpr = endurance_->geometry().lines_per_region();
  w.u64(rmt_.pairs().size());
  for (const auto& [pra, sra] : rmt_.pairs()) {
    std::vector<bool> wot(lpr);
    for (std::uint64_t k = 0; k < lpr; ++k) {
      wot[k] = rmt_.wear_out_tag(pra, LineInRegion{k});
    }
    w.vec_bool(wot);
  }
  // LMT entries in deterministic key order.
  const auto keys = lmt_.sorted_keys();
  w.u64(keys.size());
  for (PhysLineAddr pla : keys) {
    w.u64(pla.value());
    w.u64(lmt_.lookup(pla)->value());
  }
}

Status MaxWe::load_state(StateReader& r) {
  std::uint64_t next_asr = 0, line_deaths = 0, replacements = 0;
  if (Status st = r.u64(next_asr); !st.ok()) return st;
  if (Status st = r.u64(line_deaths); !st.ok()) return st;
  if (Status st = r.u64(replacements); !st.ok()) return st;
  std::vector<std::uint32_t> backing;
  if (Status st = r.vec_u32(backing); !st.ok()) return st;
  if (backing.size() != user_lines_) {
    return Status::corruption("maxwe state: backing size " +
                              std::to_string(backing.size()) +
                              " != user lines " + std::to_string(user_lines_));
  }
  if (next_asr > asr_pool_.size()) {
    return Status::corruption("maxwe state: next_asr " +
                              std::to_string(next_asr) + " > pool size " +
                              std::to_string(asr_pool_.size()));
  }
  const std::uint64_t num_lines = endurance_->geometry().num_lines();
  for (std::uint32_t b : backing) {
    if (b >= num_lines) {
      return Status::corruption("maxwe state: backing line out of range");
    }
  }

  std::uint64_t num_pairs = 0;
  if (Status st = r.u64(num_pairs); !st.ok()) return st;
  if (num_pairs != rmt_.pairs().size()) {
    return Status::corruption(
        "maxwe state: RMT pair count " + std::to_string(num_pairs) +
        " != configured " + std::to_string(rmt_.pairs().size()));
  }
  const std::uint64_t lpr = endurance_->geometry().lines_per_region();
  std::vector<std::vector<bool>> tags(num_pairs);
  for (auto& wot : tags) {
    if (Status st = r.vec_bool(wot); !st.ok()) return st;
    if (wot.size() != lpr) {
      return Status::corruption("maxwe state: wot vector size mismatch");
    }
  }

  std::uint64_t num_lmt = 0;
  if (Status st = r.u64(num_lmt); !st.ok()) return st;
  if (num_lmt > lmt_.capacity()) {
    return Status::corruption("maxwe state: LMT entry count " +
                              std::to_string(num_lmt) + " > capacity " +
                              std::to_string(lmt_.capacity()));
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(num_lmt);
  for (auto& [pla, sla] : entries) {
    if (Status st = r.u64(pla); !st.ok()) return st;
    if (Status st = r.u64(sla); !st.ok()) return st;
    if (pla >= num_lines || sla >= num_lines) {
      return Status::corruption("maxwe state: LMT address out of range");
    }
  }

  // All input validated; apply.
  reset();
  next_asr_ = next_asr;
  stats_.line_deaths = line_deaths;
  stats_.replacements = replacements;
  for (std::uint64_t i = 0; i < user_lines_; ++i) backing_[i] = backing[i];
  for (std::uint64_t p = 0; p < num_pairs; ++p) {
    const RegionId pra = rmt_.pairs()[p].first;
    for (std::uint64_t k = 0; k < lpr; ++k) {
      if (tags[p][k]) rmt_.set_wear_out_tag(pra, LineInRegion{k});
    }
  }
  for (const auto& [pla, sla] : entries) {
    lmt_.insert_or_replace(PhysLineAddr{pla}, PhysLineAddr{sla});
  }
  return Status{};
}

SpareSchemeStats MaxWe::stats() const {
  SpareSchemeStats s = stats_;
  s.spares_remaining = asr_pool_remaining();
  s.lmt_entries = lmt_.size();
  s.rmt_entries = rmt_.size();
  return s;
}

std::uint64_t MaxWe::mapping_overhead_bits() const {
  return rmt_.storage_bits() + lmt_.storage_bits();
}

bool MaxWe::rebind(const std::shared_ptr<const EnduranceMap>& endurance,
                   Rng& rng) {
  (void)rng;  // MaxWe construction consumes no RNG draws
  if (endurance == nullptr) return false;
  const DeviceGeometry& old_geom = endurance_->geometry();
  const DeviceGeometry& new_geom = endurance->geometry();
  if (new_geom.num_lines() != old_geom.num_lines() ||
      new_geom.num_regions() != old_geom.num_regions()) {
    return false;
  }
  endurance_ = endurance;
  // Fresh boot state, exactly as the constructor would leave it: empty
  // tables (the RMT pairing is re-derived inside build_allocation), zero
  // stats, detached observer.
  rmt_ = RegionMappingTable(new_geom.num_regions(),
                            new_geom.lines_per_region());
  stats_ = {};
  obs_ = Observer{};
  rmt_redirects_ = nullptr;
  asr_allocs_ = nullptr;
  build_allocation();
  bump_mapping_epoch();
  return true;
}

void MaxWe::reset() {
  bump_mapping_epoch();
  stats_ = {};
  rmt_.reset_tags();
  lmt_.clear();
  next_asr_ = 0;
  for (std::uint64_t i = 0; i < user_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(working_line(i).value());
  }
}

void MaxWe::set_observer(const Observer& obs) {
  obs_ = obs;
  rmt_redirects_ = nullptr;
  asr_allocs_ = nullptr;
  if (obs.metrics != nullptr) {
    rmt_redirects_ = &obs.metrics->counter("maxwe.rmt_redirects");
    asr_allocs_ = &obs.metrics->counter("maxwe.asr_allocs");
    obs.metrics->gauge("maxwe.user_lines")
        .set(static_cast<double>(user_lines_));
    obs.metrics->gauge("maxwe.asr_pool_size")
        .set(static_cast<double>(asr_pool_.size()));
    publish_table_gauges();
  }
  if (obs.trace != nullptr) {
    // Replay the boot-time weak-strong matching so the trace is
    // self-contained: one pairing event per permanent (RWR -> SWR) pair.
    for (RegionId rwr : rwrs_) {
      obs.trace->instant(
          "maxwe.pair",
          {{"rwr_region", static_cast<double>(rwr.value())},
           {"swr_region", static_cast<double>(rmt_.spare_of(rwr)->value())},
           {"rwr_endurance", endurance_->region_endurance(rwr)},
           {"swr_endurance",
            endurance_->region_endurance(*rmt_.spare_of(rwr))}});
    }
  }
  if (obs.events != nullptr) {
    // Replay the boot-time spare allocation so the event log is
    // self-contained: the role split, every SWR<->RWR pairing and every
    // ASR region. All stamped t=0 — they are decided before any write.
    obs.events->emit(
        "spare_roles",
        {{"scheme", "maxwe"},
         {"swr_regions", static_cast<double>(swrs_.size())},
         {"rwr_regions", static_cast<double>(rwrs_.size())},
         {"asr_regions", static_cast<double>(asrs_.size())},
         {"user_lines", static_cast<double>(user_lines_)},
         {"asr_pool_lines", static_cast<double>(asr_pool_.size())}});
    for (RegionId rwr : rwrs_) {
      obs.events->emit(
          "pairing",
          {{"rwr_region", static_cast<double>(rwr.value())},
           {"swr_region", static_cast<double>(rmt_.spare_of(rwr)->value())},
           {"rwr_endurance", endurance_->region_endurance(rwr)},
           {"swr_endurance",
            endurance_->region_endurance(*rmt_.spare_of(rwr))}});
    }
    for (RegionId asr : asrs_) {
      obs.events->emit(
          "asr_region",
          {{"region", static_cast<double>(asr.value())},
           {"endurance", endurance_->region_endurance(asr)}});
    }
  }
}

void MaxWe::publish_table_gauges() const {
  obs_.metrics->gauge("maxwe.lmt_entries").set(static_cast<double>(lmt_.size()));
  obs_.metrics->gauge("maxwe.rmt_entries").set(static_cast<double>(rmt_.size()));
  obs_.metrics->gauge("maxwe.asr_pool_remaining")
      .set(static_cast<double>(asr_pool_remaining()));
}

std::unique_ptr<SpareScheme> make_maxwe(
    std::shared_ptr<const EnduranceMap> endurance, MaxWeParams params) {
  return std::make_unique<MaxWe>(std::move(endurance), params);
}

}  // namespace nvmsec
