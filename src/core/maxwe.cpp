#include "core/maxwe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nvmsec {

void MaxWeParams::validate() const {
  if (spare_fraction < 0.0 || spare_fraction >= 1.0) {
    throw std::invalid_argument("MaxWeParams: spare_fraction must be in [0,1)");
  }
  if (swr_fraction < 0.0 || swr_fraction > 1.0) {
    throw std::invalid_argument("MaxWeParams: swr_fraction must be in [0,1]");
  }
}

MaxWe::MaxWe(std::shared_ptr<const EnduranceMap> endurance, MaxWeParams params)
    : endurance_(std::move(endurance)),
      params_(params),
      rmt_(endurance_->geometry().num_regions(),
           endurance_->geometry().lines_per_region()),
      lmt_(0, endurance_->geometry().num_lines()) {
  params_.validate();
  if (endurance_->geometry().num_lines() > UINT32_MAX) {
    throw std::invalid_argument("MaxWe: device exceeds 2^32 lines");
  }
  build_allocation();
}

void MaxWe::build_allocation() {
  const DeviceGeometry& geom = endurance_->geometry();
  const std::uint64_t num_regions = geom.num_regions();
  const std::uint64_t lpr = geom.lines_per_region();

  const auto n_spare = static_cast<std::uint64_t>(
      std::llround(params_.spare_fraction * static_cast<double>(num_regions)));
  const auto n_swr = static_cast<std::uint64_t>(
      std::llround(params_.swr_fraction * static_cast<double>(n_spare)));
  const std::uint64_t n_asr = n_spare - n_swr;

  // SWRs need an equal number of RWRs left in the user space, and at least
  // one region must remain purely user capacity.
  if (2 * n_swr + n_asr >= num_regions) {
    throw std::invalid_argument(
        "MaxWe: spare configuration leaves no user capacity");
  }

  const std::vector<RegionId> order = endurance_->regions_weakest_first();
  if (params_.selection == SpareSelectionPolicy::kWeakPriority) {
    // Weak-priority: carve the spare roles off the weak end of the
    // manufacture-time endurance ordering (Fig. 3's worked example).
    swrs_.assign(order.begin(),
                 order.begin() + static_cast<std::ptrdiff_t>(n_swr));
    rwrs_.assign(order.begin() + static_cast<std::ptrdiff_t>(n_swr),
                 order.begin() + static_cast<std::ptrdiff_t>(2 * n_swr));
    asrs_.assign(order.begin() + static_cast<std::ptrdiff_t>(2 * n_swr),
                 order.begin() + static_cast<std::ptrdiff_t>(2 * n_swr + n_asr));
  } else {
    // Ablation baseline: spares picked uniformly at random (traditional
    // schemes' behaviour). The SWR/ASR split and the RWR choice still use
    // the endurance ordering so only the *selection* differs.
    Rng selection_rng(params_.selection_seed);
    std::vector<RegionId> spares;
    for (std::uint64_t r : selection_rng.sample_without_replacement(
             num_regions, n_swr + n_asr)) {
      spares.push_back(RegionId{r});
    }
    std::sort(spares.begin(), spares.end(), [&](RegionId a, RegionId b) {
      const Endurance ea = endurance_->region_endurance(a);
      const Endurance eb = endurance_->region_endurance(b);
      if (ea != eb) return ea < eb;
      return a.value() < b.value();
    });
    swrs_.assign(spares.begin(),
                 spares.begin() + static_cast<std::ptrdiff_t>(n_swr));
    asrs_.assign(spares.begin() + static_cast<std::ptrdiff_t>(n_swr),
                 spares.end());
    std::vector<bool> is_spare(num_regions, false);
    for (RegionId r : spares) is_spare[r.value()] = true;
    rwrs_.clear();
    for (RegionId r : order) {
      if (rwrs_.size() == n_swr) break;
      if (!is_spare[r.value()]) rwrs_.push_back(r);
    }
  }

  std::vector<bool> is_spare_region(num_regions, false);
  for (RegionId r : swrs_) is_spare_region[r.value()] = true;
  for (RegionId r : asrs_) is_spare_region[r.value()] = true;

  user_regions_.clear();
  for (std::uint64_t r = 0; r < num_regions; ++r) {
    if (!is_spare_region[r]) user_regions_.push_back(RegionId{r});
  }
  user_lines_ = user_regions_.size() * lpr;

  // rwrs_ and swrs_ are both ascending by endurance. Weak-strong matching
  // pairs the weakest RWR with the strongest SWR (walk the SWR slice
  // backwards); the identity-matching ablation pairs them in like order.
  for (std::uint64_t i = 0; i < n_swr; ++i) {
    const RegionId sra = params_.matching == MatchingPolicy::kWeakStrong
                             ? swrs_[n_swr - 1 - i]
                             : swrs_[i];
    rmt_.add_pair(/*pra=*/rwrs_[i], sra);
  }

  // Additional spare pool, strongest line first (§4.2: "allocates the
  // strongest spare line"). Regions have constant endurance, so order the
  // regions strongest-first and take their lines in address order.
  std::vector<RegionId> asr_by_strength = asrs_;
  std::sort(asr_by_strength.begin(), asr_by_strength.end(),
            [&](RegionId a, RegionId b) {
              const Endurance ea = endurance_->region_endurance(a);
              const Endurance eb = endurance_->region_endurance(b);
              if (ea != eb) return ea > eb;
              return a.value() < b.value();
            });
  asr_pool_.clear();
  asr_pool_.reserve(n_asr * lpr);
  for (RegionId r : asr_by_strength) {
    for (std::uint64_t k = 0; k < lpr; ++k) {
      asr_pool_.push_back(static_cast<std::uint32_t>(
          geom.line_at(r, LineInRegion{k}).value()));
    }
  }
  lmt_ = LineMappingTable(asr_pool_.size(), geom.num_lines());
  next_asr_ = 0;

  backing_.resize(user_lines_);
  for (std::uint64_t i = 0; i < user_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(working_line(i).value());
  }
}

PhysLineAddr MaxWe::working_line(std::uint64_t idx) const {
  if (idx >= user_lines_) {
    throw std::out_of_range("MaxWe::working_line: index out of range");
  }
  const std::uint64_t lpr = endurance_->geometry().lines_per_region();
  return endurance_->geometry().line_at(user_regions_[idx / lpr],
                                        LineInRegion{idx % lpr});
}

PhysLineAddr MaxWe::resolve(std::uint64_t idx) {
  if (idx >= user_lines_) {
    throw std::out_of_range("MaxWe::resolve: index out of range");
  }
  return PhysLineAddr{backing_[idx]};
}

bool MaxWe::allocate_from_asr(std::uint64_t idx, PhysLineAddr pla) {
  if (next_asr_ >= asr_pool_.size()) {
    return false;  // no spare lines left: device worn out (§4.2)
  }
  const PhysLineAddr sla{asr_pool_[next_asr_++]};
  lmt_.insert_or_replace(pla, sla);
  backing_[idx] = static_cast<std::uint32_t>(sla.value());
  ++stats_.replacements;
  if (asr_allocs_ != nullptr) asr_allocs_->inc();
  if (obs_.trace != nullptr) {
    obs_.trace->instant(
        "maxwe.asr_alloc",
        {{"working_index", static_cast<double>(idx)},
         {"original_line", static_cast<double>(pla.value())},
         {"spare_line", static_cast<double>(sla.value())},
         {"pool_remaining", static_cast<double>(asr_pool_remaining())}});
  }
  if (obs_.metrics != nullptr) publish_table_gauges();
  return true;
}

bool MaxWe::on_wear_out(std::uint64_t idx) {
  if (idx >= user_lines_) {
    throw std::out_of_range("MaxWe::on_wear_out: index out of range");
  }
  ++stats_.line_deaths;
  const DeviceGeometry& geom = endurance_->geometry();
  const PhysLineAddr pla = working_line(idx);
  const PhysLineAddr worn{backing_[idx]};

  if (worn == pla) {
    // First failure of this user line.
    const RegionId region = geom.region_of(pla);
    if (rmt_.has_region(region)) {
      // RWR line: flip the wear-out tag and redirect to the permanently
      // paired line of the matched SWR.
      const LineInRegion offset = geom.offset_in_region(pla);
      rmt_.set_wear_out_tag(region, offset);
      const PhysLineAddr spare = geom.line_at(*rmt_.spare_of(region), offset);
      backing_[idx] = static_cast<std::uint32_t>(spare.value());
      ++stats_.replacements;
      if (rmt_redirects_ != nullptr) rmt_redirects_->inc();
      if (obs_.trace != nullptr) {
        obs_.trace->instant(
            "maxwe.rmt_redirect",
            {{"region", static_cast<double>(region.value())},
             {"offset", static_cast<double>(offset.value())},
             {"spare_region",
              static_cast<double>(rmt_.spare_of(region)->value())}});
      }
      return true;
    }
    return allocate_from_asr(idx, pla);
  }
  // A replacement line died (the SWR partner or an LMT spare): fall back to
  // a fresh additional spare, replacing any existing LMT entry for pla.
  return allocate_from_asr(idx, pla);
}

PhysLineAddr MaxWe::translate_read(PhysLineAddr pla) const {
  const DeviceGeometry& geom = endurance_->geometry();
  if (!geom.contains(pla)) {
    throw std::out_of_range("MaxWe::translate_read: address out of range");
  }
  if (const auto sla = lmt_.lookup(pla)) return *sla;
  const RegionId region = geom.region_of(pla);
  if (rmt_.has_region(region)) {
    const LineInRegion offset = geom.offset_in_region(pla);
    if (rmt_.wear_out_tag(region, offset)) {
      return geom.line_at(*rmt_.spare_of(region), offset);
    }
  }
  return pla;
}

SpareSchemeStats MaxWe::stats() const {
  SpareSchemeStats s = stats_;
  s.spares_remaining = asr_pool_remaining();
  s.lmt_entries = lmt_.size();
  s.rmt_entries = rmt_.size();
  return s;
}

std::uint64_t MaxWe::mapping_overhead_bits() const {
  return rmt_.storage_bits() + lmt_.storage_bits();
}

void MaxWe::reset() {
  stats_ = {};
  rmt_.reset_tags();
  lmt_.clear();
  next_asr_ = 0;
  for (std::uint64_t i = 0; i < user_lines_; ++i) {
    backing_[i] = static_cast<std::uint32_t>(working_line(i).value());
  }
}

void MaxWe::set_observer(const Observer& obs) {
  obs_ = obs;
  rmt_redirects_ = nullptr;
  asr_allocs_ = nullptr;
  if (obs.metrics != nullptr) {
    rmt_redirects_ = &obs.metrics->counter("maxwe.rmt_redirects");
    asr_allocs_ = &obs.metrics->counter("maxwe.asr_allocs");
    obs.metrics->gauge("maxwe.user_lines")
        .set(static_cast<double>(user_lines_));
    obs.metrics->gauge("maxwe.asr_pool_size")
        .set(static_cast<double>(asr_pool_.size()));
    publish_table_gauges();
  }
  if (obs.trace != nullptr) {
    // Replay the boot-time weak-strong matching so the trace is
    // self-contained: one pairing event per permanent (RWR -> SWR) pair.
    for (RegionId rwr : rwrs_) {
      obs.trace->instant(
          "maxwe.pair",
          {{"rwr_region", static_cast<double>(rwr.value())},
           {"swr_region", static_cast<double>(rmt_.spare_of(rwr)->value())},
           {"rwr_endurance", endurance_->region_endurance(rwr)},
           {"swr_endurance",
            endurance_->region_endurance(*rmt_.spare_of(rwr))}});
    }
  }
}

void MaxWe::publish_table_gauges() const {
  obs_.metrics->gauge("maxwe.lmt_entries").set(static_cast<double>(lmt_.size()));
  obs_.metrics->gauge("maxwe.rmt_entries").set(static_cast<double>(rmt_.size()));
  obs_.metrics->gauge("maxwe.asr_pool_remaining")
      .set(static_cast<double>(asr_pool_remaining()));
}

std::unique_ptr<SpareScheme> make_maxwe(
    std::shared_ptr<const EnduranceMap> endurance, MaxWeParams params) {
  return std::make_unique<MaxWe>(std::move(endurance), params);
}

}  // namespace nvmsec
