// Max-WE: Maximize the Weak lines' Endurance (paper §4) — the core
// contribution. A spare-line replacement scheme built on three ideas:
//
//  1. Weak-priority allocation: the weakest regions themselves become the
//     spare capacity (SWRs and additional spare regions), so the user-
//     visible space keeps the strong lines.
//  2. Weak-strong matching: SWRs are permanently paired with the next-
//     weakest regions (RWRs) — strongest SWR rescues weakest RWR — so every
//     rescued chain's combined endurance is balanced and maximized.
//  3. Hybrid mapping: the permanent pairs live in a tiny region-level RMT
//     (plus per-line wear-out tags); only wear-outs outside the RWRs use
//     line-level LMT entries backed by the additional spare regions,
//     allocated strongest-line-first.
//
// Region roles, from the weakest end of the manufacture-time endurance
// ordering:  [ SWRs | RWRs | ASRs | ... strong user regions ... ]
// SWRs and ASRs are carved out of the address space; RWRs remain user
// space. See tests/core/maxwe_paper_example_test.cpp for the paper's
// worked 7-region example (Fig. 3) reproduced literally.
#pragma once

#include <memory>
#include <vector>

#include "core/mapping_tables.h"
#include "spare/spare_scheme.h"

namespace nvmsec {

class Device;

/// What a metadata scrub pass found and did (see MaxWe::scrub).
struct ScrubReport {
  /// RMT entries whose CRC/parity check failed before the rebuild.
  std::uint64_t rmt_corrupt_detected{0};
  /// LMT entries whose CRC check failed before the rebuild.
  std::uint64_t lmt_corrupt_detected{0};
  /// Entries whose logical content actually changed during the rebuild
  /// (detected corruption that mattered, not just stale check bits).
  std::uint64_t entries_repaired{0};

  [[nodiscard]] bool clean() const {
    return rmt_corrupt_detected == 0 && lmt_corrupt_detected == 0 &&
           entries_repaired == 0;
  }
};

/// Which regions become spare capacity. kWeakPriority is the paper's
/// scheme; kRandomRegions reproduces the traditional schemes' random
/// allocation (§2.2.3) and is used by the ablation bench to isolate the
/// contribution of weak-priority selection.
enum class SpareSelectionPolicy { kWeakPriority, kRandomRegions };

/// How SWRs are paired with RWRs. kWeakStrong is the paper's antitone
/// matching (strongest SWR rescues weakest RWR); kIdentity pairs them in
/// like order (weakest with weakest) and is the ablation baseline.
enum class MatchingPolicy { kWeakStrong, kIdentity };

struct MaxWeParams {
  /// Fraction of total capacity reserved as spare (SWR + ASR), allocated in
  /// whole regions. The paper chooses 10% (§5.2.1).
  double spare_fraction{0.10};
  /// Fraction q of the spare capacity used region-mapped (SWRs); the rest
  /// backs the line-mapped additional spare regions. The paper chooses 90%
  /// (§5.2.2).
  double swr_fraction{0.90};
  /// Ablation knobs; the defaults are the paper's design.
  SpareSelectionPolicy selection{SpareSelectionPolicy::kWeakPriority};
  MatchingPolicy matching{MatchingPolicy::kWeakStrong};
  /// Seed for kRandomRegions (the choice is part of device provisioning,
  /// not of the simulated run, so it has its own seed).
  std::uint64_t selection_seed{12345};

  void validate() const;  // throws std::invalid_argument on bad values
};

class MaxWe final : public SpareScheme {
 public:
  MaxWe(std::shared_ptr<const EnduranceMap> endurance, MaxWeParams params);

  // --- SpareScheme interface -------------------------------------------
  [[nodiscard]] std::uint64_t working_lines() const override {
    return user_lines_;
  }
  [[nodiscard]] PhysLineAddr working_line(std::uint64_t idx) const override;
  PhysLineAddr resolve(std::uint64_t idx) override;
  [[nodiscard]] bool resolve_cacheable() const override { return true; }
  bool on_wear_out(std::uint64_t idx) override;
  [[nodiscard]] std::string name() const override { return "maxwe"; }
  [[nodiscard]] SpareSchemeStats stats() const override;
  void reset() override;
  /// Re-derive the whole allocation (roles, pairing, pools, resolve cache)
  /// on a new map of the same geometry, reusing this instance's storage.
  /// Construction consumes no RNG, so the rebound scheme is exactly what a
  /// fresh MaxWe(endurance, params()) would be. False on geometry mismatch.
  bool rebind(const std::shared_ptr<const EnduranceMap>& endurance,
              Rng& rng) override;
  /// Emits the SWR/RWR pairing as trace events on attach, then traces RMT
  /// redirects and additional-spare allocations as they happen and keeps
  /// `maxwe.*` counters/gauges current.
  void set_observer(const Observer& obs) override;

  // --- Paper-facing introspection --------------------------------------
  [[nodiscard]] const MaxWeParams& params() const { return params_; }
  [[nodiscard]] const std::vector<RegionId>& swr_regions() const {
    return swrs_;
  }
  [[nodiscard]] const std::vector<RegionId>& rwr_regions() const {
    return rwrs_;
  }
  [[nodiscard]] const std::vector<RegionId>& asr_regions() const {
    return asrs_;
  }
  [[nodiscard]] const RegionMappingTable& rmt() const { return rmt_; }
  [[nodiscard]] const LineMappingTable& lmt() const { return lmt_; }

  /// Mutable table access for fault injection only (the debug_* corruption
  /// hooks); simulation code must go through the SpareScheme interface.
  [[nodiscard]] RegionMappingTable& debug_rmt() { return rmt_; }
  [[nodiscard]] LineMappingTable& debug_lmt() { return lmt_; }

  /// §4.2's read-path translation, straight from the tables (LMT hit, else
  /// RMT + wear-out tag, else the address itself). resolve() returns the
  /// same answer from an O(1) cache; tests assert they agree.
  [[nodiscard]] PhysLineAddr translate_read(PhysLineAddr pla) const;

  /// Exact mapping-table SRAM cost of this instance (RMT + LMT + tags).
  [[nodiscard]] std::uint64_t mapping_overhead_bits() const;

  /// Unallocated additional-spare lines.
  [[nodiscard]] std::uint64_t asr_pool_remaining() const {
    return asr_pool_.size() - next_asr_;
  }

  /// Metadata-fault recovery (detection + rebuild-from-device).
  ///
  /// Detects corruption via the tables' per-entry CRC/parity checks, then
  /// rebuilds both tables from ground truth that survives SRAM bit-flips:
  /// the permanent RMT pairing is re-derived from the manufacture-time
  /// endurance map; wear-out tags from the device's per-line wear state
  /// (tag set <=> the RWR line is worn out); LMT entries from the current
  /// backing lines, which model FREE-p-style device-resident back-pointers.
  /// After scrub the tables match the fault-free trajectory exactly, so an
  /// injected flip followed by a scrub leaves the simulated lifetime
  /// bit-identical to a run with no faults at all.
  ScrubReport scrub(const Device& device);

  // --- Checkpointing ----------------------------------------------------
  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

 private:
  void build_allocation();
  [[nodiscard]] bool allocate_from_asr(std::uint64_t idx, PhysLineAddr pla);

  std::shared_ptr<const EnduranceMap> endurance_;
  MaxWeParams params_;
  std::uint64_t user_lines_{0};

  std::vector<RegionId> swrs_;  // weakest regions, spare (region-mapped)
  std::vector<RegionId> rwrs_;  // next weakest, user space, RMT-rescued
  std::vector<RegionId> asrs_;  // additional spare regions (line-mapped)
  std::vector<RegionId> user_regions_;  // ascending id; includes RWRs

  RegionMappingTable rmt_;
  LineMappingTable lmt_;
  /// Additional spare lines in allocation order (strongest first).
  std::vector<std::uint32_t> asr_pool_;
  std::size_t next_asr_{0};

  /// O(1) resolve cache; tables above stay authoritative.
  std::vector<std::uint32_t> backing_;
  SpareSchemeStats stats_;

  Observer obs_{};
  Counter* rmt_redirects_{nullptr};
  Counter* asr_allocs_{nullptr};
  void publish_table_gauges() const;
};

std::unique_ptr<SpareScheme> make_maxwe(
    std::shared_ptr<const EnduranceMap> endurance, MaxWeParams params);

}  // namespace nvmsec
