// Hybrid spare-line mapping management (paper §4.1-§4.2, Fig. 3).
//
// Max-WE tracks wear-out replacements with two SRAM-resident tables:
//
//  * RMT (Region Mapping Table) — coarse, region-level, *permanent* pairs
//    (pra -> sra) built at boot from the endurance map, plus one wear-out
//    tag (wot) per line of the paired spare region. Because the pairing
//    never changes, an RMT entry costs only the spare-region id and the tag
//    bits — this is where the 85% table-size reduction comes from.
//
//  * LMT (Line Mapping Table) — fine, line-level mapping (pla -> sla) for
//    wear-outs that occur outside the RWRs, backed by the additional spare
//    regions. Entries are replaced when a spare line itself wears out
//    (§4.2: "we remove the old entry from LMT before adding a new one").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace nvmsec {

class RegionMappingTable {
 public:
  /// `num_regions`: total regions in the device (bounds pra/sra);
  /// `lines_per_region`: size of each entry's wear-out tag vector.
  RegionMappingTable(std::uint64_t num_regions,
                     std::uint64_t lines_per_region);

  /// Record the permanent rescue pair "sra rescues pra". Each pra and sra
  /// may appear at most once; violations throw std::invalid_argument.
  void add_pair(RegionId pra, RegionId sra);

  /// Spare region paired with `pra`, or nullopt if pra has no entry.
  [[nodiscard]] std::optional<RegionId> spare_of(RegionId pra) const;

  [[nodiscard]] bool has_region(RegionId pra) const;

  /// Wear-out tag of line `offset` in rescued region `pra`. Throws if pra
  /// has no entry.
  [[nodiscard]] bool wear_out_tag(RegionId pra, LineInRegion offset) const;
  void set_wear_out_tag(RegionId pra, LineInRegion offset);

  /// Number of region pairs.
  [[nodiscard]] std::uint64_t size() const { return pairs_.size(); }

  /// Count of wear-out tags currently set (replaced lines).
  [[nodiscard]] std::uint64_t tags_set() const { return tags_set_; }

  /// All (pra, sra) pairs in insertion (weak-strong-matching) order.
  [[nodiscard]] const std::vector<std::pair<RegionId, RegionId>>& pairs()
      const {
    return pairs_;
  }

  /// Exact SRAM cost of this table: per pair, one sra id (log2 R bits,
  /// rounded up) plus one wot bit per line (§4.4).
  [[nodiscard]] std::uint64_t storage_bits() const;

  void reset_tags();

 private:
  struct Entry {
    RegionId sra;
    std::vector<bool> wot;
  };

  std::uint64_t num_regions_;
  std::uint64_t lines_per_region_;
  /// pra -> index into entries_, -1 when absent. Dense: R is small (2048).
  std::vector<std::int32_t> index_;
  std::vector<Entry> entries_;
  std::vector<std::pair<RegionId, RegionId>> pairs_;
  std::vector<bool> sra_used_;
  std::uint64_t tags_set_{0};
};

class LineMappingTable {
 public:
  /// `capacity`: maximum entries (the number of additional spare lines);
  /// `num_lines`: device line count (bounds addresses, sizes entries).
  LineMappingTable(std::uint64_t capacity, std::uint64_t num_lines);

  /// Current spare line for `pla`, or nullopt.
  [[nodiscard]] std::optional<PhysLineAddr> lookup(PhysLineAddr pla) const;

  /// Map pla -> sla, replacing any previous entry for pla. Throws
  /// std::length_error when the table is full and pla is a new key.
  void insert_or_replace(PhysLineAddr pla, PhysLineAddr sla);

  void erase(PhysLineAddr pla);

  [[nodiscard]] std::uint64_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  /// Exact SRAM cost: capacity * (log2 N)-bit spare pointers (§4.4's
  /// (1-q)*S*log2(N) term), independent of current occupancy — the table is
  /// provisioned for the worst case.
  [[nodiscard]] std::uint64_t storage_bits() const;

  void clear() { map_.clear(); }

 private:
  std::uint64_t capacity_;
  std::uint64_t num_lines_;
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
std::uint64_t ceil_log2(std::uint64_t x);

}  // namespace nvmsec
