// Hybrid spare-line mapping management (paper §4.1-§4.2, Fig. 3).
//
// Max-WE tracks wear-out replacements with two SRAM-resident tables:
//
//  * RMT (Region Mapping Table) — coarse, region-level, *permanent* pairs
//    (pra -> sra) built at boot from the endurance map, plus one wear-out
//    tag (wot) per line of the paired spare region. Because the pairing
//    never changes, an RMT entry costs only the spare-region id and the tag
//    bits — this is where the 85% table-size reduction comes from.
//
//  * LMT (Line Mapping Table) — fine, line-level mapping (pla -> sla) for
//    wear-outs that occur outside the RWRs, backed by the additional spare
//    regions. Entries are replaced when a spare line itself wears out
//    (§4.2: "we remove the old entry from LMT before adding a new one").
//
// Both tables are SRAM-resident, so they can take soft-error bit-flips at
// run time. Every mutable field is covered by a per-entry integrity code
// (CRC-32 over the logical content for ids, parity for the wot tag vector)
// maintained on the mutation paths; verify() reports entries whose stored
// content no longer matches its code, and debug_* hooks flip raw bits
// *without* updating the code — the fault-injection entry points.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace nvmsec {

class RegionMappingTable {
 public:
  /// `num_regions`: total regions in the device (bounds pra/sra);
  /// `lines_per_region`: size of each entry's wear-out tag vector.
  RegionMappingTable(std::uint64_t num_regions,
                     std::uint64_t lines_per_region);

  /// Record the permanent rescue pair "sra rescues pra". Each pra and sra
  /// may appear at most once; violations throw std::invalid_argument.
  void add_pair(RegionId pra, RegionId sra);

  /// Spare region paired with `pra`, or nullopt if pra has no entry.
  [[nodiscard]] std::optional<RegionId> spare_of(RegionId pra) const;

  [[nodiscard]] bool has_region(RegionId pra) const;

  /// Wear-out tag of line `offset` in rescued region `pra`. Throws if pra
  /// has no entry.
  [[nodiscard]] bool wear_out_tag(RegionId pra, LineInRegion offset) const;
  void set_wear_out_tag(RegionId pra, LineInRegion offset);

  /// Number of region pairs.
  [[nodiscard]] std::uint64_t size() const { return pairs_.size(); }

  /// Count of wear-out tags currently set (replaced lines).
  [[nodiscard]] std::uint64_t tags_set() const { return tags_set_; }

  /// All (pra, sra) pairs in insertion (weak-strong-matching) order.
  [[nodiscard]] const std::vector<std::pair<RegionId, RegionId>>& pairs()
      const {
    return pairs_;
  }

  /// Exact SRAM cost of this table: per pair, one sra id (log2 R bits,
  /// rounded up) plus one wot bit per line (§4.4).
  [[nodiscard]] std::uint64_t storage_bits() const;

  void reset_tags();

  // --- Integrity ---------------------------------------------------------

  /// Region ids (pra) whose entry fails its integrity check: the sra CRC
  /// does not match the stored sra, or the wot vector's parity bit is
  /// stale. Sorted ascending; empty means the table is clean.
  [[nodiscard]] std::vector<RegionId> verify() const;

  /// Fault injection: flip bit `bit` of pra's stored sra id *without*
  /// updating the entry CRC (a soft error in the SRAM cell). Throws if pra
  /// has no entry or bit >= 32.
  void debug_corrupt_sra(RegionId pra, unsigned bit);

  /// Fault injection: toggle one wot tag *without* updating the parity bit
  /// or the tags_set counter. Throws if pra has no entry or offset is out
  /// of range.
  void debug_flip_tag(RegionId pra, LineInRegion offset);

 private:
  struct Entry {
    RegionId sra;
    std::vector<bool> wot;
    /// CRC-32 over (pra, sra); stale after debug_corrupt_sra.
    std::uint32_t crc{0};
    /// Even parity over wot; stale after debug_flip_tag.
    bool wot_parity{false};
  };

  static std::uint32_t entry_crc(RegionId pra, RegionId sra);

  std::uint64_t num_regions_;
  std::uint64_t lines_per_region_;
  /// pra -> index into entries_, -1 when absent. Dense: R is small (2048).
  std::vector<std::int32_t> index_;
  std::vector<Entry> entries_;
  std::vector<std::pair<RegionId, RegionId>> pairs_;
  std::vector<bool> sra_used_;
  std::uint64_t tags_set_{0};
};

class LineMappingTable {
 public:
  /// `capacity`: maximum entries (the number of additional spare lines);
  /// `num_lines`: device line count (bounds addresses, sizes entries).
  LineMappingTable(std::uint64_t capacity, std::uint64_t num_lines);

  /// Current spare line for `pla`, or nullopt.
  [[nodiscard]] std::optional<PhysLineAddr> lookup(PhysLineAddr pla) const;

  /// Map pla -> sla, replacing any previous entry for pla. Returns the
  /// spare line the entry previously pointed at (nullopt for a fresh key),
  /// so callers can report a worn-out spare being superseded. Throws
  /// std::length_error when the table is full and pla is a new key.
  std::optional<PhysLineAddr> insert_or_replace(PhysLineAddr pla,
                                                PhysLineAddr sla);

  void erase(PhysLineAddr pla);

  [[nodiscard]] std::uint64_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  /// Exact SRAM cost: capacity * (log2 N)-bit spare pointers (§4.4's
  /// (1-q)*S*log2(N) term), independent of current occupancy — the table is
  /// provisioned for the worst case.
  [[nodiscard]] std::uint64_t storage_bits() const;

  void clear() { map_.clear(); }

  /// All mapped pla keys, ascending — a deterministic iteration order for
  /// fault injection and serialization (the hash map's own order is not).
  [[nodiscard]] std::vector<PhysLineAddr> sorted_keys() const;

  // --- Integrity ---------------------------------------------------------

  /// Keys whose stored sla fails its per-entry CRC. Sorted ascending.
  [[nodiscard]] std::vector<PhysLineAddr> verify() const;

  /// Fault injection: flip bit `bit` of pla's stored sla *without*
  /// updating the entry CRC. Throws if pla has no entry or bit >= 64.
  void debug_corrupt_entry(PhysLineAddr pla, unsigned bit);

 private:
  struct Slot {
    std::uint64_t sla;
    /// CRC-32 over (pla, sla); stale after debug_corrupt_entry.
    std::uint32_t crc;
  };

  static std::uint32_t slot_crc(std::uint64_t pla, std::uint64_t sla);

  std::uint64_t capacity_;
  std::uint64_t num_lines_;
  std::unordered_map<std::uint64_t, Slot> map_;
};

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
std::uint64_t ceil_log2(std::uint64_t x);

}  // namespace nvmsec
