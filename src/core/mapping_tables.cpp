#include "core/mapping_tables.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/crc32.h"

namespace nvmsec {

namespace {
/// CRC-32 over two 64-bit words (little-endian byte order, fixed so the
/// code is stable across platforms and checkpoint files).
std::uint32_t crc_of_pair(std::uint64_t a, std::uint64_t b) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(a >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(b >> (8 * i));
  }
  return crc32(buf, sizeof(buf));
}

bool parity_of(const std::vector<bool>& bits) {
  bool p = false;
  for (bool b : bits) p ^= b;
  return p;
}
}  // namespace

std::uint64_t ceil_log2(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("ceil_log2: x must be >= 1");
  std::uint64_t bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

RegionMappingTable::RegionMappingTable(std::uint64_t num_regions,
                                       std::uint64_t lines_per_region)
    : num_regions_(num_regions),
      lines_per_region_(lines_per_region),
      index_(num_regions, -1),
      sra_used_(num_regions, false) {
  if (num_regions == 0 || lines_per_region == 0) {
    throw std::invalid_argument("RegionMappingTable: empty geometry");
  }
}

void RegionMappingTable::add_pair(RegionId pra, RegionId sra) {
  if (pra.value() >= num_regions_ || sra.value() >= num_regions_) {
    throw std::invalid_argument("RMT::add_pair: region out of range");
  }
  if (pra == sra) {
    throw std::invalid_argument("RMT::add_pair: region cannot rescue itself");
  }
  if (index_[pra.value()] != -1) {
    throw std::invalid_argument("RMT::add_pair: pra already paired");
  }
  if (sra_used_[sra.value()]) {
    throw std::invalid_argument("RMT::add_pair: sra already used");
  }
  index_[pra.value()] = static_cast<std::int32_t>(entries_.size());
  entries_.push_back(Entry{sra, std::vector<bool>(lines_per_region_, false),
                           entry_crc(pra, sra), false});
  pairs_.emplace_back(pra, sra);
  sra_used_[sra.value()] = true;
}

std::uint32_t RegionMappingTable::entry_crc(RegionId pra, RegionId sra) {
  return crc_of_pair(pra.value(), sra.value());
}

std::optional<RegionId> RegionMappingTable::spare_of(RegionId pra) const {
  if (pra.value() >= num_regions_) {
    throw std::out_of_range("RMT::spare_of: region out of range");
  }
  const std::int32_t i = index_[pra.value()];
  if (i < 0) return std::nullopt;
  return entries_[static_cast<std::size_t>(i)].sra;
}

bool RegionMappingTable::has_region(RegionId pra) const {
  return pra.value() < num_regions_ && index_[pra.value()] >= 0;
}

bool RegionMappingTable::wear_out_tag(RegionId pra,
                                      LineInRegion offset) const {
  if (!has_region(pra)) {
    throw std::invalid_argument("RMT::wear_out_tag: pra not in table");
  }
  if (offset.value() >= lines_per_region_) {
    throw std::out_of_range("RMT::wear_out_tag: offset out of range");
  }
  return entries_[static_cast<std::size_t>(index_[pra.value()])]
      .wot[offset.value()];
}

void RegionMappingTable::set_wear_out_tag(RegionId pra, LineInRegion offset) {
  if (!has_region(pra)) {
    throw std::invalid_argument("RMT::set_wear_out_tag: pra not in table");
  }
  if (offset.value() >= lines_per_region_) {
    throw std::out_of_range("RMT::set_wear_out_tag: offset out of range");
  }
  auto& entry = entries_[static_cast<std::size_t>(index_[pra.value()])];
  if (!entry.wot[offset.value()]) {
    entry.wot[offset.value()] = true;
    entry.wot_parity = !entry.wot_parity;
    ++tags_set_;
  }
}

std::vector<RegionId> RegionMappingTable::verify() const {
  std::vector<RegionId> bad;
  for (const auto& [pra, sra] : pairs_) {
    const auto& entry = entries_[static_cast<std::size_t>(index_[pra.value()])];
    if (entry.crc != entry_crc(pra, entry.sra) ||
        entry.wot_parity != parity_of(entry.wot)) {
      bad.push_back(pra);
    }
  }
  std::sort(bad.begin(), bad.end(),
            [](RegionId a, RegionId b) { return a.value() < b.value(); });
  return bad;
}

void RegionMappingTable::debug_corrupt_sra(RegionId pra, unsigned bit) {
  if (!has_region(pra)) {
    throw std::invalid_argument("RMT::debug_corrupt_sra: pra not in table");
  }
  if (bit >= 32) {
    throw std::out_of_range("RMT::debug_corrupt_sra: bit >= 32");
  }
  auto& entry = entries_[static_cast<std::size_t>(index_[pra.value()])];
  entry.sra = RegionId{entry.sra.value() ^ (std::uint64_t{1} << bit)};
}

void RegionMappingTable::debug_flip_tag(RegionId pra, LineInRegion offset) {
  if (!has_region(pra)) {
    throw std::invalid_argument("RMT::debug_flip_tag: pra not in table");
  }
  if (offset.value() >= lines_per_region_) {
    throw std::out_of_range("RMT::debug_flip_tag: offset out of range");
  }
  auto& entry = entries_[static_cast<std::size_t>(index_[pra.value()])];
  entry.wot[offset.value()] = !entry.wot[offset.value()];
}

std::uint64_t RegionMappingTable::storage_bits() const {
  const std::uint64_t id_bits = ceil_log2(num_regions_);
  // Per entry: the spare-region id and one wear-out tag per line. (The pra
  // itself indexes the table, mirroring §4.1: "RMT only records the region
  // id of SWRs and RWRs" paired by position.)
  return size() * (id_bits + lines_per_region_);
}

void RegionMappingTable::reset_tags() {
  for (auto& e : entries_) {
    e.wot.assign(lines_per_region_, false);
    e.wot_parity = false;
  }
  tags_set_ = 0;
}

LineMappingTable::LineMappingTable(std::uint64_t capacity,
                                   std::uint64_t num_lines)
    : capacity_(capacity), num_lines_(num_lines) {
  map_.reserve(capacity);
}

std::optional<PhysLineAddr> LineMappingTable::lookup(PhysLineAddr pla) const {
  const auto it = map_.find(pla.value());
  if (it == map_.end()) return std::nullopt;
  return PhysLineAddr{it->second.sla};
}

std::uint32_t LineMappingTable::slot_crc(std::uint64_t pla, std::uint64_t sla) {
  return crc_of_pair(pla, sla);
}

std::optional<PhysLineAddr> LineMappingTable::insert_or_replace(
    PhysLineAddr pla, PhysLineAddr sla) {
  if (pla.value() >= num_lines_ || sla.value() >= num_lines_) {
    throw std::out_of_range("LMT::insert_or_replace: address out of range");
  }
  const auto it = map_.find(pla.value());
  if (it != map_.end()) {
    const PhysLineAddr previous{it->second.sla};
    it->second = Slot{sla.value(), slot_crc(pla.value(), sla.value())};
    return previous;
  }
  if (map_.size() >= capacity_) {
    throw std::length_error("LMT::insert_or_replace: table full");
  }
  map_.emplace(pla.value(),
               Slot{sla.value(), slot_crc(pla.value(), sla.value())});
  return std::nullopt;
}

std::vector<PhysLineAddr> LineMappingTable::sorted_keys() const {
  std::vector<PhysLineAddr> keys;
  keys.reserve(map_.size());
  for (const auto& [pla, slot] : map_) keys.push_back(PhysLineAddr{pla});
  std::sort(keys.begin(), keys.end(),
            [](PhysLineAddr a, PhysLineAddr b) { return a.value() < b.value(); });
  return keys;
}

std::vector<PhysLineAddr> LineMappingTable::verify() const {
  std::vector<PhysLineAddr> bad;
  for (const auto& [pla, slot] : map_) {
    if (slot.crc != slot_crc(pla, slot.sla)) bad.push_back(PhysLineAddr{pla});
  }
  std::sort(bad.begin(), bad.end(),
            [](PhysLineAddr a, PhysLineAddr b) { return a.value() < b.value(); });
  return bad;
}

void LineMappingTable::debug_corrupt_entry(PhysLineAddr pla, unsigned bit) {
  const auto it = map_.find(pla.value());
  if (it == map_.end()) {
    throw std::invalid_argument("LMT::debug_corrupt_entry: pla not in table");
  }
  if (bit >= 64) {
    throw std::out_of_range("LMT::debug_corrupt_entry: bit >= 64");
  }
  it->second.sla ^= std::uint64_t{1} << bit;
}

void LineMappingTable::erase(PhysLineAddr pla) { map_.erase(pla.value()); }

std::uint64_t LineMappingTable::storage_bits() const {
  return capacity_ * ceil_log2(num_lines_);
}

}  // namespace nvmsec
