#include "core/analytic.h"

#include <stdexcept>

namespace nvmsec {

void LinearLifetimeModel::validate() const {
  if (num_lines <= 0) {
    throw std::invalid_argument("LinearLifetimeModel: num_lines <= 0");
  }
  if (e_low <= 0 || e_high < e_low) {
    throw std::invalid_argument(
        "LinearLifetimeModel: need 0 < e_low <= e_high");
  }
  if (spare_lines < 0 || spare_lines >= num_lines) {
    throw std::invalid_argument(
        "LinearLifetimeModel: spare_lines must be in [0, num_lines)");
  }
}

double LinearLifetimeModel::ideal() const {
  validate();
  return num_lines * (e_high - e_low) / 2.0 + num_lines * e_low;
}

double LinearLifetimeModel::uaa_unprotected() const {
  validate();
  return num_lines * e_low;
}

double LinearLifetimeModel::uaa_fraction_of_ideal() const {
  validate();
  return 2.0 * e_low / (e_high + e_low);
}

double LinearLifetimeModel::maxwe() const {
  validate();
  return (num_lines - spare_lines) *
         (e_low + 2.0 * spare_lines * (e_high - e_low) / num_lines);
}

double LinearLifetimeModel::pcd_ps() const {
  validate();
  return spare_lines * (num_lines - spare_lines / 2.0) * (e_high - e_low) /
             num_lines +
         num_lines * e_low;
}

double LinearLifetimeModel::ps_worst() const {
  validate();
  return (num_lines - spare_lines) *
         (e_low + spare_lines * (e_high - e_low) / num_lines);
}

Fig5Point fig5_point(double p, double q) {
  if (p < 0 || p >= 1) {
    throw std::invalid_argument("fig5_point: p must be in [0, 1)");
  }
  if (q < 1) throw std::invalid_argument("fig5_point: q must be >= 1");
  // Absolute scale cancels in the normalized ratios; fix N = 1, EL = 1.
  LinearLifetimeModel m;
  m.num_lines = 1.0;
  m.e_low = 1.0;
  m.e_high = q;
  m.spare_lines = p;
  const double ideal = m.ideal();
  return Fig5Point{p, q, m.maxwe() / ideal, m.pcd_ps() / ideal,
                   m.ps_worst() / ideal};
}

std::vector<Fig5Point> fig5_surface(double p_lo, double p_hi,
                                    std::uint32_t p_steps, double q_lo,
                                    double q_hi, std::uint32_t q_steps) {
  if (p_steps < 2 || q_steps < 2) {
    throw std::invalid_argument("fig5_surface: need at least 2 steps per axis");
  }
  std::vector<Fig5Point> out;
  out.reserve(static_cast<std::size_t>(p_steps) * q_steps);
  for (std::uint32_t i = 0; i < p_steps; ++i) {
    const double p =
        p_lo + (p_hi - p_lo) * static_cast<double>(i) /
                   static_cast<double>(p_steps - 1);
    for (std::uint32_t j = 0; j < q_steps; ++j) {
      const double q =
          q_lo + (q_hi - q_lo) * static_cast<double>(j) /
                     static_cast<double>(q_steps - 1);
      out.push_back(fig5_point(p, q));
    }
  }
  return out;
}

}  // namespace nvmsec
