#include "core/latency_model.h"

#include <stdexcept>

namespace nvmsec {

void LatencyModelParams::validate() const {
  if (array_read_ns <= 0 || sram_lookup_ns < 0) {
    throw std::invalid_argument("LatencyModelParams: non-positive latency");
  }
}

TranslationLatency table_translation_latency(
    const LatencyModelParams& params) {
  params.validate();
  TranslationLatency out;
  out.translation_ns = params.sram_lookup_ns;
  out.mean_access_ns = params.sram_lookup_ns + params.array_read_ns;
  out.relative = out.mean_access_ns / params.array_read_ns;
  return out;
}

TranslationLatency pointer_chain_latency(const LatencyModelParams& params,
                                         double mean_hops) {
  params.validate();
  if (mean_hops < 0) {
    throw std::invalid_argument("pointer_chain_latency: negative hops");
  }
  TranslationLatency out;
  out.translation_ns = mean_hops * params.array_read_ns;
  out.mean_access_ns = (1.0 + mean_hops) * params.array_read_ns;
  out.relative = 1.0 + mean_hops;
  return out;
}

}  // namespace nvmsec
