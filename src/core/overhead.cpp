#include "core/overhead.h"

#include <cmath>
#include <stdexcept>

namespace nvmsec {

void MappingOverheadInputs::validate() const {
  if (num_lines == 0 || num_regions == 0) {
    throw std::invalid_argument("MappingOverheadInputs: empty geometry");
  }
  if (num_regions > num_lines) {
    throw std::invalid_argument(
        "MappingOverheadInputs: more regions than lines");
  }
  if (spare_lines >= num_lines) {
    throw std::invalid_argument(
        "MappingOverheadInputs: spare_lines must be < num_lines");
  }
  if (swr_fraction < 0.0 || swr_fraction > 1.0) {
    throw std::invalid_argument(
        "MappingOverheadInputs: swr_fraction must be in [0,1]");
  }
}

MappingOverheadInputs MappingOverheadInputs::from_geometry(
    const DeviceGeometry& geometry, double spare_fraction,
    double swr_fraction) {
  if (spare_fraction < 0.0 || spare_fraction >= 1.0) {
    throw std::invalid_argument(
        "MappingOverheadInputs: spare_fraction must be in [0,1)");
  }
  MappingOverheadInputs in;
  in.num_lines = geometry.num_lines();
  in.num_regions = geometry.num_regions();
  in.spare_lines = static_cast<std::uint64_t>(
      std::llround(spare_fraction * static_cast<double>(geometry.num_lines())));
  in.swr_fraction = swr_fraction;
  return in;
}

double MappingOverheadResult::maxwe_total_mb() const {
  return maxwe_total_bits / 8.0 / 1024.0 / 1024.0;
}

double MappingOverheadResult::traditional_mb() const {
  return traditional_bits / 8.0 / 1024.0 / 1024.0;
}

MappingOverheadResult mapping_overhead(const MappingOverheadInputs& in) {
  in.validate();
  const double n = static_cast<double>(in.num_lines);
  const double r = static_cast<double>(in.num_regions);
  const double s = static_cast<double>(in.spare_lines);
  const double q = in.swr_fraction;

  MappingOverheadResult out;
  out.lmt_bits = (1.0 - q) * s * std::log2(n);
  out.rmt_bits = q * s * r * std::log2(r) / n;
  out.wear_out_tag_bits = q * s;
  out.maxwe_total_bits = out.lmt_bits + out.rmt_bits + out.wear_out_tag_bits;
  out.traditional_bits = s * std::log2(n);
  out.ratio = out.traditional_bits > 0
                  ? out.maxwe_total_bits / out.traditional_bits
                  : 0.0;
  return out;
}

}  // namespace nvmsec
