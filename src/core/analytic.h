// Closed-form lifetime model (paper §3.1 and §4.3, Eqs. (3)-(8)).
//
// The paper approximates the endurance distribution with a linear ramp
// between the weakest line's endurance E_L and the strongest line's E_H and
// derives UAA lifetimes for the ideal case, the unprotected case, Max-WE,
// PCD / average PS, and worst-case PS. These formulas drive Fig. 1's
// headline ratio, Fig. 5's comparison surface, and the cross-checks the
// tests run against the event-driven simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace nvmsec {

/// The linear endurance model's parameters: N lines with endurance linearly
/// distributed in [e_low, e_high], of which `spare_lines` = S are spare.
struct LinearLifetimeModel {
  double num_lines{0};    // N
  double e_low{0};        // E_L, weakest line endurance
  double e_high{0};       // E_H, strongest line endurance
  double spare_lines{0};  // S

  void validate() const;  // throws std::invalid_argument on bad values

  /// Eq. (3): ideal lifetime = N*(EH-EL)/2 + N*EL.
  [[nodiscard]] double ideal() const;

  /// Eq. (4): unprotected lifetime under UAA = N*EL.
  [[nodiscard]] double uaa_unprotected() const;

  /// Eq. (5): LUAA / LIdeal = 2*EL / (EH + EL).
  [[nodiscard]] double uaa_fraction_of_ideal() const;

  /// Eq. (6): Max-WE = (N-S) * (EL + 2S(EH-EL)/N).
  [[nodiscard]] double maxwe() const;

  /// Eq. (7): PCD (~= average PS) = S(N-S/2)(EH-EL)/N + N*EL.
  [[nodiscard]] double pcd_ps() const;

  /// Eq. (8): PS worst case = (N-S) * (EL + S(EH-EL)/N).
  [[nodiscard]] double ps_worst() const;
};

/// One cell of Fig. 5's surface: normalized (to ideal) lifetimes at spare
/// ratio p = S/N and variation degree q = EH/EL.
struct Fig5Point {
  double p{0};
  double q{0};
  double maxwe{0};
  double pcd_ps{0};
  double ps_worst{0};
};

/// Evaluate the three schemes' normalized lifetimes at (p, q) under the
/// linear model (the absolute scale cancels, so only p and q matter).
Fig5Point fig5_point(double p, double q);

/// The full Fig. 5 sweep: p in [p_lo, p_hi] x q in [q_lo, q_hi] on a
/// grid with the given step counts (inclusive endpoints).
std::vector<Fig5Point> fig5_surface(double p_lo, double p_hi,
                                    std::uint32_t p_steps, double q_lo,
                                    double q_hi, std::uint32_t q_steps);

}  // namespace nvmsec
