// Access-latency cost model for the translation paths.
//
// The paper's §4.1 requirement — "To ensure low address translation
// latency, RMT and LMT are both stored in SRAM" — is a latency argument,
// and FREE-p's table-free design trades that latency for storage. This
// model turns both into numbers with explicitly stated constants:
//
//   Max-WE access  = SRAM lookup + 1 array access
//   FREE-p access  = (1 + mean pointer hops) array accesses
//   line-level-table access = larger-SRAM lookup + 1 array access
//
// Constants default to commonly cited PCM figures; they are parameters,
// not claims.
#pragma once

namespace nvmsec {

struct LatencyModelParams {
  /// PCM array read latency, ns (Lee ISCA'09-era figure).
  double array_read_ns{55.0};
  /// Small (sub-MB) SRAM lookup, ns.
  double sram_lookup_ns{1.0};

  void validate() const;
};

struct TranslationLatency {
  /// Mean end-to-end read-access latency, ns.
  double mean_access_ns{0};
  /// Translation-only share of that latency, ns.
  double translation_ns{0};
  /// Overhead relative to a raw array access (1.0 = no overhead).
  double relative{1.0};
};

/// Max-WE / table-based translation: one SRAM lookup, then the access.
TranslationLatency table_translation_latency(const LatencyModelParams& params);

/// FREE-p-style pointer walking: `mean_hops` extra array reads per access.
TranslationLatency pointer_chain_latency(const LatencyModelParams& params,
                                         double mean_hops);

}  // namespace nvmsec
