// Off-chip DRAM write buffer (paper §3.3.2).
//
// "To alleviate the high latency and limited endurance problems of
// NVM-based main memory, a small-sized off-chip DRAM is used as a
// last-level buffer. The DRAM buffer is able to cache the hot accessed
// lines. UAA has uniform write accesses, and therefore the DRAM buffer
// does not work."
//
// Modelled as a write-back LRU buffer of whole lines: a hit absorbs the
// write entirely; a miss inserts the line and, when the buffer is full,
// evicts the least-recently-written line to the NVM (one NVM write). The
// integration tests show it neutralizing hotspot attacks whose working set
// fits, while leaving UAA untouched — the paper's argument, executable.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/observer.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

struct DramBufferStats {
  WriteCount hits{0};
  WriteCount misses{0};
  WriteCount evictions{0};

  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class DramBuffer {
 public:
  /// `capacity_lines` must be > 0.
  explicit DramBuffer(std::uint64_t capacity_lines);

  /// Record a write to `la`. Returns the line that must be written back to
  /// the NVM now (the evicted LRU victim), if any.
  std::optional<LogicalLineAddr> write(LogicalLineAddr la);

  /// Drain the buffer; returns every resident line (all are dirty — this is
  /// a write buffer). Used at end-of-run accounting and in tests.
  std::vector<LogicalLineAddr> flush();

  [[nodiscard]] bool contains(LogicalLineAddr la) const;
  [[nodiscard]] std::uint64_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] const DramBufferStats& stats() const { return stats_; }

  /// Publish hits/misses/evictions/hit-rate/occupancy to `metrics` under
  /// the "buffer." prefix (the engines call this at run end).
  void publish_metrics(MetricsRegistry& metrics) const;

  void reset();

  /// Checkpointing: resident lines in recency order plus hit/miss/eviction
  /// counters — the full LRU state, so a resumed run evicts identically.
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  std::uint64_t capacity_;
  /// MRU at front, LRU at back.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  DramBufferStats stats_;
};

}  // namespace nvmsec
