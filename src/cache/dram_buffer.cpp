#include "cache/dram_buffer.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace nvmsec {

DramBuffer::DramBuffer(std::uint64_t capacity_lines)
    : capacity_(capacity_lines) {
  if (capacity_lines == 0) {
    throw std::invalid_argument("DramBuffer: capacity must be > 0");
  }
  map_.reserve(capacity_lines);
}

std::optional<LogicalLineAddr> DramBuffer::write(LogicalLineAddr la) {
  const auto it = map_.find(la.value());
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    return std::nullopt;
  }
  ++stats_.misses;
  std::optional<LogicalLineAddr> evicted;
  if (map_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
    evicted = LogicalLineAddr{victim};
  }
  lru_.push_front(la.value());
  map_[la.value()] = lru_.begin();
  return evicted;
}

std::vector<LogicalLineAddr> DramBuffer::flush() {
  std::vector<LogicalLineAddr> out;
  out.reserve(map_.size());
  for (std::uint64_t la : lru_) out.push_back(LogicalLineAddr{la});
  lru_.clear();
  map_.clear();
  return out;
}

bool DramBuffer::contains(LogicalLineAddr la) const {
  return map_.contains(la.value());
}

void DramBuffer::publish_metrics(MetricsRegistry& metrics) const {
  metrics.counter("buffer.hits").set(stats_.hits);
  metrics.counter("buffer.misses").set(stats_.misses);
  metrics.counter("buffer.evictions").set(stats_.evictions);
  metrics.gauge("buffer.hit_rate").set(stats_.hit_rate());
  metrics.gauge("buffer.occupancy").set(static_cast<double>(size()));
}

void DramBuffer::reset() {
  lru_.clear();
  map_.clear();
  stats_ = {};
}

}  // namespace nvmsec
