#include "cache/dram_buffer.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace nvmsec {

DramBuffer::DramBuffer(std::uint64_t capacity_lines)
    : capacity_(capacity_lines) {
  if (capacity_lines == 0) {
    throw std::invalid_argument("DramBuffer: capacity must be > 0");
  }
  map_.reserve(capacity_lines);
}

std::optional<LogicalLineAddr> DramBuffer::write(LogicalLineAddr la) {
  const auto it = map_.find(la.value());
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    return std::nullopt;
  }
  ++stats_.misses;
  std::optional<LogicalLineAddr> evicted;
  if (map_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
    evicted = LogicalLineAddr{victim};
  }
  lru_.push_front(la.value());
  map_[la.value()] = lru_.begin();
  return evicted;
}

std::vector<LogicalLineAddr> DramBuffer::flush() {
  std::vector<LogicalLineAddr> out;
  out.reserve(map_.size());
  for (std::uint64_t la : lru_) out.push_back(LogicalLineAddr{la});
  lru_.clear();
  map_.clear();
  return out;
}

bool DramBuffer::contains(LogicalLineAddr la) const {
  return map_.contains(la.value());
}

void DramBuffer::publish_metrics(MetricsRegistry& metrics) const {
  metrics.counter("buffer.hits").set(stats_.hits);
  metrics.counter("buffer.misses").set(stats_.misses);
  metrics.counter("buffer.evictions").set(stats_.evictions);
  metrics.gauge("buffer.hit_rate").set(stats_.hit_rate());
  metrics.gauge("buffer.occupancy").set(static_cast<double>(size()));
}

void DramBuffer::reset() {
  lru_.clear();
  map_.clear();
  stats_ = {};
}

void DramBuffer::save_state(StateWriter& w) const {
  w.u64(stats_.hits);
  w.u64(stats_.misses);
  w.u64(stats_.evictions);
  std::vector<std::uint64_t> lines(lru_.begin(), lru_.end());  // MRU first
  w.vec_u64(lines);
}

Status DramBuffer::load_state(StateReader& r) {
  DramBufferStats stats;
  if (Status st = r.u64(stats.hits); !st.ok()) return st;
  if (Status st = r.u64(stats.misses); !st.ok()) return st;
  if (Status st = r.u64(stats.evictions); !st.ok()) return st;
  std::vector<std::uint64_t> lines;
  if (Status st = r.vec_u64(lines); !st.ok()) return st;
  if (lines.size() > capacity_) {
    return Status::corruption("buffer state: resident lines exceed capacity");
  }
  reset();
  stats_ = stats;
  for (std::uint64_t la : lines) {
    if (map_.contains(la)) {
      reset();
      return Status::corruption("buffer state: duplicate resident line");
    }
    lru_.push_back(la);
    map_.emplace(la, std::prev(lru_.end()));
  }
  return Status{};
}

}  // namespace nvmsec
