// I/O fault injection: a streambuf that starts failing after a byte quota.
//
// Wrap any std::streambuf (usually a stringbuf) and every read or write
// past `fail_after` bytes fails the way a full disk or a truncated pipe
// does: writes return EOF (which puts badbit on the owning ostream), reads
// hit EOF early. Used by the error-path tests for nvm/endurance_io,
// attack/trace, obs sinks, and the checkpoint writer — the readers and
// writers must turn these failures into structured errors, never into
// partial silently-accepted files.
#pragma once

#include <cstddef>
#include <streambuf>

namespace nvmsec {

class FailingStreamBuf final : public std::streambuf {
 public:
  /// Pass through to `inner` until `fail_after` bytes have moved in either
  /// direction; fail every byte after that.
  FailingStreamBuf(std::streambuf* inner, std::size_t fail_after)
      : inner_(inner), budget_(fail_after) {}

  [[nodiscard]] std::size_t bytes_passed() const { return passed_; }

 protected:
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return sync();
    if (passed_ >= budget_) return traits_type::eof();
    const int_type result = inner_->sputc(traits_type::to_char_type(ch));
    if (!traits_type::eq_int_type(result, traits_type::eof())) ++passed_;
    return result;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize written = 0;
    while (written < n && passed_ < budget_) {
      const std::streamsize room =
          static_cast<std::streamsize>(budget_ - passed_);
      const std::streamsize chunk = n - written < room ? n - written : room;
      const std::streamsize put = inner_->sputn(s + written, chunk);
      if (put <= 0) break;
      written += put;
      passed_ += static_cast<std::size_t>(put);
    }
    return written;
  }

  int_type underflow() override {
    if (passed_ >= budget_) return traits_type::eof();
    const int_type ch = inner_->sgetc();
    return ch;
  }

  int_type uflow() override {
    if (passed_ >= budget_) return traits_type::eof();
    const int_type ch = inner_->sbumpc();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) ++passed_;
    return ch;
  }

  std::streamsize xsgetn(char* s, std::streamsize n) override {
    if (passed_ >= budget_) return 0;
    const std::streamsize room = static_cast<std::streamsize>(budget_ - passed_);
    const std::streamsize want = n < room ? n : room;
    const std::streamsize got = inner_->sgetn(s, want);
    if (got > 0) passed_ += static_cast<std::size_t>(got);
    return got;
  }

  int sync() override { return inner_->pubsync(); }

 private:
  std::streambuf* inner_;
  std::size_t budget_;
  std::size_t passed_{0};
};

}  // namespace nvmsec
