#include "fault/metadata_faults.h"

#include "nvm/device.h"

namespace nvmsec {

MetadataFaultInjector::MetadataFaultInjector(const MetadataFaultParams& params,
                                             std::uint64_t seed)
    : interval_(params.flip_interval),
      next_at_(params.flip_interval),
      rng_(seed) {}

ScrubReport MetadataFaultInjector::inject_and_scrub(MaxWe& scheme,
                                                    const Device& device) {
  next_at_ += interval_;

  // Enumerate the corruptible SRAM fields: line-level spare pointers, the
  // permanent spare-region ids, and the per-line wear-out tag bits.
  const auto lmt_keys = scheme.lmt().sorted_keys();
  const auto& pairs = scheme.rmt().pairs();
  const std::uint64_t lpr =
      scheme.rmt().size() > 0
          ? device.geometry().lines_per_region()
          : 0;
  const std::uint64_t n_lmt = lmt_keys.size();
  const std::uint64_t n_sra = pairs.size();
  const std::uint64_t n_tag = n_sra * lpr;
  const std::uint64_t total = n_lmt + n_sra + n_tag;
  if (total == 0) return ScrubReport{};  // nothing to corrupt yet

  const std::uint64_t slot = rng_.uniform_u64(total);
  if (slot < n_lmt) {
    const unsigned bit = static_cast<unsigned>(rng_.uniform_u64(64));
    scheme.debug_lmt().debug_corrupt_entry(lmt_keys[slot], bit);
  } else if (slot < n_lmt + n_sra) {
    const unsigned bit = static_cast<unsigned>(rng_.uniform_u64(32));
    scheme.debug_rmt().debug_corrupt_sra(pairs[slot - n_lmt].first, bit);
  } else {
    const std::uint64_t t = slot - n_lmt - n_sra;
    scheme.debug_rmt().debug_flip_tag(pairs[t / lpr].first,
                                      LineInRegion{t % lpr});
  }
  ++injected_;

  const bool caught = !scheme.rmt().verify().empty() ||
                      !scheme.lmt().verify().empty();
  if (caught) ++detected_;

  const ScrubReport report = scheme.scrub(device);
  if (report.entries_repaired > 0) ++repaired_;
  return report;
}

void MetadataFaultInjector::save_state(StateWriter& w) const {
  w.u64(next_at_);
  w.u64(injected_);
  w.u64(detected_);
  w.u64(repaired_);
  rng_.save_state(w);
}

Status MetadataFaultInjector::load_state(StateReader& r) {
  std::uint64_t next_at = 0, injected = 0, detected = 0, repaired = 0;
  if (Status st = r.u64(next_at); !st.ok()) return st;
  if (Status st = r.u64(injected); !st.ok()) return st;
  if (Status st = r.u64(detected); !st.ok()) return st;
  if (Status st = r.u64(repaired); !st.ok()) return st;
  if (Status st = rng_.load_state(r); !st.ok()) return st;
  next_at_ = next_at;
  injected_ = injected;
  detected_ = detected;
  repaired_ = repaired;
  return Status{};
}

}  // namespace nvmsec
