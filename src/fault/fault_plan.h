// Fault-injection configuration (the "what can go wrong" knobs).
//
// Max-WE's value claim is surviving worst-case wear, so the simulator must
// be able to model its *own* worst cases: devices whose real endurance does
// not match the manufacture-time map (WoLFRaM-style device faults), and
// mapping-table metadata that takes bit-flips at run time (Phoenix-style
// recoverable metadata). Every injector is seed-driven from its own RNG
// stream — turning faults on never perturbs the base simulation's
// randomness, and the same plan replays the same faults.
#pragma once

#include <cstdint>

namespace nvmsec {

/// Device-level faults: divergences between the manufacture-time endurance
/// map (which the spare scheme and wear leveler plan on) and the device's
/// real endurance (which decides when lines actually die). Injected into a
/// *copy* of the EnduranceMap that only the device sees, so Max-WE's
/// dynamic spare rescue is exercised under non-Gaussian failures it did not
/// provision for.
struct DeviceFaultParams {
  /// Lines that die on their first write (hard stuck-at defects).
  std::uint64_t stuck_at_lines{0};
  /// Lines whose real endurance is a small fraction of the mapped value.
  std::uint64_t early_death_lines{0};
  /// Remaining endurance fraction for early-death lines (0 < f < 1).
  double early_death_fraction{0.01};
  /// Regions whose true endurance is scaled by outlier_factor — fat-tail
  /// endurance outliers the Gaussian characterization missed.
  std::uint64_t outlier_regions{0};
  double outlier_factor{0.25};

  [[nodiscard]] bool any() const {
    return stuck_at_lines > 0 || early_death_lines > 0 || outlier_regions > 0;
  }
};

/// Metadata faults: run-time bit-flips in Max-WE's RMT/LMT SRAM entries.
/// Detection relies on the tables' per-entry CRCs and the device-state
/// cross-check; recovery rebuilds the damaged entries (MaxWe::scrub).
struct MetadataFaultParams {
  /// Inject one random single-bit flip every `flip_interval` user writes
  /// (0 disables metadata faults). Each flip is followed by a scrub, which
  /// must detect and repair it for the run to stay on its fault-free
  /// trajectory.
  std::uint64_t flip_interval{0};

  [[nodiscard]] bool any() const { return flip_interval > 0; }
};

struct FaultPlan {
  DeviceFaultParams device{};
  MetadataFaultParams metadata{};
  /// Seed for all fault-injection draws (its own stream; never shared with
  /// the simulation seed).
  std::uint64_t seed{0x5EEDFA7ULL};

  [[nodiscard]] bool any() const { return device.any() || metadata.any(); }
};

}  // namespace nvmsec
