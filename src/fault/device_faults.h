// Device-fault injection: perturb a *copy* of the manufacture-time
// endurance map before the Device is built from it.
//
// The spare scheme and wear leveler keep planning on the clean map (they
// model the controller's boot-time knowledge); the device wears according
// to the faulted copy. The gap between the two is exactly the class of
// failures Max-WE's dynamic rescue must absorb at run time.
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"
#include "nvm/endurance_map.h"

namespace nvmsec {

/// What apply_device_faults actually injected (for logs and tests).
struct DeviceFaultReport {
  std::uint64_t stuck_at_lines{0};
  std::uint64_t early_death_lines{0};
  std::uint64_t outlier_regions{0};
};

/// Inject the planned device faults into `map`, drawing every placement
/// from a dedicated Rng(seed) stream (the simulation seed is untouched).
///
///  * stuck-at lines: endurance forced to 1 write — the line dies on first
///    use, like a latent hard defect;
///  * early-death lines: endurance scaled to `early_death_fraction` of the
///    mapped value (floor of 1 write);
///  * outlier regions: whole-region endurance scaled by `outlier_factor`.
///
/// Line faults are sampled without replacement so a line is stuck-at or
/// early-death, never both. Throws std::invalid_argument when the plan
/// does not fit the geometry (more faulty lines than lines, fraction or
/// factor outside (0, inf)).
DeviceFaultReport apply_device_faults(EnduranceMap& map,
                                      const DeviceFaultParams& params,
                                      std::uint64_t seed);

}  // namespace nvmsec
