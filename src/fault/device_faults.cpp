#include "fault/device_faults.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace nvmsec {

DeviceFaultReport apply_device_faults(EnduranceMap& map,
                                      const DeviceFaultParams& params,
                                      std::uint64_t seed) {
  const DeviceGeometry& geometry = map.geometry();
  const std::uint64_t faulty_lines =
      params.stuck_at_lines + params.early_death_lines;
  if (faulty_lines > geometry.num_lines()) {
    throw std::invalid_argument(
        "apply_device_faults: stuck-at + early-death lines (" +
        std::to_string(faulty_lines) + ") exceed device lines (" +
        std::to_string(geometry.num_lines()) + ")");
  }
  if (params.outlier_regions > geometry.num_regions()) {
    throw std::invalid_argument(
        "apply_device_faults: outlier regions (" +
        std::to_string(params.outlier_regions) + ") exceed device regions (" +
        std::to_string(geometry.num_regions()) + ")");
  }
  if (params.early_death_lines > 0 &&
      !(params.early_death_fraction > 0.0 &&
        params.early_death_fraction < 1.0)) {
    throw std::invalid_argument(
        "apply_device_faults: early-death fraction must be in (0, 1), got " +
        std::to_string(params.early_death_fraction));
  }
  if (params.outlier_regions > 0 &&
      !(params.outlier_factor > 0.0) ) {
    throw std::invalid_argument(
        "apply_device_faults: outlier factor must be > 0, got " +
        std::to_string(params.outlier_factor));
  }

  Rng rng(seed);
  DeviceFaultReport report;

  if (faulty_lines > 0) {
    // One draw covers both classes so no line is picked twice.
    const auto picks =
        rng.sample_without_replacement(geometry.num_lines(), faulty_lines);
    for (std::uint64_t i = 0; i < params.stuck_at_lines; ++i) {
      // Endurance 1 -> write budget 1: the line dies on its first write.
      map.set_line_endurance(PhysLineAddr{picks[i]}, 1.0);
      ++report.stuck_at_lines;
    }
    for (std::uint64_t i = params.stuck_at_lines; i < faulty_lines; ++i) {
      const PhysLineAddr line{picks[i]};
      const double weakened =
          map.line_endurance(line) * params.early_death_fraction;
      map.set_line_endurance(line, weakened < 1.0 ? 1.0 : weakened);
      ++report.early_death_lines;
    }
  }

  if (params.outlier_regions > 0) {
    const auto regions = rng.sample_without_replacement(
        geometry.num_regions(), params.outlier_regions);
    for (std::uint64_t r : regions) {
      map.scale_region_endurance(RegionId{r}, params.outlier_factor);
      ++report.outlier_regions;
    }
  }

  return report;
}

}  // namespace nvmsec
