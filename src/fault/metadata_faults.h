// Run-time metadata fault injection for Max-WE's SRAM mapping tables.
//
// On a fixed user-write cadence the injector flips one random bit in a
// random live table field (an LMT spare pointer, an RMT spare-region id,
// or a wear-out tag), then immediately runs MaxWe::scrub — the detection +
// rebuild-from-device recovery path. Counters record how many flips were
// injected, how many the per-entry CRC/parity checks caught, and how many
// the scrub actually repaired; a run with faults enabled must end on the
// same trajectory as a fault-free run, which is what the fault tests
// assert.
#pragma once

#include <cstdint>

#include "core/maxwe.h"
#include "fault/fault_plan.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace nvmsec {

class Device;

class MetadataFaultInjector {
 public:
  MetadataFaultInjector(const MetadataFaultParams& params, std::uint64_t seed);

  /// True when `user_writes` has crossed the next injection point. The
  /// engine polls this once per user write; due() advancing is part of the
  /// injector's state, so a resumed run injects at the same write numbers.
  [[nodiscard]] bool due(std::uint64_t user_writes) const {
    return interval_ > 0 && user_writes >= next_at_;
  }

  /// Writes the engine can batch before the next injection point: 0 when
  /// due() is already true, a huge sentinel when injection is disabled.
  [[nodiscard]] std::uint64_t writes_until_due(std::uint64_t user_writes) const {
    if (interval_ == 0) return UINT64_MAX;
    return user_writes >= next_at_ ? 0 : next_at_ - user_writes;
  }

  /// Flip one random bit in one random live table field of `scheme`, then
  /// scrub. Returns the scrub report (all-zero when the tables held no
  /// corruptible entry yet, e.g. before the first wear-out).
  ScrubReport inject_and_scrub(MaxWe& scheme, const Device& device);

  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t detected() const { return detected_; }
  [[nodiscard]] std::uint64_t repaired() const { return repaired_; }

  /// Checkpointing: RNG stream, cadence position, and counters.
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  std::uint64_t interval_;
  std::uint64_t next_at_;
  Rng rng_;
  std::uint64_t injected_{0};
  std::uint64_t detected_{0};
  std::uint64_t repaired_{0};
};

}  // namespace nvmsec
