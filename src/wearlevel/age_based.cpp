#include "wearlevel/age_based.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

AgeBased::AgeBased(std::uint64_t working_lines, std::uint32_t buckets,
                   std::uint64_t interval, std::uint64_t bucket_width)
    : PermutationWearLeveler(working_lines),
      buckets_(buckets),
      interval_(interval),
      bucket_width_(bucket_width) {
  if (buckets == 0) throw std::invalid_argument("AgeBased: buckets == 0");
  if (interval == 0) throw std::invalid_argument("AgeBased: interval == 0");
  if (bucket_width == 0) {
    throw std::invalid_argument("AgeBased: bucket_width == 0");
  }
  reset_policy();
}

std::uint32_t AgeBased::bucket_of(std::uint64_t working_index) const {
  const std::uint64_t b = age_[working_index] / bucket_width_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(b, buckets_ - 1));
}

void AgeBased::record_write(std::uint64_t working_index) {
  ++age_[working_index];
  const std::uint32_t target = bucket_of(working_index);
  const std::uint32_t current = member_bucket_[working_index];
  if (target == current) return;
  // O(1) move: swap-remove from the old bucket, append to the new one.
  auto& old_list = members_[current];
  const std::uint32_t pos = member_pos_[working_index];
  const std::uint32_t tail = old_list.back();
  old_list[pos] = tail;
  member_pos_[tail] = pos;
  old_list.pop_back();
  member_bucket_[working_index] = target;
  member_pos_[working_index] =
      static_cast<std::uint32_t>(members_[target].size());
  members_[target].push_back(static_cast<std::uint32_t>(working_index));
}

std::uint64_t AgeBased::sample_young_victim(Rng& rng) const {
  // Near-zero search: walk buckets from the youngest and pick uniformly
  // inside the first non-empty one.
  for (std::uint32_t b = 0; b < buckets_; ++b) {
    if (!members_[b].empty()) {
      return members_[b][rng.uniform_u64(members_[b].size())];
    }
  }
  throw std::logic_error("AgeBased: no bucket members (invariant broken)");
}

void AgeBased::on_write(LogicalLineAddr la, Rng& rng,
                        std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("AgeBased::on_write: address out of range");
  }
  if (++writes_since_swap_ >= interval_) {
    writes_since_swap_ = 0;
    const std::uint64_t hot_slot = forward(la.value());
    const std::uint64_t victim = sample_young_victim(rng);
    if (victim != hot_slot) {
      swap_working(hot_slot, victim, out);
      // The migration writes age their destination slots.
      record_write(hot_slot);
      record_write(victim);
    }
  }
  const std::uint64_t slot = translate(la);
  record_write(slot);
  out.push_back({slot, false});
}

void AgeBased::save_policy(StateWriter& w) const {
  w.u64(writes_since_swap_);
  w.vec_u64(age_);
  // Bucket member lists are saved in list order: sample_young_victim picks
  // by position, so the exact order is part of the deterministic state.
  w.u64(buckets_);
  for (const auto& list : members_) w.vec_u32(list);
}

Status AgeBased::load_policy(StateReader& r) {
  std::uint64_t since = 0;
  if (Status st = r.u64(since); !st.ok()) return st;
  std::vector<std::uint64_t> age;
  if (Status st = r.vec_u64(age); !st.ok()) return st;
  if (age.size() != working_lines_) {
    return Status::corruption("agebased state: age table size mismatch");
  }
  std::uint64_t buckets = 0;
  if (Status st = r.u64(buckets); !st.ok()) return st;
  if (buckets != buckets_) {
    return Status::corruption("agebased state: bucket count mismatch");
  }
  std::vector<std::vector<std::uint32_t>> members(buckets_);
  std::uint64_t total = 0;
  for (auto& list : members) {
    if (Status st = r.vec_u32(list); !st.ok()) return st;
    total += list.size();
  }
  if (total != working_lines_) {
    return Status::corruption("agebased state: bucket membership incomplete");
  }
  std::vector<std::uint32_t> pos(working_lines_);
  std::vector<std::uint32_t> bucket(working_lines_);
  std::vector<bool> seen(working_lines_, false);
  for (std::uint32_t b = 0; b < buckets_; ++b) {
    for (std::uint32_t i = 0; i < members[b].size(); ++i) {
      const std::uint32_t slot = members[b][i];
      if (slot >= working_lines_ || seen[slot]) {
        return Status::corruption("agebased state: bucket membership invalid");
      }
      seen[slot] = true;
      pos[slot] = i;
      bucket[slot] = b;
    }
  }
  writes_since_swap_ = since;
  age_ = std::move(age);
  members_ = std::move(members);
  member_pos_ = std::move(pos);
  member_bucket_ = std::move(bucket);
  return Status{};
}

void AgeBased::reset_policy() {
  writes_since_swap_ = 0;
  age_.assign(working_lines_, 0);
  members_.assign(buckets_, {});
  member_pos_.resize(working_lines_);
  member_bucket_.assign(working_lines_, 0);
  members_[0].reserve(working_lines_);
  for (std::uint64_t i = 0; i < working_lines_; ++i) {
    member_pos_[i] = static_cast<std::uint32_t>(i);
    members_[0].push_back(static_cast<std::uint32_t>(i));
  }
}

}  // namespace nvmsec
