#include "wearlevel/age_based.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

AgeBased::AgeBased(std::uint64_t working_lines, std::uint32_t buckets,
                   std::uint64_t interval, std::uint64_t bucket_width)
    : PermutationWearLeveler(working_lines),
      buckets_(buckets),
      interval_(interval),
      bucket_width_(bucket_width) {
  if (buckets == 0) throw std::invalid_argument("AgeBased: buckets == 0");
  if (interval == 0) throw std::invalid_argument("AgeBased: interval == 0");
  if (bucket_width == 0) {
    throw std::invalid_argument("AgeBased: bucket_width == 0");
  }
  reset_policy();
}

std::uint32_t AgeBased::bucket_of(std::uint64_t working_index) const {
  const std::uint64_t b = age_[working_index] / bucket_width_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(b, buckets_ - 1));
}

void AgeBased::record_write(std::uint64_t working_index) {
  ++age_[working_index];
  const std::uint32_t target = bucket_of(working_index);
  const std::uint32_t current = member_bucket_[working_index];
  if (target == current) return;
  // O(1) move: swap-remove from the old bucket, append to the new one.
  auto& old_list = members_[current];
  const std::uint32_t pos = member_pos_[working_index];
  const std::uint32_t tail = old_list.back();
  old_list[pos] = tail;
  member_pos_[tail] = pos;
  old_list.pop_back();
  member_bucket_[working_index] = target;
  member_pos_[working_index] =
      static_cast<std::uint32_t>(members_[target].size());
  members_[target].push_back(static_cast<std::uint32_t>(working_index));
}

std::uint64_t AgeBased::sample_young_victim(Rng& rng) const {
  // Near-zero search: walk buckets from the youngest and pick uniformly
  // inside the first non-empty one.
  for (std::uint32_t b = 0; b < buckets_; ++b) {
    if (!members_[b].empty()) {
      return members_[b][rng.uniform_u64(members_[b].size())];
    }
  }
  throw std::logic_error("AgeBased: no bucket members (invariant broken)");
}

void AgeBased::on_write(LogicalLineAddr la, Rng& rng,
                        std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("AgeBased::on_write: address out of range");
  }
  if (++writes_since_swap_ >= interval_) {
    writes_since_swap_ = 0;
    const std::uint64_t hot_slot = forward(la.value());
    const std::uint64_t victim = sample_young_victim(rng);
    if (victim != hot_slot) {
      swap_working(hot_slot, victim, out);
      // The migration writes age their destination slots.
      record_write(hot_slot);
      record_write(victim);
    }
  }
  const std::uint64_t slot = translate(la);
  record_write(slot);
  out.push_back({slot, false});
}

void AgeBased::reset_policy() {
  writes_since_swap_ = 0;
  age_.assign(working_lines_, 0);
  members_.assign(buckets_, {});
  member_pos_.resize(working_lines_);
  member_bucket_.assign(working_lines_, 0);
  members_[0].reserve(working_lines_);
  for (std::uint64_t i = 0; i < working_lines_; ++i) {
    member_pos_[i] = static_cast<std::uint32_t>(i);
    members_[0].push_back(static_cast<std::uint32_t>(i));
  }
}

}  // namespace nvmsec
