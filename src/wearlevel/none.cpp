#include "wearlevel/none.h"

namespace nvmsec {

void NoWearLeveling::on_write(LogicalLineAddr la, Rng& /*rng*/,
                              std::vector<WlPhysWrite>& out) {
  out.push_back({translate(la), false});
}

}  // namespace nvmsec
