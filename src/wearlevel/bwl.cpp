#include "wearlevel/bwl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nvmsec {

Bwl::Bwl(std::uint64_t working_lines, const EnduranceView& endurance,
         std::uint64_t group_lines, std::uint32_t classes,
         std::uint64_t interval, double beta)
    : PermutationWearLeveler(working_lines),
      group_lines_(group_lines),
      interval_(interval) {
  if (beta <= 0) throw std::invalid_argument("Bwl: beta must be > 0");
  if (endurance.size() != working_lines) {
    throw std::invalid_argument("Bwl: endurance view size mismatch");
  }
  if (group_lines == 0 || working_lines % group_lines != 0) {
    throw std::invalid_argument(
        "Bwl: working_lines must be divisible by group_lines");
  }
  if (classes == 0) throw std::invalid_argument("Bwl: classes must be > 0");
  if (interval == 0) throw std::invalid_argument("Bwl: interval must be > 0");

  const std::uint64_t groups = working_lines / group_lines;
  std::vector<double> group_endurance(groups, 0.0);
  for (std::uint64_t g = 0; g < groups; ++g) {
    double sum = 0;
    for (std::uint64_t i = 0; i < group_lines; ++i) {
      sum += endurance[g * group_lines + i];
    }
    group_endurance[g] = sum / static_cast<double>(group_lines);
  }

  // Quantize groups into `classes` equal-population buckets by endurance
  // rank (quantile classes), the coarse knowledge BWL is assumed to have.
  std::vector<std::uint32_t> order(groups);
  for (std::uint64_t g = 0; g < groups; ++g) {
    order[g] = static_cast<std::uint32_t>(g);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return group_endurance[a] < group_endurance[b];
                   });
  const std::uint32_t effective_classes =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(classes, groups));
  group_class_.resize(groups);
  class_groups_.assign(effective_classes, {});
  for (std::uint64_t rank = 0; rank < groups; ++rank) {
    const auto cls = static_cast<std::uint32_t>(rank * effective_classes /
                                                groups);
    group_class_[order[rank]] = cls;
    class_groups_[cls].push_back(order[rank]);
  }

  // Class weight = population * (quantized class endurance)^beta: every
  // group is represented by its class mean (hiding within-class variation),
  // and the sub-linear exponent keeps wear-out order endurance-ordered.
  double overall_mean = 0;
  for (double e : group_endurance) overall_mean += e;
  overall_mean /= static_cast<double>(groups);
  std::vector<double> class_weight(effective_classes, 0.0);
  for (std::uint32_t c = 0; c < effective_classes; ++c) {
    double mean_e = 0;
    for (std::uint32_t g : class_groups_[c]) mean_e += group_endurance[g];
    if (!class_groups_[c].empty()) {
      mean_e /= static_cast<double>(class_groups_[c].size());
    }
    class_weight[c] = std::pow(mean_e / overall_mean, beta) *
                      static_cast<double>(class_groups_[c].size());
  }
  class_sampler_ = std::make_unique<AliasTable>(class_weight);
}

std::uint64_t Bwl::sample_victim(Rng& rng) const {
  const std::uint64_t cls = class_sampler_->sample(rng);
  const auto& groups = class_groups_[cls];
  const std::uint32_t group = groups[rng.uniform_u64(groups.size())];
  return static_cast<std::uint64_t>(group) * group_lines_ +
         rng.uniform_u64(group_lines_);
}

void Bwl::on_write(LogicalLineAddr la, Rng& rng,
                   std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("Bwl::on_write: address out of range");
  }
  if (++writes_since_swap_ >= interval_) {
    writes_since_swap_ = 0;
    // Re-place the data under write pressure onto a class-weighted victim.
    swap_working(forward(la.value()), sample_victim(rng), out);
  }
  out.push_back({translate(la), false});
}

}  // namespace nvmsec
