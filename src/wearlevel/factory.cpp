#include <algorithm>
#include <stdexcept>

#include "wearlevel/bwl.h"
#include "wearlevel/none.h"
#include "wearlevel/pcm_s.h"
#include "wearlevel/age_based.h"
#include "wearlevel/security_refresh.h"
#include "wearlevel/start_gap.h"
#include "wearlevel/twl.h"
#include "wearlevel/wawl.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

namespace {

std::uint64_t resolve_group_lines(std::uint64_t working_lines,
                                  const WearLevelerParams& params) {
  std::uint64_t g = params.group_lines;
  if (g == 0) g = std::max<std::uint64_t>(1, working_lines / 128);
  // Groups must tile the working set exactly; fall back to the largest
  // divisor <= requested size so odd working-set sizes still work.
  while (g > 1 && working_lines % g != 0) --g;
  return g;
}

std::uint64_t resolve_subregions(std::uint64_t working_lines,
                                 const WearLevelerParams& params) {
  // TLSR's outer level: aim for sub-regions of tlsr_subregion_lines lines,
  // shrinking the count until it tiles the working set.
  const std::uint64_t target =
      std::max<std::uint64_t>(1, working_lines / std::max<std::uint64_t>(
                                                     2, params.tlsr_subregion_lines));
  for (std::uint64_t s = target; s > 1; --s) {
    if (working_lines % s == 0 && working_lines / s >= 2) return s;
  }
  return 1;
}

}  // namespace

std::unique_ptr<WearLeveler> make_wear_leveler(const std::string& name,
                                               std::uint64_t working_lines,
                                               const EnduranceView& endurance,
                                               const WearLevelerParams& params,
                                               Rng& rng) {
  if (name == "none") {
    return std::make_unique<NoWearLeveling>(working_lines);
  }
  if (name == "startgap") {
    return std::make_unique<StartGap>(working_lines, params.swap_interval);
  }
  if (name == "tlsr") {
    return std::make_unique<SecurityRefresh>(
        working_lines, params.swap_interval,
        resolve_subregions(working_lines, params), rng);
  }
  if (name == "pcms") {
    return std::make_unique<PcmS>(working_lines, params.swap_interval);
  }
  if (name == "bwl") {
    return std::make_unique<Bwl>(working_lines, endurance,
                                 resolve_group_lines(working_lines, params),
                                 params.bwl_classes, params.swap_interval,
                                 params.bwl_beta);
  }
  if (name == "agebased") {
    // Bucket width sized so benign skew separates lines into a few buckets
    // within one remap epoch.
    const std::uint64_t width =
        std::max<std::uint64_t>(1, params.swap_interval / 4);
    return std::make_unique<AgeBased>(working_lines, /*buckets=*/8,
                                      params.swap_interval, width);
  }
  if (name == "twl") {
    std::uint64_t group = resolve_group_lines(working_lines, params);
    // Bonding needs an even group count; halve the group size if necessary.
    if ((working_lines / group) % 2 != 0 && group % 2 == 0) group /= 2;
    return std::make_unique<Twl>(working_lines, endurance, group,
                                 params.swap_interval);
  }
  if (name == "wawl") {
    return std::make_unique<Wawl>(working_lines, endurance,
                                  resolve_group_lines(working_lines, params),
                                  params.swap_interval, params.wawl_alpha);
  }
  throw std::invalid_argument("make_wear_leveler: unknown scheme '" + name +
                              "'");
}

const std::vector<std::string>& paper_wear_levelers() {
  static const std::vector<std::string> kSchemes = {"tlsr", "pcms", "bwl",
                                                    "wawl"};
  return kSchemes;
}

}  // namespace nvmsec
