#include "wearlevel/security_refresh.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

SecurityRefresh::SecurityRefresh(std::uint64_t working_lines,
                                 std::uint64_t interval,
                                 std::uint64_t subregions, Rng& rng)
    : PermutationWearLeveler(working_lines),
      interval_(interval),
      subregions_(subregions) {
  if (interval == 0) {
    throw std::invalid_argument("SecurityRefresh: interval must be > 0");
  }
  if (subregions == 0 || working_lines % subregions != 0) {
    throw std::invalid_argument(
        "SecurityRefresh: working_lines must be divisible by subregions");
  }
  lines_per_subregion_ = working_lines / subregions;
  if (lines_per_subregion_ < 2) {
    throw std::invalid_argument("SecurityRefresh: sub-regions too small");
  }
  writes_since_step_.assign(subregions_, 0);
  writes_since_outer_.assign(subregions_, 0);
  sweep_.assign(subregions_, 0);
  key_.resize(subregions_);
  for (auto& k : key_) {
    k = 0;
    while (k == 0) k = rng.uniform_u64(lines_per_subregion_);
  }
}

bool SecurityRefresh::set_remap_interval(std::uint64_t interval) {
  if (interval == 0) return false;
  interval_ = interval;
  // Both levels compare their counters against the interval with >=, so a
  // shrink just fires sooner; clamp only to keep the counters from sitting
  // arbitrarily far past a shrunk quota (one step per write, never a burst).
  for (auto& w : writes_since_step_) w = std::min(w, interval_ - 1);
  const std::uint64_t outer_quota = interval_ * lines_per_subregion_;
  for (auto& w : writes_since_outer_) w = std::min(w, outer_quota - 1);
  return true;
}

void SecurityRefresh::on_write(LogicalLineAddr la, Rng& rng,
                               std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("SecurityRefresh::on_write: address out of range");
  }
  // Write-triggered refresh: the sub-region hosting this write's current
  // physical slot accounts the write and refreshes when its quota is hit.
  const std::uint64_t subregion = forward(la.value()) / lines_per_subregion_;
  if (++writes_since_step_[subregion] >= interval_) {
    writes_since_step_[subregion] = 0;
    refresh_step(subregion, rng, out);
  }
  // Outer level: once a sub-region has absorbed a full sweep's worth of
  // writes, its entire contents migrate to a random other sub-region. This
  // is what stops an attacker from pinning damage inside one inner region.
  if (++writes_since_outer_[subregion] >= interval_ * lines_per_subregion_) {
    writes_since_outer_[subregion] = 0;
    outer_swap(subregion, rng, out);
  }
  out.push_back({translate(la), false});
}

void SecurityRefresh::refresh_step(std::uint64_t subregion, Rng& rng,
                                   std::vector<WlPhysWrite>& out) {
  const std::uint64_t base = subregion * lines_per_subregion_;
  const std::uint64_t at = sweep_[subregion];
  // XOR with the round key pairs each line with a unique partner, which is
  // how Security Refresh's incremental re-keying shuffles a region.
  const std::uint64_t partner = at ^ key_[subregion];
  if (partner < lines_per_subregion_ && partner != at) {
    swap_working(base + at, base + partner, out);
  }
  if (++sweep_[subregion] == lines_per_subregion_) {
    sweep_[subregion] = 0;
    // Sweep complete: draw a fresh key (never 0: that would freeze the map).
    std::uint64_t k = 0;
    while (k == 0) k = rng.uniform_u64(lines_per_subregion_);
    key_[subregion] = k;
  }
}

void SecurityRefresh::outer_swap(std::uint64_t subregion, Rng& rng,
                                 std::vector<WlPhysWrite>& out) {
  if (subregions_ < 2) return;
  std::uint64_t other = rng.uniform_u64(subregions_ - 1);
  if (other >= subregion) ++other;
  const std::uint64_t base = subregion * lines_per_subregion_;
  const std::uint64_t other_base = other * lines_per_subregion_;
  // Slot-wise exchange of the two sub-regions' contents. The migration
  // writes are real: 2 per line pair, amortized to 2/interval per user
  // write — the same order as the inner level's cost.
  for (std::uint64_t k = 0; k < lines_per_subregion_; ++k) {
    swap_working(base + k, other_base + k, out);
  }
}

void SecurityRefresh::reset_policy() {
  writes_since_step_.assign(subregions_, 0);
  writes_since_outer_.assign(subregions_, 0);
  sweep_.assign(subregions_, 0);
  // Keys keep their constructor-time values; reset() restores the identity
  // permutation which is what a freshly booted controller would have.
}

}  // namespace nvmsec
