#include "wearlevel/permutation_base.h"

namespace nvmsec {

PermutationWearLeveler::PermutationWearLeveler(std::uint64_t working_lines)
    : working_lines_(working_lines) {
  if (working_lines == 0) {
    throw std::invalid_argument("PermutationWearLeveler: empty working set");
  }
  if (working_lines > UINT32_MAX) {
    throw std::invalid_argument(
        "PermutationWearLeveler: working set exceeds 2^32 lines");
  }
  fwd_.resize(working_lines);
  inv_.resize(working_lines);
  for (std::uint64_t i = 0; i < working_lines; ++i) {
    fwd_[i] = static_cast<std::uint32_t>(i);
    inv_[i] = static_cast<std::uint32_t>(i);
  }
}

std::uint64_t PermutationWearLeveler::translate(LogicalLineAddr la) const {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("WearLeveler::translate: address out of range");
  }
  return fwd_[la.value()];
}

void PermutationWearLeveler::swap_logical(std::uint64_t a, std::uint64_t b,
                                          std::vector<WlPhysWrite>& out) {
  if (a == b) return;
  const std::uint32_t wa = fwd_[a];
  const std::uint32_t wb = fwd_[b];
  fwd_[a] = wb;
  fwd_[b] = wa;
  inv_[wa] = static_cast<std::uint32_t>(b);
  inv_[wb] = static_cast<std::uint32_t>(a);
  // Data migration: a's contents are rewritten into wb and b's into wa.
  out.push_back({wb, true});
  out.push_back({wa, true});
  overhead_writes_ += 2;
}

void PermutationWearLeveler::swap_working(std::uint64_t wa, std::uint64_t wb,
                                          std::vector<WlPhysWrite>& out) {
  if (wa == wb) return;
  swap_logical(inv_[wa], inv_[wb], out);
}

void PermutationWearLeveler::swap_logical_free(std::uint64_t a,
                                               std::uint64_t b) {
  if (a == b) return;
  const std::uint32_t wa = fwd_[a];
  const std::uint32_t wb = fwd_[b];
  fwd_[a] = wb;
  fwd_[b] = wa;
  inv_[wa] = static_cast<std::uint32_t>(b);
  inv_[wb] = static_cast<std::uint32_t>(a);
}

void PermutationWearLeveler::charge_overhead(std::uint64_t wi,
                                             std::vector<WlPhysWrite>& out) {
  out.push_back({wi, true});
  ++overhead_writes_;
}

void PermutationWearLeveler::reset() {
  for (std::uint64_t i = 0; i < working_lines_; ++i) {
    fwd_[i] = static_cast<std::uint32_t>(i);
    inv_[i] = static_cast<std::uint32_t>(i);
  }
  overhead_writes_ = 0;
  reset_policy();
}

}  // namespace nvmsec
