#include "wearlevel/permutation_base.h"

namespace nvmsec {

PermutationWearLeveler::PermutationWearLeveler(std::uint64_t working_lines)
    : working_lines_(working_lines) {
  if (working_lines == 0) {
    throw std::invalid_argument("PermutationWearLeveler: empty working set");
  }
  if (working_lines > UINT32_MAX) {
    throw std::invalid_argument(
        "PermutationWearLeveler: working set exceeds 2^32 lines");
  }
  fwd_.resize(working_lines);
  inv_.resize(working_lines);
  for (std::uint64_t i = 0; i < working_lines; ++i) {
    fwd_[i] = static_cast<std::uint32_t>(i);
    inv_[i] = static_cast<std::uint32_t>(i);
  }
}

std::uint64_t PermutationWearLeveler::translate(LogicalLineAddr la) const {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("WearLeveler::translate: address out of range");
  }
  return fwd_[la.value()];
}

void PermutationWearLeveler::swap_logical(std::uint64_t a, std::uint64_t b,
                                          std::vector<WlPhysWrite>& out) {
  if (a == b) return;
  const std::uint32_t wa = fwd_[a];
  const std::uint32_t wb = fwd_[b];
  fwd_[a] = wb;
  fwd_[b] = wa;
  inv_[wa] = static_cast<std::uint32_t>(b);
  inv_[wb] = static_cast<std::uint32_t>(a);
  bump_mapping_epoch();
  // Data migration: a's contents are rewritten into wb and b's into wa.
  out.push_back({wb, true});
  out.push_back({wa, true});
  overhead_writes_ += 2;
}

void PermutationWearLeveler::swap_working(std::uint64_t wa, std::uint64_t wb,
                                          std::vector<WlPhysWrite>& out) {
  if (wa == wb) return;
  swap_logical(inv_[wa], inv_[wb], out);
}

void PermutationWearLeveler::swap_logical_free(std::uint64_t a,
                                               std::uint64_t b) {
  if (a == b) return;
  const std::uint32_t wa = fwd_[a];
  const std::uint32_t wb = fwd_[b];
  fwd_[a] = wb;
  fwd_[b] = wa;
  inv_[wa] = static_cast<std::uint32_t>(b);
  inv_[wb] = static_cast<std::uint32_t>(a);
  bump_mapping_epoch();
}

void PermutationWearLeveler::charge_overhead(std::uint64_t wi,
                                             std::vector<WlPhysWrite>& out) {
  out.push_back({wi, true});
  ++overhead_writes_;
}

void PermutationWearLeveler::save_state(StateWriter& w) const {
  w.vec_u32(fwd_);
  w.u64(overhead_writes_);
  save_policy(w);
}

Status PermutationWearLeveler::load_state(StateReader& r) {
  std::vector<std::uint32_t> fwd;
  if (Status st = r.vec_u32(fwd); !st.ok()) return st;
  if (fwd.size() != working_lines_) {
    return Status::corruption(
        "wear-leveler state: permutation size " + std::to_string(fwd.size()) +
        " != working lines " + std::to_string(working_lines_));
  }
  std::vector<bool> seen(working_lines_, false);
  for (std::uint32_t wi : fwd) {
    if (wi >= working_lines_ || seen[wi]) {
      return Status::corruption(
          "wear-leveler state: mapping is not a permutation");
    }
    seen[wi] = true;
  }
  std::uint64_t overhead = 0;
  if (Status st = r.u64(overhead); !st.ok()) return st;
  fwd_ = std::move(fwd);
  for (std::uint64_t la = 0; la < working_lines_; ++la) {
    inv_[fwd_[la]] = static_cast<std::uint32_t>(la);
  }
  overhead_writes_ = overhead;
  bump_mapping_epoch();
  return load_policy(r);
}

void PermutationWearLeveler::reset() {
  for (std::uint64_t i = 0; i < working_lines_; ++i) {
    fwd_[i] = static_cast<std::uint32_t>(i);
    inv_[i] = static_cast<std::uint32_t>(i);
  }
  overhead_writes_ = 0;
  bump_mapping_epoch();
  reset_policy();
}

}  // namespace nvmsec
