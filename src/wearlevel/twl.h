// TWL: Toss-up Wear Leveling (Zhang & Sun, DAC'17), cited by the paper as
// the scheme that "randomly maps writes between two bond blocks (a strong
// block and a weak block)" (§2.2.1).
//
// Groups are bonded pairwise, strongest with weakest (the same antitone
// idea Max-WE later applies to spare regions). Each logical line belongs to
// a bonded pair and its physical placement is re-tossed between the pair's
// two slots at a write cadence, with the toss biased toward the strong
// side in proportion to the pair's endurance imbalance. Wear within a pair
// then approaches the pair's combined endurance, but imbalance *across*
// pairs remains — which is why TWL sits between the oblivious schemes and
// WAWL in protection quality.
#pragma once

#include <vector>

#include "wearlevel/permutation_base.h"

namespace nvmsec {

class Twl final : public PermutationWearLeveler {
 public:
  /// Bonds groups of `group_lines` lines into strong/weak pairs; re-tosses
  /// a written line between its pair's slots every `interval` writes.
  Twl(std::uint64_t working_lines, const EnduranceView& endurance,
      std::uint64_t group_lines, std::uint64_t interval);

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "twl"; }

  [[nodiscard]] std::uint64_t writes_until_remap() const override {
    return interval_ - writes_since_toss_ - 1;
  }
  void commit_batched_writes(std::uint64_t k) override {
    writes_since_toss_ += k;
  }

  [[nodiscard]] std::uint64_t remap_interval() const override {
    return interval_;
  }
  bool set_remap_interval(std::uint64_t interval) override {
    if (interval == 0) return false;
    interval_ = interval;
    writes_since_toss_ = std::min(writes_since_toss_, interval_ - 1);
    return true;
  }

  /// Bonded partner group of `group` (exposed for tests).
  [[nodiscard]] std::uint64_t bonded_group(std::uint64_t group) const {
    return bond_[group];
  }
  /// Probability that a toss lands a line on `group`'s side of its bond.
  [[nodiscard]] double stay_probability(std::uint64_t group) const {
    return stay_prob_[group];
  }

 private:
  void reset_policy() override { writes_since_toss_ = 0; }
  void save_policy(StateWriter& w) const override { w.u64(writes_since_toss_); }
  [[nodiscard]] Status load_policy(StateReader& r) override {
    return r.u64(writes_since_toss_);
  }

  std::uint64_t group_lines_;
  std::uint64_t interval_;
  std::uint64_t writes_since_toss_{0};
  /// group -> bonded partner group (an involution).
  std::vector<std::uint64_t> bond_;
  /// group -> probability that a tossed line stays/lands on this group
  /// (= group endurance / bonded-pair total endurance).
  std::vector<double> stay_prob_;
};

}  // namespace nvmsec
