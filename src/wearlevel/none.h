// Identity wear leveler: logical address == working index, no remapping,
// no overhead writes. This is the configuration behind the paper's "no
// protection" baselines (Fig. 1, Fig. 6 at 0% spare).
#pragma once

#include "wearlevel/permutation_base.h"

namespace nvmsec {

class NoWearLeveling final : public PermutationWearLeveler {
 public:
  explicit NoWearLeveling(std::uint64_t working_lines)
      : PermutationWearLeveler(working_lines) {}

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::uint64_t writes_until_remap() const override {
    return kNeverRemaps;
  }
  void commit_batched_writes(std::uint64_t /*k*/) override {}

  [[nodiscard]] std::string name() const override { return "none"; }
};

}  // namespace nvmsec
