// WAWL: endurance-variation-aware wear leveling after Zhou et al.,
// "Increasing Lifetime and Security of Phase-Change Memory with Endurance
// Variation" (ICPADS'16) — the strongest wear-leveling baseline in the
// paper's Figs. 7-8.
//
// Quoting the paper's summary (§2.2.1): "WAWL associates the chosen
// probability of each region and the swapping interval with [the] endurance
// metric of the region." We implement both couplings:
//   * destination choice: remap victims are sampled with probability
//     proportional to group endurance^alpha (fine granularity), and
//   * dwell time: a line placed on a strong group stays there longer — the
//     per-address swap countdown is scaled by the hosting group's
//     normalized endurance.
// Together these make long-run per-line write rates track endurance, so all
// lines approach wear-out together — the best case for lifetime.
#pragma once

#include <memory>
#include <vector>

#include "util/alias_table.h"
#include "wearlevel/permutation_base.h"

namespace nvmsec {

class Wawl final : public PermutationWearLeveler {
 public:
  Wawl(std::uint64_t working_lines, const EnduranceView& endurance,
       std::uint64_t group_lines, std::uint64_t base_interval, double alpha);

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "wawl"; }

  [[nodiscard]] std::uint64_t remap_interval() const override {
    return base_interval_;
  }
  /// Changes the dwell budget granted to FUTURE placements; outstanding
  /// countdowns keep the budget they were assigned, so the new cadence
  /// phases in as lines hit their next swap.
  bool set_remap_interval(std::uint64_t interval) override {
    if (interval == 0) return false;
    base_interval_ = interval;
    return true;
  }

  /// Dwell budget granted when data lands on `working_index` (for tests).
  [[nodiscard]] std::uint64_t dwell_budget(std::uint64_t working_index) const;

 private:
  void reset_policy() override;
  void save_policy(StateWriter& w) const override { w.vec_u32(countdown_); }
  [[nodiscard]] Status load_policy(StateReader& r) override {
    std::vector<std::uint32_t> countdown;
    if (Status st = r.vec_u32(countdown); !st.ok()) return st;
    if (countdown.size() != countdown_.size()) {
      return Status::corruption("wawl state: countdown size mismatch");
    }
    countdown_ = std::move(countdown);
    return Status{};
  }
  [[nodiscard]] std::uint64_t sample_victim(Rng& rng) const;

  std::uint64_t group_lines_;
  std::uint64_t base_interval_;
  double alpha_;
  /// Normalized group endurance (mean = 1) driving dwell scaling.
  std::vector<double> group_strength_;
  std::unique_ptr<AliasTable> group_sampler_;
  /// Remaining dwell writes per logical line; 0 means "assign on next write".
  std::vector<std::uint32_t> countdown_;
};

}  // namespace nvmsec
