#include "wearlevel/adaptive.h"

#include <cmath>
#include <stdexcept>

namespace nvmsec {

AdaptiveWearLeveler::AdaptiveWearLeveler(std::unique_ptr<WearLeveler> inner,
                                         const AdaptivePolicy& policy)
    : inner_(std::move(inner)),
      policy_(policy),
      base_interval_(inner_->remap_interval()) {
  if (policy_.escalate_factor <= 1.0) {
    throw std::invalid_argument(
        "AdaptiveWearLeveler: escalate_factor must be > 1");
  }
  if (policy_.hold_windows == 0 || policy_.relax_windows == 0) {
    throw std::invalid_argument(
        "AdaptiveWearLeveler: hold/relax windows must be > 0");
  }
}

std::uint64_t AdaptiveWearLeveler::interval_for_step(int step) const {
  double v = static_cast<double>(base_interval_);
  for (int i = 0; i < (step < 0 ? -step : step); ++i) {
    if (step > 0) {
      v *= policy_.escalate_factor;
    } else {
      v /= policy_.escalate_factor;
    }
  }
  const long long rounded = std::llround(v);
  return rounded < 1 ? 1 : static_cast<std::uint64_t>(rounded);
}

CadenceChange AdaptiveWearLeveler::on_window(AlarmLevel level,
                                             AttackKind kind) {
  CadenceChange change;
  change.old_interval = inner_->remap_interval();
  change.step = step_;
  if (base_interval_ == 0) {
    change.new_interval = change.old_interval;
    return change;  // wrapped leveler has no tunable cadence
  }
  int target = step_;
  if (level == AlarmLevel::kUnderAttack && kind != AttackKind::kNone) {
    benign_windows_ = 0;
    // Escalate on the first alarm window, then once per hold_windows.
    if (alarm_windows_ % policy_.hold_windows == 0) {
      const int dir = (kind == AttackKind::kSweep) ? 1 : -1;
      target = step_ + dir;
      const int max = static_cast<int>(policy_.max_steps);
      if (target > max) target = max;
      if (target < -max) target = -max;
    }
    ++alarm_windows_;
  } else if (level == AlarmLevel::kBenign) {
    alarm_windows_ = 0;
    if (step_ != 0) {
      if (++benign_windows_ >= policy_.relax_windows) {
        benign_windows_ = 0;
        target = step_ + (step_ > 0 ? -1 : 1);
      }
    } else {
      benign_windows_ = 0;
    }
  }
  // kSuspicious: hold position — the hysteresis level has to commit before
  // the cadence moves (counters freeze, nothing changes).
  if (target != step_) {
    const std::uint64_t next = interval_for_step(target);
    if (next != change.old_interval && inner_->set_remap_interval(next)) {
      step_ = target;
      ++cadence_changes_;
      change.changed = true;
    } else if (next == change.old_interval) {
      // Interval saturated (rounding), but record the logical step so the
      // relax path unwinds symmetrically.
      step_ = target;
    }
  }
  change.step = step_;
  change.new_interval = inner_->remap_interval();
  return change;
}

bool AdaptiveWearLeveler::set_remap_interval(std::uint64_t interval) {
  if (!inner_->set_remap_interval(interval)) return false;
  base_interval_ = interval;
  step_ = 0;
  alarm_windows_ = 0;
  benign_windows_ = 0;
  return true;
}

void AdaptiveWearLeveler::reset() {
  inner_->reset();
  if (base_interval_ != 0 && step_ != 0) {
    inner_->set_remap_interval(base_interval_);
  }
  step_ = 0;
  alarm_windows_ = 0;
  benign_windows_ = 0;
  cadence_changes_ = 0;
}

void AdaptiveWearLeveler::save_state(StateWriter& w) const {
  w.u64(base_interval_);
  w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(step_)));
  w.u32(alarm_windows_);
  w.u32(benign_windows_);
  w.u64(cadence_changes_);
  w.u64(inner_->remap_interval());
  inner_->save_state(w);
}

Status AdaptiveWearLeveler::load_state(StateReader& r) {
  std::uint64_t base = 0, step_bits = 0, changes = 0, applied = 0;
  std::uint32_t alarm = 0, benign = 0;
  if (Status st = r.u64(base); !st.ok()) return st;
  if (Status st = r.u64(step_bits); !st.ok()) return st;
  if (Status st = r.u32(alarm); !st.ok()) return st;
  if (Status st = r.u32(benign); !st.ok()) return st;
  if (Status st = r.u64(changes); !st.ok()) return st;
  if (Status st = r.u64(applied); !st.ok()) return st;
  const auto step = static_cast<int>(static_cast<std::int64_t>(step_bits));
  if (step > static_cast<int>(policy_.max_steps) ||
      step < -static_cast<int>(policy_.max_steps)) {
    return Status::corruption("adaptive state: step out of range");
  }
  // Re-apply the cadence that was live at capture time BEFORE loading the
  // inner state: the checkpointed cadence counters are consistent with that
  // interval, and levelers treat the interval as boot config (unsaved).
  if (applied != 0 && applied != inner_->remap_interval()) {
    inner_->set_remap_interval(applied);
  }
  if (Status st = inner_->load_state(r); !st.ok()) return st;
  base_interval_ = base;
  step_ = step;
  alarm_windows_ = alarm;
  benign_windows_ = benign;
  cadence_changes_ = changes;
  return Status{};
}

}  // namespace nvmsec
