// BWL: endurance-variation-aware wear leveling after Yun et al., "Dynamic
// Wear Leveling for Phase-change Memories with Endurance Variations"
// (TVLSI'15), as evaluated by the paper in Figs. 7-8.
//
// BWL knows the manufacture-time endurance map, but only coarsely: regions
// are quantized into a small number of endurance *classes*. At a fixed
// write cadence the just-written line is re-placed onto a victim line whose
// class is chosen with probability proportional to the class's aggregate
// (quantized) endurance. Placement rate therefore tracks endurance between
// classes but is blind within a class — which is why BWL lands between the
// oblivious schemes (TLSR/PCM-S) and the fine-grained WAWL in the paper's
// results.
#pragma once

#include <memory>
#include <vector>

#include "util/alias_table.h"
#include "wearlevel/permutation_base.h"

namespace nvmsec {

class Bwl final : public PermutationWearLeveler {
 public:
  /// `endurance`: per-working-index endurance view (manufacture-time map).
  /// `group_lines`: granularity at which endurance is known; `classes`:
  /// quantization coarseness.
  Bwl(std::uint64_t working_lines, const EnduranceView& endurance,
      std::uint64_t group_lines, std::uint32_t classes, std::uint64_t interval,
      double beta);

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "bwl"; }

  [[nodiscard]] std::uint64_t writes_until_remap() const override {
    return interval_ - writes_since_swap_ - 1;
  }
  void commit_batched_writes(std::uint64_t k) override {
    writes_since_swap_ += k;
  }

  [[nodiscard]] std::uint64_t remap_interval() const override {
    return interval_;
  }
  bool set_remap_interval(std::uint64_t interval) override {
    if (interval == 0) return false;
    interval_ = interval;
    writes_since_swap_ = std::min(writes_since_swap_, interval_ - 1);
    return true;
  }

  /// Quantized class index of a working group (exposed for tests).
  [[nodiscard]] std::uint32_t class_of_group(std::uint64_t group) const {
    return group_class_[group];
  }
  [[nodiscard]] std::uint64_t num_groups() const { return group_class_.size(); }

 private:
  void reset_policy() override { writes_since_swap_ = 0; }
  void save_policy(StateWriter& w) const override { w.u64(writes_since_swap_); }
  [[nodiscard]] Status load_policy(StateReader& r) override {
    return r.u64(writes_since_swap_);
  }
  [[nodiscard]] std::uint64_t sample_victim(Rng& rng) const;

  std::uint64_t group_lines_;
  std::uint64_t interval_;
  std::uint64_t writes_since_swap_{0};
  std::vector<std::uint32_t> group_class_;
  /// Groups bucketed by class, for uniform-within-class victim picking.
  std::vector<std::vector<std::uint32_t>> class_groups_;
  std::unique_ptr<AliasTable> class_sampler_;
};

}  // namespace nvmsec
