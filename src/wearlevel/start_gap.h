// Start-Gap wear leveling (Qureshi et al., MICRO'09).
//
// One working slot is reserved as the "gap". Every `psi` user writes, the
// line adjacent to the gap is copied into it (one migration write) and the
// gap moves one slot backwards, so over N*psi writes every logical line
// shifts by one physical slot. The paper cites Start-Gap as the canonical
// endurance-variation-*oblivious* scheme that fails quickly under attack
// (§2.2.1); we ship it for completeness and for the attack regression tests.
#pragma once

#include <algorithm>

#include "wearlevel/permutation_base.h"

namespace nvmsec {

class StartGap final : public PermutationWearLeveler {
 public:
  StartGap(std::uint64_t working_lines, std::uint64_t psi);

  /// One slot is the roving gap, so the attacker sees one line fewer.
  [[nodiscard]] std::uint64_t logical_lines() const override {
    return working_lines_ - 1;
  }

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "startgap"; }

  /// Writes left before the next gap move: on_write remaps when the
  /// pre-incremented counter reaches psi.
  [[nodiscard]] std::uint64_t writes_until_remap() const override {
    return psi_ - writes_since_move_ - 1;
  }
  void commit_batched_writes(std::uint64_t k) override {
    writes_since_move_ += k;
  }

  [[nodiscard]] std::uint64_t remap_interval() const override { return psi_; }
  bool set_remap_interval(std::uint64_t interval) override {
    if (interval == 0) return false;
    psi_ = interval;
    // Shrinking below the current counter fires the next gap move on the
    // next write; without the clamp writes_until_remap() would underflow.
    writes_since_move_ = std::min(writes_since_move_, psi_ - 1);
    return true;
  }

  /// Working index currently serving as the gap (exposed for tests).
  [[nodiscard]] std::uint64_t gap_slot() const { return gap_slot_; }

 private:
  void reset_policy() override;
  void save_policy(StateWriter& w) const override {
    w.u64(writes_since_move_);
    w.u64(gap_slot_);
  }
  [[nodiscard]] Status load_policy(StateReader& r) override {
    std::uint64_t since = 0, gap = 0;
    if (Status st = r.u64(since); !st.ok()) return st;
    if (Status st = r.u64(gap); !st.ok()) return st;
    if (gap >= working_lines_) {
      return Status::corruption("startgap state: gap slot out of range");
    }
    writes_since_move_ = since;
    gap_slot_ = gap;
    return Status{};
  }

  std::uint64_t psi_;
  std::uint64_t writes_since_move_{0};
  std::uint64_t gap_slot_;
};

}  // namespace nvmsec
