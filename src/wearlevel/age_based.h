// Age-based wear leveling with bucketed (near-zero) search cost, after
// Chen et al., "Age-based PCM wear leveling with nearly zero search cost"
// (DAC'12) — cited by the paper in §3.3.1's discussion of schemes that
// cannot survive a compromised OS.
//
// Unlike the endurance-aware schemes (BWL/WAWL, which know the
// manufacture-time endurance map), age-based leveling reacts to observed
// *wear*: the controller tracks per-line write counts, keeps lines
// bucketed by age, and periodically swaps the just-written (old) line with
// a victim drawn from the youngest bucket. Against skewed benign traffic
// this equalizes write counts cheaply; against UAA every line ages at the
// same rate, the buckets never separate, and the scheme degenerates to
// random swapping — the §3.3.1 argument, executable.
#pragma once

#include <algorithm>
#include <vector>

#include "wearlevel/permutation_base.h"

namespace nvmsec {

class AgeBased final : public PermutationWearLeveler {
 public:
  /// `buckets`: age-resolution of the search structure; `interval`: user
  /// writes between swap attempts; `bucket_width`: writes per age bucket.
  AgeBased(std::uint64_t working_lines, std::uint32_t buckets,
           std::uint64_t interval, std::uint64_t bucket_width);

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "agebased"; }

  [[nodiscard]] std::uint64_t remap_interval() const override {
    return interval_;
  }
  bool set_remap_interval(std::uint64_t interval) override {
    if (interval == 0) return false;
    interval_ = interval;
    writes_since_swap_ = std::min(writes_since_swap_, interval_ - 1);
    return true;
  }

  /// Observed write count of a working slot (exposed for tests).
  [[nodiscard]] std::uint64_t age(std::uint64_t working_index) const {
    return age_[working_index];
  }
  /// Bucket a slot currently lives in.
  [[nodiscard]] std::uint32_t bucket_of(std::uint64_t working_index) const;

 private:
  void reset_policy() override;
  void save_policy(StateWriter& w) const override;
  [[nodiscard]] Status load_policy(StateReader& r) override;
  void record_write(std::uint64_t working_index);
  [[nodiscard]] std::uint64_t sample_young_victim(Rng& rng) const;

  std::uint32_t buckets_;
  std::uint64_t interval_;
  std::uint64_t bucket_width_;
  std::uint64_t writes_since_swap_{0};
  /// Observed writes per working slot (the controller's wear counters).
  std::vector<std::uint64_t> age_;
  /// Bucket membership lists: bucket 0 = youngest. Slots are moved between
  /// buckets lazily when their age crosses a bucket boundary.
  std::vector<std::vector<std::uint32_t>> members_;
  /// Position of each slot in its bucket's member list (for O(1) moves).
  std::vector<std::uint32_t> member_pos_;
  std::vector<std::uint32_t> member_bucket_;
};

}  // namespace nvmsec
