// Shared machinery for permutation-backed wear levelers.
//
// All bundled schemes maintain an explicit forward/inverse permutation
// between logical lines and working indices. Explicit tables (rather than
// algebraic XOR/Feistel mappings) keep every scheme O(1) per translate,
// make swaps trivially correct for non-power-of-two sizes, and let tests
// assert bijectivity directly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "wearlevel/wear_leveler.h"

namespace nvmsec {

class PermutationWearLeveler : public WearLeveler {
 public:
  explicit PermutationWearLeveler(std::uint64_t working_lines);

  [[nodiscard]] std::uint64_t logical_lines() const override {
    return working_lines_;
  }
  [[nodiscard]] std::uint64_t working_lines() const override {
    return working_lines_;
  }

  [[nodiscard]] std::uint64_t translate(LogicalLineAddr la) const override;

  [[nodiscard]] WriteCount overhead_writes() const override {
    return overhead_writes_;
  }

  void reset() override;

  /// Saves the permutation + overhead counter, then the subclass's policy
  /// state via save_policy(). load_state() validates that the stored
  /// mapping is a bijection before applying anything.
  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

 protected:
  /// Policy-state hooks mirroring save_state/load_state; subclasses with
  /// state beyond the permutation (cadence counters, sweep pointers, age
  /// tables) override these.
  virtual void save_policy(StateWriter& w) const { (void)w; }
  [[nodiscard]] virtual Status load_policy(StateReader& r) {
    (void)r;
    return Status{};
  }
  /// Swap the working indices backing logical lines a and b, charging one
  /// migration write to each destination (the data of each line is written
  /// into the other's slot).
  void swap_logical(std::uint64_t a, std::uint64_t b,
                    std::vector<WlPhysWrite>& out);

  /// Swap by working index (convenience for schemes that pick victims in
  /// physical space).
  void swap_working(std::uint64_t wa, std::uint64_t wb,
                    std::vector<WlPhysWrite>& out);

  /// Swap the mapping without charging migration writes; for schemes whose
  /// remap step costs something other than two writes (e.g. Start-Gap's
  /// one-write gap move), which then charge via charge_overhead().
  void swap_logical_free(std::uint64_t a, std::uint64_t b);

  /// Record one migration write to working index `wi`.
  void charge_overhead(std::uint64_t wi, std::vector<WlPhysWrite>& out);

  [[nodiscard]] std::uint64_t forward(std::uint64_t la) const {
    return fwd_[la];
  }
  [[nodiscard]] std::uint64_t inverse(std::uint64_t wi) const {
    return inv_[wi];
  }

  /// Hook for subclasses that keep state beyond the permutation.
  virtual void reset_policy() {}

  std::uint64_t working_lines_;
  WriteCount overhead_writes_{0};

 private:
  std::vector<std::uint32_t> fwd_;  // logical -> working
  std::vector<std::uint32_t> inv_;  // working -> logical
};

}  // namespace nvmsec
