#include "wearlevel/pcm_s.h"

#include <stdexcept>

namespace nvmsec {

PcmS::PcmS(std::uint64_t working_lines, std::uint64_t interval)
    : PermutationWearLeveler(working_lines), interval_(interval) {
  if (interval == 0) {
    throw std::invalid_argument("PcmS: interval must be > 0");
  }
}

void PcmS::on_write(LogicalLineAddr la, Rng& rng,
                    std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("PcmS::on_write: address out of range");
  }
  if (++writes_since_swap_ >= interval_) {
    writes_since_swap_ = 0;
    // Bias one endpoint to the line just written: the data under attack is
    // the data that must keep moving. The partner is uniform random.
    const std::uint64_t a = la.value();
    const std::uint64_t b = rng.uniform_u64(working_lines_);
    swap_logical(a, inverse(b), out);
  }
  out.push_back({translate(la), false});
}

}  // namespace nvmsec
