// Self-tuning wear-leveling decorator (ROADMAP: "Adaptive defenses and
// online attack detection").
//
// Wraps any WearLeveler and retunes its remap cadence from the
// AttackDetector's alarm signal. The steering direction depends on what
// kind of anomaly is active, because the two attack families exploit the
// cadence in opposite ways:
//
//   * a sweep (UAA) feeds on migration overhead — every remap is extra
//     wear the attacker got for free — so under a sweep alarm the interval
//     is LENGTHENED (fewer remaps per user write);
//   * a concentration attack (BPA, hotspot hammering) feeds on dwell time
//     — damage accrues while a mapping stays put — so under a
//     concentration alarm the interval is SHORTENED.
//
// Escalation is geometric and bounded: each escalation moves one step of
// factor `escalate_factor`, at most `max_steps` steps from the base
// cadence, with at least `hold_windows` alarm windows between steps; after
// `relax_windows` consecutive benign windows the cadence relaxes one step
// back toward the base. Suspicious windows freeze the controller — the
// hysteresis level has to commit before the cadence moves. Everything is
// integer/IEEE-deterministic (repeated multiplication, no libm), so runs
// are reproducible across platforms and --jobs.
#pragma once

#include <cstdint>
#include <memory>

#include "detect/detector.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

struct AdaptivePolicy {
  /// Geometric step applied to the remap interval per escalation.
  double escalate_factor{2.0};
  /// Maximum escalation distance from the base cadence, in steps.
  std::uint32_t max_steps{3};
  /// Alarm windows between successive escalation steps.
  std::uint32_t hold_windows{4};
  /// Consecutive benign windows before relaxing one step toward base.
  std::uint32_t relax_windows{8};
};

/// Outcome of one on_window() control decision, for event emission.
struct CadenceChange {
  bool changed{false};
  std::uint64_t old_interval{0};
  std::uint64_t new_interval{0};
  /// Signed escalation step after the decision (+ = lengthened, - =
  /// shortened relative to the wrapped leveler's base cadence).
  int step{0};
};

class AdaptiveWearLeveler final : public WearLeveler {
 public:
  AdaptiveWearLeveler(std::unique_ptr<WearLeveler> inner,
                      const AdaptivePolicy& policy);

  // --- control surface (driven by the engine at window closes) -------------
  /// Feed one closed detection window's alarm state into the escalation
  /// policy. Returns what (if anything) changed, for event logging.
  CadenceChange on_window(AlarmLevel level, AttackKind kind);

  [[nodiscard]] int step() const { return step_; }
  [[nodiscard]] std::uint64_t base_interval() const { return base_interval_; }
  /// Total cadence changes applied over the run (LifetimeResult stat).
  [[nodiscard]] std::uint64_t cadence_changes() const {
    return cadence_changes_;
  }

  // --- WearLeveler interface: forward everything to the wrapped leveler ----
  [[nodiscard]] std::uint64_t logical_lines() const override {
    return inner_->logical_lines();
  }
  [[nodiscard]] std::uint64_t working_lines() const override {
    return inner_->working_lines();
  }
  [[nodiscard]] std::uint64_t translate(LogicalLineAddr la) const override {
    return inner_->translate(la);
  }
  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override {
    inner_->on_write(la, rng, out);
  }
  [[nodiscard]] std::uint64_t writes_until_remap() const override {
    return inner_->writes_until_remap();
  }
  void commit_batched_writes(std::uint64_t k) override {
    inner_->commit_batched_writes(k);
  }
  [[nodiscard]] std::uint64_t mapping_epoch() const override {
    return inner_->mapping_epoch();
  }
  [[nodiscard]] std::uint64_t remap_interval() const override {
    return inner_->remap_interval();
  }
  /// An external retune rebases the controller: the new interval becomes
  /// the step-0 cadence the escalation ladder is built from.
  bool set_remap_interval(std::uint64_t interval) override;
  [[nodiscard]] std::string name() const override {
    return "adaptive(" + inner_->name() + ")";
  }
  [[nodiscard]] WriteCount overhead_writes() const override {
    return inner_->overhead_writes();
  }
  void reset() override;
  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

  [[nodiscard]] const WearLeveler& inner() const { return *inner_; }

 private:
  /// Base interval scaled by escalate_factor^step (repeated IEEE
  /// multiplication — platform-deterministic), rounded, floored at 1.
  [[nodiscard]] std::uint64_t interval_for_step(int step) const;

  std::unique_ptr<WearLeveler> inner_;
  AdaptivePolicy policy_;
  /// Wrapped leveler's boot-time cadence; 0 when it has none (then the
  /// whole controller is a no-op and on_window never changes anything).
  std::uint64_t base_interval_;
  int step_{0};
  std::uint32_t alarm_windows_{0};
  std::uint32_t benign_windows_{0};
  std::uint64_t cadence_changes_{0};
};

}  // namespace nvmsec
