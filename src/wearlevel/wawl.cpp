#include "wearlevel/wawl.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nvmsec {

Wawl::Wawl(std::uint64_t working_lines, const EnduranceView& endurance,
           std::uint64_t group_lines, std::uint64_t base_interval, double alpha)
    : PermutationWearLeveler(working_lines),
      group_lines_(group_lines),
      base_interval_(base_interval),
      alpha_(alpha) {
  if (endurance.size() != working_lines) {
    throw std::invalid_argument("Wawl: endurance view size mismatch");
  }
  if (group_lines == 0 || working_lines % group_lines != 0) {
    throw std::invalid_argument(
        "Wawl: working_lines must be divisible by group_lines");
  }
  if (base_interval == 0) {
    throw std::invalid_argument("Wawl: base_interval must be > 0");
  }
  if (alpha <= 0) throw std::invalid_argument("Wawl: alpha must be > 0");

  const std::uint64_t groups = working_lines / group_lines;
  group_strength_.resize(groups);
  double mean_e = 0;
  for (std::uint64_t g = 0; g < groups; ++g) {
    double sum = 0;
    for (std::uint64_t i = 0; i < group_lines; ++i) {
      sum += endurance[g * group_lines + i];
    }
    group_strength_[g] = sum / static_cast<double>(group_lines);
    mean_e += group_strength_[g];
  }
  mean_e /= static_cast<double>(groups);
  std::vector<double> weight(groups);
  for (std::uint64_t g = 0; g < groups; ++g) {
    group_strength_[g] /= mean_e;  // normalize: mean strength == 1
    weight[g] = std::pow(group_strength_[g], alpha_);
  }
  group_sampler_ = std::make_unique<AliasTable>(weight);
  countdown_.assign(working_lines, 0);
}

std::uint64_t Wawl::dwell_budget(std::uint64_t working_index) const {
  const std::uint64_t group = working_index / group_lines_;
  const double budget = static_cast<double>(base_interval_) *
                        std::pow(group_strength_[group], alpha_);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(budget));
}

std::uint64_t Wawl::sample_victim(Rng& rng) const {
  const std::uint64_t group = group_sampler_->sample(rng);
  return group * group_lines_ + rng.uniform_u64(group_lines_);
}

void Wawl::on_write(LogicalLineAddr la, Rng& rng,
                    std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("Wawl::on_write: address out of range");
  }
  const std::uint64_t l = la.value();
  if (countdown_[l] == 0) {
    // Fresh placement (first write, or dwell expired last time).
    countdown_[l] =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            dwell_budget(forward(l)), UINT32_MAX));
  }
  if (--countdown_[l] == 0) {
    // Dwell expired: move this data to an endurance-weighted victim. The
    // displaced victim's dwell restarts at its new (our old) slot.
    const std::uint64_t old_slot = forward(l);
    const std::uint64_t victim_slot = sample_victim(rng);
    const std::uint64_t victim_logical = inverse(victim_slot);
    swap_working(old_slot, victim_slot, out);
    countdown_[l] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(dwell_budget(victim_slot), UINT32_MAX));
    if (victim_logical != l) {
      countdown_[victim_logical] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(dwell_budget(old_slot), UINT32_MAX));
    }
  }
  out.push_back({translate(la), false});
}

void Wawl::reset_policy() {
  std::fill(countdown_.begin(), countdown_.end(), 0);
}

}  // namespace nvmsec
