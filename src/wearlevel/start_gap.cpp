#include "wearlevel/start_gap.h"

#include <stdexcept>

namespace nvmsec {

StartGap::StartGap(std::uint64_t working_lines, std::uint64_t psi)
    : PermutationWearLeveler(working_lines),
      psi_(psi),
      gap_slot_(working_lines - 1) {
  if (working_lines < 2) {
    throw std::invalid_argument("StartGap: needs at least 2 working lines");
  }
  if (psi == 0) {
    throw std::invalid_argument("StartGap: psi must be > 0");
  }
}

void StartGap::on_write(LogicalLineAddr la, Rng& /*rng*/,
                        std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("StartGap::on_write: address out of range");
  }
  if (++writes_since_move_ >= psi_) {
    writes_since_move_ = 0;
    // Move the line occupying the slot before the gap into the gap; one
    // migration write lands on the (previously idle) gap slot.
    const std::uint64_t src_slot =
        (gap_slot_ + working_lines_ - 1) % working_lines_;
    const std::uint64_t moving_logical = inverse(src_slot);
    const std::uint64_t gap_logical = inverse(gap_slot_);
    swap_logical_free(moving_logical, gap_logical);
    charge_overhead(gap_slot_, out);
    gap_slot_ = src_slot;
  }
  out.push_back({translate(la), false});
}

void StartGap::reset_policy() {
  writes_since_move_ = 0;
  gap_slot_ = working_lines_ - 1;
}

}  // namespace nvmsec
