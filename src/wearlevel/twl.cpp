#include "wearlevel/twl.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nvmsec {

Twl::Twl(std::uint64_t working_lines, const EnduranceView& endurance,
         std::uint64_t group_lines, std::uint64_t interval)
    : PermutationWearLeveler(working_lines),
      group_lines_(group_lines),
      interval_(interval) {
  if (endurance.size() != working_lines) {
    throw std::invalid_argument("Twl: endurance view size mismatch");
  }
  if (group_lines == 0 || working_lines % group_lines != 0) {
    throw std::invalid_argument(
        "Twl: working_lines must be divisible by group_lines");
  }
  if (interval == 0) throw std::invalid_argument("Twl: interval must be > 0");
  const std::uint64_t groups = working_lines / group_lines;
  if (groups % 2 != 0) {
    throw std::invalid_argument("Twl: needs an even number of groups to bond");
  }

  std::vector<double> group_endurance(groups, 0.0);
  for (std::uint64_t g = 0; g < groups; ++g) {
    double sum = 0;
    for (std::uint64_t i = 0; i < group_lines; ++i) {
      sum += endurance[g * group_lines + i];
    }
    group_endurance[g] = sum / static_cast<double>(group_lines);
  }

  // Bond strongest with weakest, second strongest with second weakest, ...
  std::vector<std::uint64_t> order(groups);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return group_endurance[a] < group_endurance[b];
                   });
  bond_.resize(groups);
  stay_prob_.resize(groups);
  for (std::uint64_t k = 0; k < groups / 2; ++k) {
    const std::uint64_t weak = order[k];
    const std::uint64_t strong = order[groups - 1 - k];
    bond_[weak] = strong;
    bond_[strong] = weak;
    const double total = group_endurance[weak] + group_endurance[strong];
    stay_prob_[weak] = group_endurance[weak] / total;
    stay_prob_[strong] = group_endurance[strong] / total;
  }
}

void Twl::on_write(LogicalLineAddr la, Rng& rng,
                   std::vector<WlPhysWrite>& out) {
  if (la.value() >= logical_lines()) {
    throw std::out_of_range("Twl::on_write: address out of range");
  }
  if (++writes_since_toss_ >= interval_) {
    writes_since_toss_ = 0;
    const std::uint64_t slot = forward(la.value());
    const std::uint64_t group = slot / group_lines_;
    const std::uint64_t offset = slot % group_lines_;
    // Toss: stay with probability proportional to this side's endurance,
    // otherwise move to the same offset in the bonded group.
    if (rng.uniform_double() >= stay_prob_[group]) {
      swap_working(slot, bond_[group] * group_lines_ + offset, out);
    }
  }
  out.push_back({translate(la), false});
}

}  // namespace nvmsec
