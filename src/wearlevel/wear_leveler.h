// Wear-leveling module interface (Fig. 3's "Wear-Leveling Module").
//
// A wear leveler maintains a bijection between the attacker-visible logical
// line space and a *working index* space of the same (or one larger) size.
// The working index is an index into the spare scheme's working set, not a
// raw physical address — that lets the same wear-leveler implementations run
// under every spare-replacement scheme.
//
// The write path is expressed as a sequence of physical writes because
// remapping migrates data: "a remapping operation introduces extra writes to
// both lines to be remapped" (§3.3.1, Fig. 2). Those overhead writes wear
// the device exactly like user writes, which is precisely how UAA turns
// wear leveling against itself.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

struct WlPhysWrite {
  std::uint64_t working_index;
  /// True for data-migration writes caused by remapping; false for the
  /// user's own write.
  bool is_overhead;
};

class WearLeveler {
 public:
  virtual ~WearLeveler() = default;

  /// Attacker-visible address-space size (Start-Gap reserves one slot, so
  /// this can be working_lines() - 1).
  [[nodiscard]] virtual std::uint64_t logical_lines() const = 0;

  /// Size of the working index space this leveler permutes over.
  [[nodiscard]] virtual std::uint64_t working_lines() const = 0;

  /// Read-path translation; does not advance any remap counters.
  [[nodiscard]] virtual std::uint64_t translate(LogicalLineAddr la) const = 0;

  /// Write path: appends the physical writes this user write causes —
  /// any remap-migration writes first, then the mapped user write last.
  virtual void on_write(LogicalLineAddr la, Rng& rng,
                        std::vector<WlPhysWrite>& out) = 0;

  /// writes_until_remap() returning this means the mapping never changes
  /// (the identity leveler).
  static constexpr std::uint64_t kNeverRemaps =
      std::numeric_limits<std::uint64_t>::max();

  /// Static-mapping horizon: how many upcoming on_write() calls are
  /// guaranteed to leave the logical->working mapping untouched, emit no
  /// migration writes, and draw nothing from the RNG — regardless of the
  /// addresses written. Over that horizon a batched engine may map writes
  /// through translate() alone and fast-forward the cadence afterwards via
  /// commit_batched_writes(). 0 declines batching; the default declines so
  /// schemes with per-write state (TLSR's sub-region counters, WAWL's
  /// dwell countdowns, age tables) stay on the exact per-write path.
  [[nodiscard]] virtual std::uint64_t writes_until_remap() const { return 0; }

  /// Fast-forward the remap cadence by `k` user writes that were issued
  /// without per-write on_write() calls. Only valid for
  /// k <= writes_until_remap() as observed before the batch; levelers that
  /// decline batching reject any commit.
  virtual void commit_batched_writes(std::uint64_t k) {
    if (k > 0) {
      throw std::logic_error("WearLeveler::commit_batched_writes: '" + name() +
                             "' does not support batched writes");
    }
  }

  /// Monotone counter bumped whenever the logical->working mapping changes
  /// (any swap, gap move, reset, or state load). A batched engine caches
  /// translate() results only while this value is unchanged. Virtual so a
  /// decorator (AdaptiveWearLeveler) can forward the wrapped leveler's
  /// epoch instead of carrying a stale counter of its own.
  [[nodiscard]] virtual std::uint64_t mapping_epoch() const {
    return mapping_epoch_;
  }

  /// Remap-cadence tuning surface for the adaptive defense layer. The
  /// current user-writes-per-remap interval, or 0 when the leveler has no
  /// tunable cadence (the identity leveler).
  [[nodiscard]] virtual std::uint64_t remap_interval() const { return 0; }

  /// Retune the remap cadence mid-run; returns false when the leveler has
  /// no tunable cadence. Implementations clamp their cadence counters so
  /// that shrinking the interval below the current counter triggers the
  /// next remap immediately instead of underflowing the
  /// writes_until_remap() horizon.
  virtual bool set_remap_interval(std::uint64_t interval) {
    (void)interval;
    return false;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Total migration (overhead) writes emitted so far.
  [[nodiscard]] virtual WriteCount overhead_writes() const = 0;

  virtual void reset() = 0;

  /// Checkpointing: serialize every run-time-mutable field (the logical ->
  /// working permutation, remap cadence counters, policy state). Boot-time
  /// configuration is rebuilt from the experiment config, not saved.
  virtual void save_state(StateWriter& w) const { (void)w; }
  [[nodiscard]] virtual Status load_state(StateReader& r) {
    (void)r;
    return Status{};
  }

 protected:
  void bump_mapping_epoch() { ++mapping_epoch_; }

 private:
  std::uint64_t mapping_epoch_{0};
};

/// Tunables shared by the bundled wear levelers.
struct WearLevelerParams {
  /// User writes between remap steps (Start-Gap's psi; also the refresh /
  /// swap cadence of TLSR, PCM-S, BWL and the base interval of WAWL).
  std::uint64_t swap_interval{100};
  /// Number of endurance classes BWL quantizes regions into.
  std::uint32_t bwl_classes{4};
  /// BWL: victim-class weight is (class mean endurance)^beta. Sub-linear by
  /// default: per-line wear rate then grows like e^beta, which lifts weak
  /// lines' lifetimes while keeping wear-outs endurance-ordered.
  double bwl_beta{0.5};
  /// WAWL: both the destination-choice weight and the dwell budget scale
  /// with endurance^alpha, so the per-line wear rate grows like e^(2*alpha).
  /// The default keeps the combined exponent at 0.7 — proportional enough
  /// to clearly beat BWL, sub-linear enough that death order stays
  /// endurance-ordered (see DESIGN.md §4).
  double wawl_alpha{0.35};
  /// Group size (lines) used by the region-granular levelers (BWL, WAWL).
  /// 0 means "derive from working size": working_lines / 128, at least 1.
  std::uint64_t group_lines{0};
  /// TLSR inner sub-region size in lines. A hammered line absorbs at most
  /// subregion_lines * swap_interval writes between remaps, so scaled-down
  /// configurations must shrink this together with the endurance scale.
  std::uint64_t tlsr_subregion_lines{256};
};

/// Per-working-index endurance view handed to endurance-aware levelers
/// (BWL, WAWL). Endurance-oblivious schemes ignore it.
using EnduranceView = std::vector<double>;

/// Factory: name is one of "none", "startgap", "tlsr", "pcms", "bwl",
/// "wawl", "twl". Throws std::invalid_argument for unknown names.
std::unique_ptr<WearLeveler> make_wear_leveler(const std::string& name,
                                               std::uint64_t working_lines,
                                               const EnduranceView& endurance,
                                               const WearLevelerParams& params,
                                               Rng& rng);

/// The four schemes the paper evaluates in Figs. 7-8, in paper order.
const std::vector<std::string>& paper_wear_levelers();

}  // namespace nvmsec
