// TLSR: Two-Level Security Refresh (Seong et al., ISCA'10), one of the two
// "traditional secure wear-leveling schemes" the paper evaluates (§5.1).
//
// Security Refresh continuously re-randomizes the logical-to-physical
// mapping so an attacker cannot keep hitting the same physical line. We
// model its observable wear behaviour: the space is split into sub-regions
// (the two-level structure), each with its own refresh pointer and XOR key.
// Every `interval` writes *into a sub-region*, that sub-region performs one
// refresh step: the line under its pointer is swapped with its key-selected
// partner (two migration writes). Heavily written sub-regions therefore
// refresh faster — Seong's write-triggered refresh — and a hammered line
// absorbs at most subregion_lines * interval writes before it is moved.
//
// The scheme is endurance-OBLIVIOUS: placement is uniform, so under attack
// the weakest lines still receive the average write rate — which is exactly
// why the paper's Fig. 7/8 show it trailing the endurance-aware schemes.
#pragma once

#include <vector>

#include "wearlevel/permutation_base.h"

namespace nvmsec {

class SecurityRefresh final : public PermutationWearLeveler {
 public:
  /// `interval`: user writes per refresh step. `subregions`: number of
  /// independently swept sub-regions (the paper's two-level structure);
  /// working_lines must be divisible by it.
  SecurityRefresh(std::uint64_t working_lines, std::uint64_t interval,
                  std::uint64_t subregions, Rng& rng);

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "tlsr"; }

  [[nodiscard]] std::uint64_t remap_interval() const override {
    return interval_;
  }
  bool set_remap_interval(std::uint64_t interval) override;

 private:
  void reset_policy() override;
  void save_policy(StateWriter& w) const override {
    w.vec_u64(writes_since_step_);
    w.vec_u64(writes_since_outer_);
    w.vec_u64(sweep_);
    w.vec_u64(key_);
  }
  [[nodiscard]] Status load_policy(StateReader& r) override {
    std::vector<std::uint64_t> step, outer, sweep, key;
    if (Status st = r.vec_u64(step); !st.ok()) return st;
    if (Status st = r.vec_u64(outer); !st.ok()) return st;
    if (Status st = r.vec_u64(sweep); !st.ok()) return st;
    if (Status st = r.vec_u64(key); !st.ok()) return st;
    if (step.size() != subregions_ || outer.size() != subregions_ ||
        sweep.size() != subregions_ || key.size() != subregions_) {
      return Status::corruption("tlsr state: subregion count mismatch");
    }
    writes_since_step_ = std::move(step);
    writes_since_outer_ = std::move(outer);
    sweep_ = std::move(sweep);
    key_ = std::move(key);
    return Status{};
  }
  void refresh_step(std::uint64_t subregion, Rng& rng,
                    std::vector<WlPhysWrite>& out);
  void outer_swap(std::uint64_t subregion, Rng& rng,
                  std::vector<WlPhysWrite>& out);

  std::uint64_t interval_;
  std::uint64_t subregions_;
  std::uint64_t lines_per_subregion_;
  /// Per-subregion write counter since the last refresh step.
  std::vector<std::uint64_t> writes_since_step_;
  /// Per-subregion write counter since the last outer-level migration.
  std::vector<std::uint64_t> writes_since_outer_;
  /// Per-subregion sweep pointer (offset within the sub-region).
  std::vector<std::uint64_t> sweep_;
  /// Per-subregion XOR key selecting the swap partner for this sweep round.
  std::vector<std::uint64_t> key_;
};

}  // namespace nvmsec
