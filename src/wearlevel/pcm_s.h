// PCM-S (Seznec, "Towards phase change memory as a secure main memory",
// INRIA 2009) — the second "traditional secure wear-leveling scheme" in the
// paper's evaluation (§5.1).
//
// PCM-S protects against deterministic targeting by randomly re-pairing
// lines: at a fixed write cadence the controller picks a random line pair
// and exchanges their contents and mappings. Like TLSR it is
// endurance-oblivious — long-run placement is uniform — so the paper groups
// the two together and Fig. 8 indeed shows them within 0.1% of each other.
#pragma once

#include <algorithm>

#include "wearlevel/permutation_base.h"

namespace nvmsec {

class PcmS final : public PermutationWearLeveler {
 public:
  PcmS(std::uint64_t working_lines, std::uint64_t interval);

  void on_write(LogicalLineAddr la, Rng& rng,
                std::vector<WlPhysWrite>& out) override;

  [[nodiscard]] std::string name() const override { return "pcms"; }

  [[nodiscard]] std::uint64_t writes_until_remap() const override {
    return interval_ - writes_since_swap_ - 1;
  }
  void commit_batched_writes(std::uint64_t k) override {
    writes_since_swap_ += k;
  }

  [[nodiscard]] std::uint64_t remap_interval() const override {
    return interval_;
  }
  bool set_remap_interval(std::uint64_t interval) override {
    if (interval == 0) return false;
    interval_ = interval;
    writes_since_swap_ = std::min(writes_since_swap_, interval_ - 1);
    return true;
  }

 private:
  void reset_policy() override { writes_since_swap_ = 0; }
  void save_policy(StateWriter& w) const override { w.u64(writes_since_swap_); }
  [[nodiscard]] Status load_policy(StateReader& r) override {
    return r.u64(writes_since_swap_);
  }

  std::uint64_t interval_;
  std::uint64_t writes_since_swap_{0};
};

}  // namespace nvmsec
