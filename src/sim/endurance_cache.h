// Keyed, thread-safe cache of endurance maps for the experiment layer.
//
// A sweep evaluates many configs that differ only in scheme/budget knobs:
// a 7-point spare-fraction sweep over N seeds would otherwise sample 7·N
// identical endurance maps (the paper's 1 GB geometry has 2048 region
// draws, and line jitter touches all 4.2M lines). The map is a pure
// function of (geometry, endurance params, seed, jitter sigma), and maps
// are immutable after construction, so distinct runs — including runs on
// different threads — can share one `shared_ptr<const EnduranceMap>`.
//
// Determinism contract: `run_experiment` feeds ONE `Rng(config.seed)`
// stream through map sampling, jitter, and then spare-scheme construction.
// Handing a cached map to a fresh `Rng(seed)` would desynchronize every
// draw after the map and change results. The cache therefore memoizes the
// *post-construction RNG state* alongside the map; a hit replays both, so
// a cached run is bit-identical to a cold one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include "nvm/endurance_model.h"
#include "nvm/geometry.h"
#include "util/rng.h"

namespace nvmsec {

class EnduranceMap;

class EnduranceMapCache {
 public:
  /// LRU-bounded: at most `max_entries` maps are retained (each full-size
  /// jittered map holds one double per line, so the bound is a real memory
  /// cap, not bookkeeping). Throws std::invalid_argument on 0.
  explicit EnduranceMapCache(std::size_t max_entries = 64);

  struct BuiltMap {
    std::shared_ptr<const EnduranceMap> map;
    /// RNG state immediately after map construction (+ jitter); the caller
    /// continues the stream from here exactly as if it had built the map.
    Rng rng_after_build;
    /// True when this call was served from the cache (the caller paid no
    /// build cost). Observability only; never affects results.
    bool hit{false};
  };

  /// Return the map for (geometry, params, seed, jitter sigma), building
  /// and inserting it on a miss. Safe to call concurrently; a hit shares
  /// the immutable map across threads.
  BuiltMap get_or_build(const DeviceGeometry& geometry,
                        const EnduranceModelParams& params,
                        std::uint64_t seed, double line_jitter_sigma);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

  void clear();

  /// The process-wide cache the experiment layer uses by default, so
  /// separate sweep calls (one per figure point) share maps.
  static EnduranceMapCache& global();

 private:
  struct Key {
    std::uint64_t total_bytes;
    std::uint32_t line_bytes;
    std::uint64_t num_regions;
    double current_mean_ma;
    double current_stddev_ma;
    double truncate_sigma;
    double endurance_exponent;
    double endurance_at_mean;
    std::uint64_t seed;
    double line_jitter_sigma;

    bool operator==(const Key&) const = default;
  };

  struct Entry {
    Key key;
    BuiltMap value;
  };

  static Key make_key(const DeviceGeometry& geometry,
                      const EnduranceModelParams& params, std::uint64_t seed,
                      double line_jitter_sigma);

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  /// Most-recently-used first. Linear scan: the cache holds tens of
  /// entries, and a lookup is three orders of magnitude cheaper than the
  /// map build it replaces.
  std::list<Entry> entries_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
};

}  // namespace nvmsec
