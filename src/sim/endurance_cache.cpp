#include "sim/endurance_cache.h"

#include <stdexcept>
#include <utility>

#include "nvm/endurance_map.h"

namespace nvmsec {

EnduranceMapCache::EnduranceMapCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  if (max_entries == 0) {
    throw std::invalid_argument("EnduranceMapCache: max_entries must be > 0");
  }
}

EnduranceMapCache::Key EnduranceMapCache::make_key(
    const DeviceGeometry& geometry, const EnduranceModelParams& params,
    std::uint64_t seed, double line_jitter_sigma) {
  return Key{geometry.total_bytes(),     geometry.line_bytes(),
             geometry.num_regions(),     params.current_mean_ma,
             params.current_stddev_ma,   params.truncate_sigma,
             params.endurance_exponent,  params.endurance_at_mean,
             seed,                       line_jitter_sigma};
}

EnduranceMapCache::BuiltMap EnduranceMapCache::get_or_build(
    const DeviceGeometry& geometry, const EnduranceModelParams& params,
    std::uint64_t seed, double line_jitter_sigma) {
  const Key key = make_key(geometry, params, seed, line_jitter_sigma);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key == key) {
        ++hits_;
        entries_.splice(entries_.begin(), entries_, it);  // mark MRU
        BuiltMap out = entries_.front().value;
        out.hit = true;
        return out;
      }
    }
    ++misses_;
  }

  // Build outside the lock so concurrent misses on different keys overlap.
  // This replays run_experiment's historical draw order exactly: map
  // sampling first, then jitter, on one Rng(seed) stream.
  Rng rng(seed);
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(geometry, EnduranceModel(params), rng));
  if (line_jitter_sigma > 0) {
    map->apply_line_jitter(line_jitter_sigma, rng);
  }
  BuiltMap built{std::shared_ptr<const EnduranceMap>(std::move(map)), rng};

  std::lock_guard<std::mutex> lock(mutex_);
  // Another thread may have built the same key meanwhile. Both maps are
  // bit-identical (a pure function of the key), but keep the resident one
  // so the cache never holds duplicate keys.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().value;
    }
  }
  entries_.push_front(Entry{key, built});
  while (entries_.size() > max_entries_) {
    entries_.pop_back();
    ++evictions_;
  }
  return built;
}

std::size_t EnduranceMapCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t EnduranceMapCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t EnduranceMapCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t EnduranceMapCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void EnduranceMapCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

EnduranceMapCache& EnduranceMapCache::global() {
  static EnduranceMapCache cache;
  return cache;
}

}  // namespace nvmsec
