// Crash-safe checkpoint files.
//
// A checkpoint is an opaque payload (produced by Engine::save via the
// component save_state() methods) wrapped in a self-validating container:
//
//   offset  size  field
//   0       8     magic "MXWECKPT"
//   8       4     format version (little-endian u32, currently 3)
//   12      8     payload size in bytes (little-endian u64)
//   20      n     payload
//   20+n    4     CRC-32 of the payload (little-endian u32)
//
// Files are written through AtomicFileWriter (temp file + rename), so a
// crash mid-write leaves the previous checkpoint intact; a torn or
// tampered file is rejected by the size/CRC checks with a structured
// error instead of resuming from garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace nvmsec {

inline constexpr char kCheckpointMagic[8] = {'M', 'X', 'W', 'E',
                                             'C', 'K', 'P', 'T'};
// v5: the engine payload gained the attack-detector presence flag and
// state (saved after the fault injector), and LifetimeResult records
// gained the detector/adaptive stat fields (windows, alarms, cadence
// changes).
// v4: the engine payload gained the batched-sampling substream RNG state
// (counts_rng_), saved right after the main simulation RNG, so resumed
// fastpath runs of stochastic attacks continue the same counts sequence.
// v3: LifetimeResult records (sweep checkpoints, fleet shard state) gained
// the wear_gini field; earlier versions are refused.
// v2: the engine payload gained the event-log presence flag and byte
// offset (decision flight recorder).
inline constexpr std::uint32_t kCheckpointVersion = 5;

/// Atomically write `payload` as a checkpoint file at `path`.
[[nodiscard]] Status save_checkpoint_file(const std::string& path,
                                          const std::vector<std::uint8_t>& payload);

/// Read and validate a checkpoint file; returns the payload bytes.
/// Errors: not_found (missing file), io_error (short read / unreadable),
/// corruption (bad magic, size mismatch, CRC mismatch), version_mismatch.
[[nodiscard]] Result<std::vector<std::uint8_t>> load_checkpoint_file(
    const std::string& path);

}  // namespace nvmsec
