// Stochastic request-level lifetime engine (the paper's "NVMsim" role).
//
// Drives the full pipeline per user write:
//   attack -> wear leveler (logical->working, + migration writes)
//          -> spare scheme (working index -> backing line)
//          -> device (wear accounting, wear-out events)
//          -> spare scheme replacement on wear-out
// and stops at the first wear-out the spare scheme cannot replace (§4.2's
// failure criterion) or at an optional write cap.
#pragma once

#include "attack/attack.h"
#include "cache/dram_buffer.h"
#include "nvm/device.h"
#include "obs/observer.h"
#include "sim/lifetime.h"
#include "spare/spare_scheme.h"
#include "util/rng.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

class Engine {
 public:
  /// All components are borrowed; the caller keeps them alive for the run.
  Engine(Device& device, Attack& attack, WearLeveler& wear_leveler,
         SpareScheme& spare_scheme, Rng& rng);

  /// Optional DRAM front buffer (§3.3.2): user writes that hit it are
  /// absorbed; evictions carry the data to the NVM. A workload whose
  /// footprint fits the buffer never wears the device, so runs with a
  /// buffer must set a write cap.
  void set_front_buffer(DramBuffer* buffer) { buffer_ = buffer; }

  /// Run until device failure, or until `max_user_writes` user writes if
  /// non-zero. Callable once per component setup; reset the components to
  /// rerun.
  LifetimeResult run(WriteCount max_user_writes = 0);

  /// Attach observability sinks: run-level counters and the run span go to
  /// metrics/trace, and the snapshot emitter is polled every user write.
  /// Also forwards to the device and spare scheme so their events flow to
  /// the same sinks. A default Observer restores the no-op mode.
  void set_observer(const Observer& obs);

 private:
  Observer obs_{};
  Device& device_;
  Attack& attack_;
  WearLeveler& wl_;
  SpareScheme& spare_;
  Rng& rng_;
  DramBuffer* buffer_{nullptr};
};

}  // namespace nvmsec
