// Stochastic request-level lifetime engine (the paper's "NVMsim" role).
//
// Drives the full pipeline per user write:
//   attack -> wear leveler (logical->working, + migration writes)
//          -> spare scheme (working index -> backing line)
//          -> device (wear accounting, wear-out events)
//          -> spare scheme replacement on wear-out
// and stops at the first wear-out the spare scheme cannot replace (§4.2's
// failure criterion) or at an optional write cap.
#pragma once

#include <string>

#include "attack/attack.h"
#include "cache/dram_buffer.h"
#include "detect/detector.h"
#include "fault/metadata_faults.h"
#include "nvm/device.h"
#include "obs/observer.h"
#include "sim/lifetime.h"
#include "spare/spare_scheme.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "wearlevel/adaptive.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

class MaxWe;

class Engine {
 public:
  /// All components are borrowed; the caller keeps them alive for the run.
  Engine(Device& device, Attack& attack, WearLeveler& wear_leveler,
         SpareScheme& spare_scheme, Rng& rng);

  /// Optional DRAM front buffer (§3.3.2): user writes that hit it are
  /// absorbed; evictions carry the data to the NVM. A workload whose
  /// footprint fits the buffer never wears the device, so runs with a
  /// buffer must set a write cap.
  void set_front_buffer(DramBuffer* buffer) { buffer_ = buffer; }

  /// Toggle the batched fast path (on by default). Chunks are bounded by
  /// the attack's run length, the wear leveler's static-mapping horizon,
  /// and the next checkpoint / snapshot / fault boundary. The equivalence
  /// guarantee is the attack's declared BatchContract: for bit-identical
  /// attacks (UAA, BPA, traces) fastpath runs match the per-write loop
  /// exactly — same LifetimeResult, RNG stream, event-log bytes, checkpoint
  /// payloads. Stochastic attacks (zipf, random; hotspot with a multi-line
  /// working set) additionally take the count-vector path on large chunks:
  /// per-chunk multinomial draws from a dedicated substream, applied via
  /// Device::write_counts. Those runs are distribution-equivalent (multiset
  /// -exact for hotspot) to `--no-fastpath`, and each mode is independently
  /// reproducible and resumable from its own checkpoints.
  void set_fast_path(bool enabled) { fastpath_ = enabled; }

  /// Enable periodic checkpointing: every `interval` user writes the full
  /// engine + component state is serialized and atomically written to
  /// `path` (temp file + rename, so a crash never leaves a torn file).
  /// `fingerprint` identifies the configuration and is embedded in the
  /// payload; resume refuses a checkpoint from a different config.
  void set_checkpointing(std::string path, WriteCount interval,
                         std::uint64_t fingerprint);

  /// Enable run-time metadata fault injection: `injector` is polled at
  /// every user-write boundary and, when due, flips a bit in `scheme`'s
  /// mapping tables and scrubs. Both are borrowed.
  void set_fault_injection(MetadataFaultInjector* injector, MaxWe* scheme);

  /// Attach the online attack detector (borrowed). The detector observes
  /// every user-write request (buffer-absorbed ones included — it watches
  /// the attacker-visible stream), batches are capped at its window
  /// boundaries, and windows close in the boundary block before fault
  /// injection and checkpoints, so detector state and alarm events land at
  /// identical write counts across --jobs, fastpath on/off (within the
  /// attack's batch contract) and crash/resume. `adaptive` (optional) is a
  /// non-owning alias of the run's wear leveler: when set, every window
  /// close feeds the alarm level into its escalation policy and
  /// cadence_change events are emitted for the retunes it applies.
  void set_detector(AttackDetector* detector, AdaptiveWearLeveler* adaptive);

  /// Restore mid-run state from a checkpoint payload (Engine::run resumes
  /// from the restored write counts). The caller has already validated the
  /// container CRC and the config fingerprint; this reads the progress
  /// counters and every component's state in the fixed save order.
  [[nodiscard]] Status restore_state(StateReader& r);

  /// Run until device failure, or until `max_user_writes` user writes if
  /// non-zero. Callable once per component setup; reset the components to
  /// rerun. After restore_state(), continues from the checkpointed write
  /// counts — a resumed run is bit-identical to an uninterrupted one.
  LifetimeResult run(WriteCount max_user_writes = 0);

  /// Attach observability sinks: run-level counters and the run span go to
  /// metrics/trace, and the snapshot emitter is polled every user write.
  /// Also forwards to the device and spare scheme so their events flow to
  /// the same sinks. A default Observer restores the no-op mode.
  void set_observer(const Observer& obs);

 private:
  void save_checkpoint();
  void capture_state(StateWriter& w) const;

  /// Domain tag for the batched-sampling substream derivation.
  static constexpr std::uint64_t kCountsStreamTag = 0xBA7C4ED5A3B1E500ULL;

  Observer obs_{};
  Device& device_;
  Attack& attack_;
  WearLeveler& wl_;
  SpareScheme& spare_;
  Rng& rng_;
  /// Dedicated stream for count-vector draws, derived from the simulation
  /// RNG's seed position at construction (identically in fastpath and
  /// per-write modes, without advancing the main stream). Keeping the two
  /// streams separate is what lets bit-identical attacks stay bit-identical
  /// while stochastic attacks batch: the per-write RNG sequence is never
  /// perturbed by batched draws. Checkpointed alongside the main RNG so a
  /// resumed fastpath run continues the same counts sequence.
  Rng counts_rng_;
  DramBuffer* buffer_{nullptr};

  MetadataFaultInjector* injector_{nullptr};
  MaxWe* injector_scheme_{nullptr};

  AttackDetector* detector_{nullptr};
  AdaptiveWearLeveler* adaptive_{nullptr};

  std::string checkpoint_path_;
  WriteCount checkpoint_interval_{0};
  std::uint64_t fingerprint_{0};
  WriteCount next_checkpoint_at_{0};

  // Run progress; restored by restore_state() so a resumed run continues
  // the counters instead of starting from zero.
  WriteCount user_writes_{0};
  WriteCount absorbed_writes_{0};
  WriteCount overhead_writes_{0};
  std::uint64_t line_deaths_{0};
  bool resumed_{false};
  bool fastpath_{true};
};

}  // namespace nvmsec
