// Sharded fleet runner: population-scale lifetime campaigns in O(shards)
// memory.
//
// The paper's endurance claim is a population claim — "survives N writes
// under attack" only matters across millions of devices with endurance
// variation and faults. run_fleet() fans a device-population spec across
// the thread pool and streams every per-device LifetimeResult (plus its
// event-log-derived failure cause) into per-shard sketches; no per-device
// result is ever retained.
//
// Sharding and determinism contract:
//   - Device i always runs with seed `seed_start + i` and an attack chosen
//     by a stateless hash of (seed_start, i) against the attack mix, so a
//     device's trajectory depends only on the spec, never on scheduling.
//   - Devices are grouped into fixed shards of `shard_size`; each shard
//     folds its devices (in device order) into one FleetAggregate.
//   - Completed shards merge into the final aggregate in shard-index
//     order, so the fleet result is bit-identical at every --jobs level.
//   - Each completed shard's aggregate is canonicalized (compressed) and
//     appended to a MXWEJRNL shard journal (sim/fleet_journal.h); a
//     SIGKILLed campaign resumes by replaying the journal, re-running only
//     the missing shards, and produces a byte-identical fleet result.
//
// The live heartbeat (obs/heartbeat.h) is the one deliberately
// non-deterministic output: it reports progress in completion order and
// wall-clock rates, and attaching it cannot change the fleet result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "attack/attack.h"
#include "sim/experiment.h"
#include "util/sketch.h"

namespace nvmsec {

class EnduranceMapCache;
class EventLog;
class HeartbeatSink;
class Profiler;
class StateWriter;
class StateReader;

/// Failure-cause taxonomy used by the fleet aggregates: the `cause` values
/// of the engines' end_of_life events, plus the two fallbacks.
inline constexpr std::string_view kCauseUnreplaceableWearOut =
    "unreplaceable_wear_out";
inline constexpr std::string_view kCauseAllBackedLinesWorn =
    "all_backed_lines_worn";
inline constexpr std::string_view kCauseWriteCapReached = "write_cap_reached";
inline constexpr std::string_view kCauseUnknown = "unknown";

/// Classify a device's end-of-life cause from its event log (JSONL text).
/// Prefers the end_of_life event's `cause` field; when the log was
/// truncated at the event cap (log_truncated marker) or carries no
/// end_of_life event, falls back to classifying `result.failure_reason` so
/// a truncated log degrades gracefully instead of misclassifying the run.
/// Sets `*log_truncated` (when non-null) iff the marker was present.
std::string classify_failure_cause(std::string_view event_jsonl,
                                   const LifetimeResult& result,
                                   bool* log_truncated = nullptr);

/// Same classification without a JSONL parse: reads the cause the EventLog
/// captured from its admitted event stream (obs/event_log.h count-only
/// mode). Agrees byte-for-byte with the string overload on the log's
/// serialized form — the fleet hot path uses this one.
std::string classify_failure_cause(const EventLog& log,
                                   const LifetimeResult& result,
                                   bool* log_truncated = nullptr);

/// Exact extreme-k tracker: the k lowest (or highest) values with their
/// device ids. Mergeable and order-independent (ties break on device id),
/// unlike a reservoir — the fleet report's "worst device, with its seed,
/// for exact replay" must be the true extreme, not a sample.
class ExemplarSet {
 public:
  struct Exemplar {
    double value{0};
    std::uint64_t id{0};
  };

  explicit ExemplarSet(std::size_t capacity = 8, bool keep_lowest = true);

  void add(std::uint64_t id, double value);
  /// Throws std::invalid_argument on capacity/direction mismatch.
  void merge(const ExemplarSet& other);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool keep_lowest() const { return keep_lowest_; }
  /// Best-first (most extreme first), deterministic order.
  [[nodiscard]] const std::vector<Exemplar>& items() const { return items_; }

  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  [[nodiscard]] bool before(const Exemplar& a, const Exemplar& b) const;

  std::size_t capacity_;
  bool keep_lowest_;
  std::vector<Exemplar> items_;
};

/// Streaming population aggregate: everything the fleet report renders,
/// in constant memory per shard. Mergeable (fixed order => bit-identical)
/// and serializable, so it is both the per-shard unit of work and the
/// per-shard unit of checkpointing.
struct FleetAggregate {
  StreamSummary lifetime;        ///< normalized lifetime
  StreamSummary user_writes;     ///< raw user writes before failure
  StreamSummary wear_gini;       ///< per-device wear-balance Gini
  /// Per-device attack-detector stats (populated when base.detect is on;
  /// all-zero summaries otherwise).
  StreamSummary alarms_raised;     ///< alarm raise transitions per device
  StreamSummary windows_in_alarm;  ///< windows at under-attack per device
  StreamSummary cadence_changes;   ///< adaptive cadence retunes per device
  /// Devices that raised at least one alarm.
  std::uint64_t devices_alarmed{0};
  StreamingHistogram lifetime_hist{1e-6, 2.0, 64};
  /// end_of_life cause -> device count; std::map for deterministic order.
  std::map<std::string, std::uint64_t> failure_causes;
  /// True extremes by normalized lifetime, with seeds derivable from ids.
  ExemplarSet worst{8, /*keep_lowest=*/true};
  ExemplarSet best{8, /*keep_lowest=*/false};
  /// Unbiased random exemplars (hash-priority reservoir): a replayable
  /// representative subsample of the population.
  WeightedReservoir sample{64};
  std::uint64_t devices{0};
  /// Devices whose event log hit the cap (failure cause fell back to the
  /// LifetimeResult classification).
  std::uint64_t truncated_logs{0};

  /// Fold one device's result in. `cause` from classify_failure_cause().
  void add(std::uint64_t device_id, const LifetimeResult& result,
           const std::string& cause, bool log_truncated);
  void merge(const FleetAggregate& other);
  /// Canonicalize the sketches (stable serialized form).
  void compress();

  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);
};

/// One component of the population's attack mix.
struct AttackShare {
  std::string attack;
  double weight{1.0};
};

/// Device-population spec: what to simulate, not how to schedule it.
/// Everything that shapes any device's trajectory lives here (and is
/// covered by fleet_fingerprint); scheduling knobs live in FleetOptions.
struct FleetSpec {
  /// Population size.
  std::uint64_t devices{0};
  /// Device i runs with seed `seed_start + i`.
  std::uint64_t seed_start{1};
  /// Devices per shard (aggregation and checkpoint granularity). The
  /// default keeps shard startup noise negligible while a 100k-device
  /// campaign still checkpoints every few seconds.
  std::uint64_t shard_size{256};
  /// Template config: geometry, endurance distribution, fault plan, wear
  /// leveler, spare scheme, mode. Per-device seed (and attack, when a mix
  /// is given) are overridden; observer sinks are ignored — fleet devices
  /// get their own in-memory event log for cause extraction.
  ExperimentConfig base;
  /// Weighted attack mix; empty = every device runs base.attack. Device
  /// i's attack is picked by a stateless hash of (seed_start, i), so the
  /// assignment is independent of sharding and job count.
  std::vector<AttackShare> attack_mix;
  /// Per-device event-log cap. Fleet logs live in memory, so this bounds
  /// peak memory per running device; beyond it the cause extraction falls
  /// back to the LifetimeResult (counted in truncated_logs).
  std::uint64_t event_log_max_events{65536};
};

/// Attack for device `index` under `spec` (the stateless hash pick).
[[nodiscard]] const std::string& fleet_device_attack(const FleetSpec& spec,
                                                     std::uint64_t index);

/// Weakest batching contract across the population's effective attack set
/// (base.attack, or every mix entry): kBitIdentical only when every attack
/// replays bit-identically under the fast path. Surfaced in the result
/// JSON and folded into the fleet fingerprint.
[[nodiscard]] BatchContract fleet_sampling_contract(const FleetSpec& spec);

/// Fingerprint of every trajectory-shaping field of the spec. Stored in
/// fleet checkpoints; resume refuses a file from a different population.
/// When the population's sampling contract is not bit-identical (stochastic
/// attacks in the mix, stochastic mode), the fastpath flag is part of the
/// fingerprint: fastpath and per-write trajectories are then only
/// distribution-equivalent, so resuming one campaign with the other mode's
/// shards would silently mix sampling contracts.
[[nodiscard]] std::uint64_t fleet_fingerprint(const FleetSpec& spec);

struct FleetOptions {
  /// Worker threads. 0 = all hardware threads, 1 = serial.
  std::size_t jobs{1};
  /// Honor an explicitly supplied `cache` below. Fleet seeds are all
  /// distinct, so a shared endurance-map cache never hits within a
  /// campaign; by default each worker instead reuses its own workspace
  /// (in-place map rebuilds — see ExperimentWorkspace). Set `cache` only
  /// to share maps with other campaigns in the same process.
  bool use_cache{true};
  EnduranceMapCache* cache{nullptr};
  /// Crash safety: append every completed shard's aggregate to this
  /// MXWEJRNL journal file (sim/fleet_journal.h; O(shard) bytes per
  /// completion, torn tails self-heal on replay). Empty disables.
  std::string checkpoint_path;
  /// Replay completed shards from checkpoint_path and run only the rest.
  bool resume{false};
  /// Live progress sink (obs/heartbeat.h); nullptr = zero heartbeat work.
  HeartbeatSink* heartbeat{nullptr};
  /// Test hook: stop after this many newly-run shards (0 = run all).
  /// Simulates preemption without signals; the checkpoint then covers a
  /// deterministic shard subset.
  std::uint64_t stop_after_shards{0};
  /// Aggregate self-profile for the campaign; nullptr = no profiling.
  /// Each shard records into its own private Profiler (fleet.shard /
  /// fleet.device spans plus everything the engines record) and the
  /// per-shard instances are merged into this one in shard-index order
  /// after the join; pool worker utilization is attached too. Like the
  /// heartbeat, attaching a profiler cannot change the fleet result.
  Profiler* profiler{nullptr};
};

struct FleetResult {
  FleetAggregate aggregate;
  std::uint64_t shards_total{0};
  std::uint64_t shards_done{0};
  /// False when stop_after_shards cut the campaign short.
  [[nodiscard]] bool complete() const { return shards_done == shards_total; }
};

/// Run the campaign. Throws std::invalid_argument on an empty population
/// or bad mix, std::runtime_error when resume meets a checkpoint written
/// by a different spec.
FleetResult run_fleet(const FleetSpec& spec, const FleetOptions& options = {});

/// Deterministic JSON rendering of a fleet result (fixed key order,
/// round-trip number formatting, no wall-clock fields) — the file
/// tools/fleet_report reads and the byte-identity tests compare.
[[nodiscard]] std::string fleet_result_json(const FleetSpec& spec,
                                            const FleetResult& result);

}  // namespace nvmsec
