#include "sim/fleet.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "attack/mixed.h"
#include "obs/event_log.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/profiler.h"
#include "sim/endurance_cache.h"
#include "sim/fleet_journal.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace nvmsec {

// ---------------------------------------------------------------------------
// Failure-cause extraction

namespace {

/// No end_of_life event survived (truncated log, or a run without an event
/// sink): classify the LifetimeResult instead of reporting garbage.
std::string classify_from_result(const LifetimeResult& result) {
  if (!result.failed) return std::string(kCauseWriteCapReached);
  if (result.failure_reason.starts_with("unreplaceable wear-out")) {
    return std::string(kCauseUnreplaceableWearOut);
  }
  if (result.failure_reason.starts_with("all backed lines worn")) {
    return std::string(kCauseAllBackedLinesWorn);
  }
  return std::string(kCauseUnknown);
}

}  // namespace

std::string classify_failure_cause(std::string_view event_jsonl,
                                   const LifetimeResult& result,
                                   bool* log_truncated) {
  if (log_truncated != nullptr) *log_truncated = false;
  std::string from_event;
  bool truncated = false;
  try {
    for (const minijson::JsonValue& ev : minijson::parse_jsonl(event_jsonl)) {
      const minijson::JsonValue* type = ev.find("type");
      if (type == nullptr || !type->is_string()) continue;
      if (type->string == "end_of_life") {
        if (const minijson::JsonValue* cause = ev.find("cause");
            cause != nullptr && cause->is_string()) {
          from_event = cause->string;
        }
      } else if (type->string == "log_truncated") {
        truncated = true;
      }
    }
  } catch (const std::exception&) {
    // An unparseable log gets the same graceful fallback as a truncated one.
    from_event.clear();
  }
  if (log_truncated != nullptr) *log_truncated = truncated;
  if (!from_event.empty()) return from_event;
  return classify_from_result(result);
}

std::string classify_failure_cause(const EventLog& log,
                                   const LifetimeResult& result,
                                   bool* log_truncated) {
  if (log_truncated != nullptr) *log_truncated = log.truncated();
  if (!log.end_of_life_cause().empty()) return log.end_of_life_cause();
  return classify_from_result(result);
}

// ---------------------------------------------------------------------------
// ExemplarSet

ExemplarSet::ExemplarSet(std::size_t capacity, bool keep_lowest)
    : capacity_(capacity), keep_lowest_(keep_lowest) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ExemplarSet: capacity must be > 0");
  }
}

bool ExemplarSet::before(const Exemplar& a, const Exemplar& b) const {
  if (a.value != b.value) {
    return keep_lowest_ ? a.value < b.value : a.value > b.value;
  }
  return a.id < b.id;
}

void ExemplarSet::add(std::uint64_t id, double value) {
  const Exemplar e{value, id};
  const auto pos = std::lower_bound(
      items_.begin(), items_.end(), e,
      [this](const Exemplar& a, const Exemplar& b) { return before(a, b); });
  if (pos != items_.end() && pos->value == e.value && pos->id == e.id) return;
  items_.insert(pos, e);
  if (items_.size() > capacity_) items_.resize(capacity_);
}

void ExemplarSet::merge(const ExemplarSet& other) {
  if (capacity_ != other.capacity_ || keep_lowest_ != other.keep_lowest_) {
    throw std::invalid_argument("ExemplarSet::merge: shape mismatch");
  }
  for (const Exemplar& e : other.items_) add(e.id, e.value);
}

void ExemplarSet::save_state(StateWriter& w) const {
  w.u64(capacity_);
  w.boolean(keep_lowest_);
  w.u64(items_.size());
  for (const Exemplar& e : items_) {
    w.f64(e.value);
    w.u64(e.id);
  }
}

Status ExemplarSet::load_state(StateReader& r) {
  std::uint64_t capacity = 0;
  if (Status st = r.u64(capacity); !st.ok()) return st;
  if (capacity == 0) return Status::corruption("ExemplarSet: zero capacity");
  if (Status st = r.boolean(keep_lowest_); !st.ok()) return st;
  std::uint64_t n = 0;
  if (Status st = r.u64(n); !st.ok()) return st;
  if (n > capacity) {
    return Status::corruption("ExemplarSet: more items than capacity");
  }
  capacity_ = static_cast<std::size_t>(capacity);
  items_.clear();
  items_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Exemplar e;
    if (Status st = r.f64(e.value); !st.ok()) return st;
    if (Status st = r.u64(e.id); !st.ok()) return st;
    items_.push_back(e);
  }
  return Status::ok_status();
}

// ---------------------------------------------------------------------------
// FleetAggregate

void FleetAggregate::add(std::uint64_t device_id, const LifetimeResult& result,
                         const std::string& cause, bool log_truncated) {
  lifetime.add(result.normalized);
  user_writes.add(result.user_writes);
  if (result.wear_gini >= 0) wear_gini.add(result.wear_gini);
  // Detector stats fold in only for detector-enabled devices: a window
  // count of 0 means "no detector ran", and mixing those zeros into the
  // population summaries would dilute the alarm-rate statistics.
  if (result.windows_observed > 0) {
    alarms_raised.add(static_cast<double>(result.alarms_raised));
    windows_in_alarm.add(static_cast<double>(result.windows_in_alarm));
    cadence_changes.add(static_cast<double>(result.cadence_changes));
    if (result.alarms_raised > 0) ++devices_alarmed;
  }
  lifetime_hist.add(result.normalized);
  ++failure_causes[cause];
  worst.add(device_id, result.normalized);
  best.add(device_id, result.normalized);
  sample.add(device_id, result.normalized);
  ++devices;
  if (log_truncated) ++truncated_logs;
}

void FleetAggregate::merge(const FleetAggregate& other) {
  lifetime.merge(other.lifetime);
  user_writes.merge(other.user_writes);
  wear_gini.merge(other.wear_gini);
  alarms_raised.merge(other.alarms_raised);
  windows_in_alarm.merge(other.windows_in_alarm);
  cadence_changes.merge(other.cadence_changes);
  devices_alarmed += other.devices_alarmed;
  lifetime_hist.merge(other.lifetime_hist);
  for (const auto& [cause, count] : other.failure_causes) {
    failure_causes[cause] += count;
  }
  worst.merge(other.worst);
  best.merge(other.best);
  sample.merge(other.sample);
  devices += other.devices;
  truncated_logs += other.truncated_logs;
}

void FleetAggregate::compress() {
  lifetime.compress();
  user_writes.compress();
  wear_gini.compress();
  alarms_raised.compress();
  windows_in_alarm.compress();
  cadence_changes.compress();
}

void FleetAggregate::save_state(StateWriter& w) const {
  lifetime.save_state(w);
  user_writes.save_state(w);
  wear_gini.save_state(w);
  alarms_raised.save_state(w);
  windows_in_alarm.save_state(w);
  cadence_changes.save_state(w);
  w.u64(devices_alarmed);
  lifetime_hist.save_state(w);
  w.u64(failure_causes.size());
  for (const auto& [cause, count] : failure_causes) {
    w.str(cause);
    w.u64(count);
  }
  worst.save_state(w);
  best.save_state(w);
  sample.save_state(w);
  w.u64(devices);
  w.u64(truncated_logs);
}

Status FleetAggregate::load_state(StateReader& r) {
  if (Status st = lifetime.load_state(r); !st.ok()) return st;
  if (Status st = user_writes.load_state(r); !st.ok()) return st;
  if (Status st = wear_gini.load_state(r); !st.ok()) return st;
  if (Status st = alarms_raised.load_state(r); !st.ok()) return st;
  if (Status st = windows_in_alarm.load_state(r); !st.ok()) return st;
  if (Status st = cadence_changes.load_state(r); !st.ok()) return st;
  if (Status st = r.u64(devices_alarmed); !st.ok()) return st;
  if (Status st = lifetime_hist.load_state(r); !st.ok()) return st;
  std::uint64_t n = 0;
  if (Status st = r.u64(n); !st.ok()) return st;
  failure_causes.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string cause;
    std::uint64_t count = 0;
    if (Status st = r.str(cause); !st.ok()) return st;
    if (Status st = r.u64(count); !st.ok()) return st;
    failure_causes[cause] = count;
  }
  if (Status st = worst.load_state(r); !st.ok()) return st;
  if (Status st = best.load_state(r); !st.ok()) return st;
  if (Status st = sample.load_state(r); !st.ok()) return st;
  if (Status st = r.u64(devices); !st.ok()) return st;
  return r.u64(truncated_logs);
}

// ---------------------------------------------------------------------------
// Spec helpers

namespace {

constexpr std::uint64_t kAttackPickSalt = 0xA77AC4A11D0C7015ULL;

void validate_spec(const FleetSpec& spec) {
  if (spec.devices == 0) {
    throw std::invalid_argument("run_fleet: devices must be > 0");
  }
  if (spec.shard_size == 0) {
    throw std::invalid_argument("run_fleet: shard_size must be > 0");
  }
  if (spec.event_log_max_events == 0) {
    throw std::invalid_argument("run_fleet: event_log_max_events must be > 0");
  }
  for (const AttackShare& share : spec.attack_mix) {
    if (share.attack.empty() || !(share.weight > 0)) {
      throw std::invalid_argument(
          "run_fleet: attack mix entries need a name and a positive weight");
    }
  }
}

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv_mix_u64(std::uint64_t h, std::uint64_t v) {
  return fnv_mix(h, &v, sizeof(v));
}

}  // namespace

const std::string& fleet_device_attack(const FleetSpec& spec,
                                       std::uint64_t index) {
  if (spec.attack_mix.empty()) return spec.base.attack;
  double total = 0;
  for (const AttackShare& share : spec.attack_mix) total += share.weight;
  SplitMix64 mix(kAttackPickSalt ^ spec.seed_start ^
                 (index * 0x9E3779B97F4A7C15ULL));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53 * total;
  double cum = 0;
  for (const AttackShare& share : spec.attack_mix) {
    cum += share.weight;
    if (u < cum) return share.attack;
  }
  return spec.attack_mix.back().attack;  // floating-point slack only
}

namespace {

/// attack_batch_contract, extended with the composite "mixed" attack: its
/// contract is the weakest among its phases (see attack/mixed.h).
BatchContract fleet_attack_contract(const FleetSpec& spec,
                                    const std::string& name) {
  if (name != "mixed") return attack_batch_contract(name);
  BatchContract worst = BatchContract::kBitIdentical;
  for (const MixedPhaseSpec& p : parse_mixed_phases(spec.base.mixed_phases)) {
    worst = std::max(worst, attack_batch_contract(p.attack));
  }
  return worst;
}

}  // namespace

BatchContract fleet_sampling_contract(const FleetSpec& spec) {
  // The weakest (largest) contract across the attacks any device can run.
  if (spec.attack_mix.empty()) {
    return fleet_attack_contract(spec, spec.base.attack);
  }
  BatchContract worst = BatchContract::kBitIdentical;
  for (const AttackShare& share : spec.attack_mix) {
    worst = std::max(worst, fleet_attack_contract(spec, share.attack));
  }
  return worst;
}

std::uint64_t fleet_fingerprint(const FleetSpec& spec) {
  // The base config's own seed and attack are overridden per device, so
  // they must not perturb the fingerprint; the seed stream and the mix are
  // hashed explicitly instead.
  ExperimentConfig canonical = spec.base;
  canonical.seed = 0;
  if (!spec.attack_mix.empty()) canonical.attack = "";
  std::uint64_t h = fnv_mix_u64(14695981039346656037ULL,
                                config_fingerprint(canonical));
  h = fnv_mix_u64(h, spec.devices);
  h = fnv_mix_u64(h, spec.seed_start);
  h = fnv_mix_u64(h, spec.shard_size);
  h = fnv_mix_u64(h, spec.event_log_max_events);
  h = fnv_mix_u64(h, spec.attack_mix.size());
  for (const AttackShare& share : spec.attack_mix) {
    h = fnv_mix(h, share.attack.data(), share.attack.size());
    h = fnv_mix_u64(h, std::bit_cast<std::uint64_t>(share.weight));
  }
  // Sampling-contract compatibility: when any attack in the population is
  // not bit-identical under batching, a stochastic-mode campaign's
  // trajectories depend on the fastpath flag (distribution-equivalent, not
  // equal), so fastpath-on and fastpath-off campaigns must not share
  // checkpoints. Bit-identical populations keep the PR-5 behavior:
  // checkpoints interchange across fastpath on/off.
  if (spec.base.mode == SimulationMode::kStochastic &&
      fleet_sampling_contract(spec) != BatchContract::kBitIdentical) {
    h = fnv_mix_u64(h, spec.base.fastpath ? 1 : 0);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Campaign driver

namespace {

std::uint64_t shard_first(const FleetSpec& spec, std::uint64_t shard) {
  return shard * spec.shard_size;
}

std::uint64_t shard_count(const FleetSpec& spec, std::uint64_t shard) {
  const std::uint64_t first = shard_first(spec, shard);
  return std::min(spec.shard_size, spec.devices - first);
}

/// Run one shard's devices (in device order) into a fresh aggregate.
/// `prof` is the shard's private profiler (nullptr = no profiling): the
/// shard runs on exactly one thread and its profiler is merged after the
/// join, so the engines can record into it with no synchronization.
/// `workspace` is the worker's reusable setup state (maps, spare scheme,
/// device, arena); it is an allocation strategy only and cannot change the
/// aggregate.
FleetAggregate run_shard(const FleetSpec& spec, std::uint64_t shard,
                         EnduranceMapCache* cache,
                         ExperimentWorkspace* workspace, Profiler* prof) {
  const ScopedProfPhase shard_span(prof, ProfPhase::kFleetShard);
  FleetAggregate agg;
  const std::uint64_t first = shard_first(spec, shard);
  const std::uint64_t count = shard_count(spec, shard);
  // One config and one event log serve the whole shard; per-device setup
  // touches only the fields that vary (seed and attack). Fleet devices are
  // self-contained: no caller sinks (they would race across shards), no
  // per-device checkpoint files. The two sinks a device gets are its own
  // count-only event log — cause capture with identical admission
  // arithmetic to a streaming log, but no JSON formatting or parsing — and
  // the shard's private profiler.
  ExperimentConfig config = spec.base;
  config.observer = Observer{};
  config.checkpoint_out.clear();
  config.checkpoint_interval = 0;
  config.resume_from.clear();
  EventLog log(spec.event_log_max_events);
  config.observer.events = &log;
  config.observer.profiler = prof;
  for (std::uint64_t d = first; d < first + count; ++d) {
    config.seed = spec.seed_start + d;
    config.attack = fleet_device_attack(spec, d);
    log.reset(spec.event_log_max_events);

    const LifetimeResult result = [&] {
      const ScopedProfPhase device_span(prof, ProfPhase::kFleetDevice);
      return run_experiment(config, cache, workspace);
    }();
    log.finalize();
    bool truncated = false;
    const std::string cause = classify_failure_cause(log, result, &truncated);
    agg.add(d, result, cause, truncated);
  }
  agg.compress();  // canonical serialized form before checkpoint/merge
  return agg;
}

HeartbeatSample make_sample(const FleetAggregate& progress,
                            std::uint64_t devices_total) {
  HeartbeatSample s;
  s.devices_done = progress.devices;
  s.devices_total = devices_total;
  s.p50 = progress.lifetime.quantile(0.50);
  s.p99 = progress.lifetime.quantile(0.99);
  s.failure_causes.assign(progress.failure_causes.begin(),
                          progress.failure_causes.end());
  s.truncated_logs = progress.truncated_logs;
  return s;
}

}  // namespace

FleetResult run_fleet(const FleetSpec& spec, const FleetOptions& options) {
  validate_spec(spec);
  const std::uint64_t num_shards =
      (spec.devices + spec.shard_size - 1) / spec.shard_size;
  const std::uint64_t fingerprint = fleet_fingerprint(spec);

  std::vector<FleetAggregate> shard_aggs(num_shards);
  std::vector<char> done(num_shards, 0);

  if (options.resume && options.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "run_fleet: resume needs a checkpoint_path to resume from");
  }
  bool journal_exists = false;
  if (options.resume) {
    Result<std::vector<FleetJournalRecord>> replayed =
        FleetJournal::replay(options.checkpoint_path, fingerprint);
    if (replayed.ok()) {
      journal_exists = true;
      for (const FleetJournalRecord& rec : replayed.value()) {
        if (rec.shard_index >= num_shards) {
          throw std::runtime_error(
              "run_fleet: journal shard index out of range");
        }
        // A shard may appear twice (crash between append and the process
        // dying, then a re-run): records are immutable once framed, so the
        // last one simply wins.
        FleetAggregate agg;
        StateReader shard_reader(rec.payload);
        agg.load_state(shard_reader).throw_if_error();
        shard_aggs[rec.shard_index] = std::move(agg);
        done[rec.shard_index] = 1;
      }
    } else if (replayed.status().code() != StatusCode::kNotFound) {
      replayed.status().throw_if_error();
    }
  }
  FleetJournal journal;
  if (!options.checkpoint_path.empty()) {
    // Fresh campaigns (and resumes that found no file) start a new journal;
    // a replayed journal is extended in place — its torn tail, if any, was
    // truncated during replay.
    journal.open(options.checkpoint_path, fingerprint,
                 /*truncate=*/!journal_exists)
        .throw_if_error();
  }

  std::vector<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < num_shards; ++i) {
    if (done[i] == 0) pending.push_back(i);
  }
  if (options.stop_after_shards > 0 &&
      pending.size() > options.stop_after_shards) {
    pending.resize(options.stop_after_shards);
  }

  // Fleet device seeds are all distinct, so a shared endurance-map cache
  // never hits within a campaign — per-worker workspaces (in-place map
  // rebuilds) replace it on the default path. An explicitly supplied cache
  // still wins: the caller is sharing maps across campaigns.
  EnduranceMapCache* cache =
      options.use_cache && options.cache != nullptr ? options.cache : nullptr;

  // Per-worker reusable setup state, pooled across shards: a worker checks
  // a workspace out for a shard and returns it after, so steady-state shard
  // execution reuses the previous shard's map/spare/device/arena instead of
  // reallocating them per device.
  std::mutex workspace_mu;
  std::vector<std::unique_ptr<ExperimentWorkspace>> workspace_pool;
  const auto acquire_workspace = [&]() -> std::unique_ptr<ExperimentWorkspace> {
    {
      const std::lock_guard<std::mutex> lock(workspace_mu);
      if (!workspace_pool.empty()) {
        std::unique_ptr<ExperimentWorkspace> ws =
            std::move(workspace_pool.back());
        workspace_pool.pop_back();
        return ws;
      }
    }
    return std::make_unique<ExperimentWorkspace>();
  };
  const auto release_workspace = [&](std::unique_ptr<ExperimentWorkspace> ws) {
    const std::lock_guard<std::mutex> lock(workspace_mu);
    workspace_pool.push_back(std::move(ws));
  };

  // Per-shard private profilers: a shard is claimed by exactly one thread,
  // so its profiler needs no locks; everything merges into options.profiler
  // in shard-index order after the join (merge is associative and
  // commutative, so the result is scheduling-independent).
  Profiler* const prof = options.profiler;
  std::vector<Profiler> shard_profilers(prof != nullptr ? num_shards : 0);
  const auto shard_prof = [&](std::uint64_t shard) -> Profiler* {
    return prof != nullptr ? &shard_profilers[shard] : nullptr;
  };

  const std::size_t jobs = std::min<std::size_t>(
      options.jobs == 0 ? ThreadPool::hardware_workers() : options.jobs,
      std::max<std::size_t>(pending.size(), 1));

  // Completion-side state: checkpoint mirror, heartbeat progress and shard
  // wall-time telemetry, all updated under one lock. The progress aggregate
  // merges in completion order — telemetry only; the returned result merges
  // in index order.
  std::mutex mu;
  FleetAggregate progress;
  std::uint64_t shards_done_live = 0;
  std::uint64_t shards_timed = 0;
  std::uint64_t shard_wall_sum_ns = 0;
  std::uint64_t shard_wall_max_ns = 0;
  for (char d : done) shards_done_live += d != 0 ? 1 : 0;
  if (options.heartbeat != nullptr) {
    for (std::uint64_t i = 0; i < num_shards; ++i) {
      if (done[i] != 0) progress.merge(shard_aggs[i]);
    }
  }
  const auto make_sample_locked = [&]() {
    HeartbeatSample s = make_sample(progress, spec.devices);
    s.shards_done = shards_done_live;
    s.shards_total = num_shards;
    s.workers = jobs;
    s.shards_timed = shards_timed;
    s.shard_sec_sum = static_cast<double>(shard_wall_sum_ns) * 1e-9;
    s.shard_sec_max = static_cast<double>(shard_wall_max_ns) * 1e-9;
    if (journal.is_open()) {
      s.checkpoint_bytes_written =
          static_cast<std::int64_t>(journal.bytes_written());
    }
    return s;
  };
  const auto complete_shard = [&](std::uint64_t shard, FleetAggregate agg,
                                  std::uint64_t wall_ns) {
    const std::lock_guard<std::mutex> lock(mu);
    shard_aggs[shard] = std::move(agg);
    done[shard] = 1;
    ++shards_done_live;
    ++shards_timed;
    shard_wall_sum_ns += wall_ns;
    shard_wall_max_ns = std::max(shard_wall_max_ns, wall_ns);
    if (journal.is_open()) {
      // The journal append is serialized by the lock; attribute it to the
      // shard whose completion triggered it (that profiler is still
      // exclusively this thread's until the merge below).
      const ScopedProfPhase ckpt_span(shard_prof(shard),
                                      ProfPhase::kFleetCheckpoint);
      StateWriter w;
      shard_aggs[shard].save_state(w);
      journal.append(shard, w.buffer()).throw_if_error();
    }
    if (options.heartbeat != nullptr) {
      progress.merge(shard_aggs[shard]);
      options.heartbeat->sample(make_sample_locked());
    }
  };
  const auto run_one = [&](std::uint64_t shard) {
    const std::uint64_t start_ns = Profiler::now_ns();
    std::unique_ptr<ExperimentWorkspace> ws = acquire_workspace();
    FleetAggregate agg =
        run_shard(spec, shard, cache, ws.get(), shard_prof(shard));
    release_workspace(std::move(ws));
    complete_shard(shard, std::move(agg), Profiler::now_ns() - start_ns);
  };

  const std::uint64_t section_start = Profiler::now_ns();
  if (jobs <= 1) {
    for (std::uint64_t shard : pending) run_one(shard);
    if (prof != nullptr && !pending.empty()) {
      // Serial campaign: one driver (this thread), busy the whole section.
      const std::uint64_t section_ns = Profiler::now_ns() - section_start;
      prof->set_utilization({ProfWorkerStats{section_ns, pending.size()}},
                            section_ns);
    }
  } else {
    ThreadPool pool(jobs - 1);
    std::vector<WorkerUtilization> utilization;
    pool.parallel_for_each(
        pending.size(), [&](std::size_t k) { run_one(pending[k]); },
        prof != nullptr ? &utilization : nullptr);
    if (prof != nullptr) {
      const std::uint64_t section_ns = Profiler::now_ns() - section_start;
      std::vector<ProfWorkerStats> workers;
      workers.reserve(utilization.size());
      for (const WorkerUtilization& u : utilization) {
        workers.push_back(ProfWorkerStats{u.busy_ns, u.tasks});
      }
      prof->set_utilization(workers, section_ns);
    }
  }
  if (prof != nullptr) {
    for (const Profiler& p : shard_profilers) prof->merge(p);
  }

  FleetResult result;
  result.shards_total = num_shards;
  {
    const ScopedProfPhase merge_span(prof, ProfPhase::kFleetMerge);
    for (std::uint64_t i = 0; i < num_shards; ++i) {
      if (done[i] == 0) continue;
      ++result.shards_done;
      result.aggregate.merge(shard_aggs[i]);
    }
    result.aggregate.compress();
  }
  if (options.heartbeat != nullptr) {
    const std::lock_guard<std::mutex> lock(mu);
    options.heartbeat->finish(make_sample_locked());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Deterministic result JSON

namespace {

void append_kv(std::string& out, std::string_view key, double value,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  json_append_string(out, key);
  out += ':';
  json_append_number(out, value);
}

void append_summary(std::string& out, std::string_view key,
                    const StreamSummary& s) {
  json_append_string(out, key);
  out += ":{";
  bool first = true;
  append_kv(out, "count", static_cast<double>(s.count()), &first);
  append_kv(out, "mean", s.mean(), &first);
  append_kv(out, "stddev", s.stddev(), &first);
  append_kv(out, "min", s.count() > 0 ? s.min() : 0.0, &first);
  append_kv(out, "max", s.count() > 0 ? s.max() : 0.0, &first);
  static constexpr std::pair<const char*, double> kQuantiles[] = {
      {"p1", 0.01},  {"p5", 0.05},  {"p25", 0.25}, {"p50", 0.50},
      {"p75", 0.75}, {"p95", 0.95}, {"p99", 0.99}};
  for (const auto& [name, q] : kQuantiles) {
    append_kv(out, name, s.quantile(q), &first);
  }
  out += '}';
}

void append_exemplars(std::string& out, std::string_view key,
                      const std::vector<ExemplarSet::Exemplar>& items,
                      std::uint64_t seed_start) {
  json_append_string(out, key);
  out += ":[";
  bool first = true;
  for (const ExemplarSet::Exemplar& e : items) {
    if (!first) out += ',';
    first = false;
    out += R"({"device":)";
    json_append_number(out, static_cast<double>(e.id));
    out += R"(,"seed":)";
    json_append_number(out, static_cast<double>(seed_start + e.id));
    out += R"(,"normalized":)";
    json_append_number(out, e.value);
    out += '}';
  }
  out += ']';
}

const char* mode_name(SimulationMode mode) {
  switch (mode) {
    case SimulationMode::kStochastic:
      return "stochastic";
    case SimulationMode::kUniformEvent:
      return "event";
    case SimulationMode::kBitLevel:
      return "bit";
  }
  return "unknown";
}

}  // namespace

std::string fleet_result_json(const FleetSpec& spec,
                              const FleetResult& result) {
  const FleetAggregate& agg = result.aggregate;
  std::string out;
  out += R"({"v":1,"type":"fleet_result","spec":{"devices":)";
  json_append_number(out, static_cast<double>(spec.devices));
  out += R"(,"seed_start":)";
  json_append_number(out, static_cast<double>(spec.seed_start));
  out += R"(,"shard_size":)";
  json_append_number(out, static_cast<double>(spec.shard_size));
  out += R"(,"mode":)";
  json_append_string(out, mode_name(spec.base.mode));
  out += R"(,"attack":)";
  json_append_string(out, spec.base.attack);
  out += R"(,"attack_phases":)";
  json_append_string(out, spec.base.mixed_phases);
  out += R"(,"detect":)";
  out += spec.base.detect ? "true" : "false";
  out += R"(,"adaptive":)";
  out += spec.base.adaptive ? "true" : "false";
  out += R"(,"attack_mix":[)";
  bool first = true;
  for (const AttackShare& share : spec.attack_mix) {
    if (!first) out += ',';
    first = false;
    out += R"({"attack":)";
    json_append_string(out, share.attack);
    out += R"(,"weight":)";
    json_append_number(out, share.weight);
    out += '}';
  }
  out += R"(],"wl":)";
  json_append_string(out, spec.base.wear_leveler);
  out += R"(,"spare":)";
  json_append_string(out, spec.base.spare_scheme);
  out += R"(,"spare_fraction":)";
  json_append_number(out, spec.base.spare_fraction);
  out += R"(,"swr_fraction":)";
  json_append_number(out, spec.base.swr_fraction);
  out += R"(,"lines":)";
  json_append_number(out,
                     static_cast<double>(spec.base.geometry.num_lines()));
  out += R"(,"regions":)";
  json_append_number(out,
                     static_cast<double>(spec.base.geometry.num_regions()));
  out += R"(,"fastpath":)";
  out += spec.base.fastpath ? "true" : "false";
  out += R"(,"sampling_contract":)";
  json_append_string(out, batch_contract_name(fleet_sampling_contract(spec)));
  out += R"(,"fingerprint":)";
  json_append_string(out, std::to_string(fleet_fingerprint(spec)));
  out += R"(},"shards_total":)";
  json_append_number(out, static_cast<double>(result.shards_total));
  out += R"(,"shards_done":)";
  json_append_number(out, static_cast<double>(result.shards_done));
  out += R"(,"complete":)";
  out += result.complete() ? "true" : "false";
  out += R"(,"devices":)";
  json_append_number(out, static_cast<double>(agg.devices));
  out += R"(,"truncated_logs":)";
  json_append_number(out, static_cast<double>(agg.truncated_logs));
  out += ',';
  append_summary(out, "lifetime", agg.lifetime);
  out += ',';
  append_summary(out, "user_writes", agg.user_writes);
  out += ',';
  append_summary(out, "wear_gini", agg.wear_gini);
  out += R"(,"detector":{"devices_alarmed":)";
  json_append_number(out, static_cast<double>(agg.devices_alarmed));
  out += ',';
  append_summary(out, "alarms_raised", agg.alarms_raised);
  out += ',';
  append_summary(out, "windows_in_alarm", agg.windows_in_alarm);
  out += ',';
  append_summary(out, "cadence_changes", agg.cadence_changes);
  out += '}';
  out += R"(,"lifetime_hist":{"lo":)";
  json_append_number(out, agg.lifetime_hist.lo());
  out += R"(,"growth":)";
  json_append_number(out, agg.lifetime_hist.growth());
  out += R"(,"underflow":)";
  json_append_number(out, static_cast<double>(agg.lifetime_hist.underflow()));
  out += R"(,"overflow":)";
  json_append_number(out, static_cast<double>(agg.lifetime_hist.overflow()));
  out += R"(,"buckets":[)";
  first = true;
  for (std::size_t i = 0; i < agg.lifetime_hist.bucket_count(); ++i) {
    if (agg.lifetime_hist.bucket(i) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    json_append_number(out, agg.lifetime_hist.bucket_lo(i));
    out += ',';
    json_append_number(out, agg.lifetime_hist.bucket_hi(i));
    out += ',';
    json_append_number(out, static_cast<double>(agg.lifetime_hist.bucket(i)));
    out += ']';
  }
  out += R"(]},"failure_causes":{)";
  first = true;
  for (const auto& [cause, count] : agg.failure_causes) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, cause);
    out += ':';
    json_append_number(out, static_cast<double>(count));
  }
  out += "},";
  append_exemplars(out, "worst", agg.worst.items(), spec.seed_start);
  out += ',';
  append_exemplars(out, "best", agg.best.items(), spec.seed_start);
  out += R"(,"sample":[)";
  first = true;
  for (const WeightedReservoir::Item& item : agg.sample.items()) {
    if (!first) out += ',';
    first = false;
    out += R"({"device":)";
    json_append_number(out, static_cast<double>(item.id));
    out += R"(,"seed":)";
    json_append_number(out, static_cast<double>(spec.seed_start + item.id));
    out += R"(,"normalized":)";
    json_append_number(out, item.value);
    out += '}';
  }
  out += "]}";
  out += '\n';
  return out;
}

}  // namespace nvmsec
