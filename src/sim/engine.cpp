#include "sim/engine.h"

#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace nvmsec {

Engine::Engine(Device& device, Attack& attack, WearLeveler& wear_leveler,
               SpareScheme& spare_scheme, Rng& rng)
    : device_(device),
      attack_(attack),
      wl_(wear_leveler),
      spare_(spare_scheme),
      rng_(rng) {
  if (wl_.working_lines() != spare_.working_lines()) {
    throw std::invalid_argument(
        "Engine: wear leveler and spare scheme disagree on working size");
  }
}

void Engine::set_observer(const Observer& obs) {
  obs_ = obs;
  device_.set_observer(obs);
  spare_.set_observer(obs);
}

LifetimeResult Engine::run(WriteCount max_user_writes) {
  LifetimeResult result;
  result.ideal_lifetime = device_.total_budget();
  const ScopedTimer run_span(obs_.trace, "engine.run");

  if (buffer_ && max_user_writes == 0) {
    throw std::invalid_argument(
        "Engine::run: a DRAM front buffer can absorb a small-footprint "
        "workload forever; set max_user_writes");
  }

  std::vector<WlPhysWrite> batch;
  WriteCount user_writes = 0;      // user writes completed (device or buffer)
  WriteCount absorbed_writes = 0;  // subset absorbed by the front buffer
  WriteCount overhead_writes = 0;  // migration writes the device absorbed
  std::uint64_t line_deaths = 0;

  while (!result.failed &&
         (max_user_writes == 0 || user_writes < max_user_writes)) {
    // Snapshot cadence: one pointer check per user write in the no-op mode,
    // one extra integer compare when a snapshot sink is attached.
    if (obs_.snapshots != nullptr &&
        obs_.snapshots->due(static_cast<double>(user_writes))) {
      SnapshotContext ctx;
      ctx.device = &device_;
      ctx.spare = &spare_;
      ctx.wear_leveler = &wl_;
      ctx.buffer = buffer_;
      ctx.user_writes = static_cast<double>(user_writes);
      ctx.overhead_writes = overhead_writes;
      ctx.absorbed_writes = absorbed_writes;
      obs_.snapshots->snapshot(ctx);
      if (obs_.trace != nullptr) {
        const SpareSchemeStats s = spare_.stats();
        obs_.trace->counter(
            "wear",
            {{"line_deaths", static_cast<double>(line_deaths)},
             {"spares_remaining", static_cast<double>(s.spares_remaining)},
             {"lmt_entries", static_cast<double>(s.lmt_entries)}});
      }
    }
    LogicalLineAddr la = attack_.next(rng_, wl_.logical_lines());
    if (buffer_) {
      const std::optional<LogicalLineAddr> evicted = buffer_->write(la);
      if (!evicted) {
        ++user_writes;
        ++absorbed_writes;
        continue;
      }
      la = *evicted;  // the write-back carries this line's data to the NVM
    }
    batch.clear();
    wl_.on_write(la, rng_, batch);

    for (const WlPhysWrite& w : batch) {
      const PhysLineAddr line = spare_.resolve(w.working_index);
      const WriteOutcome outcome = device_.write(line);
      // Count only writes the device absorbed: when failure aborts the
      // batch, the unissued remainder must not inflate the lifetime.
      if (w.is_overhead) {
        ++overhead_writes;
      } else {
        ++user_writes;
      }
      if (outcome == WriteOutcome::kWornOut) {
        ++line_deaths;
        if (!spare_.on_wear_out(w.working_index)) {
          result.failed = true;
          result.failure_reason =
              "unreplaceable wear-out at working index " +
              std::to_string(w.working_index) + " (line " +
              std::to_string(line.value()) + ")";
          if (obs_.trace != nullptr) {
            obs_.trace->instant(
                "engine.device_failure",
                {{"working_index", static_cast<double>(w.working_index)},
                 {"line", static_cast<double>(line.value())},
                 {"user_writes", static_cast<double>(user_writes)}});
          }
          break;
        }
      }
    }
  }

  if (obs_.metrics != nullptr) {
    MetricsRegistry& m = *obs_.metrics;
    m.counter("engine.user_writes").set(user_writes);
    m.counter("engine.overhead_writes").set(overhead_writes);
    m.counter("engine.absorbed_writes").set(absorbed_writes);
    m.counter("engine.line_deaths").set(line_deaths);
    m.counter("engine.device_writes").set(device_.total_writes());
    if (buffer_ != nullptr) buffer_->publish_metrics(m);
    const SpareSchemeStats s = spare_.stats();
    m.gauge("spare.spares_remaining")
        .set(static_cast<double>(s.spares_remaining));
    m.gauge("spare.lmt_entries").set(static_cast<double>(s.lmt_entries));
    m.gauge("spare.rmt_entries").set(static_cast<double>(s.rmt_entries));
    m.counter("spare.replacements").set(s.replacements);
    m.counter("wl.migration_writes").set(wl_.overhead_writes());
  }
  if (obs_.snapshots != nullptr) {
    // Final sample so the series always ends at the run's last state.
    SnapshotContext ctx;
    ctx.device = &device_;
    ctx.spare = &spare_;
    ctx.wear_leveler = &wl_;
    ctx.buffer = buffer_;
    ctx.user_writes = static_cast<double>(user_writes);
    ctx.overhead_writes = overhead_writes;
    ctx.absorbed_writes = absorbed_writes;
    obs_.snapshots->snapshot_now(ctx);
  }

  result.user_writes = static_cast<double>(user_writes);
  result.absorbed_writes = absorbed_writes;
  result.overhead_writes = overhead_writes;
  result.device_writes = device_.total_writes();
  result.line_deaths = line_deaths;
  result.normalized =
      result.ideal_lifetime > 0 ? result.user_writes / result.ideal_lifetime
                                : 0.0;
  if (!result.failed) {
    result.failure_reason = "write cap reached";
  }
  return result;
}

}  // namespace nvmsec
