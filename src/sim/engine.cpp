#include "sim/engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/maxwe.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sim/checkpoint.h"
#include "sim/wear_report.h"

namespace nvmsec {

Engine::Engine(Device& device, Attack& attack, WearLeveler& wear_leveler,
               SpareScheme& spare_scheme, Rng& rng)
    : device_(device),
      attack_(attack),
      wl_(wear_leveler),
      spare_(spare_scheme),
      rng_(rng),
      counts_rng_(rng.substream(kCountsStreamTag)) {
  if (wl_.working_lines() != spare_.working_lines()) {
    throw std::invalid_argument(
        "Engine: wear leveler and spare scheme disagree on working size");
  }
}

void Engine::set_observer(const Observer& obs) {
  obs_ = obs;
  device_.set_observer(obs);
  spare_.set_observer(obs);
}

void Engine::set_checkpointing(std::string path, WriteCount interval,
                               std::uint64_t fingerprint) {
  if (path.empty() || interval == 0) {
    throw std::invalid_argument(
        "Engine::set_checkpointing: need a path and a non-zero interval");
  }
  checkpoint_path_ = std::move(path);
  checkpoint_interval_ = interval;
  fingerprint_ = fingerprint;
}

void Engine::set_fault_injection(MetadataFaultInjector* injector,
                                 MaxWe* scheme) {
  if ((injector == nullptr) != (scheme == nullptr)) {
    throw std::invalid_argument(
        "Engine::set_fault_injection: injector and scheme must be set "
        "together");
  }
  injector_ = injector;
  injector_scheme_ = scheme;
}

void Engine::set_detector(AttackDetector* detector,
                          AdaptiveWearLeveler* adaptive) {
  if (detector == nullptr && adaptive != nullptr) {
    throw std::invalid_argument(
        "Engine::set_detector: adaptive control needs a detector");
  }
  detector_ = detector;
  adaptive_ = adaptive;
}

void Engine::capture_state(StateWriter& w) const {
  w.u64(user_writes_);
  w.u64(absorbed_writes_);
  w.u64(overhead_writes_);
  w.u64(line_deaths_);
  rng_.save_state(w);
  counts_rng_.save_state(w);
  device_.save_state(w);
  attack_.save_state(w);
  wl_.save_state(w);
  spare_.save_state(w);
  w.boolean(buffer_ != nullptr);
  if (buffer_ != nullptr) buffer_->save_state(w);
  w.boolean(injector_ != nullptr);
  if (injector_ != nullptr) injector_->save_state(w);
  // Detector state (window accumulators, hysteresis machine, lifetime
  // stats). The adaptive leveler needs no slot of its own: when adaptive
  // control is on, wl_ IS the AdaptiveWearLeveler and its save_state above
  // already carried the controller + wrapped-leveler state.
  w.boolean(detector_ != nullptr);
  if (detector_ != nullptr) detector_->save_state(w);
  // Event-log byte offset, captured after the checkpoint event itself was
  // emitted and flushed: restore truncates the log back to this point, so
  // a resumed run's stream is byte-identical to an uninterrupted one.
  w.boolean(obs_.events != nullptr);
  if (obs_.events != nullptr) w.u64(obs_.events->offset());
}

void Engine::save_checkpoint() {
  if (obs_.events != nullptr) {
    obs_.events->emit("checkpoint",
                      {{"user_writes", static_cast<double>(user_writes_)}});
    obs_.events->flush();
  }
  StateWriter w;
  w.u64(fingerprint_);
  capture_state(w);
  // A failed checkpoint write aborts the run loudly: silently continuing
  // would let the user believe the run is resumable when it is not.
  save_checkpoint_file(checkpoint_path_, w.take()).throw_if_error();
}

Status Engine::restore_state(StateReader& r) {
  if (Status st = r.u64(user_writes_); !st.ok()) return st;
  if (Status st = r.u64(absorbed_writes_); !st.ok()) return st;
  if (Status st = r.u64(overhead_writes_); !st.ok()) return st;
  if (Status st = r.u64(line_deaths_); !st.ok()) return st;
  if (Status st = rng_.load_state(r); !st.ok()) return st;
  if (Status st = counts_rng_.load_state(r); !st.ok()) return st;
  if (Status st = device_.load_state(r); !st.ok()) return st;
  if (Status st = attack_.load_state(r); !st.ok()) return st;
  if (Status st = wl_.load_state(r); !st.ok()) return st;
  if (Status st = spare_.load_state(r); !st.ok()) return st;
  bool has_buffer = false;
  if (Status st = r.boolean(has_buffer); !st.ok()) return st;
  if (has_buffer != (buffer_ != nullptr)) {
    return Status::failed_precondition(
        "checkpoint and configuration disagree on the DRAM front buffer");
  }
  if (buffer_ != nullptr) {
    if (Status st = buffer_->load_state(r); !st.ok()) return st;
  }
  bool has_injector = false;
  if (Status st = r.boolean(has_injector); !st.ok()) return st;
  if (has_injector != (injector_ != nullptr)) {
    return Status::failed_precondition(
        "checkpoint and configuration disagree on metadata fault injection");
  }
  if (injector_ != nullptr) {
    if (Status st = injector_->load_state(r); !st.ok()) return st;
  }
  bool has_detector = false;
  if (Status st = r.boolean(has_detector); !st.ok()) return st;
  if (has_detector != (detector_ != nullptr)) {
    return Status::failed_precondition(
        "checkpoint and configuration disagree on attack detection "
        "(--detect)");
  }
  if (detector_ != nullptr) {
    if (Status st = detector_->load_state(r); !st.ok()) return st;
  }
  bool has_events = false;
  if (Status st = r.boolean(has_events); !st.ok()) return st;
  if (has_events != (obs_.events != nullptr)) {
    return Status::failed_precondition(
        "checkpoint and configuration disagree on the decision event log "
        "(--events-out)");
  }
  if (obs_.events != nullptr) {
    std::uint64_t offset = 0;
    if (Status st = r.u64(offset); !st.ok()) return st;
    if (Status st = obs_.events->truncate_to(offset); !st.ok()) return st;
  }
  if (!r.exhausted()) {
    return Status::corruption("checkpoint payload has trailing bytes");
  }
  resumed_ = true;
  return Status{};
}

LifetimeResult Engine::run(WriteCount max_user_writes) {
  LifetimeResult result;
  result.ideal_lifetime = device_.total_budget();
  const ScopedTimer run_span(obs_.trace, "engine.run");
  Profiler* const prof = obs_.profiler;
  const ScopedProfPhase prof_span(prof, ProfPhase::kEngineRun);

  if (buffer_ && max_user_writes == 0) {
    throw std::invalid_argument(
        "Engine::run: a DRAM front buffer can absorb a small-footprint "
        "workload forever; set max_user_writes");
  }

  std::vector<WlPhysWrite> batch;
  if (!resumed_) {
    user_writes_ = 0;      // user writes completed (device or buffer)
    absorbed_writes_ = 0;  // subset absorbed by the front buffer
    overhead_writes_ = 0;  // migration writes the device absorbed
    line_deaths_ = 0;
  }
  // Region wear-out events need per-region death counts. Rebuilt from the
  // device's ground truth rather than checkpointed, so resumed runs agree
  // with uninterrupted ones by construction.
  const DeviceGeometry& geom = device_.geometry();
  std::vector<std::uint64_t> region_line_deaths;
  if (obs_.events != nullptr) {
    region_line_deaths.assign(geom.num_regions(), 0);
    for (std::uint64_t l = 0; l < geom.num_lines(); ++l) {
      if (device_.is_worn_out(PhysLineAddr{l})) {
        ++region_line_deaths[geom.region_of(PhysLineAddr{l}).value()];
      }
    }
  }
  if (checkpoint_interval_ > 0) {
    // First boundary strictly ahead of the current position, so a resumed
    // run re-checkpoints on the original cadence instead of immediately.
    next_checkpoint_at_ =
        (user_writes_ / checkpoint_interval_ + 1) * checkpoint_interval_;
  }

  const std::uint64_t logical_lines = wl_.logical_lines();
  // Combined translate∘resolve cache for fast spans. One u64 per logical
  // line: (version << 32) | physical line. Any mapping-epoch change (wear
  // leveler remap, spare rescue, scrub, state load) flushes the whole
  // cache in O(1) by bumping the version; entries are zero-filled only on
  // the (practically unreachable) u32 version wrap. FreeP declines caching
  // because its resolve() charges checkpointed pointer-walk counters.
  const bool cache_resolves = fastpath_ && spare_.resolve_cacheable() &&
                              geom.num_lines() <= UINT32_MAX &&
                              logical_lines <= UINT32_MAX;
  std::vector<std::uint64_t> line_cache;
  std::uint32_t cache_version = 0;
  std::uint64_t seen_wl_epoch = ~0ull;
  std::uint64_t seen_spare_epoch = ~0ull;
  if (cache_resolves) line_cache.assign(logical_lines, 0);

  // Resolve-cache traffic, counted into plain locals (three predictable
  // adds per lookup) and published once at run end — cheap enough to stay
  // on even with no observer attached.
  std::uint64_t resolve_hits = 0;
  std::uint64_t resolve_misses = 0;
  std::uint64_t resolve_flushes = 0;

  const auto resolve_cached = [&](LogicalLineAddr la) -> PhysLineAddr {
    if (wl_.mapping_epoch() != seen_wl_epoch ||
        spare_.mapping_epoch() != seen_spare_epoch) {
      seen_wl_epoch = wl_.mapping_epoch();
      seen_spare_epoch = spare_.mapping_epoch();
      ++resolve_flushes;
      if (++cache_version == 0) {
        std::fill(line_cache.begin(), line_cache.end(), 0);
        cache_version = 1;
      }
    }
    std::uint64_t& slot = line_cache[la.value()];
    if ((slot >> 32) == cache_version) {
      ++resolve_hits;
      return PhysLineAddr{slot & 0xffffffffull};
    }
    ++resolve_misses;
    const PhysLineAddr line = spare_.resolve(wl_.translate(la));
    slot = (static_cast<std::uint64_t>(cache_version) << 32) | line.value();
    return line;
  };

  // Wear-out bookkeeping shared by both paths; bit-identical to the seed
  // per-write branch. Returns false when the failure ends the run.
  const auto handle_wear_out = [&](std::uint64_t working_index,
                                   PhysLineAddr line) -> bool {
    const ScopedProfPhase rescue_span(prof, ProfPhase::kEngineRescue);
    if (prof != nullptr) prof->add(ProfCounter::kRescueEvents);
    ++line_deaths_;
    if (obs_.events != nullptr) {
      obs_.events->set_now(static_cast<double>(user_writes_));
      const RegionId region = geom.region_of(line);
      if (++region_line_deaths[region.value()] == geom.lines_per_region()) {
        obs_.events->emit("region_wear_out",
                          {{"region", static_cast<double>(region.value())}});
      }
    }
    if (!spare_.on_wear_out(working_index)) {
      result.failed = true;
      result.failure_reason = "unreplaceable wear-out at working index " +
                              std::to_string(working_index) + " (line " +
                              std::to_string(line.value()) + ")";
      if (obs_.events != nullptr) {
        obs_.events->emit(
            "end_of_life",
            {{"cause", "unreplaceable_wear_out"},
             {"working_index", static_cast<double>(working_index)},
             {"line", static_cast<double>(line.value())},
             {"region", static_cast<double>(geom.region_of(line).value())},
             {"user_writes", static_cast<double>(user_writes_)},
             {"line_deaths", static_cast<double>(line_deaths_)}});
      }
      if (obs_.trace != nullptr) {
        obs_.trace->instant(
            "engine.device_failure",
            {{"working_index", static_cast<double>(working_index)},
             {"line", static_cast<double>(line.value())},
             {"user_writes", static_cast<double>(user_writes_)}});
      }
      return false;
    }
    return true;
  };

  // Close one due detection window: emit the verdict (the raw signals are
  // what the report's ROC sweep re-thresholds post-mortem), the alarm
  // transition events, and feed the alarm level into the adaptive cadence
  // controller when one is attached.
  const auto close_detector_window = [&] {
    const ScopedProfPhase detect_span(prof, ProfPhase::kEngineDetector);
    if (prof != nullptr) prof->add(ProfCounter::kDetectorWindows);
    const AlarmLevel before = detector_->level();
    const WindowVerdict v = detector_->close_window();
    if (obs_.events != nullptr) {
      obs_.events->emit(
          "detect_window",
          {{"window", static_cast<double>(v.window_index)},
           {"writes", static_cast<double>(v.writes)},
           {"uniformity", v.uniformity},
           {"occupancy", v.occupancy},
           {"sequential", v.sequential},
           {"anomalous", v.anomalous ? 1.0 : 0.0},
           {"kind", attack_kind_name(v.kind)},
           {"level", alarm_level_name(v.level_after)}});
      if (v.level_after == AlarmLevel::kUnderAttack &&
          before != AlarmLevel::kUnderAttack) {
        obs_.events->emit("alarm_raised",
                          {{"window", static_cast<double>(v.window_index)},
                           {"kind", attack_kind_name(detector_->kind())}});
      } else if (before == AlarmLevel::kUnderAttack &&
                 v.level_after == AlarmLevel::kBenign) {
        obs_.events->emit("alarm_cleared",
                          {{"window", static_cast<double>(v.window_index)}});
      }
    }
    if (adaptive_ != nullptr) {
      const CadenceChange ch =
          adaptive_->on_window(v.level_after, detector_->kind());
      if (ch.changed && obs_.events != nullptr) {
        obs_.events->emit(
            "cadence_change",
            {{"old_interval", static_cast<double>(ch.old_interval)},
             {"new_interval", static_cast<double>(ch.new_interval)},
             {"step", static_cast<double>(ch.step)}});
      }
    }
  };

  // Exact per-write pipeline (the seed loop body): wear-leveler write path
  // with migration writes, then device writes one by one.
  batch.reserve(16);
  const auto write_one = [&](LogicalLineAddr la) {
    batch.clear();
    wl_.on_write(la, rng_, batch);
    for (const WlPhysWrite& w : batch) {
      const PhysLineAddr line = spare_.resolve(w.working_index);
      const WriteOutcome outcome = device_.write(line);
      // Count only writes the device absorbed: when failure aborts the
      // batch, the unissued remainder must not inflate the lifetime.
      if (w.is_overhead) {
        ++overhead_writes_;
      } else {
        ++user_writes_;
      }
      if (outcome == WriteOutcome::kWornOut) {
        if (!handle_wear_out(w.working_index, line)) break;
      }
    }
  };

  // Count-vector path (stochastic attacks): instead of one address per RNG
  // call, draw how many of the chunk's writes land on each line (an exact
  // multinomial from the dedicated counts substream) and bulk-decrement the
  // wear counters in one SoA pass. Only legal when the attack's declared
  // contract permits reordering (anything but bit-identical), and only
  // worthwhile on large chunks — tiny chunks would pay the multinomial
  // overhead for no batching win, so they fall back to next_run(). Requires
  // the resolve cache (FreeP's per-resolve counters must see every write).
  constexpr std::uint64_t kMinCountsChunk = 256;
  const bool counts_capable =
      fastpath_ && buffer_ == nullptr && cache_resolves &&
      attack_.batch_contract() != BatchContract::kBitIdentical;
  // Cap a chunk at ~1/128 of the device's total write budget so the
  // within-chunk reorder distortion (the documented equivalence slack) stays
  // a small fraction of any lifetime the run can reach.
  const std::uint64_t counts_chunk_cap = std::max<std::uint64_t>(
      1024, static_cast<std::uint64_t>(device_.total_budget()) / 128);
  WriteCountVector counts_vec;
  std::vector<std::uint64_t> phys_scratch;

  // Chunk-size distributions and the attack's batching contract go to the
  // metrics registry; histograms are looked up once, never per chunk.
  HistogramMetric* counts_chunk_hist = nullptr;
  HistogramMetric* batch_span_hist = nullptr;
  if (obs_.metrics != nullptr) {
    counts_chunk_hist = &obs_.metrics->histogram("engine.counts_chunk_writes");
    batch_span_hist = &obs_.metrics->histogram("engine.batch_span_writes");
    obs_.metrics->gauge("engine.batch_contract")
        .set(static_cast<double>(attack_.batch_contract()));
  }

  while (!result.failed &&
         (max_user_writes == 0 || user_writes_ < max_user_writes)) {
    // User-write boundary work, in fixed order so checkpoints capture a
    // deterministic point: fault injection first, then the checkpoint
    // (which must include the injector's advance), then observability.
    if (obs_.events != nullptr) {
      obs_.events->set_now(static_cast<double>(user_writes_));
    }
    // Detection windows close before fault injection and checkpoints so a
    // checkpoint always captures post-close state (a resumed run never
    // re-closes a window). The loop drains multiple boundaries at once:
    // the wear-out position credit can jump user_writes_ past a boundary.
    if (detector_ != nullptr) {
      while (detector_->window_due(user_writes_)) close_detector_window();
    }
    if (injector_ != nullptr && injector_->due(user_writes_)) {
      injector_->inject_and_scrub(*injector_scheme_, device_);
    }
    if (checkpoint_interval_ > 0 && user_writes_ >= next_checkpoint_at_) {
      const ScopedProfPhase ckpt_span(prof, ProfPhase::kEngineCheckpoint);
      save_checkpoint();
      next_checkpoint_at_ += checkpoint_interval_;
    }
    // Snapshot cadence: one pointer check per user write in the no-op mode,
    // one extra integer compare when a snapshot sink is attached.
    if (obs_.snapshots != nullptr &&
        obs_.snapshots->due(static_cast<double>(user_writes_))) {
      const ScopedProfPhase snap_span(prof, ProfPhase::kEngineSnapshot);
      SnapshotContext ctx;
      ctx.device = &device_;
      ctx.spare = &spare_;
      ctx.wear_leveler = &wl_;
      ctx.buffer = buffer_;
      ctx.user_writes = static_cast<double>(user_writes_);
      ctx.overhead_writes = overhead_writes_;
      ctx.absorbed_writes = absorbed_writes_;
      obs_.snapshots->snapshot(ctx);
      if (obs_.trace != nullptr) {
        const SpareSchemeStats s = spare_.stats();
        obs_.trace->counter(
            "wear",
            {{"line_deaths", static_cast<double>(line_deaths_)},
             {"spares_remaining", static_cast<double>(s.spares_remaining)},
             {"lmt_entries", static_cast<double>(s.lmt_entries)}});
      }
    }

    // Batch cap: a run may never cross the write cap, a checkpoint, a
    // snapshot threshold, or a fault-injection point — those all fire in
    // the boundary block above, at exactly the write counts the per-write
    // loop would see. A DRAM buffer keeps the per-write default: its
    // hit/evict decisions are inherently per-address.
    std::uint64_t limit = 1;
    if (fastpath_ && buffer_ == nullptr) {
      limit = max_user_writes == 0
                  ? std::numeric_limits<std::uint64_t>::max()
                  : max_user_writes - user_writes_;
      if (checkpoint_interval_ > 0) {
        limit = std::min(limit, next_checkpoint_at_ - user_writes_);
      }
      if (injector_ != nullptr) {
        limit = std::min(limit, injector_->writes_until_due(user_writes_));
      }
      if (obs_.snapshots != nullptr) {
        limit = std::min(limit, obs_.snapshots->writes_until_due(
                                    static_cast<double>(user_writes_)));
      }
      if (detector_ != nullptr) {
        limit = std::min(limit, detector_->writes_until_window(user_writes_));
      }
      if (limit == 0) limit = 1;  // defensive: the boundary fired above
    }

    if (counts_capable) {
      // Ramp the chunk with elapsed lifetime: a chunk never spans more than
      // ~1/8 of the run so far, so wear-outs (and the spare allocations
      // they trigger) land within 12.5% of their per-write stream
      // positions even when the static cap exceeds the whole lifetime
      // (spare-limited runs die at a small fraction of the total budget).
      const std::uint64_t chunk = std::min(
          {limit, wl_.writes_until_remap(), counts_chunk_cap,
           std::max(kMinCountsChunk, user_writes_ / 8)});
      if (chunk >= kMinCountsChunk) {
        counts_vec.clear();
        const bool drew = [&] {
          const ScopedProfPhase draw_span(prof, ProfPhase::kEngineCountsDraw);
          return attack_.next_counts(counts_rng_, logical_lines, chunk,
                                     counts_vec);
        }();
        if (drew) {
          // A mixed attack stops a counts draw at its phase boundary, so
          // the vector may total fewer than `chunk` — the fatal-position
          // credit below must use the actual total, not the request.
          const std::uint64_t chunk_total = counts_vec.total();
          if (detector_ != nullptr) detector_->observe_counts(counts_vec);
          // Resolve every entry up front under the current mapping epoch,
          // then stream the whole vector through the device. A wear-out
          // hands control back: the spare layer rescues (epoch bump flushes
          // the cache), the unwritten tail is re-resolved, and the scan
          // resumes at the stopping entry's unabsorbed remainder.
          const std::size_t n_entries = counts_vec.size();
          phys_scratch.resize(n_entries);
          {
            const ScopedProfPhase resolve_span(
                prof, ProfPhase::kEngineCountsResolve);
            for (std::size_t i = 0; i < n_entries; ++i) {
              phys_scratch[i] =
                  resolve_cached(LogicalLineAddr{counts_vec.addrs[i]}).value();
            }
          }
          std::uint64_t issued = 0;
          std::size_t e = 0;
          while (e < n_entries && !result.failed) {
            const BulkCountsResult res = [&] {
              const ScopedProfPhase write_span(
                  prof, ProfPhase::kEngineCountsWrite);
              return device_.write_counts(
                  std::span<const std::uint64_t>(phys_scratch).subspan(e),
                  std::span<const WriteCount>(counts_vec.counts).subspan(e));
            }();
            user_writes_ += res.absorbed;
            issued += res.absorbed;
            if (!res.wore_out) break;
            const std::size_t stop = e + res.entries_done;
            const LogicalLineAddr la{counts_vec.addrs[stop]};
            const PhysLineAddr dead{phys_scratch[stop]};
            const std::uint64_t entry_total = counts_vec.counts[stop];
            counts_vec.counts[stop] -= res.entry_absorbed;
            if (!handle_wear_out(wl_.translate(la), dead)) {
              // Terminal failure: the per-write stream interleaves the
              // chunk's writes uniformly (the chunk is exchangeable for a
              // stationary attack), so the fatal r-th write to the dead
              // line lands at an expected stream position of
              // r*(C+1)/(c+1) within the chunk — not at the SoA scan
              // position, which undercounts by up to a whole chunk when
              // the chunk spans a large fraction of the lifetime. Credit
              // the difference so the reported lifetime follows the
              // per-write law.
              const double est = static_cast<double>(res.entry_absorbed) *
                                 (static_cast<double>(chunk_total) + 1.0) /
                                 (static_cast<double>(entry_total) + 1.0);
              const std::uint64_t fatal_pos =
                  std::min(chunk_total, static_cast<std::uint64_t>(est));
              if (fatal_pos > issued) {
                // The credited writes never reached the device (it is
                // dead); book them as absorbed so device_writes ==
                // user_writes - absorbed + overhead stays exact.
                user_writes_ += fatal_pos - issued;
                absorbed_writes_ += fatal_pos - issued;
                issued = fatal_pos;
              }
              break;
            }
            e = stop;
            if (counts_vec.counts[e] == 0) ++e;
            const ScopedProfPhase resolve_span(
                prof, ProfPhase::kEngineCountsResolve);
            for (std::size_t i = e; i < n_entries; ++i) {
              phys_scratch[i] =
                  resolve_cached(LogicalLineAddr{counts_vec.addrs[i]}).value();
            }
          }
          wl_.commit_batched_writes(issued);
          if (prof != nullptr) {
            prof->add(ProfCounter::kCountsChunks);
            prof->add(ProfCounter::kCountsWrites, issued);
          }
          if (counts_chunk_hist != nullptr) {
            counts_chunk_hist->observe(static_cast<double>(issued));
          }
          continue;
        }
      }
    }

    const AttackRun run = [&] {
      const ScopedProfPhase draw_span(prof, ProfPhase::kEngineBatchDraw);
      return attack_.next_run(rng_, logical_lines, limit);
    }();
    // Observe the request stream at generation time: the run form updates
    // the detector's counters exactly as per-write observes would, so
    // bit-identical attacks keep byte-identical detector state across
    // fastpath on/off. Buffer-absorbed writes are observed too — the
    // detector watches what the attacker issues, not what reaches the NVM.
    if (detector_ != nullptr) {
      detector_->observe_run(run.start.value(), run.count, run.stride);
    }
    if (buffer_ != nullptr) {
      const ScopedProfPhase buffer_span(prof, ProfPhase::kEngineBuffer);
      // limit == 1, so the run is a single write — identical to next().
      const std::optional<LogicalLineAddr> evicted = buffer_->write(run.start);
      if (!evicted) {
        ++user_writes_;
        ++absorbed_writes_;
        continue;
      }
      write_one(*evicted);  // the write-back carries the data to the NVM
      continue;
    }

    std::uint64_t done = 0;
    while (done < run.count && !result.failed) {
      // Static-mapping horizon: how many writes the wear leveler takes
      // without remapping, migrating, or drawing from the RNG. 0 means the
      // leveler declines batching (or a remap is imminent): take the exact
      // per-write path for this write.
      const std::uint64_t horizon = fastpath_ ? wl_.writes_until_remap() : 0;
      if (horizon == 0) {
        // Coalesce the whole burst of consecutive fallback writes into one
        // span: a leveler that declines batching (TLSR, --no-fastpath)
        // funnels *every* write through here, and a per-write clock pair
        // would cost more than the write itself.
        const ScopedProfPhase perwrite_span(prof, ProfPhase::kEnginePerWrite);
        std::uint64_t burst = 0;
        do {
          write_one(run.addr_at(done));
          ++done;
          ++burst;
        } while (done < run.count && !result.failed &&
                 (fastpath_ ? wl_.writes_until_remap() : 0) == 0);
        if (prof != nullptr) {
          prof->add(ProfCounter::kPerWriteFallback, burst);
        }
        continue;
      }
      const std::uint64_t span = std::min(horizon, run.count - done);
      std::uint64_t issued = 0;
      const ScopedProfPhase batch_span(prof, ProfPhase::kEngineBatchWrite);
      if (run.stride == 0 && cache_resolves) {
        // One address hammered repeatedly: resolve once, bulk-decrement the
        // device budget, re-resolve only after a wear-out rescues the data
        // onto a different backing line (the epoch bump flushes the cache).
        while (issued < span && !result.failed) {
          const PhysLineAddr line = resolve_cached(run.start);
          const BulkWriteResult res =
              device_.write_many(line, span - issued);
          user_writes_ += res.absorbed;
          issued += res.absorbed;
          if (res.wore_out &&
              !handle_wear_out(wl_.translate(run.start), line)) {
            break;
          }
        }
      } else {
        // Distinct addresses (sweep segment), or a spare scheme whose
        // resolve() must run once per write (FreeP's pointer-walk stats).
        while (issued < span && !result.failed) {
          const LogicalLineAddr la = run.addr_at(done + issued);
          const PhysLineAddr line = cache_resolves
                                        ? resolve_cached(la)
                                        : spare_.resolve(wl_.translate(la));
          const WriteOutcome outcome = device_.write_unchecked(line);
          ++user_writes_;
          ++issued;
          if (outcome == WriteOutcome::kWornOut &&
              !handle_wear_out(wl_.translate(la), line)) {
            break;
          }
        }
      }
      // Fast-forward the remap cadence by the writes actually issued (the
      // per-write path would have counted each of them, including a fatal
      // final write, before the remap ever fired).
      wl_.commit_batched_writes(issued);
      done += issued;
      if (prof != nullptr) {
        prof->add(ProfCounter::kBatchRuns);
        prof->add(ProfCounter::kBatchWrites, issued);
      }
      if (batch_span_hist != nullptr) {
        batch_span_hist->observe(static_cast<double>(issued));
      }
    }
  }

  if (obs_.events != nullptr) {
    obs_.events->set_now(static_cast<double>(user_writes_));
    obs_.events->emit(
        "run_end",
        {{"outcome", result.failed ? "device_failure" : "write_cap_reached"},
         {"user_writes", static_cast<double>(user_writes_)},
         {"overhead_writes", static_cast<double>(overhead_writes_)},
         {"line_deaths", static_cast<double>(line_deaths_)}});
  }
  if (obs_.metrics != nullptr) {
    MetricsRegistry& m = *obs_.metrics;
    m.counter("engine.user_writes").set(user_writes_);
    m.counter("engine.overhead_writes").set(overhead_writes_);
    m.counter("engine.absorbed_writes").set(absorbed_writes_);
    m.counter("engine.line_deaths").set(line_deaths_);
    m.counter("engine.device_writes").set(device_.total_writes());
    m.counter("engine.resolve_cache_hits").set(resolve_hits);
    m.counter("engine.resolve_cache_misses").set(resolve_misses);
    m.counter("engine.resolve_cache_flushes").set(resolve_flushes);
    if (buffer_ != nullptr) buffer_->publish_metrics(m);
    const SpareSchemeStats s = spare_.stats();
    m.gauge("spare.spares_remaining")
        .set(static_cast<double>(s.spares_remaining));
    m.gauge("spare.lmt_entries").set(static_cast<double>(s.lmt_entries));
    m.gauge("spare.rmt_entries").set(static_cast<double>(s.rmt_entries));
    m.counter("spare.replacements").set(s.replacements);
    m.counter("wl.migration_writes").set(wl_.overhead_writes());
    if (detector_ != nullptr) {
      m.counter("detect.windows_closed").set(detector_->windows_closed());
      m.counter("detect.anomalous_windows")
          .set(detector_->anomalous_windows());
      m.counter("detect.alarms_raised").set(detector_->alarms_raised());
      m.counter("detect.windows_in_alarm").set(detector_->windows_in_alarm());
    }
    if (adaptive_ != nullptr) {
      m.counter("adaptive.cadence_changes").set(adaptive_->cadence_changes());
    }
  }
  if (prof != nullptr) {
    prof->add(ProfCounter::kResolveCacheHit, resolve_hits);
    prof->add(ProfCounter::kResolveCacheMiss, resolve_misses);
    prof->add(ProfCounter::kResolveCacheFlush, resolve_flushes);
    if (buffer_ != nullptr) {
      const DramBufferStats& bs = buffer_->stats();
      prof->add(ProfCounter::kBufferHit, bs.hits);
      prof->add(ProfCounter::kBufferMiss, bs.misses);
      prof->add(ProfCounter::kBufferEvict, bs.evictions);
    }
  }
  if (obs_.snapshots != nullptr) {
    // Final sample so the series always ends at the run's last state.
    SnapshotContext ctx;
    ctx.device = &device_;
    ctx.spare = &spare_;
    ctx.wear_leveler = &wl_;
    ctx.buffer = buffer_;
    ctx.user_writes = static_cast<double>(user_writes_);
    ctx.overhead_writes = overhead_writes_;
    ctx.absorbed_writes = absorbed_writes_;
    obs_.snapshots->snapshot_now(ctx);
  }

  result.user_writes = static_cast<double>(user_writes_);
  result.absorbed_writes = absorbed_writes_;
  result.overhead_writes = overhead_writes_;
  result.device_writes = device_.total_writes();
  result.line_deaths = line_deaths_;
  result.normalized =
      result.ideal_lifetime > 0 ? result.user_writes / result.ideal_lifetime
                                : 0.0;
  result.wear_gini = analyze_wear(device_).utilization_gini;
  if (detector_ != nullptr) {
    result.windows_observed = detector_->windows_closed();
    result.anomalous_windows = detector_->anomalous_windows();
    result.alarms_raised = detector_->alarms_raised();
    result.windows_in_alarm = detector_->windows_in_alarm();
  }
  if (adaptive_ != nullptr) {
    result.cadence_changes = adaptive_->cadence_changes();
  }
  if (!result.failed) {
    result.failure_reason = "write cap reached";
  }
  return result;
}

}  // namespace nvmsec
