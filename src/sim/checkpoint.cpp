#include "sim/checkpoint.h"

#include <cstring>
#include <fstream>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace nvmsec {

namespace {
void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, sizeof(buf));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, sizeof(buf));
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), sizeof(buf))) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{buf[i]} << (8 * i);
  return true;
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), sizeof(buf))) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf[i]} << (8 * i);
  return true;
}
}  // namespace

Status save_checkpoint_file(const std::string& path,
                            const std::vector<std::uint8_t>& payload) {
  AtomicFileWriter writer(path);
  if (!writer.is_open()) return writer.open_status();
  std::ofstream& out = writer.stream();
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  put_u32(out, kCheckpointVersion);
  put_u64(out, payload.size());
  if (!payload.empty()) {
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  put_u32(out, crc32(payload.data(), payload.size()));
  return writer.commit();
}

Result<std::vector<std::uint8_t>> load_checkpoint_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::not_found("checkpoint '" + path +
                             "' cannot be opened (does it exist?)");
  }
  char magic[sizeof(kCheckpointMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::corruption("'" + path + "' is not a checkpoint file " +
                              "(bad magic)");
  }
  std::uint32_t version = 0;
  if (!get_u32(in, version)) {
    return Status::io_error("checkpoint '" + path + "': truncated header");
  }
  if (version != kCheckpointVersion) {
    return Status::version_mismatch(
        "checkpoint '" + path + "' has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kCheckpointVersion));
  }
  std::uint64_t size = 0;
  if (!get_u64(in, size)) {
    return Status::io_error("checkpoint '" + path + "': truncated header");
  }
  // Sanity-bound the declared size by the actual file size before
  // allocating (a corrupt length field must not trigger a huge allocation).
  const std::istream::pos_type data_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::istream::pos_type file_end = in.tellg();
  if (data_start < 0 || file_end < 0 ||
      static_cast<std::uint64_t>(file_end - data_start) < size + 4) {
    return Status::corruption("checkpoint '" + path +
                              "': payload truncated (declared " +
                              std::to_string(size) + " bytes)");
  }
  in.seekg(data_start);
  std::vector<std::uint8_t> payload(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(payload.data()),
               static_cast<std::streamsize>(size))) {
    return Status::io_error("checkpoint '" + path + "': short read");
  }
  std::uint32_t stored_crc = 0;
  if (!get_u32(in, stored_crc)) {
    return Status::io_error("checkpoint '" + path + "': missing checksum");
  }
  const std::uint32_t actual = crc32(payload.data(), payload.size());
  if (stored_crc != actual) {
    return Status::corruption("checkpoint '" + path +
                              "': CRC mismatch (file damaged?)");
  }
  return payload;
}

}  // namespace nvmsec
