#include "sim/multi_bank.h"

#include <stdexcept>

namespace nvmsec {

MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks) {
  if (banks == 0) {
    throw std::invalid_argument("run_multi_bank: banks must be > 0");
  }
  MultiBankResult result;
  result.per_bank.reserve(banks);
  double sum = 0;
  for (std::uint32_t b = 0; b < banks; ++b) {
    ExperimentConfig bank_config = config;
    bank_config.seed = config.seed + b;
    const double lifetime = run_experiment(bank_config).normalized;
    result.per_bank.push_back(lifetime);
    sum += lifetime;
    if (b == 0 || lifetime < result.system_normalized) {
      result.system_normalized = lifetime;
      result.weakest_bank = b;
    }
    result.max_bank = std::max(result.max_bank, lifetime);
  }
  result.mean_bank = sum / banks;
  return result;
}

}  // namespace nvmsec
