#include "sim/multi_bank.h"

#include <stdexcept>
#include <utility>

namespace nvmsec {

MultiBankResult aggregate_multi_bank(std::vector<double> per_bank) {
  if (per_bank.empty()) {
    throw std::invalid_argument("aggregate_multi_bank: no banks");
  }
  MultiBankResult result;
  result.per_bank = std::move(per_bank);
  double sum = 0;
  for (std::size_t b = 0; b < result.per_bank.size(); ++b) {
    const double lifetime = result.per_bank[b];
    sum += lifetime;
    // Strict < keeps the FIRST bank at the minimum (the documented tie
    // rule); >= would silently drift to the last.
    if (b == 0 || lifetime < result.system_normalized) {
      result.system_normalized = lifetime;
      result.weakest_bank = static_cast<std::uint32_t>(b);
    }
    result.max_bank = std::max(result.max_bank, lifetime);
  }
  result.mean_bank = sum / static_cast<double>(result.per_bank.size());
  return result;
}

MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks) {
  if (banks == 0) {
    throw std::invalid_argument("run_multi_bank: banks must be > 0");
  }
  std::vector<double> per_bank;
  per_bank.reserve(banks);
  for (std::uint32_t b = 0; b < banks; ++b) {
    ExperimentConfig bank_config = config;
    bank_config.seed = config.seed + b;
    per_bank.push_back(run_experiment(bank_config).normalized);
  }
  return aggregate_multi_bank(std::move(per_bank));
}

}  // namespace nvmsec
