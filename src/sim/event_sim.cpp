#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sim/wear_report.h"
#include "util/arena.h"

namespace nvmsec {

namespace {
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

/// Min-heap entry: (death time in rounds, line, version at push time).
using HeapEntry = std::tuple<double, std::uint32_t, std::uint32_t>;
}  // namespace

UniformEventSimulator::UniformEventSimulator(
    std::shared_ptr<const EnduranceMap> endurance, SpareScheme& scheme)
    : endurance_(std::move(endurance)), scheme_(scheme) {
  if (!endurance_) {
    throw std::invalid_argument("UniformEventSimulator: null endurance map");
  }
  if (endurance_->geometry().num_lines() > UINT32_MAX) {
    throw std::invalid_argument(
        "UniformEventSimulator: device exceeds 2^32 lines");
  }
  if (scheme_.working_lines() == 0) {
    throw std::invalid_argument("UniformEventSimulator: empty working set");
  }
}

void UniformEventSimulator::set_observer(const Observer& obs) {
  obs_ = obs;
  scheme_.set_observer(obs);
}

void UniformEventSimulator::set_index_rates(std::vector<double> weights) {
  const std::uint64_t u = scheme_.working_lines();
  if (weights.size() != u) {
    throw std::invalid_argument(
        "UniformEventSimulator::set_index_rates: weight count " +
        std::to_string(weights.size()) + " != working lines " +
        std::to_string(u));
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument(
          "UniformEventSimulator::set_index_rates: weights must be finite "
          "and non-negative");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument(
        "UniformEventSimulator::set_index_rates: weight sum must be > 0");
  }
  // Normalize so the mean-weight index writes once per round: rates sum to
  // u, and a uniform input becomes exactly 1.0 per index (reproducing the
  // unweighted arithmetic bit-for-bit).
  const double scale = static_cast<double>(u) / total;
  for (double& w : weights) w *= scale;
  index_rates_ = std::move(weights);
}

LifetimeResult UniformEventSimulator::run() {
  const DeviceGeometry& geom = endurance_->geometry();
  const std::uint64_t n = geom.num_lines();
  const std::uint64_t u = scheme_.working_lines();
  const ScopedTimer run_span(obs_.trace, "event_sim.run");
  const ScopedProfPhase prof_span(obs_.profiler, ProfPhase::kEventRun);

  // Working state lives in a bump arena: a run-local one by default, the
  // caller's via set_scratch() when many devices run back-to-back.
  Arena local_scratch;
  Arena& arena = scratch_ != nullptr ? *scratch_ : local_scratch;
  arena.reset();

  // Integer budgets identical to Device's rounding, kept as doubles for the
  // continuous-time arithmetic.
  const std::span<double> remaining = arena.make_span<double>(n);
  for (std::uint64_t l = 0; l < n; ++l) {
    remaining[l] = static_cast<double>(static_cast<WriteCount>(std::llround(
        std::max(1.0, endurance_->line_endurance(PhysLineAddr{l})))));
  }

  // Initial budgets, kept so per-line utilization (consumed / budget) can be
  // reported at end of run — the event-driven analogue of analyze_wear().
  const std::span<double> budget = arena.make_span<double>(n);
  std::copy(remaining.begin(), remaining.end(), budget.begin());

  // Per-index write rate (writes per round): 1.0 everywhere in the uniform
  // default, the normalized weight vector otherwise. A line's wear rate is
  // the sum over the indices it serves — integer-valued doubles in the
  // uniform case, so the weighted code path reproduces the historical
  // uint32 load arithmetic exactly.
  const bool weighted = !index_rates_.empty();
  const auto idx_rate = [&](std::uint32_t idx) {
    return weighted ? index_rates_[idx] : 1.0;
  };

  const std::span<double> rate = arena.make_span<double>(n);
  const std::span<double> last_t = arena.make_span<double>(n);
  const std::span<std::uint32_t> version = arena.make_span<std::uint32_t>(n);
  // Reverse map backing line -> working indices, as intrusive lists.
  const std::span<std::uint32_t> list_head = arena.make_span<std::uint32_t>(n);
  const std::span<std::uint32_t> list_next = arena.make_span<std::uint32_t>(u);
  std::fill(list_head.begin(), list_head.end(), kNone);
  std::fill(list_next.begin(), list_next.end(), kNone);

  for (std::uint64_t idx = 0; idx < u; ++idx) {
    const std::uint64_t b = scheme_.resolve(idx).value();
    list_next[idx] = list_head[b];
    list_head[b] = static_cast<std::uint32_t>(idx);
    rate[b] += idx_rate(static_cast<std::uint32_t>(idx));
  }

  // The death heap's storage comes from the arena too: reserving up front
  // makes the common case (deaths ≈ lines) grow-free, and any overflow
  // growth still bump-allocates instead of hitting the system allocator.
  using HeapVec = std::vector<HeapEntry, ArenaAllocator<HeapEntry>>;
  HeapVec heap_storage{ArenaAllocator<HeapEntry>(&arena)};
  heap_storage.reserve(n + 64);
  std::priority_queue<HeapEntry, HeapVec, std::greater<>> heap{
      std::greater<>{}, std::move(heap_storage)};
  for (std::uint64_t l = 0; l < n; ++l) {
    if (rate[l] > 0.0) {
      heap.emplace(remaining[l] / rate[l], static_cast<std::uint32_t>(l),
                   version[l]);
    }
  }

  // Accrue wear on `l` up to time `t` under its current rate.
  const auto settle = [&](std::uint64_t l, double t) {
    remaining[l] -= (t - last_t[l]) * rate[l];
    if (remaining[l] < 0) remaining[l] = 0;  // floating-point slack only
    last_t[l] = t;
  };

  LifetimeResult result;
  result.ideal_lifetime = endurance_->ideal_lifetime();

  double t = 0.0;
  std::uint64_t deaths = 0;
  // Per-region death counts for region_wear_out events; every line dies at
  // most once here (dead lines are never re-homed onto), so exact.
  std::span<std::uint64_t> region_line_deaths;
  if (obs_.events != nullptr) {
    region_line_deaths = arena.make_span<std::uint64_t>(geom.num_regions());
  }

  while (!heap.empty() && !result.failed) {
    const auto [death_time, line, v] = heap.top();
    heap.pop();
    if (v != version[line] || rate[line] <= 0.0) continue;  // stale entry

    t = death_time;
    remaining[line] = 0;
    last_t[line] = t;
    ++version[line];
    ++deaths;

    if (obs_.events != nullptr) {
      // The write clock is the continuous-time equivalent: t rounds of u
      // uniform user writes each.
      obs_.events->set_now(t * static_cast<double>(u));
      const RegionId region = geom.region_of(PhysLineAddr{line});
      if (++region_line_deaths[region.value()] == geom.lines_per_region()) {
        obs_.events->emit(
            "region_wear_out",
            {{"region", static_cast<double>(region.value())}});
      }
    }
    if (obs_.trace != nullptr) {
      obs_.trace->instant(
          "wear_out",
          {{"line", static_cast<double>(line)},
           {"region",
            static_cast<double>(geom.region_of(PhysLineAddr{line}).value())},
           {"sim_rounds", t},
           {"worn_out_lines", static_cast<double>(deaths)}});
    }
    if (obs_.snapshots != nullptr &&
        obs_.snapshots->due(t * static_cast<double>(u))) {
      SnapshotContext ctx;
      ctx.spare = &scheme_;
      ctx.user_writes = t * static_cast<double>(u);
      ctx.sim_rounds = t;
      obs_.snapshots->snapshot(ctx);
      if (obs_.trace != nullptr) {
        const SpareSchemeStats s = scheme_.stats();
        obs_.trace->counter(
            "wear",
            {{"line_deaths", static_cast<double>(deaths)},
             {"spares_remaining", static_cast<double>(s.spares_remaining)},
             {"lmt_entries", static_cast<double>(s.lmt_entries)}});
      }
    }

    // Re-home every working index the dead line was serving.
    const ScopedProfPhase rescue_span(obs_.profiler, ProfPhase::kEventRescue);
    if (obs_.profiler != nullptr) {
      obs_.profiler->add(ProfCounter::kRescueEvents);
    }
    std::uint32_t idx = list_head[line];
    list_head[line] = kNone;
    rate[line] = 0.0;
    while (idx != kNone) {
      const std::uint32_t next_idx = list_next[idx];
      // A replacement can land on a line whose own wear-out falls at this
      // exact round (ties are common: every line of a region shares its
      // endurance). Such a replacement is worn out by its very next write,
      // so keep replacing until the backing has capacity left.
      std::uint64_t nb = 0;
      bool replaced = false;
      while (true) {
        if (!scheme_.on_wear_out(idx)) break;
        nb = scheme_.resolve(idx).value();
        settle(nb, t);
        if (remaining[nb] > 0) {
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        result.failed = true;
        result.failure_reason = "unreplaceable wear-out at working index " +
                                std::to_string(idx) + " (line " +
                                std::to_string(line) + ") after " +
                                std::to_string(deaths) + " line deaths";
        if (obs_.events != nullptr) {
          obs_.events->emit(
              "end_of_life",
              {{"cause", "unreplaceable_wear_out"},
               {"working_index", static_cast<double>(idx)},
               {"line", static_cast<double>(line)},
               {"region", static_cast<double>(
                              geom.region_of(PhysLineAddr{line}).value())},
               {"user_writes", t * static_cast<double>(u)},
               {"line_deaths", static_cast<double>(deaths)}});
        }
        break;
      }
      list_next[idx] = list_head[nb];
      list_head[nb] = idx;
      rate[nb] += idx_rate(idx);
      ++version[nb];
      if (rate[nb] > 0.0) {
        heap.emplace(t + remaining[nb] / rate[nb],
                     static_cast<std::uint32_t>(nb), version[nb]);
      }
      idx = next_idx;
    }
  }

  if (!result.failed) {
    // Defensive: with the bundled schemes failure always precedes heap
    // exhaustion, but a custom scheme with unbounded spares could get here.
    result.failed = true;
    result.failure_reason = "all backed lines worn out";
    if (obs_.events != nullptr) {
      obs_.events->emit("end_of_life",
                        {{"cause", "all_backed_lines_worn"},
                         {"user_writes", t * static_cast<double>(u)},
                         {"line_deaths", static_cast<double>(deaths)}});
    }
  }

  result.user_writes = t * static_cast<double>(u);
  result.line_deaths = deaths;
  result.normalized = result.ideal_lifetime > 0
                          ? result.user_writes / result.ideal_lifetime
                          : 0.0;

  // Per-line utilization Gini at end of run, matching analyze_wear()'s
  // definition. Lines still under load accrued wear since their last
  // settle; bring every line up to the failure time first.
  {
    const std::span<double> utilization = arena.make_span<double>(n);
    for (std::uint64_t l = 0; l < n; ++l) {
      if (rate[l] > 0.0) settle(l, t);
      utilization[l] =
          budget[l] > 0 ? (budget[l] - remaining[l]) / budget[l] : 0.0;
    }
    result.wear_gini = gini_coefficient_inplace(utilization);
  }

  if (obs_.events != nullptr) {
    obs_.events->set_now(result.user_writes);
    obs_.events->emit("run_end",
                      {{"outcome", "device_failure"},
                       {"user_writes", result.user_writes},
                       {"line_deaths", static_cast<double>(deaths)}});
  }
  if (obs_.metrics != nullptr) {
    // Mirror the stochastic engine's metric names so downstream tooling
    // reads either engine's output unchanged.
    MetricsRegistry& m = *obs_.metrics;
    m.counter("engine.user_writes")
        .set(static_cast<std::uint64_t>(result.user_writes));
    m.counter("engine.line_deaths").set(deaths);
    m.counter("device.wear_outs").set(deaths);
    const SpareSchemeStats s = scheme_.stats();
    m.counter("spare.replacements").set(s.replacements);
    m.gauge("spare.spares_remaining")
        .set(static_cast<double>(s.spares_remaining));
    m.gauge("spare.lmt_entries").set(static_cast<double>(s.lmt_entries));
    m.gauge("spare.rmt_entries").set(static_cast<double>(s.rmt_entries));
    m.gauge("event_sim.rounds").set(t);
  }
  if (obs_.snapshots != nullptr) {
    SnapshotContext ctx;
    ctx.spare = &scheme_;
    ctx.user_writes = result.user_writes;
    ctx.sim_rounds = t;
    obs_.snapshots->snapshot_now(ctx);
  }
  return result;
}

}  // namespace nvmsec
