// System-level (multi-bank) lifetime.
//
// The paper evaluates "a 1GB NVM bank" (§5.1); a deployed module has many
// banks, each with its own endurance draw and its own spare capacity, and
// the module is dead when its first bank dies (capacity guarantees are
// per-module). With line-interleaved addressing a uniform attack stays
// uniform within every bank, so the per-bank experiment is exactly the
// single-bank experiment with an independent endurance map — the system
// question is purely extreme-value statistics: lifetime_min shrinks as the
// bank count grows, and protection schemes matter *more* at system scale
// because they compress the per-bank lifetime distribution (see
// bench_ext_lifetime_distribution).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.h"

namespace nvmsec {

struct MultiBankResult {
  /// Per-bank normalized lifetimes, bank order.
  std::vector<double> per_bank;
  /// System lifetime: the first bank death ends the module.
  double system_normalized{0};
  /// Index of the limiting bank.
  std::uint32_t weakest_bank{0};
  double mean_bank{0};
  double max_bank{0};
};

/// Run `banks` independent per-bank experiments (bank b uses seed
/// config.seed + b) and aggregate. Throws on banks == 0.
MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks);

}  // namespace nvmsec
