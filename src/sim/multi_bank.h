// System-level (multi-bank) lifetime.
//
// The paper evaluates "a 1GB NVM bank" (§5.1); a deployed module has many
// banks, each with its own endurance draw and its own spare capacity, and
// the module is dead when its first bank dies (capacity guarantees are
// per-module). With line-interleaved addressing a uniform attack stays
// uniform within every bank, so the per-bank experiment is exactly the
// single-bank experiment with an independent endurance map — the system
// question is purely extreme-value statistics: lifetime_min shrinks as the
// bank count grows, and protection schemes matter *more* at system scale
// because they compress the per-bank lifetime distribution (see
// bench_ext_lifetime_distribution).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.h"

namespace nvmsec {

struct MultiBankResult {
  /// Per-bank normalized lifetimes, bank order.
  std::vector<double> per_bank;
  /// System lifetime: the first bank death ends the module.
  double system_normalized{0};
  /// Index of the limiting bank. Tie rule: when several banks share the
  /// minimum lifetime (e.g. a variation-free endurance model), this is the
  /// FIRST such bank — explicit so the serial and parallel paths, and any
  /// future reordering of bank execution, agree exactly.
  std::uint32_t weakest_bank{0};
  double mean_bank{0};
  double max_bank{0};
};

/// Aggregate per-bank lifetimes (bank order) into a MultiBankResult.
/// Single reduction shared by the serial and parallel run_multi_bank paths
/// so their outputs are identical by construction; implements the
/// first-bank-at-minimum tie rule above. Throws on empty input.
MultiBankResult aggregate_multi_bank(std::vector<double> per_bank);

/// Run `banks` independent per-bank experiments (bank b uses seed
/// config.seed + b) and aggregate. Throws on banks == 0. Strictly serial;
/// sim/parallel.h has the overload that fans banks out across a pool.
MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks);

}  // namespace nvmsec
