#include "sim/parallel.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "obs/observer.h"
#include "sim/endurance_cache.h"
#include "util/thread_pool.h"

namespace nvmsec {

std::size_t ParallelOptions::effective_jobs() const {
  return jobs == 0 ? ThreadPool::hardware_workers() : jobs;
}

namespace {

// jobs > 1 with the same sink object reachable from two runs would let two
// threads write one MetricsRegistry/TraceWriter/SnapshotEmitter
// concurrently; none of them are synchronized (by design — the serial hot
// path pays no locks). Detect sharing up front and fail with advice.
void reject_shared_sinks(std::span<const ExperimentConfig> configs) {
  std::unordered_set<const void*> seen;
  const auto check = [&seen](const void* sink, const char* kind) {
    if (sink == nullptr) return;
    if (!seen.insert(sink).second) {
      throw std::invalid_argument(
          std::string("run_experiments: the same ") + kind +
          " sink is attached to more than one run; shared observer sinks "
          "are serial-only — run with jobs = 1, or give each run its own "
          "sinks");
    }
  };
  for (const ExperimentConfig& config : configs) {
    check(config.observer.metrics, "metrics");
    check(config.observer.trace, "trace");
    check(config.observer.snapshots, "snapshot");
  }
}

}  // namespace

std::vector<LifetimeResult> run_experiments(
    std::span<const ExperimentConfig> configs,
    const ParallelOptions& options) {
  std::vector<LifetimeResult> results(configs.size());
  if (configs.empty()) return results;

  const std::size_t jobs =
      std::min(options.effective_jobs(), configs.size());
  if (jobs <= 1) {
    // Today's exact serial path: one thread, maps rebuilt per run.
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_experiment(configs[i]);
    }
    return results;
  }

  reject_shared_sinks(configs);
  EnduranceMapCache* cache =
      options.use_cache
          ? (options.cache != nullptr ? options.cache
                                      : &EnduranceMapCache::global())
          : nullptr;

  // The calling thread drives alongside the pool inside parallel_for_each,
  // so `jobs` total threads do experiment work.
  ThreadPool pool(jobs - 1);
  pool.parallel_for_each(configs.size(), [&](std::size_t i) {
    results[i] = run_experiment(configs[i], cache);
  });
  return results;
}

MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks,
                               const ParallelOptions& options) {
  if (banks == 0) {
    throw std::invalid_argument("run_multi_bank: banks must be > 0");
  }
  std::vector<ExperimentConfig> bank_configs(banks, config);
  for (std::uint32_t b = 0; b < banks; ++b) {
    bank_configs[b].seed = config.seed + b;
  }
  const std::vector<LifetimeResult> results =
      run_experiments(bank_configs, options);
  std::vector<double> per_bank;
  per_bank.reserve(banks);
  for (const LifetimeResult& r : results) per_bank.push_back(r.normalized);
  return aggregate_multi_bank(std::move(per_bank));
}

}  // namespace nvmsec
