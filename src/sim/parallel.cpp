#include "sim/parallel.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "obs/observer.h"
#include "obs/profiler.h"
#include "sim/checkpoint.h"
#include "sim/endurance_cache.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace nvmsec {

std::size_t ParallelOptions::effective_jobs() const {
  return jobs == 0 ? ThreadPool::hardware_workers() : jobs;
}

namespace {

// jobs > 1 with the same sink object reachable from two runs would let two
// threads write one MetricsRegistry/TraceWriter/SnapshotEmitter
// concurrently; none of them are synchronized (by design — the serial hot
// path pays no locks). Detect sharing up front and fail with advice.
void reject_shared_sinks(std::span<const ExperimentConfig> configs) {
  std::unordered_set<const void*> seen;
  const auto check = [&seen](const void* sink, const char* kind) {
    if (sink == nullptr) return;
    if (!seen.insert(sink).second) {
      throw std::invalid_argument(
          std::string("run_experiments: the same ") + kind +
          " sink is attached to more than one run; shared observer sinks "
          "are serial-only — run with jobs = 1, or give each run its own "
          "sinks");
    }
  };
  for (const ExperimentConfig& config : configs) {
    check(config.observer.metrics, "metrics");
    check(config.observer.trace, "trace");
    check(config.observer.snapshots, "snapshot");
    check(config.observer.events, "event-log");
    check(config.observer.profiler, "profiler");
  }
}

void save_result(StateWriter& w, const LifetimeResult& r) {
  w.f64(r.user_writes);
  w.u64(r.overhead_writes);
  w.u64(r.absorbed_writes);
  w.u64(r.device_writes);
  w.f64(r.ideal_lifetime);
  w.f64(r.normalized);
  w.u64(r.line_deaths);
  w.boolean(r.failed);
  w.str(r.failure_reason);
  w.f64(r.wear_gini);
  w.u64(r.windows_observed);
  w.u64(r.anomalous_windows);
  w.u64(r.alarms_raised);
  w.u64(r.windows_in_alarm);
  w.u64(r.cadence_changes);
}

Status load_result(StateReader& r, LifetimeResult& out) {
  if (Status st = r.f64(out.user_writes); !st.ok()) return st;
  if (Status st = r.u64(out.overhead_writes); !st.ok()) return st;
  if (Status st = r.u64(out.absorbed_writes); !st.ok()) return st;
  if (Status st = r.u64(out.device_writes); !st.ok()) return st;
  if (Status st = r.f64(out.ideal_lifetime); !st.ok()) return st;
  if (Status st = r.f64(out.normalized); !st.ok()) return st;
  if (Status st = r.u64(out.line_deaths); !st.ok()) return st;
  if (Status st = r.boolean(out.failed); !st.ok()) return st;
  if (Status st = r.str(out.failure_reason); !st.ok()) return st;
  if (Status st = r.f64(out.wear_gini); !st.ok()) return st;
  if (Status st = r.u64(out.windows_observed); !st.ok()) return st;
  if (Status st = r.u64(out.anomalous_windows); !st.ok()) return st;
  if (Status st = r.u64(out.alarms_raised); !st.ok()) return st;
  if (Status st = r.u64(out.windows_in_alarm); !st.ok()) return st;
  return r.u64(out.cadence_changes);
}

/// Tracks which runs of a sweep have finished and mirrors them to a
/// checkpoint file after every completion (atomic rewrite, so a SIGKILL at
/// any moment leaves a loadable file covering every finished run).
class SweepCheckpoint {
 public:
  SweepCheckpoint(std::string path, std::span<const ExperimentConfig> configs,
                  std::vector<LifetimeResult>& results)
      : path_(std::move(path)), results_(results), done_(configs.size(), 0) {
    fingerprints_.reserve(configs.size());
    for (const ExperimentConfig& c : configs) {
      fingerprints_.push_back(config_fingerprint(c));
    }
  }

  /// Load previously finished runs; missing file = fresh start. Records
  /// whose fingerprint does not match the current config are re-run.
  void resume() {
    Result<std::vector<std::uint8_t>> payload = load_checkpoint_file(path_);
    if (!payload.ok() && payload.status().code() == StatusCode::kNotFound) {
      return;
    }
    payload.status().throw_if_error();
    StateReader r(payload.value());
    std::uint64_t count = 0;
    r.u64(count).throw_if_error();
    for (std::uint64_t k = 0; k < count; ++k) {
      std::uint64_t index = 0;
      std::uint64_t fingerprint = 0;
      LifetimeResult result;
      r.u64(index).throw_if_error();
      r.u64(fingerprint).throw_if_error();
      load_result(r, result).throw_if_error();
      if (index < done_.size() && fingerprint == fingerprints_[index]) {
        results_[index] = result;
        done_[index] = 1;
      }
    }
  }

  [[nodiscard]] bool is_done(std::size_t i) const { return done_[i] != 0; }

  /// Mark run `i` finished and rewrite the checkpoint file. Thread-safe.
  void record(std::size_t i) {
    const std::lock_guard<std::mutex> lock(mu_);
    done_[i] = 1;
    StateWriter w;
    std::uint64_t count = 0;
    for (char d : done_) count += d != 0 ? 1 : 0;
    w.u64(count);
    for (std::size_t k = 0; k < done_.size(); ++k) {
      if (done_[k] == 0) continue;
      w.u64(k);
      w.u64(fingerprints_[k]);
      save_result(w, results_[k]);
    }
    save_checkpoint_file(path_, w.take()).throw_if_error();
  }

 private:
  std::string path_;
  std::vector<LifetimeResult>& results_;
  std::vector<char> done_;
  std::vector<std::uint64_t> fingerprints_;
  std::mutex mu_;
};

}  // namespace

std::vector<LifetimeResult> run_experiments(
    std::span<const ExperimentConfig> configs,
    const ParallelOptions& options) {
  std::vector<LifetimeResult> results(configs.size());
  if (configs.empty()) return results;

  std::unique_ptr<SweepCheckpoint> checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint = std::make_unique<SweepCheckpoint>(options.checkpoint_path,
                                                   configs, results);
    if (options.resume) checkpoint->resume();
  } else if (options.resume) {
    throw std::invalid_argument(
        "run_experiments: resume needs a checkpoint_path to resume from");
  }
  const auto skip = [&checkpoint](std::size_t i) {
    return checkpoint != nullptr && checkpoint->is_done(i);
  };
  const auto record = [&checkpoint](std::size_t i) {
    if (checkpoint != nullptr) checkpoint->record(i);
  };

  const std::size_t jobs =
      std::min(options.effective_jobs(), configs.size());
  if (jobs <= 1) {
    // Today's exact serial path: one thread, maps rebuilt per run. The
    // single profiler (when requested) is written by this thread only.
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (skip(i)) continue;
      if (options.profiler != nullptr) {
        ExperimentConfig profiled = configs[i];
        profiled.observer.profiler = options.profiler;
        results[i] = run_experiment(profiled);
      } else {
        results[i] = run_experiment(configs[i]);
      }
      record(i);
    }
    return results;
  }

  // Profiled sweeps give every run a private Profiler (no locks on the hot
  // path) and merge them into options.profiler in input order after the
  // join; the original configs are never mutated.
  std::vector<Profiler> run_profilers;
  std::vector<ExperimentConfig> profiled_configs;
  std::span<const ExperimentConfig> effective = configs;
  if (options.profiler != nullptr) {
    run_profilers.resize(configs.size());
    profiled_configs.assign(configs.begin(), configs.end());
    for (std::size_t i = 0; i < profiled_configs.size(); ++i) {
      profiled_configs[i].observer.profiler = &run_profilers[i];
    }
    effective = profiled_configs;
  }

  reject_shared_sinks(effective);
  EnduranceMapCache* cache =
      options.use_cache
          ? (options.cache != nullptr ? options.cache
                                      : &EnduranceMapCache::global())
          : nullptr;

  // The calling thread drives alongside the pool inside parallel_for_each,
  // so `jobs` total threads do experiment work.
  ThreadPool pool(jobs - 1);
  std::vector<WorkerUtilization> utilization;
  const std::uint64_t section_start = Profiler::now_ns();
  const std::uint64_t cache_evictions_before =
      cache != nullptr ? cache->evictions() : 0;
  pool.parallel_for_each(
      effective.size(),
      [&](std::size_t i) {
        if (skip(i)) return;
        results[i] = run_experiment(effective[i], cache);
        record(i);
      },
      options.profiler != nullptr ? &utilization : nullptr);
  if (options.profiler != nullptr) {
    const std::uint64_t section_ns = Profiler::now_ns() - section_start;
    for (const Profiler& p : run_profilers) options.profiler->merge(p);
    std::vector<ProfWorkerStats> workers;
    workers.reserve(utilization.size());
    for (const WorkerUtilization& u : utilization) {
      workers.push_back(ProfWorkerStats{u.busy_ns, u.tasks});
    }
    options.profiler->set_utilization(workers, section_ns);
    if (cache != nullptr) {
      // hit/miss per run already came through the merge; evictions are a
      // cache-wide property only the sweep level can see.
      options.profiler->add(ProfCounter::kEnduranceCacheEvict,
                            cache->evictions() - cache_evictions_before);
    }
  }
  return results;
}

MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks,
                               const ParallelOptions& options) {
  if (banks == 0) {
    throw std::invalid_argument("run_multi_bank: banks must be > 0");
  }
  std::vector<ExperimentConfig> bank_configs(banks, config);
  for (std::uint32_t b = 0; b < banks; ++b) {
    bank_configs[b].seed = config.seed + b;
  }
  const std::vector<LifetimeResult> results =
      run_experiments(bank_configs, options);
  std::vector<double> per_bank;
  per_bank.reserve(banks);
  for (const LifetimeResult& r : results) per_bank.push_back(r.normalized);
  return aggregate_multi_bank(std::move(per_bank));
}

}  // namespace nvmsec
