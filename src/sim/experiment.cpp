#include "sim/experiment.h"

#include <cmath>
#include <stdexcept>

#include "attack/attack.h"
#include "attack/zipf.h"
#include "cache/dram_buffer.h"
#include "core/maxwe.h"
#include "spare/freep.h"
#include "nvm/device.h"
#include "sim/bit_engine.h"
#include "sim/endurance_cache.h"
#include "sim/engine.h"
#include "sim/event_sim.h"
#include "spare/spare_scheme.h"
#include "util/rng.h"

namespace nvmsec {

std::uint64_t ExperimentConfig::spare_lines() const {
  const auto spare_regions = static_cast<std::uint64_t>(std::llround(
      spare_fraction * static_cast<double>(geometry.num_regions())));
  return spare_regions * geometry.lines_per_region();
}

namespace {

std::unique_ptr<SpareScheme> build_spare_scheme(
    const ExperimentConfig& config,
    const std::shared_ptr<const EnduranceMap>& endurance, Rng& rng) {
  const std::string& name = config.spare_scheme;
  if (name == "none") return make_no_spare(endurance);
  const std::uint64_t spare_lines = config.spare_lines();
  if (spare_lines == 0) {
    throw std::invalid_argument(
        "run_experiment: spare scheme '" + name +
        "' needs a non-zero spare budget (spare_fraction too small?)");
  }
  if (name == "pcd") return make_pcd(endurance, spare_lines, rng);
  if (name == "ps") return make_ps(endurance, spare_lines, rng);
  if (name == "ps-worst") return make_ps_worst(endurance, spare_lines, rng);
  if (name == "freep") return make_freep(endurance, spare_lines);
  if (name == "maxwe") {
    MaxWeParams params;
    params.spare_fraction = config.spare_fraction;
    params.swr_fraction = config.swr_fraction;
    return make_maxwe(endurance, params);
  }
  throw std::invalid_argument("run_experiment: unknown spare scheme '" + name +
                              "'");
}

}  // namespace

LifetimeResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, nullptr);
}

LifetimeResult run_experiment(const ExperimentConfig& config,
                              EnduranceMapCache* cache) {
  Rng rng(config.seed);

  std::shared_ptr<const EnduranceMap> map;
  if (cache != nullptr) {
    EnduranceMapCache::BuiltMap built =
        cache->get_or_build(config.geometry, config.endurance, config.seed,
                            config.line_jitter_sigma);
    map = std::move(built.map);
    // Continue the seed's stream from where map construction left it; this
    // is what keeps cached and cold runs bit-identical (the spare schemes
    // draw from the same rng next).
    rng = built.rng_after_build;
  } else {
    const EnduranceModel model(config.endurance);
    auto fresh = std::make_shared<EnduranceMap>(
        EnduranceMap::from_model(config.geometry, model, rng));
    if (config.line_jitter_sigma > 0) {
      fresh->apply_line_jitter(config.line_jitter_sigma, rng);
    }
    map = std::move(fresh);
  }

  auto spare = build_spare_scheme(config, map, rng);

  if (config.mode == SimulationMode::kUniformEvent) {
    if (config.attack != "uaa") {
      throw std::invalid_argument(
          "run_experiment: the event-driven engine models uniform sweeps; "
          "use stochastic mode for attack '" + config.attack + "'");
    }
    if (config.wear_leveler != "none") {
      throw std::invalid_argument(
          "run_experiment: the event-driven engine is wear-leveler-free "
          "(bijective remapping does not change uniform-rate wear); use "
          "stochastic mode to include wear-leveler overhead");
    }
    UniformEventSimulator sim(map, *spare);
    sim.set_observer(config.observer);
    return sim.run();
  }

  std::unique_ptr<Attack> attack;
  if (config.attack == "bpa") {
    attack = make_bpa(config.bpa_burst);
  } else if (config.attack == "zipf") {
    attack = make_zipf(config.zipf_skew, spare->working_lines(), config.seed);
  } else {
    attack = make_attack(config.attack);
  }

  EnduranceView view(spare->working_lines());
  for (std::uint64_t i = 0; i < view.size(); ++i) {
    view[i] = map->line_endurance(spare->working_line(i));
  }
  WearLevelerParams wl_params = config.wl;
  if (wl_params.group_lines == 0 &&
      spare->working_lines() % config.geometry.lines_per_region() == 0) {
    // Align the endurance-aware levelers' groups with the device's regions
    // (possible whenever the spare scheme reserves whole regions, as Max-WE
    // does): a group then has one endurance, not a weak/strong mixture.
    wl_params.group_lines = config.geometry.lines_per_region();
  }
  auto wl = make_wear_leveler(config.wear_leveler, spare->working_lines(),
                              view, wl_params, rng);

  if (config.mode == SimulationMode::kBitLevel) {
    if (config.dram_buffer_lines > 0) {
      throw std::invalid_argument(
          "run_experiment: the bit-level engine does not support the DRAM "
          "buffer yet; use stochastic mode");
    }
    BitDeviceParams dp;
    dp.cell_sigma = config.cell_sigma;
    dp.ecp_entries = config.ecp_entries;
    BitDevice device(map, dp, rng);
    auto payload = make_payload(config.payload);
    auto codec = make_codec(config.codec);
    BitEngine engine(device, *attack, *payload, *codec, *wl, *spare, rng);
    return engine.run(config.max_user_writes);
  }

  Device device(map);
  Engine engine(device, *attack, *wl, *spare, rng);
  engine.set_observer(config.observer);
  std::unique_ptr<DramBuffer> buffer;
  if (config.dram_buffer_lines > 0) {
    buffer = std::make_unique<DramBuffer>(config.dram_buffer_lines);
    engine.set_front_buffer(buffer.get());
  }
  return engine.run(config.max_user_writes);
}

ExperimentConfig scaled_stochastic_config(std::uint64_t num_lines,
                                          std::uint64_t num_regions,
                                          double endurance_at_mean) {
  ExperimentConfig config;
  config.geometry = DeviceGeometry::scaled(num_lines, num_regions);
  config.endurance.endurance_at_mean = endurance_at_mean;
  config.mode = SimulationMode::kStochastic;
  // Scale the remap cadences with the endurance scale: at full scale the
  // worst-case wear a line absorbs between remaps (interval, or
  // subregion_lines * interval for TLSR) is a vanishing fraction of any
  // line's endurance, and the scheme comparison only holds if that stays
  // true after scaling (otherwise wear-outs stop being endurance-ordered).
  config.wl.swap_interval = 20;
  config.wl.tlsr_subregion_lines = 32;
  config.bpa_burst = 200;
  return config;
}

}  // namespace nvmsec
