#include "sim/experiment.h"

#include <cmath>
#include <optional>
#include <stdexcept>

#include "attack/attack.h"
#include "attack/mixed.h"
#include "attack/zipf.h"
#include "cache/dram_buffer.h"
#include "core/maxwe.h"
#include "fault/device_faults.h"
#include "fault/metadata_faults.h"
#include "obs/event_log.h"
#include "obs/profiler.h"
#include "spare/freep.h"
#include "nvm/device.h"
#include "sim/bit_engine.h"
#include "sim/checkpoint.h"
#include "sim/endurance_cache.h"
#include "sim/engine.h"
#include "sim/event_sim.h"
#include "spare/spare_scheme.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace nvmsec {

std::uint64_t ExperimentConfig::spare_lines() const {
  const auto spare_regions = static_cast<std::uint64_t>(std::llround(
      spare_fraction * static_cast<double>(geometry.num_regions())));
  return spare_regions * geometry.lines_per_region();
}

namespace {

std::unique_ptr<SpareScheme> build_spare_scheme(
    const ExperimentConfig& config,
    const std::shared_ptr<const EnduranceMap>& endurance, Rng& rng) {
  const std::string& name = config.spare_scheme;
  if (name == "none") return make_no_spare(endurance);
  const std::uint64_t spare_lines = config.spare_lines();
  if (spare_lines == 0) {
    throw std::invalid_argument(
        "run_experiment: spare scheme '" + name +
        "' needs a non-zero spare budget (spare_fraction too small?)");
  }
  if (name == "pcd") return make_pcd(endurance, spare_lines, rng);
  if (name == "ps") return make_ps(endurance, spare_lines, rng);
  if (name == "ps-worst") return make_ps_worst(endurance, spare_lines, rng);
  if (name == "freep") return make_freep(endurance, spare_lines);
  if (name == "maxwe") {
    MaxWeParams params;
    params.spare_fraction = config.spare_fraction;
    params.swr_fraction = config.swr_fraction;
    return make_maxwe(endurance, params);
  }
  throw std::invalid_argument("run_experiment: unknown spare scheme '" + name +
                              "'");
}

/// Fault injection and checkpointing only make sense where there is a
/// run-time trajectory to perturb or to save; reject the combinations that
/// would silently do nothing instead.
void validate_robustness_config(const ExperimentConfig& config) {
  if (config.checkpoint_out.empty() != (config.checkpoint_interval == 0)) {
    throw std::invalid_argument(
        "run_experiment: checkpoint_out and checkpoint_interval must be set "
        "together");
  }
  if ((!config.checkpoint_out.empty() || !config.resume_from.empty()) &&
      config.mode != SimulationMode::kStochastic) {
    throw std::invalid_argument(
        "run_experiment: checkpoint/resume captures per-write engine state; "
        "use stochastic mode");
  }
  if (config.fault.metadata.any()) {
    if (config.spare_scheme != "maxwe") {
      throw std::invalid_argument(
          "run_experiment: metadata faults target Max-WE's mapping tables; "
          "set spare_scheme=maxwe (got '" + config.spare_scheme + "')");
    }
    if (config.mode != SimulationMode::kStochastic) {
      throw std::invalid_argument(
          "run_experiment: metadata faults are injected at user-write "
          "boundaries; use stochastic mode");
    }
  }
  if ((config.attack == "mixed") != !config.mixed_phases.empty()) {
    throw std::invalid_argument(
        "run_experiment: mixed_phases must be set exactly when attack == "
        "'mixed'");
  }
  if (config.detect && config.mode != SimulationMode::kStochastic) {
    throw std::invalid_argument(
        "run_experiment: attack detection observes the per-write request "
        "stream; use stochastic mode");
  }
  if (config.adaptive) {
    if (!config.detect) {
      throw std::invalid_argument(
          "run_experiment: adaptive cadence control is driven by the "
          "detector's alarm signal; set detect too");
    }
    if (config.wear_leveler == "none") {
      throw std::invalid_argument(
          "run_experiment: adaptive cadence control needs a wear leveler "
          "with a tunable remap cadence (wear_leveler is 'none')");
    }
  }
}

}  // namespace

std::uint64_t config_fingerprint(const ExperimentConfig& config) {
  StateWriter w;
  w.u64(config.geometry.num_lines());
  w.u64(config.geometry.num_regions());
  w.f64(config.endurance.current_mean_ma);
  w.f64(config.endurance.current_stddev_ma);
  w.f64(config.endurance.truncate_sigma);
  w.f64(config.endurance.endurance_exponent);
  w.f64(config.endurance.endurance_at_mean);
  w.f64(config.line_jitter_sigma);
  w.u64(config.seed);
  w.str(config.attack);
  w.u64(config.bpa_burst);
  w.f64(config.zipf_skew);
  w.u64(config.hotspot_working_set);
  w.str(config.wear_leveler);
  w.u64(config.wl.swap_interval);
  w.u32(config.wl.bwl_classes);
  w.f64(config.wl.bwl_beta);
  w.f64(config.wl.wawl_alpha);
  w.u64(config.wl.group_lines);
  w.u64(config.wl.tlsr_subregion_lines);
  w.str(config.spare_scheme);
  w.f64(config.spare_fraction);
  w.f64(config.swr_fraction);
  w.u8(static_cast<std::uint8_t>(config.mode));
  w.u64(config.dram_buffer_lines);
  w.str(config.payload);
  w.str(config.codec);
  w.u32(config.ecp_entries);
  w.f64(config.cell_sigma);
  w.u64(config.fault.device.stuck_at_lines);
  w.u64(config.fault.device.early_death_lines);
  w.f64(config.fault.device.early_death_fraction);
  w.u64(config.fault.device.outlier_regions);
  w.f64(config.fault.device.outlier_factor);
  w.u64(config.fault.metadata.flip_interval);
  w.u64(config.fault.seed);
  w.str(config.mixed_phases);
  w.boolean(config.detect);
  w.u64(config.detector.window_writes);
  w.u32(config.detector.coarse_buckets);
  w.u32(config.detector.fine_buckets);
  w.f64(config.detector.sweep_uniformity_max);
  w.f64(config.detector.sweep_sequential_min);
  w.f64(config.detector.concentration_occupancy_max);
  w.u32(config.detector.raise_windows);
  w.u32(config.detector.clear_windows);
  w.boolean(config.adaptive);
  w.f64(config.adaptive_policy.escalate_factor);
  w.u32(config.adaptive_policy.max_steps);
  w.u32(config.adaptive_policy.hold_windows);
  w.u32(config.adaptive_policy.relax_windows);
  // FNV-1a over the canonical little-endian encoding above.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : w.buffer()) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

LifetimeResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, nullptr, nullptr);
}

LifetimeResult run_experiment(const ExperimentConfig& config,
                              EnduranceMapCache* cache) {
  return run_experiment(config, cache, nullptr);
}

ExperimentWorkspace::ExperimentWorkspace() = default;
ExperimentWorkspace::~ExperimentWorkspace() = default;

namespace {

const char* mode_name(SimulationMode mode) {
  switch (mode) {
    case SimulationMode::kStochastic: return "stochastic";
    case SimulationMode::kUniformEvent: return "event";
    case SimulationMode::kBitLevel: return "bit";
  }
  return "unknown";
}

}  // namespace

std::shared_ptr<const EnduranceMap> ExperimentWorkspace::acquire_map(
    const ExperimentConfig& config, Rng& rng) {
  const EnduranceModel model(config.endurance);
  const DeviceGeometry& g = config.geometry;
  // The slot is reusable only when the geometry matches and nothing else
  // still holds a reference: map_ itself plus (bookkept) the spare scheme
  // and device slots. Any other use_count means a previous run's objects
  // escaped — fall back to a fresh allocation rather than mutate shared
  // state under someone's feet.
  const long expected_refs =
      1 + (spare_on_map_ ? 1 : 0) + (device_on_map_ ? 1 : 0);
  const bool reusable = map_ != nullptr &&
                        map_->geometry().num_lines() == g.num_lines() &&
                        map_->geometry().num_regions() == g.num_regions() &&
                        map_->geometry().line_bytes() == g.line_bytes() &&
                        map_.use_count() == expected_refs;
  if (reusable) {
    // In-place rebuild consumes exactly the draws from_model would, so the
    // RNG stream — and everything sampled after it — is unchanged. The
    // spare/device slots still referencing the map are rebound below
    // before anything reads through them.
    map_->rebuild_from_model(model, rng);
  } else {
    map_ = std::make_shared<EnduranceMap>(
        EnduranceMap::from_model(g, model, rng));
    spare_on_map_ = false;
    device_on_map_ = false;
  }
  if (config.line_jitter_sigma > 0) {
    map_->apply_line_jitter(config.line_jitter_sigma, rng);
  }
  return map_;
}

SpareScheme* ExperimentWorkspace::acquire_spare(
    const ExperimentConfig& config,
    const std::shared_ptr<const EnduranceMap>& map, Rng& rng) {
  // Reuse requires the same construction key AND a scheme that supports
  // rebinding. A failed rebind has not touched the RNG stream, so falling
  // through to fresh construction stays bit-identical.
  const bool key_match = spare_ != nullptr &&
                         spare_name_ == config.spare_scheme &&
                         spare_fraction_ == config.spare_fraction &&
                         swr_fraction_ == config.swr_fraction;
  if (!key_match || !spare_->rebind(map, rng)) {
    spare_ = build_spare_scheme(config, map, rng);
    spare_name_ = config.spare_scheme;
    spare_fraction_ = config.spare_fraction;
    swr_fraction_ = config.swr_fraction;
  }
  spare_on_map_ = map.get() == map_.get();
  return spare_.get();
}

Device* ExperimentWorkspace::acquire_device(
    std::shared_ptr<const EnduranceMap> device_map) {
  device_on_map_ = device_map.get() == map_.get();
  if (device_ == nullptr) {
    device_ = std::make_unique<Device>(std::move(device_map));
  } else {
    device_->rebind(std::move(device_map));
  }
  return device_.get();
}

LifetimeResult run_experiment(const ExperimentConfig& config,
                              EnduranceMapCache* cache,
                              ExperimentWorkspace* workspace) {
  validate_robustness_config(config);
  if (config.observer.events != nullptr) {
    // First event of every run; a resumed run re-emits it, but the engine
    // rewinds the log to the checkpoint offset before continuing, so the
    // file never holds two. Written before the spare scheme exists so the
    // boot-time allocation events that follow have their config context.
    config.observer.events->set_now(0.0);
    config.observer.events->emit(
        "run_start",
        {{"mode", mode_name(config.mode)},
         {"attack", config.attack},
         {"wear_leveler", config.wear_leveler},
         {"spare", config.spare_scheme},
         {"seed", static_cast<double>(config.seed)},
         {"lines", static_cast<double>(config.geometry.num_lines())},
         {"regions", static_cast<double>(config.geometry.num_regions())},
         {"spare_fraction", config.spare_fraction},
         {"swr_fraction", config.swr_fraction},
         {"detect", config.detect ? 1.0 : 0.0},
         {"adaptive", config.adaptive ? 1.0 : 0.0}});
    if (!config.mixed_phases.empty()) {
      // Ground truth for post-mortem detector scoring: the report derives
      // each attack phase's onset write count from this schedule and the
      // detect_window events' "t" stamps.
      config.observer.events->emit("attack_phases",
                                   {{"schedule", config.mixed_phases}});
    }
  }
  Rng rng(config.seed);

  // Everything between here and the engine's run() is "setup": map build
  // (or cache hit), scheme/attack/leveler construction. The span is closed
  // before run() so setup and run never overlap in the profile.
  Profiler* const prof = config.observer.profiler;
  std::optional<ScopedProfPhase> setup_span;
  setup_span.emplace(prof, ProfPhase::kExperimentSetup);

  std::shared_ptr<const EnduranceMap> map;
  if (cache != nullptr) {
    EnduranceMapCache::BuiltMap built =
        cache->get_or_build(config.geometry, config.endurance, config.seed,
                            config.line_jitter_sigma);
    map = std::move(built.map);
    // Continue the seed's stream from where map construction left it; this
    // is what keeps cached and cold runs bit-identical (the spare schemes
    // draw from the same rng next).
    rng = built.rng_after_build;
    if (prof != nullptr) {
      prof->add(built.hit ? ProfCounter::kEnduranceCacheHit
                          : ProfCounter::kEnduranceCacheMiss);
    }
  } else if (workspace != nullptr) {
    map = workspace->acquire_map(config, rng);
  } else {
    const EnduranceModel model(config.endurance);
    auto fresh = std::make_shared<EnduranceMap>(
        EnduranceMap::from_model(config.geometry, model, rng));
    if (config.line_jitter_sigma > 0) {
      fresh->apply_line_jitter(config.line_jitter_sigma, rng);
    }
    map = std::move(fresh);
  }

  std::unique_ptr<SpareScheme> owned_spare;
  SpareScheme* spare = nullptr;
  if (workspace != nullptr) {
    spare = workspace->acquire_spare(config, map, rng);
  } else {
    owned_spare = build_spare_scheme(config, map, rng);
    spare = owned_spare.get();
  }

  // Device faults live in a copy of the map: the spare scheme and wear
  // leveler above planned on the clean manufacture-time characterization,
  // while the device wears out on the faulted reality — which is exactly
  // the divergence the fault model exists to exercise.
  std::shared_ptr<const EnduranceMap> device_map = map;
  if (config.fault.device.any()) {
    auto faulted = std::make_shared<EnduranceMap>(*map);
    const DeviceFaultReport injected =
        apply_device_faults(*faulted, config.fault.device, config.fault.seed);
    device_map = std::move(faulted);
    if (config.observer.events != nullptr) {
      config.observer.events->emit(
          "device_faults",
          {{"stuck_at_lines", static_cast<double>(injected.stuck_at_lines)},
           {"early_death_lines",
            static_cast<double>(injected.early_death_lines)},
           {"outlier_regions",
            static_cast<double>(injected.outlier_regions)}});
    }
  }

  if (config.mode == SimulationMode::kUniformEvent) {
    if (config.wear_leveler != "none") {
      throw std::invalid_argument(
          "run_experiment: the event-driven engine is wear-leveler-free "
          "(bijective remapping does not change stationary-rate wear); use "
          "stochastic mode to include wear-leveler overhead");
    }
    UniformEventSimulator sim(device_map, *spare);
    if (workspace != nullptr) sim.set_scratch(&workspace->arena());
    // The event engine bulk-advances any *stationary* per-index write-rate
    // vector (the mean-field limit of the stochastic sampling): uniform for
    // uaa/random, a hot working set for hotspot, the scattered skew for
    // zipf. BPA's burst pattern is non-stationary, so it stays stochastic.
    const std::uint64_t u = spare->working_lines();
    if (config.attack == "uaa" || config.attack == "random") {
      // Uniform rates: the default, no weight vector needed.
    } else if (config.attack == "hotspot") {
      if (config.hotspot_working_set == 0) {
        throw std::invalid_argument(
            "run_experiment: hotspot_working_set must be >= 1");
      }
      std::vector<double> weights(u, 0.0);
      const std::uint64_t set = std::min(config.hotspot_working_set, u);
      for (std::uint64_t i = 0; i < set; ++i) weights[i] = 1.0;
      sim.set_index_rates(std::move(weights));
    } else if (config.attack == "zipf") {
      sim.set_index_rates(
          zipf_address_rates(config.zipf_skew, u, config.seed));
    } else {
      throw std::invalid_argument(
          "run_experiment: the event-driven engine bulk-advances stationary "
          "write-rate phases; attack '" + config.attack +
          "' is non-stationary — use stochastic mode");
    }
    sim.set_observer(config.observer);
    setup_span.reset();
    return sim.run();
  }

  const auto build_one_attack =
      [&config](const std::string& name,
                std::uint64_t working_lines) -> std::unique_ptr<Attack> {
    if (name == "bpa") return make_bpa(config.bpa_burst);
    if (name == "zipf") {
      return make_zipf(config.zipf_skew, working_lines, config.seed);
    }
    if (name == "hotspot") {
      if (config.hotspot_working_set == 0) {
        throw std::invalid_argument(
            "run_experiment: hotspot_working_set must be >= 1");
      }
      return make_hotspot(config.hotspot_working_set);
    }
    return make_attack(name);
  };
  std::unique_ptr<Attack> attack;
  if (config.attack == "mixed") {
    std::vector<MixedAttack::Phase> phases;
    for (const MixedPhaseSpec& s : parse_mixed_phases(config.mixed_phases)) {
      if (s.attack == "mixed") {
        throw std::invalid_argument(
            "run_experiment: mixed phases cannot nest another mixed attack");
      }
      phases.push_back(
          {build_one_attack(s.attack, spare->working_lines()), s.writes});
    }
    attack = std::make_unique<MixedAttack>(std::move(phases));
  } else {
    attack = build_one_attack(config.attack, spare->working_lines());
  }

  EnduranceView view(spare->working_lines());
  for (std::uint64_t i = 0; i < view.size(); ++i) {
    view[i] = map->line_endurance(spare->working_line(i));
  }
  WearLevelerParams wl_params = config.wl;
  if (wl_params.group_lines == 0 &&
      spare->working_lines() % config.geometry.lines_per_region() == 0) {
    // Align the endurance-aware levelers' groups with the device's regions
    // (possible whenever the spare scheme reserves whole regions, as Max-WE
    // does): a group then has one endurance, not a weak/strong mixture.
    wl_params.group_lines = config.geometry.lines_per_region();
  }
  std::unique_ptr<WearLeveler> wl =
      make_wear_leveler(config.wear_leveler, spare->working_lines(), view,
                        wl_params, rng);
  // The adaptive controller is a decorator: the engine sees one wear
  // leveler whose save/load carries both the controller and the wrapped
  // scheme, and the raw pointer below is how the detector's window closes
  // reach the escalation policy.
  AdaptiveWearLeveler* adaptive = nullptr;
  if (config.adaptive) {
    auto wrapped = std::make_unique<AdaptiveWearLeveler>(
        std::move(wl), config.adaptive_policy);
    adaptive = wrapped.get();
    wl = std::move(wrapped);
  }

  if (config.mode == SimulationMode::kBitLevel) {
    if (config.dram_buffer_lines > 0) {
      throw std::invalid_argument(
          "run_experiment: the bit-level engine does not support the DRAM "
          "buffer yet; use stochastic mode");
    }
    BitDeviceParams dp;
    dp.cell_sigma = config.cell_sigma;
    dp.ecp_entries = config.ecp_entries;
    BitDevice device(device_map, dp, rng);
    auto payload = make_payload(config.payload);
    auto codec = make_codec(config.codec);
    BitEngine engine(device, *attack, *payload, *codec, *wl, *spare, rng);
    engine.set_observer(config.observer);
    setup_span.reset();
    return engine.run(config.max_user_writes);
  }

  std::optional<Device> local_device;
  Device* device = nullptr;
  if (workspace != nullptr) {
    device = workspace->acquire_device(device_map);
  } else {
    local_device.emplace(device_map);
    device = &*local_device;
  }
  Engine engine(*device, *attack, *wl, *spare, rng);
  engine.set_fast_path(config.fastpath);
  engine.set_observer(config.observer);
  std::unique_ptr<DramBuffer> buffer;
  if (config.dram_buffer_lines > 0) {
    buffer = std::make_unique<DramBuffer>(config.dram_buffer_lines);
    engine.set_front_buffer(buffer.get());
  }

  std::unique_ptr<MetadataFaultInjector> injector;
  if (config.fault.metadata.any()) {
    // validate_robustness_config() already pinned the scheme to "maxwe".
    auto* maxwe = dynamic_cast<MaxWe*>(spare);
    injector = std::make_unique<MetadataFaultInjector>(config.fault.metadata,
                                                       config.fault.seed);
    engine.set_fault_injection(injector.get(), maxwe);
  }
  std::unique_ptr<AttackDetector> detector;
  if (config.detect) {
    detector =
        std::make_unique<AttackDetector>(config.detector, wl->logical_lines());
    engine.set_detector(detector.get(), adaptive);
  }
  if (!config.checkpoint_out.empty()) {
    engine.set_checkpointing(config.checkpoint_out, config.checkpoint_interval,
                             config_fingerprint(config));
  }
  if (!config.resume_from.empty()) {
    Result<std::vector<std::uint8_t>> payload =
        load_checkpoint_file(config.resume_from);
    payload.status().throw_if_error();
    StateReader r(payload.value());
    std::uint64_t fp = 0;
    r.u64(fp).throw_if_error();
    if (fp != config_fingerprint(config)) {
      Status::failed_precondition(
          "checkpoint '" + config.resume_from +
          "' was written by a different configuration; refusing to resume")
          .throw_if_error();
    }
    engine.restore_state(r).throw_if_error();
  }
  setup_span.reset();
  return engine.run(config.max_user_writes);
}

ExperimentConfig scaled_stochastic_config(std::uint64_t num_lines,
                                          std::uint64_t num_regions,
                                          double endurance_at_mean) {
  ExperimentConfig config;
  config.geometry = DeviceGeometry::scaled(num_lines, num_regions);
  config.endurance.endurance_at_mean = endurance_at_mean;
  config.mode = SimulationMode::kStochastic;
  // Scale the remap cadences with the endurance scale: at full scale the
  // worst-case wear a line absorbs between remaps (interval, or
  // subregion_lines * interval for TLSR) is a vanishing fraction of any
  // line's endurance, and the scheme comparison only holds if that stays
  // true after scaling (otherwise wear-outs stop being endurance-ordered).
  config.wl.swap_interval = 20;
  config.wl.tlsr_subregion_lines = 32;
  config.bpa_burst = 200;
  return config;
}

}  // namespace nvmsec
