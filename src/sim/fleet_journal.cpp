#include "sim/fleet_journal.h"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "sim/checkpoint.h"
#include "util/crc32.h"

namespace nvmsec {

namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 8;
// len(u32) + shard_index(u64) + crc(u32); payload excluded.
constexpr std::size_t kRecordOverhead = 4 + 8 + 4;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

Result<std::vector<FleetJournalRecord>> FleetJournal::replay(
    const std::string& path, std::uint64_t fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::not_found("fleet journal '" + path +
                             "' cannot be opened (does it exist?)");
  }
  char magic[sizeof(kFleetJournalMagic)];
  if (!in.read(magic, sizeof(magic))) {
    return Status::corruption("fleet journal '" + path +
                              "': file shorter than the header");
  }
  if (std::memcmp(magic, kFleetJournalMagic, sizeof(magic)) != 0) {
    if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0) {
      return Status::version_mismatch(
          "'" + path +
          "' is a legacy MXWECKPT fleet checkpoint; this build resumes from "
          "append-only journals only — delete the file (the campaign "
          "restarts from shard 0) or finish it with the build that wrote "
          "it");
    }
    return Status::corruption("'" + path +
                              "' is not a fleet journal (bad magic)");
  }
  unsigned char header[4 + 8];
  if (!in.read(reinterpret_cast<char*>(header), sizeof(header))) {
    return Status::corruption("fleet journal '" + path +
                              "': file shorter than the header");
  }
  const std::uint32_t version = get_u32(header);
  if (version != kFleetJournalVersion) {
    return Status::version_mismatch(
        "fleet journal '" + path + "' has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kFleetJournalVersion));
  }
  const std::uint64_t file_fingerprint = get_u64(header + 4);
  if (file_fingerprint != fingerprint) {
    return Status::failed_precondition(
        "fleet journal '" + path +
        "' was written by a different population spec; delete it or restore "
        "the original spec");
  }

  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  std::vector<FleetJournalRecord> records;
  std::uint64_t good_end = kHeaderBytes;
  std::uint64_t offset = kHeaderBytes;
  std::vector<unsigned char> frame;
  while (offset + kRecordOverhead <= file_size) {
    in.seekg(static_cast<std::streamoff>(offset));
    unsigned char len_buf[4];
    if (!in.read(reinterpret_cast<char*>(len_buf), sizeof(len_buf))) break;
    const std::uint64_t len = get_u32(len_buf);
    if (offset + kRecordOverhead + len > file_size) break;  // torn tail
    // shard_index + payload: the CRC-covered span.
    frame.resize(8 + len);
    if (!in.read(reinterpret_cast<char*>(frame.data()),
                 static_cast<std::streamsize>(frame.size()))) {
      break;
    }
    unsigned char crc_buf[4];
    if (!in.read(reinterpret_cast<char*>(crc_buf), sizeof(crc_buf))) break;
    if (get_u32(crc_buf) != crc32(frame.data(), frame.size())) break;
    FleetJournalRecord rec;
    rec.shard_index = get_u64(frame.data());
    rec.payload.assign(frame.begin() + 8, frame.end());
    records.push_back(std::move(rec));
    offset += kRecordOverhead + len;
    good_end = offset;
  }
  in.close();

  if (good_end < file_size) {
    // Torn tail from a mid-append SIGKILL: drop it so the next append does
    // not splice new bytes onto half a record.
    std::error_code ec;
    std::filesystem::resize_file(path, good_end, ec);
    if (ec) {
      return Status::io_error("fleet journal '" + path +
                              "': cannot truncate torn tail: " + ec.message());
    }
  }
  return records;
}

Status FleetJournal::open(const std::string& path, std::uint64_t fingerprint,
                          bool truncate) {
  path_ = path;
  bytes_written_ = 0;
  const auto mode = std::ios::binary | std::ios::out |
                    (truncate ? std::ios::trunc : std::ios::app);
  out_.open(path, mode);
  if (!out_) {
    return Status::io_error("fleet journal '" + path + "': cannot open for " +
                            (truncate ? "writing" : "appending"));
  }
  if (truncate) {
    std::string header;
    header.append(kFleetJournalMagic, sizeof(kFleetJournalMagic));
    put_u32(header, kFleetJournalVersion);
    put_u64(header, fingerprint);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
    if (!out_) {
      return Status::io_error("fleet journal '" + path +
                              "': header write failed");
    }
    bytes_written_ += header.size();
  }
  return Status::ok_status();
}

Status FleetJournal::append(std::uint64_t shard_index,
                            const std::vector<std::uint8_t>& payload) {
  if (!out_.is_open()) {
    return Status::failed_precondition("fleet journal: append before open");
  }
  if (payload.size() > UINT32_MAX) {
    return Status::failed_precondition(
        "fleet journal: shard payload exceeds the u32 record frame");
  }
  std::string rec;
  rec.reserve(kRecordOverhead + payload.size());
  put_u32(rec, static_cast<std::uint32_t>(payload.size()));
  put_u64(rec, shard_index);
  if (!payload.empty()) {
    rec.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  }
  // CRC covers shard_index + payload (everything after the length field).
  rec.append(4, '\0');
  const std::uint32_t crc = crc32(rec.data() + 4, 8 + payload.size());
  for (int i = 0; i < 4; ++i) {
    rec[rec.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>(crc >> (8 * i));
  }
  out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  out_.flush();
  if (!out_) {
    return Status::io_error("fleet journal '" + path_ + "': append failed");
  }
  bytes_written_ += rec.size();
  return Status::ok_status();
}

}  // namespace nvmsec
