// Parallel experiment execution: fan independent runs out across a worker
// pool, return results in input order, guarantee bit-identity with the
// serial path.
//
// Why this is safe: `run_experiment` is self-contained — every run derives
// all randomness from its own `Rng(config.seed)`, owns its device, attack,
// wear leveler and spare scheme, and shares only the immutable endurance
// map (via EnduranceMapCache). There is no global state to race on, so the
// only ordering that matters is the reduction order of whoever consumes
// the results — which is why this API returns a vector in input order and
// leaves reductions (RunningStats etc.) to the caller's thread.
//
// Observers: a config carrying its *own* sinks is fine at any job count
// (the run is the only writer). The same sink pointer appearing in more
// than one config is a data race waiting to happen; that is rejected with
// a specific error when jobs > 1 instead of corrupting metrics silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/multi_bank.h"

namespace nvmsec {

class EnduranceMapCache;
class Profiler;

struct ParallelOptions {
  /// Worker threads doing experiment work. 0 = all hardware threads
  /// (ThreadPool::hardware_workers()). 1 = strictly serial on the calling
  /// thread, today's exact single-threaded code path (no pool, no cache).
  std::size_t jobs{0};
  /// Share endurance maps across runs with identical (geometry, endurance,
  /// seed, jitter) — see sim/endurance_cache.h for the determinism
  /// contract. Ignored (off) when jobs == 1.
  bool use_cache{true};
  /// Cache to use; nullptr = the process-global EnduranceMapCache.
  EnduranceMapCache* cache{nullptr};

  /// Sweep-level crash safety: after every completed run, atomically
  /// rewrite this file with all finished (index, fingerprint, result)
  /// records. Empty disables. Independent of — and composable with — the
  /// per-run engine checkpoints in ExperimentConfig.
  std::string checkpoint_path;
  /// Prefill results from checkpoint_path (when the file exists) and skip
  /// the runs already recorded there. A record whose config fingerprint no
  /// longer matches the config at that index is discarded and re-run.
  bool resume{false};

  /// Aggregate self-profile for the whole sweep; nullptr = no profiling.
  /// At jobs > 1 every run records into its own private Profiler and the
  /// per-run instances are merged into this one in input order after the
  /// join (merge is associative and commutative, so the result does not
  /// depend on scheduling); pool worker utilization for the sweep section
  /// is attached too. Configs must not carry their own observer.profiler
  /// when this is set — the runner overwrites that field.
  Profiler* profiler{nullptr};

  [[nodiscard]] std::size_t effective_jobs() const;
};

/// Run every config and return their LifetimeResults in input order.
/// Exceptions from individual runs propagate (smallest failing index
/// wins deterministically). Throws std::invalid_argument when jobs > 1
/// and two configs share an observer sink.
std::vector<LifetimeResult> run_experiments(
    std::span<const ExperimentConfig> configs,
    const ParallelOptions& options = {});

/// Parallel multi-bank lifetime: same per-bank seeding and the same
/// first-bank-at-minimum aggregation as the serial run_multi_bank, with
/// bank runs fanned out across the pool. Identical results at any job
/// count.
MultiBankResult run_multi_bank(const ExperimentConfig& config,
                               std::uint32_t banks,
                               const ParallelOptions& options);

}  // namespace nvmsec
