// Full-stack stochastic engine: data-dependent wear end to end.
//
//   attack -> payload model -> wear leveler -> spare scheme
//          -> write codec -> BitDevice (per-cell wear + ECP)
//
// This is the engine that lets the §3.3.2 and §2.2.2 defenses be evaluated
// *in combination with* wear leveling and spare-line replacement, rather
// than in isolation: e.g. "UAA against FNW + ECP + Max-WE". The line-level
// Engine remains the tool for the paper's own experiments (it is ~100x
// faster); results are comparable through the shared normalized-lifetime
// denominator (see BitDevice::reference_lifetime()).
#pragma once

#include "attack/attack.h"
#include "nvm/bit_device.h"
#include "obs/observer.h"
#include "reduction/payload.h"
#include "sim/lifetime.h"
#include "spare/spare_scheme.h"
#include "util/rng.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

class BitEngine {
 public:
  /// All components are borrowed for the duration of the run. Migration
  /// (wear-leveler) writes are programmed with random data through the same
  /// codec — moved lines arrive from elsewhere in memory, so their contents
  /// are uncorrelated with the destination's.
  BitEngine(BitDevice& device, Attack& attack, PayloadModel& payload,
            WriteCodec& codec, WearLeveler& wear_leveler,
            SpareScheme& spare_scheme, Rng& rng);

  /// Attach observability sinks: the decision event log and run-level
  /// metrics (same names as the line-level Engine's), forwarded to the
  /// spare scheme. BitDevice itself stays uninstrumented — its per-cell
  /// hot path is the whole point of this engine.
  void set_observer(const Observer& obs);

  /// Run until device failure, or until `max_user_writes` if non-zero.
  /// The result's `normalized` uses BitDevice::reference_lifetime(), so a
  /// write-reducing codec can legitimately exceed 1.0.
  LifetimeResult run(WriteCount max_user_writes = 0);

 private:
  Observer obs_{};
  BitDevice& device_;
  Attack& attack_;
  PayloadModel& payload_;
  WriteCodec& codec_;
  WearLeveler& wl_;
  SpareScheme& spare_;
  Rng& rng_;
};

}  // namespace nvmsec
