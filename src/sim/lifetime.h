// Lifetime result types shared by both simulation engines.
//
// The paper's metric (§5.1): "normalized lifetime ... is defined as (the
// total number of writes before the system fails) / (the sum of the
// endurance of all memory lines)". We count *user* (attacker) writes in the
// numerator; wear-leveling migration writes are reported separately so the
// remap-amplification effect of §3.3.1 stays visible.
#pragma once

#include <cstdint>
#include <string>

#include "util/types.h"

namespace nvmsec {

struct LifetimeResult {
  /// User (attack) writes completed before failure. Double because the
  /// event-driven engine measures continuous rounds; the stochastic engine
  /// always stores an integer value here.
  double user_writes{0};
  /// Wear-leveling data-migration writes.
  WriteCount overhead_writes{0};
  /// User writes absorbed by the DRAM front buffer (never reached the NVM).
  WriteCount absorbed_writes{0};
  /// All writes absorbed by the device (user + overhead); only tracked by
  /// the stochastic engine.
  WriteCount device_writes{0};
  /// Sum of all line endurances (the ideal lifetime).
  double ideal_lifetime{0};
  /// user_writes / ideal_lifetime.
  double normalized{0};
  /// Backing-line wear-outs observed.
  std::uint64_t line_deaths{0};
  /// True when the device failed; false when the run stopped at the write
  /// cap (stochastic engine only).
  bool failed{false};
  std::string failure_reason;
  /// Gini coefficient of per-line wear utilization (writes / budget) at the
  /// end of the run — the fleet report's wear-balance distribution. -1 when
  /// the engine does not track per-line wear (bit-level engine).
  double wear_gini{-1};
  /// Attack-detector lifetime stats; all 0 when detection is off
  /// (--detect). Windows the detector closed over the run...
  std::uint64_t windows_observed{0};
  /// ...how many of them were individually anomalous...
  std::uint64_t anomalous_windows{0};
  /// ...alarm raise transitions (suspicious -> under attack)...
  std::uint64_t alarms_raised{0};
  /// ...and windows spent at the under-attack level.
  std::uint64_t windows_in_alarm{0};
  /// Cadence retunes the adaptive wear leveler applied (--adaptive).
  std::uint64_t cadence_changes{0};
};

}  // namespace nvmsec
