// High-level experiment runner: one declarative config -> one lifetime
// number. This is the API the benchmark harness, the examples, and most
// integration tests drive; it owns component construction and the
// budget-matching rules that keep PCD / PS / PS-worst / Max-WE comparisons
// fair (all schemes get the same region-aligned spare budget).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "detect/detector.h"
#include "fault/fault_plan.h"
#include "nvm/endurance_model.h"
#include "nvm/geometry.h"
#include "obs/observer.h"
#include "sim/lifetime.h"
#include "util/arena.h"
#include "wearlevel/adaptive.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

class Device;
class EnduranceMap;
class Rng;
class SpareScheme;

enum class SimulationMode {
  /// Per-write stochastic simulation (any attack, any wear leveler).
  kStochastic,
  /// Event-driven uniform-rate simulation (UAA only, wear-leveler-free;
  /// exact and fast enough for the paper's full-size configuration).
  kUniformEvent,
  /// Cell-granular stochastic simulation with data-dependent wear: adds a
  /// payload model, a write codec and per-line ECP (scaled devices only).
  kBitLevel,
};

struct ExperimentConfig {
  DeviceGeometry geometry{DeviceGeometry::paper_1gb()};
  EnduranceModelParams endurance{};
  /// Optional intra-region endurance jitter (lognormal sigma); 0 matches
  /// the paper's region-constant model.
  double line_jitter_sigma{0.0};
  std::uint64_t seed{42};

  /// "uaa", "bpa", "hotspot", "random", "zipf" (a benign-workload proxy
  /// rather than an attack), or "mixed" (a phase schedule, see below).
  std::string attack{"uaa"};
  std::uint64_t bpa_burst{1024};
  double zipf_skew{0.99};
  /// Hotspot only: number of lines in the hammered working set (>= 1).
  std::uint64_t hotspot_working_set{1};
  /// Mixed attack only (stochastic mode): phase schedule spec
  /// "name:writes,..." (see attack/mixed.h). Writes 0 marks a terminal
  /// unbounded phase; a bounded last phase makes the schedule cycle. Phase
  /// generators take their knobs from bpa_burst / zipf_skew /
  /// hotspot_working_set above. Must be set iff attack == "mixed".
  std::string mixed_phases;

  /// Stochastic mode only: online attack detection (detect/detector.h).
  /// The detector observes the user write stream, closes a window every
  /// detector.window_writes writes, and emits detect_window /
  /// alarm_raised / alarm_cleared events plus the detector stats in
  /// LifetimeResult.
  bool detect{false};
  DetectorParams detector{};
  /// Requires detect: wrap the wear leveler in an AdaptiveWearLeveler that
  /// retunes the remap cadence from the alarm signal (wearlevel/adaptive.h).
  bool adaptive{false};
  AdaptivePolicy adaptive_policy{};

  /// "none", "startgap", "tlsr", "pcms", "bwl", "wawl".
  std::string wear_leveler{"none"};
  WearLevelerParams wl{};

  /// "none", "pcd", "ps", "ps-worst", "freep", "maxwe".
  std::string spare_scheme{"none"};
  /// Spare budget as a fraction of total capacity, allocated in whole
  /// regions for every scheme so comparisons are budget-matched.
  double spare_fraction{0.10};
  /// Max-WE only: fraction q of the spare budget used as SWRs.
  double swr_fraction{0.90};

  /// Stochastic mode only: batched fast path (attack runs -> WL horizon ->
  /// Device::write_many, plus multinomial count vectors for stochastic
  /// attacks). Bit-identical to the per-write path for attacks declaring
  /// BatchContract::kBitIdentical (UAA/BPA); distribution-equivalent for
  /// zipf/random (multiset-exact for hotspot). On by default;
  /// `--no-fastpath` is the escape hatch. Deliberately excluded from
  /// config_fingerprint — like max_user_writes, it does not change which
  /// trajectory family the run belongs to, so checkpoints interchange
  /// across fastpath on/off (byte-identity of the resumed suffix is only
  /// guaranteed for bit-identical attacks or same-mode resume).
  bool fastpath{true};

  SimulationMode mode{SimulationMode::kUniformEvent};
  /// Stochastic mode only: stop after this many user writes (0 = until
  /// failure).
  WriteCount max_user_writes{0};
  /// Stochastic mode only: DRAM front-buffer capacity in lines (0 = no
  /// buffer). Requires max_user_writes > 0 — a workload that fits in the
  /// buffer never fails the device (§3.3.2).
  std::uint64_t dram_buffer_lines{0};

  /// Bit-level mode only: payload model ("random", "constant",
  /// "fnw-adversarial", "complement"), write codec ("full",
  /// "differential", "fnw"), per-line ECP entries, and within-line cell
  /// endurance sigma.
  std::string payload{"random"};
  std::string codec{"differential"};
  std::uint32_t ecp_entries{0};
  double cell_sigma{0.1};

  /// Fault injection (see fault/fault_plan.h). Device faults perturb a
  /// copy of the endurance map that only the device sees (any mode);
  /// metadata faults require spare_scheme == "maxwe" and stochastic mode.
  FaultPlan fault{};

  /// Stochastic mode only: write a checkpoint to `checkpoint_out` every
  /// `checkpoint_interval` user writes (both must be set together).
  std::string checkpoint_out;
  WriteCount checkpoint_interval{0};
  /// Stochastic mode only: resume from this checkpoint file before running
  /// (empty = fresh start). The checkpoint's config fingerprint must match
  /// this config; a resumed run is bit-identical to an uninterrupted one.
  std::string resume_from;

  /// Observability sinks (borrowed; see obs/session.h for an owning
  /// composition). Default — all null — is the zero-overhead no-op mode.
  /// Event and stochastic engines are fully instrumented; the bit-level
  /// engine records decision events and run-level metrics but no traces
  /// or snapshots (its per-cell hot path stays untouched).
  Observer observer{};

  /// Region-aligned spare budget in lines: round(spare_fraction * R) * L/R.
  [[nodiscard]] std::uint64_t spare_lines() const;
};

/// Run one experiment end to end. Throws std::invalid_argument for
/// inconsistent configs (e.g. event mode with a non-uniform attack) and
/// std::runtime_error (carrying a Status string) when a resume checkpoint
/// is missing, corrupt, or from a different configuration.
LifetimeResult run_experiment(const ExperimentConfig& config);

/// Stable 64-bit fingerprint of every field that shapes the simulation
/// trajectory (geometry, endurance model, seed, attack, leveler, scheme,
/// fault plan, ...). Embedded in checkpoints so resume can refuse a file
/// written by a different configuration. Deliberately excludes
/// max_user_writes: a capped checkpointing run and the uncapped run it
/// stands in for share a trajectory, so they must share a fingerprint.
[[nodiscard]] std::uint64_t config_fingerprint(const ExperimentConfig& config);

class EnduranceMapCache;

/// Same run, but source the endurance map from `cache` (see
/// sim/endurance_cache.h). Bit-identical to the plain overload at any hit
/// rate: the cache replays the post-map RNG state, so every subsequent draw
/// (spare-scheme placement, attack, engine) is unchanged. nullptr falls
/// back to the plain overload.
LifetimeResult run_experiment(const ExperimentConfig& config,
                              EnduranceMapCache* cache);

/// Reusable per-worker state for back-to-back run_experiment calls — the
/// fleet runner's setup-amortization unit. Holds the heavy objects one
/// device run constructs and the next run of the same shape can recycle:
/// the endurance map (rebuilt in place with identical RNG draws), the
/// spare scheme (rebound via SpareScheme::rebind when the scheme supports
/// it), the Device wear state, and a bump arena for engine scratch.
///
/// Strictly an allocation strategy: run_experiment(config, cache, ws) is
/// bit-identical to run_experiment(config, cache) for every config, and a
/// workspace may be handed configs of different shapes — anything that
/// cannot be recycled is rebuilt fresh. Not thread-safe; one workspace per
/// worker.
class ExperimentWorkspace {
 public:
  ExperimentWorkspace();
  ~ExperimentWorkspace();
  ExperimentWorkspace(const ExperimentWorkspace&) = delete;
  ExperimentWorkspace& operator=(const ExperimentWorkspace&) = delete;

  [[nodiscard]] Arena& arena() { return arena_; }

 private:
  friend LifetimeResult run_experiment(const ExperimentConfig& config,
                                       EnduranceMapCache* cache,
                                       ExperimentWorkspace* workspace);

  /// Slot acquisition used by run_experiment. Each returns an object
  /// indistinguishable from fresh construction, reusing the slot's storage
  /// when the previous run left it in a compatible, exclusively-held state.
  std::shared_ptr<const EnduranceMap> acquire_map(const ExperimentConfig& config,
                                                  Rng& rng);
  SpareScheme* acquire_spare(const ExperimentConfig& config,
                             const std::shared_ptr<const EnduranceMap>& map,
                             Rng& rng);
  Device* acquire_device(std::shared_ptr<const EnduranceMap> device_map);

  Arena arena_;
  /// Owned endurance-map slot, rebuilt in place between runs when the
  /// geometry matches and no one else retained a reference.
  std::shared_ptr<EnduranceMap> map_;
  /// Spare-scheme slot plus the construction key it was built with.
  std::unique_ptr<SpareScheme> spare_;
  std::string spare_name_;
  double spare_fraction_{-1.0};
  double swr_fraction_{-1.0};
  bool spare_on_map_{false};   ///< spare_ holds a reference to map_
  /// Device slot (stochastic mode), rebound to each run's map.
  std::unique_ptr<Device> device_;
  bool device_on_map_{false};  ///< device_ holds a reference to map_
};

/// Same run again, recycling `workspace`'s objects where the config shape
/// allows (nullptr = the plain cache overload). Bit-identical to the other
/// overloads in every case.
LifetimeResult run_experiment(const ExperimentConfig& config,
                              EnduranceMapCache* cache,
                              ExperimentWorkspace* workspace);

/// Paper §5.1's scaled-down stochastic configuration used by the BPA
/// benches and integration tests: `num_lines` lines, `num_regions` regions,
/// endurance scaled so runs finish in seconds while preserving the
/// distribution shape (normalized lifetime is scale-free).
ExperimentConfig scaled_stochastic_config(std::uint64_t num_lines,
                                          std::uint64_t num_regions,
                                          double endurance_at_mean);

}  // namespace nvmsec
