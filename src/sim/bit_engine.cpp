#include "sim/bit_engine.h"

#include <stdexcept>
#include <vector>

namespace nvmsec {

BitEngine::BitEngine(BitDevice& device, Attack& attack, PayloadModel& payload,
                     WriteCodec& codec, WearLeveler& wear_leveler,
                     SpareScheme& spare_scheme, Rng& rng)
    : device_(device),
      attack_(attack),
      payload_(payload),
      codec_(codec),
      wl_(wear_leveler),
      spare_(spare_scheme),
      rng_(rng) {
  if (wl_.working_lines() != spare_.working_lines()) {
    throw std::invalid_argument(
        "BitEngine: wear leveler and spare scheme disagree on working size");
  }
}

LifetimeResult BitEngine::run(WriteCount max_user_writes) {
  LifetimeResult result;
  result.ideal_lifetime = device_.reference_lifetime();

  std::vector<WlPhysWrite> batch;
  WriteCount user_writes = 0;
  WriteCount overhead_writes = 0;
  std::uint64_t line_deaths = 0;

  while (!result.failed &&
         (max_user_writes == 0 || user_writes < max_user_writes)) {
    const LogicalLineAddr la = attack_.next(rng_, wl_.logical_lines());
    batch.clear();
    wl_.on_write(la, rng_, batch);

    for (const WlPhysWrite& w : batch) {
      const PhysLineAddr line = spare_.resolve(w.working_index);
      // User writes carry the attack's payload; migrations carry data from
      // elsewhere in memory, modelled as random content.
      const LineData data =
          w.is_overhead ? LineData::random(rng_) : payload_.next(rng_, la);
      const BitWriteOutcome outcome = device_.write(line, data, codec_);
      if (w.is_overhead) {
        ++overhead_writes;
      } else {
        ++user_writes;
      }
      if (outcome == BitWriteOutcome::kWornOut) {
        ++line_deaths;
        if (!spare_.on_wear_out(w.working_index)) {
          result.failed = true;
          result.failure_reason =
              "unreplaceable wear-out at working index " +
              std::to_string(w.working_index) + " (line " +
              std::to_string(line.value()) + ")";
          break;
        }
      }
    }
  }

  result.user_writes = static_cast<double>(user_writes);
  result.overhead_writes = overhead_writes;
  result.device_writes = device_.total_writes();
  result.line_deaths = line_deaths;
  result.normalized =
      result.ideal_lifetime > 0 ? result.user_writes / result.ideal_lifetime
                                : 0.0;
  if (!result.failed) {
    result.failure_reason = "write cap reached";
  }
  return result;
}

}  // namespace nvmsec
