#include "sim/bit_engine.h"

#include <stdexcept>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace nvmsec {

BitEngine::BitEngine(BitDevice& device, Attack& attack, PayloadModel& payload,
                     WriteCodec& codec, WearLeveler& wear_leveler,
                     SpareScheme& spare_scheme, Rng& rng)
    : device_(device),
      attack_(attack),
      payload_(payload),
      codec_(codec),
      wl_(wear_leveler),
      spare_(spare_scheme),
      rng_(rng) {
  if (wl_.working_lines() != spare_.working_lines()) {
    throw std::invalid_argument(
        "BitEngine: wear leveler and spare scheme disagree on working size");
  }
}

void BitEngine::set_observer(const Observer& obs) {
  obs_ = obs;
  spare_.set_observer(obs);
}

LifetimeResult BitEngine::run(WriteCount max_user_writes) {
  LifetimeResult result;
  result.ideal_lifetime = device_.reference_lifetime();
  const ScopedProfPhase prof_span(obs_.profiler, ProfPhase::kBitRun);

  std::vector<WlPhysWrite> batch;
  WriteCount user_writes = 0;
  WriteCount overhead_writes = 0;
  std::uint64_t line_deaths = 0;
  const DeviceGeometry& geom = device_.geometry();
  std::vector<std::uint64_t> region_line_deaths;
  if (obs_.events != nullptr) {
    region_line_deaths.assign(geom.num_regions(), 0);
  }

  while (!result.failed &&
         (max_user_writes == 0 || user_writes < max_user_writes)) {
    if (obs_.events != nullptr) {
      obs_.events->set_now(static_cast<double>(user_writes));
    }
    const LogicalLineAddr la = attack_.next(rng_, wl_.logical_lines());
    batch.clear();
    wl_.on_write(la, rng_, batch);

    for (const WlPhysWrite& w : batch) {
      const PhysLineAddr line = spare_.resolve(w.working_index);
      // User writes carry the attack's payload; migrations carry data from
      // elsewhere in memory, modelled as random content.
      const LineData data =
          w.is_overhead ? LineData::random(rng_) : payload_.next(rng_, la);
      const BitWriteOutcome outcome = device_.write(line, data, codec_);
      if (w.is_overhead) {
        ++overhead_writes;
      } else {
        ++user_writes;
      }
      if (outcome == BitWriteOutcome::kWornOut) {
        ++line_deaths;
        if (obs_.events != nullptr) {
          obs_.events->set_now(static_cast<double>(user_writes));
          const RegionId region = geom.region_of(line);
          if (++region_line_deaths[region.value()] ==
              geom.lines_per_region()) {
            obs_.events->emit(
                "region_wear_out",
                {{"region", static_cast<double>(region.value())}});
          }
        }
        if (!spare_.on_wear_out(w.working_index)) {
          result.failed = true;
          result.failure_reason =
              "unreplaceable wear-out at working index " +
              std::to_string(w.working_index) + " (line " +
              std::to_string(line.value()) + ")";
          if (obs_.events != nullptr) {
            obs_.events->emit(
                "end_of_life",
                {{"cause", "unreplaceable_wear_out"},
                 {"working_index", static_cast<double>(w.working_index)},
                 {"line", static_cast<double>(line.value())},
                 {"region",
                  static_cast<double>(geom.region_of(line).value())},
                 {"user_writes", static_cast<double>(user_writes)},
                 {"line_deaths", static_cast<double>(line_deaths)}});
          }
          break;
        }
      }
    }
  }

  result.user_writes = static_cast<double>(user_writes);
  result.overhead_writes = overhead_writes;
  result.device_writes = device_.total_writes();
  result.line_deaths = line_deaths;
  result.normalized =
      result.ideal_lifetime > 0 ? result.user_writes / result.ideal_lifetime
                                : 0.0;
  if (!result.failed) {
    result.failure_reason = "write cap reached";
  }
  if (obs_.events != nullptr) {
    obs_.events->set_now(static_cast<double>(user_writes));
    obs_.events->emit(
        "run_end",
        {{"outcome", result.failed ? "device_failure" : "write_cap_reached"},
         {"user_writes", static_cast<double>(user_writes)},
         {"overhead_writes", static_cast<double>(overhead_writes)},
         {"line_deaths", static_cast<double>(line_deaths)}});
  }
  if (obs_.metrics != nullptr) {
    // Mirror the line-level Engine's metric names so downstream tooling
    // reads either engine's output unchanged.
    MetricsRegistry& m = *obs_.metrics;
    m.counter("engine.user_writes").set(user_writes);
    m.counter("engine.overhead_writes").set(overhead_writes);
    m.counter("engine.line_deaths").set(line_deaths);
    m.counter("engine.device_writes").set(device_.total_writes());
    const SpareSchemeStats s = spare_.stats();
    m.gauge("spare.spares_remaining")
        .set(static_cast<double>(s.spares_remaining));
    m.gauge("spare.lmt_entries").set(static_cast<double>(s.lmt_entries));
    m.gauge("spare.rmt_entries").set(static_cast<double>(s.rmt_entries));
    m.counter("spare.replacements").set(s.replacements);
    m.counter("wl.migration_writes").set(wl_.overhead_writes());
  }
  return result;
}

}  // namespace nvmsec
