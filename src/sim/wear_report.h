// Post-run wear diagnostics.
//
// Lifetime is the headline number; *why* a device died is in the wear
// pattern. This module summarizes a Device's end state: how much of the
// total endurance was harvested, how unequally wear landed relative to
// each line's budget (Gini coefficient of utilization), and per-region
// utilization — the quantities that make wear-leveling quality and
// Max-WE's "maximize the weak lines' endurance" directly observable.
#pragma once

#include <span>
#include <vector>

#include "nvm/device.h"
#include "util/stats.h"

namespace nvmsec {

struct WearReport {
  /// Fraction of the device's total write budget actually consumed —
  /// "endurance harvest". The ideal scenario harvests 1.0.
  double harvest_fraction{0};
  /// Gini coefficient of per-line utilization (writes / budget): 0 = all
  /// lines equally utilized, ~1 = all wear on a vanishing few lines.
  double utilization_gini{0};
  /// Per-region mean utilization, region order.
  std::vector<double> region_utilization;
  /// Lines fully worn out.
  std::uint64_t worn_out_lines{0};
  /// Utilization of the most- and least-utilized lines.
  double max_line_utilization{0};
  double min_line_utilization{0};
};

/// Summarize the wear state of `device` (valid at any point in a run).
WearReport analyze_wear(const Device& device);

/// Gini coefficient of non-negative values; 0 for empty/uniform input.
double gini_coefficient(std::vector<double> values);

/// Same, over caller-owned scratch (sorted in place, no allocation) — the
/// allocation-free variant the fleet hot path uses.
double gini_coefficient_inplace(std::span<double> values);

}  // namespace nvmsec
