// Append-only fleet shard journal.
//
// The fleet runner's crash-safety store. The old MXWECKPT mirror rewrote
// the whole campaign state after every completed shard — O(shards_done)
// bytes per shard, O(shards^2) over a campaign. The journal appends one
// CRC-framed record per completed shard instead, so a campaign writes
// O(total shard state) bytes total and each completion costs O(one shard).
//
// File layout:
//
//   offset  size  field
//   0       8     magic "MXWEJRNL"
//   8       4     format version (little-endian u32, currently 1)
//   12      8     fleet fingerprint (little-endian u64)
//   20      ...   records, back to back
//
// Record layout:
//
//   offset  size  field
//   0       4     payload size n (little-endian u32)
//   4       8     shard index (little-endian u64)
//   12      n     payload (FleetAggregate::save_state bytes)
//   12+n    4     CRC-32 of bytes [4, 12+n) (little-endian u32)
//
// Appends are plain writes + flush, not atomic renames: a SIGKILL can tear
// the last record. Recovery relies on the framing instead — replay() walks
// records until the first short or CRC-failing one and truncates the file
// there, so a torn tail costs exactly the shard that was being written
// (which the resumed campaign re-runs). Records never mutate once their
// CRC has hit the disk, so everything before the tail is trustworthy.
//
// A shard index may legitimately appear more than once (a resumed campaign
// appends to the same file); the last valid record for an index wins.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace nvmsec {

inline constexpr char kFleetJournalMagic[8] = {'M', 'X', 'W', 'E',
                                               'J', 'R', 'N', 'L'};
inline constexpr std::uint32_t kFleetJournalVersion = 1;

/// One recovered record from FleetJournal::replay().
struct FleetJournalRecord {
  std::uint64_t shard_index{0};
  std::vector<std::uint8_t> payload;
};

class FleetJournal {
 public:
  /// Parse an existing journal at `path`: validate the header against
  /// `fingerprint`, walk the records, truncate any torn tail in place, and
  /// return the valid records in file order. Errors: not_found (no file),
  /// version_mismatch (legacy MXWECKPT checkpoint or a future journal
  /// version), failed_precondition (foreign fingerprint), corruption (bad
  /// magic / header), io_error.
  [[nodiscard]] static Result<std::vector<FleetJournalRecord>> replay(
      const std::string& path, std::uint64_t fingerprint);

  FleetJournal() = default;
  FleetJournal(const FleetJournal&) = delete;
  FleetJournal& operator=(const FleetJournal&) = delete;

  /// Open `path` for appending. `truncate` starts a fresh journal (header
  /// rewritten); otherwise records append after the existing valid content
  /// (callers must have run replay() first so the torn tail is gone).
  [[nodiscard]] Status open(const std::string& path, std::uint64_t fingerprint,
                            bool truncate);

  /// Append one shard record and flush it to the OS.
  [[nodiscard]] Status append(std::uint64_t shard_index,
                              const std::vector<std::uint8_t>& payload);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  /// Bytes this process has appended (header included when it wrote one):
  /// the campaign's checkpoint-write cost, surfaced in the heartbeat.
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::ofstream out_;
  std::string path_;
  std::uint64_t bytes_written_{0};
};

}  // namespace nvmsec
