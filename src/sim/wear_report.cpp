#include "sim/wear_report.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

double gini_coefficient_inplace(std::span<double> values) {
  if (values.empty()) return 0.0;
  for (double v : values) {
    if (v < 0) throw std::invalid_argument("gini_coefficient: negative value");
  }
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  double weighted = 0, total = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0) return 0.0;
  // Gini = (2 * sum(i * x_i) / (n * sum x)) - (n + 1) / n, with x sorted.
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double gini_coefficient(std::vector<double> values) {
  return gini_coefficient_inplace(std::span<double>(values));
}

WearReport analyze_wear(const Device& device) {
  const DeviceGeometry& geom = device.geometry();
  const std::uint64_t n = geom.num_lines();
  const std::uint64_t lpr = geom.lines_per_region();

  WearReport report;
  std::vector<double> utilization(n);
  report.region_utilization.assign(geom.num_regions(), 0.0);
  double consumed = 0;
  report.min_line_utilization = 1.0;
  for (std::uint64_t l = 0; l < n; ++l) {
    const PhysLineAddr line{l};
    const auto budget = static_cast<double>(device.write_budget(line));
    const auto used = static_cast<double>(device.writes_to(line));
    consumed += used;
    const double u = budget > 0 ? used / budget : 0.0;
    utilization[l] = u;
    report.region_utilization[l / lpr] += u / static_cast<double>(lpr);
    report.max_line_utilization = std::max(report.max_line_utilization, u);
    report.min_line_utilization = std::min(report.min_line_utilization, u);
    if (device.is_worn_out(line)) ++report.worn_out_lines;
  }
  report.harvest_fraction =
      device.total_budget() > 0 ? consumed / device.total_budget() : 0.0;
  report.utilization_gini = gini_coefficient(std::move(utilization));
  return report;
}

}  // namespace nvmsec
