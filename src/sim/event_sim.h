// Event-driven lifetime simulator for stationary-rate attacks.
//
// Under UAA every working index receives exactly one write per sweep
// ("round"), so per-line wear rates are piecewise constant between
// wear-outs: a backing line serving `load` working indices wears at `load`
// writes per round. That makes the next wear-out analytically computable —
// no per-write simulation — and lets the paper's full-size configuration
// (1 GB, 4.2M lines) run in milliseconds while staying *exact* at event
// granularity. Time is continuous in rounds; lifetimes are therefore exact
// to within one partial sweep (< N writes, < 0.003% of any reported
// lifetime), which we note in EXPERIMENTS.md.
//
// set_index_rates() generalizes the same machinery to any *stationary*
// per-index write-rate vector (hotspot's working set, zipf's scattered
// skew): a line's wear rate becomes the sum of its indices' rates and the
// event algebra is otherwise unchanged. This is the mean-field equivalence
// class — the count-vector fast path's per-chunk multinomial noise is
// integrated out, so event-mode lifetimes are the expected-trajectory
// limit of the stochastic engine's distribution-equivalent runs.
//
// Wear levelers are deliberately absent: under UAA a bijective remap does
// not change any line's write rate (§5.2.1 observes lifetime under UAA is
// "uncorrelated to the types of wear-leveling schemes"); the stochastic
// engine cross-checks this on scaled configurations in the tests.
#pragma once

#include <memory>
#include <vector>

#include "nvm/endurance_map.h"
#include "obs/observer.h"
#include "sim/lifetime.h"
#include "spare/spare_scheme.h"

namespace nvmsec {

class Arena;

class UniformEventSimulator {
 public:
  /// `scheme` is borrowed and must be freshly reset; the simulator drives
  /// its on_wear_out()/resolve() exactly like the stochastic engine would.
  UniformEventSimulator(std::shared_ptr<const EnduranceMap> endurance,
                        SpareScheme& scheme);

  /// Non-uniform stationary rates: `weights[i]` is working index i's
  /// relative write rate (any non-negative scale; at least one must be
  /// positive, size must equal working_lines()). Internally normalized so
  /// the mean-weight index writes once per round — a uniform weight vector
  /// reproduces the default UAA arithmetic bit-for-bit. Indices with zero
  /// weight never wear their line (but still re-home when it dies from
  /// other indices' writes). Call before run().
  void set_index_rates(std::vector<double> weights);

  /// Run until device failure. Always terminates: every event consumes a
  /// line, and the scheme must eventually report failure.
  LifetimeResult run();

  /// Borrow a scratch arena for run()'s working state (budgets, rate
  /// vectors, the death heap). run() resets it on entry, so a caller that
  /// simulates many devices back-to-back (the fleet runner) pays the
  /// allocations once and bump-allocates thereafter. nullptr (the default)
  /// falls back to a run-local arena. Purely an allocation strategy: the
  /// simulated trajectory is bit-identical either way.
  void set_scratch(Arena* arena) { scratch_ = arena; }

  /// Attach observability sinks. Wear-out events become trace instants
  /// (there is no Device here to emit them), counters mirror the stochastic
  /// engine's names, and snapshots fire on the same user-write cadence —
  /// sampled at event granularity, since nothing changes between events.
  /// Snapshots carry spare/mapping-table occupancy but no WearReport (the
  /// event engine tracks wear analytically, not per line).
  void set_observer(const Observer& obs);

 private:
  Observer obs_{};
  std::shared_ptr<const EnduranceMap> endurance_;
  SpareScheme& scheme_;
  Arena* scratch_{nullptr};
  /// Normalized per-index rates (writes per round); empty means uniform.
  std::vector<double> index_rates_;
};

}  // namespace nvmsec
