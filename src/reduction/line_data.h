// Bit-level line contents for the write-reduction and salvaging models.
//
// The lifetime simulator treats a 256 B line as the wear unit; the
// §3.3.2/§2.2.2 analyses need to look *inside* a line: which cells flip on
// a write (Flip-N-Write), and which cells fail first (ECP). We model a
// line as 512 cells (a 64 B cache-line worth of data at one cell per bit —
// the granularity the cited schemes operate on).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "util/rng.h"

namespace nvmsec {

/// 512 data bits as eight 64-bit words.
struct LineData {
  static constexpr std::size_t kWords = 8;
  static constexpr std::size_t kBits = kWords * 64;

  std::array<std::uint64_t, kWords> words{};

  bool operator==(const LineData&) const = default;

  /// Number of bit positions where the two lines differ.
  [[nodiscard]] std::uint32_t hamming_distance(const LineData& other) const {
    std::uint32_t d = 0;
    for (std::size_t w = 0; w < kWords; ++w) {
      d += static_cast<std::uint32_t>(std::popcount(words[w] ^ other.words[w]));
    }
    return d;
  }

  [[nodiscard]] std::uint32_t popcount() const {
    std::uint32_t c = 0;
    for (std::uint64_t w : words) {
      c += static_cast<std::uint32_t>(std::popcount(w));
    }
    return c;
  }

  [[nodiscard]] LineData inverted() const {
    LineData out;
    for (std::size_t w = 0; w < kWords; ++w) out.words[w] = ~words[w];
    return out;
  }

  [[nodiscard]] bool bit(std::size_t i) const {
    return (words[i / 64] >> (i % 64)) & 1;
  }

  static LineData filled(std::uint64_t pattern) {
    LineData out;
    out.words.fill(pattern);
    return out;
  }

  static LineData random(Rng& rng) {
    LineData out;
    for (auto& w : out.words) w = rng.generator().next();
    return out;
  }
};

}  // namespace nvmsec
