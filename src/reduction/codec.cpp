#include "reduction/codec.h"

#include <bit>
#include <stdexcept>

namespace nvmsec {

namespace {

class FullWriteCodec final : public WriteCodec {
 public:
  WriteCost program(StoredLine& stored, const LineData& incoming,
                    ProgramMask* mask) override {
    stored.cells = incoming;
    stored.inverted.fill(false);
    if (mask) {
      for (auto& w : mask->cells.words) w = ~std::uint64_t{0};
      mask->flags.fill(false);
    }
    return WriteCost{LineData::kBits, 0};
  }
  [[nodiscard]] std::string name() const override { return "full"; }
};

class DifferentialWriteCodec final : public WriteCodec {
 public:
  WriteCost program(StoredLine& stored, const LineData& incoming,
                    ProgramMask* mask) override {
    WriteCost cost;
    if (mask) {
      mask->cells = LineData{};
      mask->flags.fill(false);
    }
    for (std::size_t w = 0; w < LineData::kWords; ++w) {
      // Inversion flags are an FNW concept; a line handed over from FNW is
      // normalized here at one flag-cell cost per set flag.
      if (stored.inverted[w]) {
        stored.cells.words[w] = ~stored.cells.words[w];
        stored.inverted[w] = false;
        ++cost.flag_cells_programmed;
        if (mask) mask->flags[w] = true;
      }
      const std::uint64_t changed = stored.cells.words[w] ^ incoming.words[w];
      cost.cells_programmed +=
          static_cast<std::uint32_t>(std::popcount(changed));
      if (mask) mask->cells.words[w] = changed;
      stored.cells.words[w] = incoming.words[w];
    }
    return cost;
  }
  [[nodiscard]] std::string name() const override { return "differential"; }
};

class FlipNWriteCodec final : public WriteCodec {
 public:
  WriteCost program(StoredLine& stored, const LineData& incoming,
                    ProgramMask* mask) override {
    WriteCost cost;
    if (mask) {
      mask->cells = LineData{};
      mask->flags.fill(false);
    }
    for (std::size_t w = 0; w < LineData::kWords; ++w) {
      const std::uint64_t plain = incoming.words[w];
      const std::uint64_t flipped = ~plain;
      const auto flips_plain = static_cast<std::uint32_t>(
          std::popcount(stored.cells.words[w] ^ plain));
      const auto flips_inverted = static_cast<std::uint32_t>(
          std::popcount(stored.cells.words[w] ^ flipped));
      // Pick the cheaper representation; ties keep the current flag so no
      // flag cell is spent — exactly why the 0x0000/0x5555 alternation
      // (always a 32-flip tie) pins FNW at half the word per write.
      bool use_inverted = stored.inverted[w];
      if (flips_inverted < flips_plain) {
        use_inverted = true;
      } else if (flips_plain < flips_inverted) {
        use_inverted = false;
      }
      if (use_inverted != stored.inverted[w]) {
        ++cost.flag_cells_programmed;
        stored.inverted[w] = use_inverted;
        if (mask) mask->flags[w] = true;
      }
      const std::uint64_t target = use_inverted ? flipped : plain;
      const std::uint64_t changed = stored.cells.words[w] ^ target;
      cost.cells_programmed +=
          static_cast<std::uint32_t>(std::popcount(changed));
      if (mask) mask->cells.words[w] = changed;
      stored.cells.words[w] = target;
    }
    return cost;
  }
  [[nodiscard]] std::string name() const override { return "fnw"; }
};

}  // namespace

std::unique_ptr<WriteCodec> make_full_write_codec() {
  return std::make_unique<FullWriteCodec>();
}

std::unique_ptr<WriteCodec> make_differential_write_codec() {
  return std::make_unique<DifferentialWriteCodec>();
}

std::unique_ptr<WriteCodec> make_flip_n_write_codec() {
  return std::make_unique<FlipNWriteCodec>();
}

std::unique_ptr<WriteCodec> make_codec(const std::string& name) {
  if (name == "full") return make_full_write_codec();
  if (name == "differential") return make_differential_write_codec();
  if (name == "fnw") return make_flip_n_write_codec();
  throw std::invalid_argument("make_codec: unknown codec '" + name + "'");
}

}  // namespace nvmsec
