#include "reduction/payload.h"

#include <stdexcept>
#include <unordered_map>

namespace nvmsec {

namespace {

class RandomPayload final : public PayloadModel {
 public:
  LineData next(Rng& rng, LogicalLineAddr /*la*/) override {
    return LineData::random(rng);
  }
  [[nodiscard]] std::string name() const override { return "random"; }
  void reset() override {}
};

class ConstantPayload final : public PayloadModel {
 public:
  explicit ConstantPayload(std::uint64_t pattern) : pattern_(pattern) {}
  LineData next(Rng& /*rng*/, LogicalLineAddr /*la*/) override {
    return LineData::filled(pattern_);
  }
  [[nodiscard]] std::string name() const override { return "constant"; }
  void reset() override {}

 private:
  std::uint64_t pattern_;
};

class AlternatingPayload final : public PayloadModel {
 public:
  AlternatingPayload(std::uint64_t a, std::uint64_t b, std::string name)
      : a_(a), b_(b), name_(std::move(name)) {}
  LineData next(Rng& /*rng*/, LogicalLineAddr la) override {
    // Per-address alternation: the attacker writes "0x0000 and 0x5555 to
    // the same address in turn" (§3.3.2) — the toggle is address state,
    // not global state, or a sweeping attack would deliver a constant to
    // every line.
    bool& toggle = toggles_[la.value()];
    toggle = !toggle;
    return LineData::filled(toggle ? a_ : b_);
  }
  [[nodiscard]] std::string name() const override { return name_; }
  void reset() override { toggles_.clear(); }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
  std::string name_;
  std::unordered_map<std::uint64_t, bool> toggles_;
};

}  // namespace

std::unique_ptr<PayloadModel> make_random_payload() {
  return std::make_unique<RandomPayload>();
}

std::unique_ptr<PayloadModel> make_constant_payload(std::uint64_t pattern) {
  return std::make_unique<ConstantPayload>(pattern);
}

std::unique_ptr<PayloadModel> make_fnw_adversarial_payload() {
  return std::make_unique<AlternatingPayload>(
      0x0000000000000000ULL, 0x5555555555555555ULL, "fnw-adversarial");
}

std::unique_ptr<PayloadModel> make_complement_payload(std::uint64_t pattern) {
  return std::make_unique<AlternatingPayload>(pattern, ~pattern, "complement");
}

std::unique_ptr<PayloadModel> make_payload(const std::string& name) {
  if (name == "random") return make_random_payload();
  if (name == "constant") return make_constant_payload(0);
  if (name == "fnw-adversarial") return make_fnw_adversarial_payload();
  if (name == "complement") return make_complement_payload(0);
  throw std::invalid_argument("make_payload: unknown model '" + name + "'");
}

}  // namespace nvmsec
