// Write codecs: how a new payload is programmed over a line's old contents,
// and what it costs in programmed (worn) cells.
//
//  * FullWrite          — every cell reprogrammed every write (no
//                         differential-write hardware).
//  * DifferentialWrite  — only changed cells programmed (standard PCM
//                         read-modify-write).
//  * FlipNWrite         — Cho & Lee (MICRO'09): per 64-bit word, if more
//                         than half the bits would change, store the
//                         inverted word and flip the word's flag bit, so at
//                         most 32(+1) cells are ever programmed per word.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "reduction/line_data.h"

namespace nvmsec {

/// Result of programming one write.
struct WriteCost {
  /// Data cells actually programmed.
  std::uint32_t cells_programmed{0};
  /// Flag-bit cells programmed (Flip-N-Write bookkeeping).
  std::uint32_t flag_cells_programmed{0};

  [[nodiscard]] std::uint32_t total() const {
    return cells_programmed + flag_cells_programmed;
  }
};

/// Physical line state: stored cell values plus per-word inversion flags.
struct StoredLine {
  LineData cells;
  std::array<bool, LineData::kWords> inverted{};  // FNW flags

  /// Logical contents as seen by a reader.
  [[nodiscard]] LineData logical() const {
    LineData out = cells;
    for (std::size_t w = 0; w < LineData::kWords; ++w) {
      if (inverted[w]) out.words[w] = ~out.words[w];
    }
    return out;
  }
};

/// Which cells a write programmed: one bit per data cell, one flag per word.
struct ProgramMask {
  LineData cells;  // bit set = cell programmed
  std::array<bool, LineData::kWords> flags{};
};

class WriteCodec {
 public:
  virtual ~WriteCodec() = default;

  /// Program `incoming` over `stored`. Returns the wear cost; `stored` is
  /// updated so that stored.logical() == incoming afterwards (encoding
  /// correctness is asserted by the tests). When `mask` is non-null it
  /// receives exactly which cells were programmed (for cell-level wear
  /// tracking in the salvaging model).
  virtual WriteCost program(StoredLine& stored, const LineData& incoming,
                            ProgramMask* mask = nullptr) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

std::unique_ptr<WriteCodec> make_full_write_codec();
std::unique_ptr<WriteCodec> make_differential_write_codec();
std::unique_ptr<WriteCodec> make_flip_n_write_codec();

/// Factory by name: "full", "differential", "fnw".
std::unique_ptr<WriteCodec> make_codec(const std::string& name);

}  // namespace nvmsec
