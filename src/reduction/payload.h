// Payload models: what data does each write carry?
//
// Write-reduction codecs save endurance only for *favourable* data. §3.3.2:
// "Write reduction techniques also suffer from malicious attacks, because
// an adversary can write specific data to invalidate the techniques. For
// Flip-N-Write ... an adversary can always write 0x0000 and 0x5555 to the
// same address in turn." These generators provide the benign and the
// adversarial ends of that spectrum.
#pragma once

#include <memory>
#include <string>

#include "reduction/line_data.h"
#include "util/types.h"

namespace nvmsec {

class PayloadModel {
 public:
  virtual ~PayloadModel() = default;
  /// Contents of the next write to logical address `la`. The address
  /// matters: the adversarial patterns alternate *per address* (writing
  /// "0x0000 and 0x5555 to the same address in turn"), which is different
  /// from alternating per call once the attack sweeps multiple addresses.
  virtual LineData next(Rng& rng, LogicalLineAddr la) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void reset() = 0;
};

/// Independent uniform-random data each write (benign workload proxy).
std::unique_ptr<PayloadModel> make_random_payload();

/// The same constant every write (nothing ever flips after the first).
std::unique_ptr<PayloadModel> make_constant_payload(std::uint64_t pattern);

/// §3.3.2's Flip-N-Write killer: alternate 0x0000... and 0x5555... so that
/// exactly half of every word's bits differ between consecutive writes —
/// the flip count sits exactly at FNW's inversion threshold, where
/// inverting cannot reduce it.
std::unique_ptr<PayloadModel> make_fnw_adversarial_payload();

/// Alternate a pattern and its complement: every bit flips every write,
/// the worst case for a plain differential write (and the best showcase
/// for FNW, which caps the damage at half).
std::unique_ptr<PayloadModel> make_complement_payload(std::uint64_t pattern);

/// Factory by name: "random", "constant", "fnw-adversarial", "complement".
std::unique_ptr<PayloadModel> make_payload(const std::string& name);

}  // namespace nvmsec
