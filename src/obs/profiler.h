// Profiler: low-overhead, hierarchical, aggregating self-profiler.
//
// Where the TraceWriter records *every* event (and caps at 1M of them), the
// profiler keeps one fixed-size accumulator per phase — count, total, min
// and max nanoseconds on a steady clock — so it can stay attached to the
// hottest loops for billions of writes without allocating or doing any
// per-event I/O. Phases form a static hierarchy (engine.counts.draw under
// engine.run under fleet.device under fleet.shard); renderers attach each
// observed phase to its nearest *observed* ancestor so the same taxonomy
// serves a standalone engine run (engine.run is a root) and a fleet
// campaign (engine.run nests under fleet.device).
//
// Concurrency model: a Profiler is single-threaded by design. Parallel
// runners give every task its own instance and merge them on the join
// thread — merge() is associative and commutative (sums, min-of-min,
// max-of-max), so the merged result is deterministic regardless of
// completion order as long as the merge order is fixed.
//
// Determinism contract: the profiler reads the steady clock and nothing
// else — no RNG, no I/O, no simulation state. Attaching it cannot change
// event logs, checkpoints or fleet results by a single byte; only the
// profile JSON itself is wall-clock-dependent and therefore excluded from
// every byte-identity gate.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nvmsec {

/// Fixed phase taxonomy. Adding a phase means adding an enum entry plus a
/// row in kProfPhaseInfo (profiler.cpp keeps them in sync with a
/// static_assert).
enum class ProfPhase : std::uint8_t {
  kExperimentSetup = 0,  // map build, scheme/attack/WL construction
  kEngineRun,            // Engine::run end to end
  kEngineCountsDraw,     // multinomial attack draw (next_counts)
  kEngineCountsResolve,  // translate-and-resolve loop over a counts chunk
  kEngineCountsWrite,    // Device::write_counts over a counts chunk
  kEngineBatchDraw,      // run-length attack draw (next_run)
  kEngineBatchWrite,     // stride-0 write_many spans + remap-sweep spans
  kEnginePerWrite,       // write_one fallback (horizon == 0 tail)
  kEngineBuffer,         // DRAM-buffer hit handling and evict write-back
  kEngineRescue,         // wear-out handling: spare rescue + death metrics
  kEngineDetector,       // detector window close (feature extraction)
  kEngineCheckpoint,     // checkpoint serialization + atomic write
  kEngineSnapshot,       // wear-snapshot emission
  kEventRun,             // UniformEventSimulator::run end to end
  kEventRescue,          // event-sim re-home loop per line death
  kBitRun,               // BitEngine::run end to end
  kFleetShard,           // one shard: device loop + fold + compress
  kFleetDevice,          // one device's run_experiment inside a shard
  kFleetCheckpoint,      // fleet checkpoint rewrite after a shard lands
  kFleetMerge,           // final merge of shard aggregates
  kCount,
};

inline constexpr std::size_t kProfPhaseCount =
    static_cast<std::size_t>(ProfPhase::kCount);

/// Monotonic event counters that ride along with the phase timers: cheap
/// enough to stay on even where a timer would not be.
enum class ProfCounter : std::uint8_t {
  kResolveCacheHit = 0,  // translate-compose-resolve cache hits
  kResolveCacheMiss,
  kResolveCacheFlush,    // epoch bumps (remap/rescue invalidations)
  kEnduranceCacheHit,    // endurance-map cache hits (per experiment)
  kEnduranceCacheMiss,
  kEnduranceCacheEvict,
  kBufferHit,            // DRAM-buffer write hits
  kBufferMiss,
  kBufferEvict,          // evictions written back to the device
  kCountsChunks,         // multinomial count-vector chunks issued
  kCountsWrites,         // user writes issued through the counts path
  kBatchRuns,            // stride-0 runs issued through write_many
  kBatchWrites,          // user writes issued through the batched path
  kPerWriteFallback,     // user writes issued one by one
  kDetectorWindows,      // detector windows closed
  kRescueEvents,         // wear-outs handled (spare rescues attempted)
  kCount,
};

inline constexpr std::size_t kProfCounterCount =
    static_cast<std::size_t>(ProfCounter::kCount);

/// Dotted phase name, e.g. "engine.counts.draw".
[[nodiscard]] std::string_view prof_phase_name(ProfPhase phase);

/// Static parent in the taxonomy; ProfPhase::kCount means root. Renderers
/// should walk parents until they hit a phase that was actually observed
/// (count > 0) and treat the phase as a root when none was.
[[nodiscard]] ProfPhase prof_phase_parent(ProfPhase phase);

/// Counter name, e.g. "resolve_cache.hit".
[[nodiscard]] std::string_view prof_counter_name(ProfCounter counter);

/// One phase's accumulator. min_ns is kEmptyMin until the first record so
/// merge() of an empty cell is the identity.
struct ProfPhaseStats {
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};

  std::uint64_t count{0};
  std::uint64_t total_ns{0};
  std::uint64_t min_ns{kEmptyMin};
  std::uint64_t max_ns{0};

  void record(std::uint64_t ns) {
    ++count;
    total_ns += ns;
    if (ns < min_ns) min_ns = ns;
    if (ns > max_ns) max_ns = ns;
  }

  void merge(const ProfPhaseStats& other) {
    count += other.count;
    total_ns += other.total_ns;
    if (other.min_ns < min_ns) min_ns = other.min_ns;
    if (other.max_ns > max_ns) max_ns = other.max_ns;
  }
};

/// Per-worker busy time from a parallel section (thread pool drivers plus
/// the calling thread), for the utilization report.
struct ProfWorkerStats {
  std::uint64_t busy_ns{0};
  std::uint64_t tasks{0};
};

class Profiler {
 public:
  [[nodiscard]] static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Open a phase; returns true when this is the outermost activation
  /// (re-entrant inner scopes are counted into the outer span, not twice).
  bool enter(ProfPhase phase) {
    return depth_[static_cast<std::size_t>(phase)]++ == 0;
  }

  /// Close a phase opened by enter(). Records only the outermost span.
  void leave(ProfPhase phase, bool outer, std::uint64_t start_ns) {
    --depth_[static_cast<std::size_t>(phase)];
    if (outer) {
      phases_[static_cast<std::size_t>(phase)].record(now_ns() - start_ns);
    }
  }

  /// Record an externally timed span (for call sites that cannot hold a
  /// scope open, e.g. accumulate-then-flush loops).
  void record(ProfPhase phase, std::uint64_t ns, std::uint64_t spans = 1) {
    auto& cell = phases_[static_cast<std::size_t>(phase)];
    cell.count += spans;
    cell.total_ns += ns;
    if (spans > 0) {
      if (ns < cell.min_ns) cell.min_ns = ns;
      if (ns > cell.max_ns) cell.max_ns = ns;
    }
  }

  void add(ProfCounter counter, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(counter)] += n;
  }

  [[nodiscard]] const ProfPhaseStats& phase(ProfPhase p) const {
    return phases_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t counter(ProfCounter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }

  /// Fold another profiler's accumulators into this one. Associative and
  /// commutative; parallel runners call this on the join thread in a fixed
  /// order. Worker utilization is appended in call order.
  void merge(const Profiler& other);

  /// Attach per-worker busy time from a parallel section. `wall_ns` is the
  /// section's wall time (the denominator for utilization); repeated calls
  /// append workers and sum wall time (sections run back to back).
  void set_utilization(const std::vector<ProfWorkerStats>& workers,
                       std::uint64_t wall_ns);

  [[nodiscard]] const std::vector<ProfWorkerStats>& workers() const {
    return workers_;
  }
  [[nodiscard]] std::uint64_t utilization_wall_ns() const {
    return utilization_wall_ns_;
  }

  /// Sum of total_ns over phases whose static ancestors were all
  /// unobserved — i.e. the spans a renderer would place at the root. This
  /// is the numerator of the "attributed fraction of wall time" gate.
  [[nodiscard]] std::uint64_t attributed_root_ns() const;

  /// Serialize to the versioned profile JSON document (schema v1). Only
  /// observed phases and nonzero counters are emitted; key order follows
  /// the enum, so the layout is stable run to run even though the timings
  /// are not. `wall_ns` is the caller-measured wall time of whatever the
  /// profile covers (one run, one campaign).
  [[nodiscard]] std::string to_json(std::uint64_t wall_ns) const;

 private:
  std::array<ProfPhaseStats, kProfPhaseCount> phases_{};
  std::array<std::uint32_t, kProfPhaseCount> depth_{};
  std::array<std::uint64_t, kProfCounterCount> counters_{};
  std::vector<ProfWorkerStats> workers_;
  std::uint64_t utilization_wall_ns_{0};
};

/// RAII phase scope. With a null profiler the constructor and destructor
/// are each a single predictable branch — no clock reads, no stores beyond
/// the members — preserving the obs layer's zero-cost no-op contract.
class ScopedProfPhase {
 public:
  ScopedProfPhase(Profiler* profiler, ProfPhase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) {
      phase_ = phase;
      outer_ = profiler_->enter(phase);
      if (outer_) start_ns_ = Profiler::now_ns();
    }
  }
  ~ScopedProfPhase() {
    if (profiler_ != nullptr) profiler_->leave(phase_, outer_, start_ns_);
  }

  ScopedProfPhase(const ScopedProfPhase&) = delete;
  ScopedProfPhase& operator=(const ScopedProfPhase&) = delete;

 private:
  Profiler* profiler_;
  ProfPhase phase_{ProfPhase::kCount};
  bool outer_{false};
  std::uint64_t start_ns_{0};
};

// The scope must stay register-friendly: a pointer, a packed phase/flag
// word and a timestamp. Growing it means a hot-loop spill.
static_assert(sizeof(ScopedProfPhase) <= 3 * sizeof(void*),
              "ScopedProfPhase must stay within three machine words");

}  // namespace nvmsec
