#include "obs/heartbeat.h"

#include "obs/json.h"

namespace nvmsec {

HeartbeatSink::HeartbeatSink(std::ostream& out,
                             std::uint64_t interval_devices)
    : out_(out),
      interval_(interval_devices == 0 ? 1 : interval_devices),
      start_(std::chrono::steady_clock::now()) {}

void HeartbeatSink::sample(const HeartbeatSample& s) {
  if (s.devices_done < last_emitted_at_ + interval_) return;
  write_line(s);
}

void HeartbeatSink::finish(const HeartbeatSample& s) {
  write_line(s);
  out_.flush();
}

void HeartbeatSink::write_line(const HeartbeatSample& s) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double rate =
      elapsed > 0 ? static_cast<double>(s.devices_done) / elapsed : -1.0;
  const double eta =
      rate > 0 && s.devices_total >= s.devices_done
          ? static_cast<double>(s.devices_total - s.devices_done) / rate
          : -1.0;

  const double shard_mean =
      s.shards_timed > 0 ? s.shard_sec_sum / static_cast<double>(s.shards_timed)
                         : -1.0;
  const double shard_max = s.shards_timed > 0 ? s.shard_sec_max : -1.0;
  const double imbalance = shard_mean > 0 ? shard_max / shard_mean : -1.0;
  const double busy_frac =
      elapsed > 0 && s.workers > 0 && s.shards_timed > 0
          ? s.shard_sec_sum / (elapsed * static_cast<double>(s.workers))
          : -1.0;

  std::string line;
  line += R"({"v":3,"type":"fleet_heartbeat","devices_done":)";
  json_append_number(line, static_cast<double>(s.devices_done));
  line += R"(,"devices_total":)";
  json_append_number(line, static_cast<double>(s.devices_total));
  // v3: no-data fields are omitted instead of carrying a -1 sentinel, so
  // consumers never have to special-case negative rates or ETAs.
  const auto maybe = [&line](const char* key, double value) {
    if (value < 0) return;
    line += ",\"";
    line += key;
    line += "\":";
    json_append_number(line, value);
  };
  maybe("devices_per_sec", rate);
  maybe("eta_sec", eta);
  line += R"(,"p50":)";
  json_append_number(line, s.p50);
  line += R"(,"p99":)";
  json_append_number(line, s.p99);
  line += R"(,"failure_causes":{)";
  bool first = true;
  for (const auto& [cause, count] : s.failure_causes) {
    if (!first) line += ',';
    first = false;
    json_append_string(line, cause);
    line += ':';
    json_append_number(line, static_cast<double>(count));
  }
  line += R"(},"truncated_logs":)";
  json_append_number(line, static_cast<double>(s.truncated_logs));
  line += R"(,"shards_done":)";
  json_append_number(line, static_cast<double>(s.shards_done));
  line += R"(,"shards_total":)";
  json_append_number(line, static_cast<double>(s.shards_total));
  line += R"(,"workers":)";
  json_append_number(line, static_cast<double>(s.workers));
  maybe("shard_sec_mean", shard_mean);
  maybe("shard_sec_max", shard_max);
  maybe("shard_imbalance", imbalance);
  maybe("worker_busy_frac", busy_frac);
  maybe("checkpoint_bytes_written",
        static_cast<double>(s.checkpoint_bytes_written));
  line += "}\n";
  out_ << line;
  out_.flush();

  last_emitted_at_ = s.devices_done;
  ++lines_;
}

}  // namespace nvmsec
