#include "obs/metrics.h"

#include "obs/json.h"

namespace nvmsec {

namespace {

// Heterogeneous find-or-emplace: std::map::operator[] would need a
// std::string temporary per call; try_emplace with a transparent comparator
// avoids it on the find path.
template <typename Map, typename... Args>
auto& find_or_create(Map& map, std::string_view name, Args&&... args) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.try_emplace(std::string(name), std::forward<Args>(args)...).first;
  }
  return it->second;
}

template <typename Map>
auto* find_only(const Map& map, std::string_view name) {
  const auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), lo, hi, buckets).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_only(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_only(gauges_, name);
}

const HistogramMetric* MetricsRegistry::find_histogram(
    std::string_view name) const {
  return find_only(histograms_, name);
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
        << c.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": ";
    json_write_number(out, g.value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": {";
    const RunningStats& s = h.summary();
    out << "\"count\": " << s.count() << ", \"mean\": ";
    json_write_number(out, s.mean());
    out << ", \"stddev\": ";
    json_write_number(out, s.stddev());
    out << ", \"min\": ";
    json_write_number(out, s.min());
    out << ", \"max\": ";
    json_write_number(out, s.max());
    if (const Histogram* b = h.buckets()) {
      out << ", \"buckets\": [";
      for (std::size_t i = 0; i < b->bucket_count(); ++i) {
        if (i > 0) out << ", ";
        out << "{\"lo\": ";
        json_write_number(out, b->bucket_lo(i));
        out << ", \"hi\": ";
        json_write_number(out, b->bucket_hi(i));
        out << ", \"count\": " << b->bucket(i) << "}";
      }
      out << "]";
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

namespace {

void csv_summary_columns(std::ostream& out, const RunningStats& s) {
  out << s.count() << ",";
  json_write_number(out, s.mean());
  out << ",";
  json_write_number(out, s.stddev());
  out << ",";
  json_write_number(out, s.min());
  out << ",";
  json_write_number(out, s.max());
}

}  // namespace

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "kind,name,value,count,mean,stddev,min,max\n";
  for (const auto& [name, c] : counters_) {
    out << "counter," << name << "," << c.value() << ",,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge," << name << ",";
    json_write_number(out, g.value());
    out << ",,,,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram," << name << ",,";
    csv_summary_columns(out, h.summary());
    out << "\n";
  }
}

}  // namespace nvmsec
