#include "obs/profile_report.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/json_parse.h"
#include "obs/profiler.h"
#include "util/table.h"

namespace nvmsec {

namespace {

std::uint64_t as_u64(double v) {
  if (v < 0) throw std::runtime_error("profile: negative count field");
  return static_cast<std::uint64_t>(v);
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; }
double us(std::uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole > 0
             ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
             : 0.0;
}

/// Static parent of a phase name in this build's taxonomy; empty when the
/// name is unknown (a file from a newer build) or already a root.
std::string_view static_parent_of(std::string_view name) {
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const auto p = static_cast<ProfPhase>(i);
    if (prof_phase_name(p) != name) continue;
    const ProfPhase parent = prof_phase_parent(p);
    return parent == ProfPhase::kCount ? std::string_view{}
                                       : prof_phase_name(parent);
  }
  return {};
}

void append_rate_line(std::ostream& os, std::string_view label,
                      std::uint64_t hits, std::uint64_t misses) {
  if (hits + misses == 0) return;
  os << "  " << label << " hit rate: ";
  const double rate = pct(hits, hits + misses);
  os.precision(1);
  os << std::fixed << rate << "% (" << hits << " hits, " << misses
     << " misses)\n";
}

}  // namespace

std::uint64_t ProfileDoc::counter(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

std::size_t ProfileDoc::observed_parent(std::size_t i) const {
  std::string_view current = phases[i].parent;
  while (!current.empty()) {
    for (std::size_t j = 0; j < phases.size(); ++j) {
      if (phases[j].name == current) return j;
    }
    current = static_parent_of(current);
  }
  return npos;
}

std::uint64_t ProfileDoc::attributed_ns() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (observed_parent(i) == npos) total += phases[i].total_ns;
  }
  return total;
}

ProfileDoc parse_profile(std::string_view text) {
  const minijson::JsonValue doc = minijson::parse_json(text);
  if (!doc.is_object()) {
    throw std::runtime_error("profile: document is not a JSON object");
  }
  ProfileDoc out;
  out.version = static_cast<int>(doc.num("v"));
  if (out.version != 1) {
    throw std::runtime_error("profile: unsupported schema version " +
                             std::to_string(out.version));
  }
  if (doc.str("type") != "profile") {
    throw std::runtime_error("profile: unexpected document type '" +
                             doc.str("type") + "'");
  }
  out.wall_ns = as_u64(doc.num("wall_ns"));

  const minijson::JsonValue& phases = doc.at("phases");
  if (!phases.is_object()) {
    throw std::runtime_error("profile: 'phases' is not an object");
  }
  for (const auto& [name, v] : phases.object) {
    ProfilePhaseRow row;
    row.name = name;
    const minijson::JsonValue& parent = v.at("parent");
    if (parent.is_string()) {
      row.parent = parent.string;
    } else if (!parent.is_null()) {
      throw std::runtime_error("profile: phase parent must be string|null");
    }
    row.count = as_u64(v.num("count"));
    row.total_ns = as_u64(v.num("total_ns"));
    row.min_ns = as_u64(v.num("min_ns"));
    row.max_ns = as_u64(v.num("max_ns"));
    out.phases.push_back(std::move(row));
  }

  const minijson::JsonValue& counters = doc.at("counters");
  if (!counters.is_object()) {
    throw std::runtime_error("profile: 'counters' is not an object");
  }
  for (const auto& [name, v] : counters.object) {
    if (!v.is_number()) {
      throw std::runtime_error("profile: counter '" + name +
                               "' is not a number");
    }
    out.counters.emplace_back(name, as_u64(v.number));
  }

  const minijson::JsonValue& util = doc.at("utilization");
  out.utilization_wall_ns = as_u64(util.num("wall_ns"));
  const minijson::JsonValue& workers = util.at("workers");
  if (!workers.is_array()) {
    throw std::runtime_error("profile: 'utilization.workers' not an array");
  }
  for (const minijson::JsonValue& w : workers.array) {
    ProfileWorkerRow row;
    row.busy_ns = as_u64(w.num("busy_ns"));
    row.tasks = as_u64(w.num("tasks"));
    out.workers.push_back(row);
  }
  return out;
}

namespace {

void render_attributed_line(std::ostream& os, const ProfileDoc& doc) {
  const std::uint64_t attributed = doc.attributed_ns();
  os.precision(1);
  os << std::fixed << "attributed: " << pct(attributed, doc.wall_ns)
     << "% of wall (" << ms(attributed) << " of " << ms(doc.wall_ns)
     << " ms)";
  if (attributed > doc.wall_ns && doc.workers.size() > 1) {
    // Root spans from concurrent workers overlap in wall time, so a
    // parallel profile legitimately attributes more than 100%.
    os << " — concurrent spans from " << doc.workers.size()
       << " workers overlap; >100% is expected";
  }
  os << '\n';
}

void render_flat_table(std::ostream& os, const ProfileDoc& doc,
                       std::size_t limit, const char* title) {
  std::vector<std::size_t> order(doc.phases.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&doc](std::size_t a, std::size_t b) {
                     return doc.phases[a].total_ns > doc.phases[b].total_ns;
                   });
  if (limit > 0 && order.size() > limit) order.resize(limit);

  Table table({"phase", "count", "total_ms", "%wall", "avg_us", "min_us",
               "max_us"});
  table.set_title(title);
  table.set_precision(3);
  for (std::size_t i : order) {
    const ProfilePhaseRow& p = doc.phases[i];
    const double avg =
        p.count > 0 ? us(p.total_ns) / static_cast<double>(p.count) : 0.0;
    table.add_row({p.name, static_cast<std::int64_t>(p.count),
                   ms(p.total_ns), pct(p.total_ns, doc.wall_ns), avg,
                   us(p.min_ns), us(p.max_ns)});
  }
  table.print(os);
}

void render_hierarchy(std::ostream& os, const ProfileDoc& doc) {
  // children[i] = phases whose nearest observed ancestor is i (file order);
  // roots = phases with no observed ancestor.
  std::vector<std::vector<std::size_t>> children(doc.phases.size());
  std::vector<std::size_t> roots;
  std::vector<std::uint64_t> child_ns(doc.phases.size(), 0);
  for (std::size_t i = 0; i < doc.phases.size(); ++i) {
    const std::size_t parent = doc.observed_parent(i);
    if (parent == ProfileDoc::npos) {
      roots.push_back(i);
    } else {
      children[parent].push_back(i);
      child_ns[parent] += doc.phases[i].total_ns;
    }
  }

  Table table({"phase", "total_ms", "self_ms", "%wall"});
  table.set_title(
      "Phase hierarchy (self = total - children, clamped at 0; overlapping "
      "phases make self approximate — flat totals are exact)");
  table.set_precision(3);
  const auto add_subtree = [&](auto&& self, std::size_t i,
                               std::size_t depth) -> void {
    const ProfilePhaseRow& p = doc.phases[i];
    const std::uint64_t self_ns =
        p.total_ns > child_ns[i] ? p.total_ns - child_ns[i] : 0;
    table.add_row({std::string(2 * depth, ' ') + p.name, ms(p.total_ns),
                   ms(self_ns), pct(p.total_ns, doc.wall_ns)});
    for (std::size_t c : children[i]) self(self, c, depth + 1);
  };
  for (std::size_t r : roots) add_subtree(add_subtree, r, 0);
  table.print(os);
}

void render_counters(std::ostream& os, const ProfileDoc& doc) {
  if (!doc.counters.empty()) {
    Table table({"counter", "value"});
    table.set_title("Event counters");
    for (const auto& [name, value] : doc.counters) {
      table.add_row({name, static_cast<std::int64_t>(value)});
    }
    table.print(os);
  }
  append_rate_line(os, "resolve cache", doc.counter("resolve_cache.hit"),
                   doc.counter("resolve_cache.miss"));
  append_rate_line(os, "endurance cache", doc.counter("endurance_cache.hit"),
                   doc.counter("endurance_cache.miss"));
  append_rate_line(os, "dram buffer", doc.counter("buffer.hit"),
                   doc.counter("buffer.miss"));
}

void render_utilization(std::ostream& os, const ProfileDoc& doc,
                        bool per_worker) {
  if (doc.workers.empty()) return;
  std::uint64_t busy_sum = 0;
  std::uint64_t busy_max = 0;
  for (const ProfileWorkerRow& w : doc.workers) {
    busy_sum += w.busy_ns;
    busy_max = std::max(busy_max, w.busy_ns);
  }
  const double mean =
      static_cast<double>(busy_sum) / static_cast<double>(doc.workers.size());
  if (per_worker) {
    Table table({"worker", "busy_ms", "busy_%", "tasks"});
    table.set_title("Worker utilization (parallel sections)");
    table.set_precision(3);
    for (std::size_t i = 0; i < doc.workers.size(); ++i) {
      const ProfileWorkerRow& w = doc.workers[i];
      table.add_row({static_cast<std::int64_t>(i), ms(w.busy_ns),
                     pct(w.busy_ns, doc.utilization_wall_ns),
                     static_cast<std::int64_t>(w.tasks)});
    }
    table.print(os);
  }
  os.precision(1);
  os << std::fixed << "  workers: " << doc.workers.size()
     << ", section wall " << ms(doc.utilization_wall_ns) << " ms, busy "
     << pct(busy_sum, doc.utilization_wall_ns *
                          static_cast<std::uint64_t>(doc.workers.size()))
     << "%, imbalance "
     << (mean > 0 ? static_cast<double>(busy_max) / mean : 0.0)
     << " (max/mean busy)\n";
}

}  // namespace

void render_profile(std::ostream& os, const ProfileDoc& doc) {
  os.precision(3);
  os << std::fixed << "Profile: wall " << ms(doc.wall_ns)
     << " ms (schema v" << doc.version << ", steady clock, timings are "
     << "non-deterministic)\n\n";
  render_flat_table(os, doc, 0, "Phase totals (inclusive, total-descending)");
  os << '\n';
  render_hierarchy(os, doc);
  os << '\n';
  render_counters(os, doc);
  os << '\n';
  render_utilization(os, doc, /*per_worker=*/true);
  render_attributed_line(os, doc);
}

void render_profile_summary(std::ostream& os, const ProfileDoc& doc,
                            std::size_t top_phases) {
  render_flat_table(os, doc, top_phases, "Top phases by total time");
  render_counters(os, doc);
  render_utilization(os, doc, /*per_worker=*/false);
  render_attributed_line(os, doc);
}

void render_profile_compare(std::ostream& os, const ProfileDoc& baseline,
                            const ProfileDoc& current) {
  const auto find_ns = [](const ProfileDoc& doc,
                          std::string_view name) -> std::uint64_t {
    for (const ProfilePhaseRow& p : doc.phases) {
      if (p.name == name) return p.total_ns;
    }
    return 0;
  };

  os.precision(3);
  os << std::fixed << "Profile compare: baseline wall " << ms(baseline.wall_ns)
     << " ms, current wall " << ms(current.wall_ns) << " ms ("
     << (baseline.wall_ns > 0
             ? 100.0 * (static_cast<double>(current.wall_ns) /
                            static_cast<double>(baseline.wall_ns) -
                        1.0)
             : 0.0)
     << "% delta)\n\n";

  Table table({"phase", "base_ms", "cur_ms", "delta_ms", "delta_%"});
  table.set_title("Phase totals vs baseline");
  table.set_precision(3);
  const auto add_delta_row = [&](const std::string& name,
                                 std::uint64_t base_ns,
                                 std::uint64_t cur_ns) {
    const double delta = ms(cur_ns) - ms(base_ns);
    const double rel = base_ns > 0 ? 100.0 * delta / ms(base_ns) : 0.0;
    table.add_row({name, ms(base_ns), ms(cur_ns), delta, rel});
  };
  for (const ProfilePhaseRow& p : current.phases) {
    add_delta_row(p.name, find_ns(baseline, p.name), p.total_ns);
  }
  for (const ProfilePhaseRow& p : baseline.phases) {
    if (find_ns(current, p.name) == 0) {
      add_delta_row(p.name, p.total_ns, 0);
    }
  }
  table.print(os);

  Table counters({"counter", "base", "cur", "delta"});
  counters.set_title("Counters vs baseline");
  bool any = false;
  const auto add_counter_row = [&](const std::string& name,
                                   std::uint64_t base, std::uint64_t cur) {
    counters.add_row({name, static_cast<std::int64_t>(base),
                      static_cast<std::int64_t>(cur),
                      static_cast<std::int64_t>(cur) -
                          static_cast<std::int64_t>(base)});
    any = true;
  };
  for (const auto& [name, value] : current.counters) {
    add_counter_row(name, baseline.counter(name), value);
  }
  for (const auto& [name, value] : baseline.counters) {
    if (current.counter(name) == 0) add_counter_row(name, value, 0);
  }
  if (any) {
    os << '\n';
    counters.print(os);
  }
}

}  // namespace nvmsec
