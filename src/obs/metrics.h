// MetricsRegistry: named counters, gauges and histograms for run-time
// telemetry.
//
// Design constraints, in order:
//  1. Hot-path cost. Components look a metric up by name ONCE (at
//     construction or observer attach) and keep the returned reference;
//     incrementing is then a single add on a plain integer. Nothing in the
//     registry is touched per write.
//  2. Determinism. Export order is the metric name's lexicographic order,
//     so two runs with the same seed produce byte-identical files.
//  3. Reuse. Histograms wrap util/stats.h's RunningStats (always) and
//     Histogram (when bucket bounds are given) rather than reimplementing
//     either.
//
// The registry is single-threaded, like the simulators it observes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "util/stats.h"

namespace nvmsec {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  /// Counters are monotonic; set() exists for publishing an externally
  /// accumulated total (e.g. an engine-local counter flushed at run end).
  void set(std::uint64_t value) { value_ = value; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Point-in-time value (table occupancy, pool level, fraction).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0};
};

/// Distribution metric: streaming summary plus optional fixed buckets.
class HistogramMetric {
 public:
  HistogramMetric() = default;
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : buckets_(std::in_place, lo, hi, buckets) {}

  void observe(double x) {
    summary_.add(x);
    if (buckets_) buckets_->add(x);
  }

  [[nodiscard]] const RunningStats& summary() const { return summary_; }
  [[nodiscard]] const Histogram* buckets() const {
    return buckets_ ? &*buckets_ : nullptr;
  }

 private:
  RunningStats summary_;
  std::optional<Histogram> buckets_;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime
  /// (std::map nodes are stable), so call once and keep the reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Summary-only histogram (no buckets).
  HistogramMetric& histogram(std::string_view name);
  /// Bucketed histogram over [lo, hi); bounds are fixed by the first call
  /// for a given name and ignored on later calls.
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t buckets);

  /// Lookup without creating; nullptr when absent. For tests and exporters.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramMetric* find_histogram(
      std::string_view name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, names sorted.
  void write_json(std::ostream& out) const;

  /// Flat CSV: kind,name,value,count,mean,stddev,min,max (one row per
  /// metric; counter/gauge rows leave the summary columns empty).
  void write_csv(std::ostream& out) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, HistogramMetric, std::less<>> histograms_;
};

}  // namespace nvmsec
