// A deliberately small recursive-descent JSON parser for reading back the
// files the obs subsystem writes (metrics JSON, wear-snapshot JSONL, the
// decision event log). It started life as a test-only utility; the
// maxwe_report post-mortem tool needs the same thing at runtime, so it
// lives in the library now. Accepts exactly the JSON grammar the obs
// writers produce (ASCII strings, finite numbers); throws
// std::runtime_error on anything malformed, which doubles as the validity
// assertion tests rely on.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nvmsec::minijson {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Object member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Numeric member; throws std::runtime_error when absent or non-numeric.
  [[nodiscard]] double num(std::string_view key) const;

  /// String member; throws std::runtime_error when absent or non-string.
  [[nodiscard]] const std::string& str(std::string_view key) const;
};

/// Parse one complete JSON document.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Parse a JSONL document: one JSON value per non-empty line.
[[nodiscard]] std::vector<JsonValue> parse_jsonl(std::string_view text);

}  // namespace nvmsec::minijson
