#include "obs/event_log.h"

#include <string>

#include "obs/json.h"
#include "util/log.h"

namespace nvmsec {

EventLog::EventLog(std::ostream& out, std::uint64_t max_events,
                   bool write_header)
    : out_(&out), max_events_(max_events) {
  if (write_header) {
    // The preamble names the format so a reader can reject foreign JSONL
    // before interpreting any event. It does not count against the cap.
    write_line("schema", {{"format", std::string_view("maxwe-events")}});
  }
}

EventLog::EventLog(std::uint64_t max_events)
    : out_(nullptr), max_events_(max_events) {}

void EventLog::reset(std::uint64_t max_events) {
  max_events_ = max_events;
  now_ = 0;
  written_ = 0;
  dropped_ = 0;
  finalized_ = false;
  eol_cause_.clear();
}

void EventLog::emit(std::string_view type,
                    std::initializer_list<EventField> fields) {
  if (written_ >= max_events_) {
    if (dropped_ == 0) {
      log_warn() << "EventLog: event cap (" << max_events_
                 << ") reached; later events are dropped";
    }
    ++dropped_;
    return;
  }
  ++written_;
  // Capture the failure cause from the admitted event stream so count-only
  // consumers classify exactly like a JSONL parse of a streaming log: the
  // last admitted end_of_life wins; dropped ones never contribute.
  if (type == "end_of_life") {
    for (const EventField& f : fields) {
      if (f.is_string && f.key == "cause") eol_cause_.assign(f.str);
    }
  }
  if (out_ != nullptr) write_line(type, fields);
}

void EventLog::write_line(std::string_view type,
                          std::initializer_list<EventField> fields) {
  std::string line;
  line.reserve(128);
  line += "{\"v\":";
  json_append_number(line, static_cast<double>(kEventSchemaVersion));
  line += ",\"type\":";
  json_append_string(line, type);
  line += ",\"t\":";
  json_append_number(line, now_);
  for (const EventField& f : fields) {
    line += ',';
    json_append_string(line, f.key);
    line += ':';
    if (f.is_string) {
      json_append_string(line, f.str);
    } else {
      json_append_number(line, f.num);
    }
  }
  line += "}\n";
  *out_ << line;
  offset_ += line.size();
}

Status EventLog::truncate_to(std::uint64_t offset) {
  if (offset > offset_) {
    return Status::corruption(
        "event log is shorter (" + std::to_string(offset_) +
        " bytes) than the checkpoint expects (" + std::to_string(offset) +
        " bytes); it cannot contain the checkpointed run's history");
  }
  if (offset == offset_) return Status::ok_status();
  if (!truncator_) {
    return Status::failed_precondition(
        "event log is not file-backed; cannot rewind it to a checkpoint "
        "offset");
  }
  out_->flush();
  if (Status st = truncator_(offset); !st.ok()) return st;
  offset_ = offset;
  return Status::ok_status();
}

void EventLog::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (out_ == nullptr) return;
  if (dropped_ > 0) {
    write_line("log_truncated",
               {{"dropped", static_cast<double>(dropped_)}});
  }
  out_->flush();
}

}  // namespace nvmsec
