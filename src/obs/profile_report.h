// Reader + renderer for the profile JSON the Profiler writes (schema v1,
// obs/profiler.h). Shared by tools/maxwe_profile (the dedicated viewer),
// maxwe_report and fleet_report (--profile sections), and the overhead
// bench, so every consumer agrees on how phases attach to parents and how
// the attributed-fraction gate is computed.
//
// Timings are wall-clock and therefore non-deterministic run to run; the
// *layout* of the rendering is deterministic (enum order in the file,
// total-descending in the flat view), which is what the smoke tests
// assert.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nvmsec {

/// One observed phase from the profile document, in file (= enum) order.
struct ProfilePhaseRow {
  std::string name;
  /// Immediate static parent; empty = root of the taxonomy.
  std::string parent;
  std::uint64_t count{0};
  std::uint64_t total_ns{0};
  std::uint64_t min_ns{0};
  std::uint64_t max_ns{0};
};

/// One pool driver's busy time from the utilization section.
struct ProfileWorkerRow {
  std::uint64_t busy_ns{0};
  std::uint64_t tasks{0};
};

struct ProfileDoc {
  int version{0};
  std::uint64_t wall_ns{0};
  std::vector<ProfilePhaseRow> phases;
  /// (name, value), nonzero counters only, file (= enum) order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t utilization_wall_ns{0};
  std::vector<ProfileWorkerRow> workers;

  /// Counter value by name; 0 when absent (the writer omits zeros).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Sum of total_ns over phases with no *observed* ancestor — the
  /// numerator of the "attributed fraction of wall time" gate. Walks the
  /// static taxonomy for phase names this build knows, so it matches
  /// Profiler::attributed_root_ns exactly on documents this build wrote.
  [[nodiscard]] std::uint64_t attributed_ns() const;

  /// Index into `phases` of the nearest *observed* ancestor of phase `i`,
  /// or npos when the phase renders at the root.
  [[nodiscard]] std::size_t observed_parent(std::size_t i) const;

  static constexpr std::size_t npos = ~std::size_t{0};
};

/// Parse a profile document. Throws std::runtime_error on malformed JSON,
/// a missing/unsupported version, or wrong-type fields.
[[nodiscard]] ProfileDoc parse_profile(std::string_view text);

/// Full rendering: flat table (total-descending), hierarchy tree (self
/// time clamped at >= 0 — overlapping phases such as engine.rescue inside
/// engine.batch.write make the tree approximate; flat totals are exact),
/// counters with derived cache hit rates, worker utilization, and a final
/// "attributed: NN.N% of wall" line that the overhead bench greps.
void render_profile(std::ostream& os, const ProfileDoc& doc);

/// Compact rendering for report embedding: top phases by total time,
/// cache hit rates, utilization summary, attributed line.
void render_profile_summary(std::ostream& os, const ProfileDoc& doc,
                            std::size_t top_phases = 8);

/// Side-by-side baseline diff: per-phase and per-counter deltas.
void render_profile_compare(std::ostream& os, const ProfileDoc& baseline,
                            const ProfileDoc& current);

}  // namespace nvmsec
