#include "obs/trace.h"

#include <string>

#include "obs/json.h"

namespace nvmsec {

TraceWriter::TraceWriter(std::ostream& out, std::size_t max_events)
    : out_(out),
      epoch_(std::chrono::steady_clock::now()),
      max_events_(max_events) {
  out_ << "[";
}

TraceWriter::~TraceWriter() { finish(); }

std::uint64_t TraceWriter::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

bool TraceWriter::begin_event() {
  if (finished_) return false;
  if (written_ >= max_events_) {
    ++dropped_;
    return false;
  }
  ++written_;
  return true;
}

void TraceWriter::write_event(std::string_view name, char phase,
                              std::uint64_t ts_us, const std::uint64_t* dur_us,
                              std::initializer_list<TraceArg> args) {
  // One string append per event keeps this cheap enough for rare-event
  // instrumentation (wear-outs, remaps) on otherwise hot paths.
  std::string line;
  line.reserve(96);
  line += first_ ? "\n{\"name\": " : ",\n{\"name\": ";
  first_ = false;
  json_append_string(line, name);
  line += ", \"ph\": \"";
  line += phase;
  line += "\", \"ts\": ";
  line += std::to_string(ts_us);
  if (dur_us != nullptr) {
    line += ", \"dur\": ";
    line += std::to_string(*dur_us);
  }
  line += ", \"pid\": 0, \"tid\": 0";
  if (phase == 'i') line += ", \"s\": \"g\"";  // global-scope instant
  if (args.size() > 0) {
    line += ", \"args\": {";
    bool first_arg = true;
    for (const TraceArg& a : args) {
      if (!first_arg) line += ", ";
      first_arg = false;
      json_append_string(line, a.key);
      line += ": ";
      const double v = a.value;
      // Counters and coordinates are integers in practice; print them as
      // such (see json_write_number for the same rule on streams).
      if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        line += std::to_string(static_cast<std::int64_t>(v));
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        line += buf;
      }
    }
    line += "}";
  }
  line += "}";
  out_ << line;
}

void TraceWriter::instant(std::string_view name,
                          std::initializer_list<TraceArg> args) {
  if (!begin_event()) return;
  write_event(name, 'i', now_us(), nullptr, args);
}

void TraceWriter::counter(std::string_view name,
                          std::initializer_list<TraceArg> args) {
  if (!begin_event()) return;
  write_event(name, 'C', now_us(), nullptr, args);
}

void TraceWriter::complete(std::string_view name, std::uint64_t ts_us,
                           std::uint64_t dur_us,
                           std::initializer_list<TraceArg> args) {
  if (!begin_event()) return;
  write_event(name, 'X', ts_us, &dur_us, args);
}

void TraceWriter::finish() {
  if (finished_) return;
  if (dropped_ > 0) {
    // Self-describing truncation: one metadata instant, outside the cap.
    write_event("trace_events_dropped", 'i', now_us(), nullptr,
                {{"dropped", static_cast<double>(dropped_)}});
  }
  out_ << "\n]\n";
  out_.flush();
  finished_ = true;
}

}  // namespace nvmsec
