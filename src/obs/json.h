// Minimal JSON emission helpers shared by the observability sinks.
//
// The obs layer writes three machine-readable formats (metrics JSON, Chrome
// trace events, wear-snapshot JSONL) and all of them need exactly two
// things done right: string escaping and number formatting that round-trips
// through any JSON parser (no NaN/Inf, enough digits). This header is that,
// and nothing more — parsing stays out of the library (tests carry their
// own checker).
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace nvmsec {

/// Append `s` to `out` as a quoted JSON string, escaping control
/// characters, quotes and backslashes.
void json_append_string(std::string& out, std::string_view s);

/// Append `x` to `out` as a JSON number with the same formatting rules as
/// json_write_number: integers up to 2^53 exactly and without an exponent,
/// other finite values with round-trip precision, non-finite values as null.
void json_append_number(std::string& out, double x);

/// Write `x` as a JSON number: finite values with round-trip precision,
/// non-finite values as null (JSON has no NaN/Inf).
void json_write_number(std::ostream& out, double x);

/// Convenience: escaped-and-quoted copy of `s`.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace nvmsec
