#include "obs/snapshot.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "cache/dram_buffer.h"
#include "nvm/device.h"
#include "obs/json.h"
#include "sim/wear_report.h"
#include "spare/spare_scheme.h"
#include "util/log.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {

namespace {

/// Full per-region utilization is only worth its bytes on small devices;
/// past this region count snapshots keep the summary statistics only.
constexpr std::uint64_t kMaxInlineRegions = 512;

void append_number(std::string& line, double v) { json_append_number(line, v); }

void append_field(std::string& line, std::string_view key, double v) {
  json_append_string(line, key);
  line += ": ";
  append_number(line, v);
}

}  // namespace

SnapshotEmitter::SnapshotEmitter(std::ostream& out, WriteCount interval,
                                 std::uint64_t max_snapshots)
    : out_(out),
      interval_(interval),
      max_snapshots_(max_snapshots),
      next_at_(static_cast<double>(interval)) {
  if (interval == 0) {
    throw std::invalid_argument("SnapshotEmitter: interval must be > 0");
  }
}

void SnapshotEmitter::snapshot(const SnapshotContext& ctx) {
  write_line(ctx);
  // Advance to the first multiple of the interval strictly beyond the
  // current position, collapsing any thresholds this sample jumped over.
  const double step = static_cast<double>(interval_);
  next_at_ = (std::floor(ctx.user_writes / step) + 1.0) * step;
}

void SnapshotEmitter::snapshot_now(const SnapshotContext& ctx) {
  write_line(ctx);
}

void SnapshotEmitter::write_line(const SnapshotContext& ctx) {
  if (count_ >= max_snapshots_) {
    if (!warned_) {
      warned_ = true;
      log_warn() << "SnapshotEmitter: snapshot cap (" << max_snapshots_
                 << ") reached; later snapshots are dropped";
    }
    return;
  }
  ++count_;

  std::string line;
  line.reserve(256);
  line += "{";
  append_field(line, "user_writes", ctx.user_writes);
  line += ", ";
  append_field(line, "overhead_writes",
               static_cast<double>(ctx.overhead_writes));
  if (ctx.absorbed_writes > 0) {
    line += ", ";
    append_field(line, "absorbed_writes",
                 static_cast<double>(ctx.absorbed_writes));
  }
  if (ctx.sim_rounds > 0) {
    line += ", ";
    append_field(line, "sim_rounds", ctx.sim_rounds);
  }

  if (ctx.device != nullptr) {
    const WearReport wear = analyze_wear(*ctx.device);
    line += ", \"wear\": {";
    append_field(line, "device_writes",
                 static_cast<double>(ctx.device->total_writes()));
    line += ", ";
    append_field(line, "harvest_fraction", wear.harvest_fraction);
    line += ", ";
    append_field(line, "utilization_gini", wear.utilization_gini);
    line += ", ";
    append_field(line, "worn_out_lines",
                 static_cast<double>(wear.worn_out_lines));
    line += ", ";
    append_field(line, "max_line_utilization", wear.max_line_utilization);
    line += ", ";
    append_field(line, "min_line_utilization", wear.min_line_utilization);
    if (wear.region_utilization.size() <= kMaxInlineRegions) {
      line += ", \"region_utilization\": [";
      for (std::size_t i = 0; i < wear.region_utilization.size(); ++i) {
        if (i > 0) line += ", ";
        append_number(line, wear.region_utilization[i]);
      }
      line += "]";
    }
    line += "}";
  }

  if (ctx.spare != nullptr) {
    const SpareSchemeStats s = ctx.spare->stats();
    line += ", \"spare\": {\"scheme\": ";
    json_append_string(line, ctx.spare->name());
    line += ", ";
    append_field(line, "line_deaths", static_cast<double>(s.line_deaths));
    line += ", ";
    append_field(line, "replacements", static_cast<double>(s.replacements));
    line += ", ";
    append_field(line, "spares_remaining",
                 static_cast<double>(s.spares_remaining));
    line += ", ";
    append_field(line, "lmt_entries", static_cast<double>(s.lmt_entries));
    line += ", ";
    append_field(line, "rmt_entries", static_cast<double>(s.rmt_entries));
    line += "}";
  }

  if (ctx.wear_leveler != nullptr) {
    line += ", \"wear_leveler\": {\"name\": ";
    json_append_string(line, ctx.wear_leveler->name());
    line += ", ";
    append_field(
        line, "overhead_writes",
        static_cast<double>(ctx.wear_leveler->overhead_writes()));
    line += "}";
  }

  if (ctx.buffer != nullptr) {
    const DramBufferStats& b = ctx.buffer->stats();
    line += ", \"buffer\": {";
    append_field(line, "hits", static_cast<double>(b.hits));
    line += ", ";
    append_field(line, "misses", static_cast<double>(b.misses));
    line += ", ";
    append_field(line, "evictions", static_cast<double>(b.evictions));
    line += ", ";
    append_field(line, "occupancy", static_cast<double>(ctx.buffer->size()));
    line += "}";
  }

  line += "}\n";
  out_ << line;
}

}  // namespace nvmsec
