// ObsSession: owns the observability sinks and their output files for one
// run.
//
// The sinks themselves (MetricsRegistry, TraceWriter, SnapshotEmitter,
// EventLog) are stream-agnostic so tests drive them with string streams;
// ObsSession is the file-backed composition the CLI and examples use: give
// it paths, it opens the files, hands out a non-owning Observer view, and
// finalize() (or destruction) writes the metrics file and closes the trace
// array. Paths left empty leave the corresponding sink unconfigured (null
// in the Observer), preserving the zero-overhead no-op mode end to end.
//
// Crash semantics differ by sink. Metrics/trace/snapshots write through
// AtomicFileWriter (temp file + rename at finalize) so a crashed run never
// leaves a torn file under a final name. The event log is the opposite: it
// is the flight recorder for crashes, so it streams straight to the final
// path and relies on checkpoint-time flushes plus offset-based rewind on
// resume (see event_log.h) for consistency.
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "util/atomic_file.h"

namespace nvmsec {

struct ObsConfig {
  /// Metrics file path; empty = no metrics sink. Written at finalize().
  std::string metrics_path;
  /// "json" or "csv".
  std::string metrics_format{"json"};
  /// Chrome-trace file path; empty = no trace sink. Streams during the run.
  std::string trace_path;
  /// Wear-snapshot JSONL path; empty = no snapshot sink (unless
  /// snapshot_interval > 0, which requires a path).
  std::string snapshot_path;
  /// Snapshot cadence in user writes; 0 disables snapshots.
  WriteCount snapshot_interval{0};
  /// Decision-event JSONL path; empty = no event log. Streams straight to
  /// the final path (no temp file) so the log survives a crash.
  std::string events_path;
  /// Self-profile JSON path; empty = no profiler. Written at finalize().
  /// The profile's timings are wall-clock and explicitly excluded from
  /// every byte-identity contract; attaching the profiler never changes
  /// any other output.
  std::string profile_path;
  /// Resuming from a checkpoint: the event log reopens in append mode (the
  /// engine rewinds it to the checkpoint's byte offset, keeping the stream
  /// byte-identical to an uninterrupted run), the snapshot stream appends
  /// after an explicit {"resume": true} boundary line, and a trace path is
  /// refused — a wall-clock trace cannot be stitched across processes.
  bool resume{false};

  [[nodiscard]] bool any() const {
    return !metrics_path.empty() || !trace_path.empty() ||
           !snapshot_path.empty() || snapshot_interval > 0 ||
           !events_path.empty() || !profile_path.empty();
  }
};

class ObsSession {
 public:
  /// Opens every configured sink; throws std::runtime_error when a file
  /// cannot be opened and std::invalid_argument for inconsistent configs
  /// (snapshot interval without a path, unknown metrics format, trace
  /// combined with resume).
  explicit ObsSession(ObsConfig config);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Non-owning view to hand to engines/components; valid until finalize().
  [[nodiscard]] Observer observer();

  /// Direct sink access for callers that publish run-level results
  /// (nullptr when unconfigured).
  [[nodiscard]] MetricsRegistry* metrics() { return metrics_.get(); }
  [[nodiscard]] TraceWriter* trace() { return trace_.get(); }
  [[nodiscard]] SnapshotEmitter* snapshots() { return snapshots_.get(); }
  [[nodiscard]] EventLog* events() { return events_.get(); }
  [[nodiscard]] Profiler* profiler() { return profiler_.get(); }

  /// Write the metrics file, close the trace array, and atomically rename
  /// the atomic sink files into place; flush the streaming event log.
  /// Idempotent; called by the destructor.
  void finalize();

 private:
  ObsConfig config_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<AtomicFileWriter> trace_writer_;
  std::unique_ptr<TraceWriter> trace_;
  std::unique_ptr<AtomicFileWriter> snapshot_writer_;
  std::ofstream snapshot_append_;
  std::unique_ptr<SnapshotEmitter> snapshots_;
  std::ofstream events_stream_;
  std::unique_ptr<EventLog> events_;
  std::unique_ptr<Profiler> profiler_;
  std::uint64_t profile_start_ns_{0};
  bool finalized_{false};
};

}  // namespace nvmsec
