// Observer: the nullable bundle of observability sinks that instrumented
// components carry.
//
// Header is deliberately tiny (forward declarations only) so hot components
// — Device, Engine, the spare schemes — can include it without pulling the
// sink implementations into every translation unit. A default-constructed
// Observer is the no-op mode: every member is null, every instrumentation
// site is one predictable branch, and behaviour is bit-identical to an
// uninstrumented run.
#pragma once

namespace nvmsec {

class MetricsRegistry;
class Counter;
class TraceWriter;
class SnapshotEmitter;
class EventLog;
class Profiler;

struct Observer {
  MetricsRegistry* metrics{nullptr};
  TraceWriter* trace{nullptr};
  SnapshotEmitter* snapshots{nullptr};
  EventLog* events{nullptr};
  Profiler* profiler{nullptr};

  [[nodiscard]] bool active() const {
    return metrics != nullptr || trace != nullptr || snapshots != nullptr ||
           events != nullptr || profiler != nullptr;
  }
};

}  // namespace nvmsec
