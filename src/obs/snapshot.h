// SnapshotEmitter: periodic wear snapshots as a JSONL time series.
//
// The end-of-run WearReport tells you *that* a device died; the snapshot
// series tells you *how* — spare-pool drain rate, LMT/RMT growth, harvest
// and Gini trajectories, buffer effectiveness — sampled every N user
// writes. One JSON object per line, so the file streams and tails cleanly
// and any per-line JSON tool (jq, pandas read_json(lines=True)) loads it.
//
// The emitter never samples on its own: an engine calls due() (one integer
// compare) on its write loop and snapshot() when it returns true. Fields
// whose source component is absent (the event engine has no Device, most
// runs have no DRAM buffer) are simply omitted from the line.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>

#include "util/types.h"

namespace nvmsec {

class Device;
class SpareScheme;
class WearLeveler;
class DramBuffer;

/// Everything a snapshot can describe; null members are omitted.
struct SnapshotContext {
  const Device* device{nullptr};
  const SpareScheme* spare{nullptr};
  const WearLeveler* wear_leveler{nullptr};
  const DramBuffer* buffer{nullptr};
  /// Engine-tracked totals at the snapshot instant.
  double user_writes{0};
  std::uint64_t overhead_writes{0};
  std::uint64_t absorbed_writes{0};
  /// Event engine only: continuous time in sweeps.
  double sim_rounds{0};
};

class SnapshotEmitter {
 public:
  static constexpr std::uint64_t kDefaultMaxSnapshots = 65'536;

  /// Snapshot cadence is every `interval` user writes; `interval` must be
  /// > 0. `out` must outlive the emitter. After `max_snapshots` lines the
  /// emitter stops (and warns once) so degenerate configurations cannot
  /// fill the disk.
  SnapshotEmitter(std::ostream& out, WriteCount interval,
                  std::uint64_t max_snapshots = kDefaultMaxSnapshots);

  /// True when `user_writes` has crossed the next cadence threshold. One
  /// compare — cheap enough for a per-write loop.
  [[nodiscard]] bool due(double user_writes) const {
    return user_writes >= next_at_;
  }

  /// Writes the engine can batch before the next cadence threshold (>= 1
  /// whenever due() is false; snapshot() always advances next_at_ past the
  /// current write count, so the threshold cannot stick in the past).
  [[nodiscard]] std::uint64_t writes_until_due(double user_writes) const {
    if (user_writes >= next_at_) return 0;
    return static_cast<std::uint64_t>(std::ceil(next_at_ - user_writes));
  }

  /// Emit one snapshot line and advance the threshold past
  /// `ctx.user_writes` (skipped intervals — an event engine can jump many
  /// thresholds in one event — collapse into one line).
  void snapshot(const SnapshotContext& ctx);

  /// Emit unconditionally (end-of-run final sample); does not advance the
  /// cadence.
  void snapshot_now(const SnapshotContext& ctx);

  [[nodiscard]] WriteCount interval() const { return interval_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  void write_line(const SnapshotContext& ctx);

  std::ostream& out_;
  WriteCount interval_;
  std::uint64_t max_snapshots_;
  double next_at_;
  std::uint64_t count_{0};
  bool warned_{false};
};

}  // namespace nvmsec
