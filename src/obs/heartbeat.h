// Live fleet progress telemetry: a JSONL heartbeat stream.
//
// A 100k-device campaign runs for minutes; the heartbeat is how an operator
// (or CI) watches it without touching the results. The fleet runner hands
// the sink a snapshot of its progress aggregate after each completed shard
// and the sink decides whether enough devices have passed since the last
// line (configurable interval). Like the other obs sinks it is strictly
// optional — an unattached fleet run does zero heartbeat work — and it
// never feeds back into the simulation: the fleet result is bit-identical
// with or without a heartbeat attached.
//
// Schema (one JSON object per line, validated by a ctest):
//
//   {"v":1,"type":"fleet_heartbeat","devices_done":N,"devices_total":N,
//    "devices_per_sec":X,"eta_sec":X,"p50":X,"p99":X,
//    "failure_causes":{"<cause>":N,...},"truncated_logs":N}
//
// devices_per_sec and eta_sec are wall-clock telemetry (the only wall-clock
// numbers in the fleet layer) and are -1 until the first interval elapses;
// everything else is simulation state. At jobs > 1 the running p50/p99
// reflect whichever shards happened to finish first — they converge to the
// final (deterministic) values but intermediate lines are telemetry, not
// results.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace nvmsec {

/// One progress observation, filled by the fleet runner from its running
/// aggregate. Plain data so the obs layer stays independent of sim types.
struct HeartbeatSample {
  std::uint64_t devices_done{0};
  std::uint64_t devices_total{0};
  /// Running normalized-lifetime percentiles over completed devices.
  double p50{0};
  double p99{0};
  /// (cause, count), already in deterministic (sorted) order.
  std::vector<std::pair<std::string, std::uint64_t>> failure_causes;
  std::uint64_t truncated_logs{0};
};

class HeartbeatSink {
 public:
  /// Emit at most one line per `interval_devices` completed devices (the
  /// final sample is always emitted). The stream is borrowed and must
  /// outlive the sink.
  explicit HeartbeatSink(std::ostream& out,
                         std::uint64_t interval_devices = 1000);

  /// Record a progress sample; writes a line when due. Thread-compatible,
  /// not thread-safe — the fleet runner calls it under its merge lock.
  void sample(const HeartbeatSample& s);

  /// Emit the final line unconditionally and flush.
  void finish(const HeartbeatSample& s);

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  void write_line(const HeartbeatSample& s);

  std::ostream& out_;
  std::uint64_t interval_;
  std::uint64_t last_emitted_at_{0};
  std::uint64_t lines_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nvmsec
