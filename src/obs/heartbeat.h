// Live fleet progress telemetry: a JSONL heartbeat stream.
//
// A 100k-device campaign runs for minutes; the heartbeat is how an operator
// (or CI) watches it without touching the results. The fleet runner hands
// the sink a snapshot of its progress aggregate after each completed shard
// and the sink decides whether enough devices have passed since the last
// line (configurable interval). Like the other obs sinks it is strictly
// optional — an unattached fleet run does zero heartbeat work — and it
// never feeds back into the simulation: the fleet result is bit-identical
// with or without a heartbeat attached.
//
// Schema (one JSON object per line, validated by a ctest):
//
//   {"v":3,"type":"fleet_heartbeat","devices_done":N,"devices_total":N,
//    "devices_per_sec":X,"eta_sec":X,"p50":X,"p99":X,
//    "failure_causes":{"<cause>":N,...},"truncated_logs":N,
//    "shards_done":N,"shards_total":N,"workers":N,
//    "shard_sec_mean":X,"shard_sec_max":X,"shard_imbalance":X,
//    "worker_busy_frac":X,"checkpoint_bytes_written":N}
//
// v3: fields with no data yet are *omitted* rather than emitted as the v2
// -1 sentinels — devices_per_sec / eta_sec until the first wall-clock
// interval elapses, shard_sec_mean / shard_sec_max / shard_imbalance /
// worker_busy_frac until a shard newly run in this process finishes, and
// checkpoint_bytes_written whenever the campaign runs without a journal.
// Fields that are present keep their v2 name, position and meaning.
// checkpoint_bytes_written is the cumulative bytes this process has
// appended to the fleet shard journal (sim/fleet_journal.h) — the
// campaign's checkpoint-write cost, which stays O(total shard state) where
// the old full-rewrite mirror was quadratic.
//
// shard_sec_mean/max cover the shards *newly run* in this process
// (resumed shards have no wall time); shard_imbalance is max/mean (1.0 =
// perfectly even shards); worker_busy_frac is the completed shards' total
// wall time divided by (elapsed x workers) — a live lower bound on pool
// utilization that converges once the last shard lands.
//
// devices_per_sec and eta_sec are wall-clock telemetry; everything except
// the utilization fields is simulation state. At jobs > 1 the running
// p50/p99 reflect whichever shards happened to finish first — they
// converge to the final (deterministic) values but intermediate lines are
// telemetry, not results.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace nvmsec {

/// One progress observation, filled by the fleet runner from its running
/// aggregate. Plain data so the obs layer stays independent of sim types.
struct HeartbeatSample {
  std::uint64_t devices_done{0};
  std::uint64_t devices_total{0};
  /// Running normalized-lifetime percentiles over completed devices.
  double p50{0};
  double p99{0};
  /// (cause, count), already in deterministic (sorted) order.
  std::vector<std::pair<std::string, std::uint64_t>> failure_causes;
  std::uint64_t truncated_logs{0};
  /// v2 shard-throughput / utilization fields. Zero-initialized defaults
  /// render as the "no data yet" (-1) values, so fillers that predate v2
  /// still produce valid lines.
  std::uint64_t shards_done{0};
  std::uint64_t shards_total{0};
  /// Worker threads (including the driving thread) the campaign runs with.
  std::uint64_t workers{0};
  /// Shards newly run in this process (denominator for shard_sec_sum).
  std::uint64_t shards_timed{0};
  /// Total / max wall seconds across the newly-run shards.
  double shard_sec_sum{0};
  double shard_sec_max{0};
  /// v3: cumulative bytes appended to the fleet shard journal by this
  /// process; negative = no journal attached (field omitted).
  std::int64_t checkpoint_bytes_written{-1};
};

class HeartbeatSink {
 public:
  /// Emit at most one line per `interval_devices` completed devices (the
  /// final sample is always emitted). The stream is borrowed and must
  /// outlive the sink.
  explicit HeartbeatSink(std::ostream& out,
                         std::uint64_t interval_devices = 1000);

  /// Record a progress sample; writes a line when due. Thread-compatible,
  /// not thread-safe — the fleet runner calls it under its merge lock.
  void sample(const HeartbeatSample& s);

  /// Emit the final line unconditionally and flush.
  void finish(const HeartbeatSample& s);

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  void write_line(const HeartbeatSample& s);

  std::ostream& out_;
  std::uint64_t interval_;
  std::uint64_t last_emitted_at_{0};
  std::uint64_t lines_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nvmsec
