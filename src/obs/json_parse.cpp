#include "obs/json_parse.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace nvmsec::minijson {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("missing key: " + std::string(key));
  }
  return *v;
}

double JsonValue::num(std::string_view key) const {
  const JsonValue& v = at(key);
  if (v.kind != Kind::kNumber) {
    throw std::runtime_error("not a number: " + std::string(key));
  }
  return v.number;
}

const std::string& JsonValue::str(std::string_view key) const {
  const JsonValue& v = at(key);
  if (v.kind != Kind::kString) {
    throw std::runtime_error("not a string: " + std::string(key));
  }
  return v.string;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) throw error("trailing characters");
    return v;
  }

 private:
  [[nodiscard]] std::runtime_error error(const std::string& what) const {
    return std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                              ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw error(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          throw error("raw control character in string");
        }
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              throw error("bad \\u escape");
            }
          }
          pos_ += 4;
          // The writers only escape control characters, all < 0x80.
          if (code >= 0x80) throw error("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: throw error("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      throw error("bad number: " + token);
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse(); }

std::vector<JsonValue> parse_jsonl(std::string_view text) {
  std::vector<JsonValue> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    if (!line.empty()) lines.push_back(parse_json(line));
    pos = eol + 1;
  }
  return lines;
}

}  // namespace nvmsec::minijson
