#include "obs/profiler.h"

#include "obs/json.h"

namespace nvmsec {

namespace {

struct ProfPhaseInfo {
  std::string_view name;
  ProfPhase parent;
};

// Keep in enum order; the static_assert below catches a missing row.
constexpr ProfPhaseInfo kProfPhaseInfo[] = {
    {"experiment.setup", ProfPhase::kFleetDevice},
    {"engine.run", ProfPhase::kFleetDevice},
    {"engine.counts.draw", ProfPhase::kEngineRun},
    {"engine.counts.resolve", ProfPhase::kEngineRun},
    {"engine.counts.write", ProfPhase::kEngineRun},
    {"engine.batch.draw", ProfPhase::kEngineRun},
    {"engine.batch.write", ProfPhase::kEngineRun},
    {"engine.perwrite", ProfPhase::kEngineRun},
    {"engine.buffer", ProfPhase::kEngineRun},
    {"engine.rescue", ProfPhase::kEngineRun},
    {"engine.detector", ProfPhase::kEngineRun},
    {"engine.checkpoint", ProfPhase::kEngineRun},
    {"engine.snapshot", ProfPhase::kEngineRun},
    {"event.run", ProfPhase::kFleetDevice},
    {"event.rescue", ProfPhase::kEventRun},
    {"bit.run", ProfPhase::kFleetDevice},
    {"fleet.shard", ProfPhase::kCount},
    {"fleet.device", ProfPhase::kFleetShard},
    {"fleet.checkpoint", ProfPhase::kFleetShard},
    {"fleet.merge", ProfPhase::kCount},
};
static_assert(sizeof(kProfPhaseInfo) / sizeof(kProfPhaseInfo[0]) ==
                  kProfPhaseCount,
              "kProfPhaseInfo out of sync with ProfPhase");

constexpr std::string_view kProfCounterNames[] = {
    "resolve_cache.hit",    "resolve_cache.miss",  "resolve_cache.flush",
    "endurance_cache.hit",  "endurance_cache.miss", "endurance_cache.evict",
    "buffer.hit",           "buffer.miss",          "buffer.evict",
    "counts.chunks",        "counts.writes",        "batch.runs",
    "batch.writes",         "perwrite.writes",      "detector.windows",
    "rescue.events",
};
static_assert(sizeof(kProfCounterNames) / sizeof(kProfCounterNames[0]) ==
                  kProfCounterCount,
              "kProfCounterNames out of sync with ProfCounter");

void append_u64(std::string& out, std::uint64_t x) {
  out += std::to_string(x);
}

}  // namespace

std::string_view prof_phase_name(ProfPhase phase) {
  return kProfPhaseInfo[static_cast<std::size_t>(phase)].name;
}

ProfPhase prof_phase_parent(ProfPhase phase) {
  return kProfPhaseInfo[static_cast<std::size_t>(phase)].parent;
}

std::string_view prof_counter_name(ProfCounter counter) {
  return kProfCounterNames[static_cast<std::size_t>(counter)];
}

void Profiler::merge(const Profiler& other) {
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    phases_[i].merge(other.phases_[i]);
  }
  for (std::size_t i = 0; i < kProfCounterCount; ++i) {
    counters_[i] += other.counters_[i];
  }
  workers_.insert(workers_.end(), other.workers_.begin(),
                  other.workers_.end());
  utilization_wall_ns_ += other.utilization_wall_ns_;
}

void Profiler::set_utilization(const std::vector<ProfWorkerStats>& workers,
                               std::uint64_t wall_ns) {
  workers_.insert(workers_.end(), workers.begin(), workers.end());
  utilization_wall_ns_ += wall_ns;
}

std::uint64_t Profiler::attributed_root_ns() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    if (phases_[i].count == 0) continue;
    // A phase contributes at the root only when no observed ancestor will
    // already account for its span.
    bool covered = false;
    ProfPhase parent = kProfPhaseInfo[i].parent;
    while (parent != ProfPhase::kCount) {
      const auto pi = static_cast<std::size_t>(parent);
      if (phases_[pi].count > 0) {
        covered = true;
        break;
      }
      parent = kProfPhaseInfo[pi].parent;
    }
    if (!covered) total += phases_[i].total_ns;
  }
  return total;
}

std::string Profiler::to_json(std::uint64_t wall_ns) const {
  std::string out;
  out.reserve(2048);
  out += "{\"v\": 1, \"type\": \"profile\", \"deterministic\": false, "
         "\"clock\": \"steady_ns\", \"wall_ns\": ";
  append_u64(out, wall_ns);
  out += ",\n \"phases\": {";
  bool first = true;
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const ProfPhaseStats& s = phases_[i];
    if (s.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    json_append_string(out, kProfPhaseInfo[i].name);
    out += ": {\"parent\": ";
    if (kProfPhaseInfo[i].parent == ProfPhase::kCount) {
      out += "null";
    } else {
      json_append_string(out, prof_phase_name(kProfPhaseInfo[i].parent));
    }
    out += ", \"count\": ";
    append_u64(out, s.count);
    out += ", \"total_ns\": ";
    append_u64(out, s.total_ns);
    out += ", \"min_ns\": ";
    append_u64(out, s.min_ns == ProfPhaseStats::kEmptyMin ? 0 : s.min_ns);
    out += ", \"max_ns\": ";
    append_u64(out, s.max_ns);
    out += "}";
  }
  out += "\n },\n \"counters\": {";
  first = true;
  for (std::size_t i = 0; i < kProfCounterCount; ++i) {
    if (counters_[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    json_append_string(out, kProfCounterNames[i]);
    out += ": ";
    append_u64(out, counters_[i]);
  }
  out += "\n },\n \"utilization\": {\"wall_ns\": ";
  append_u64(out, utilization_wall_ns_);
  out += ", \"workers\": [";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"busy_ns\": ";
    append_u64(out, workers_[i].busy_ns);
    out += ", \"tasks\": ";
    append_u64(out, workers_[i].tasks);
    out += "}";
  }
  out += "]}}\n";
  return out;
}

}  // namespace nvmsec
