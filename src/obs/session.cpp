#include "obs/session.h"

#include <stdexcept>

#include "util/log.h"

namespace nvmsec {

namespace {

std::ofstream open_or_throw(const std::string& path, const char* what) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string("ObsSession: cannot open ") + what +
                             " file '" + path + "'");
  }
  return out;
}

}  // namespace

ObsSession::ObsSession(ObsConfig config) : config_(std::move(config)) {
  if (config_.metrics_format != "json" && config_.metrics_format != "csv") {
    throw std::invalid_argument("ObsSession: metrics format must be 'json' or "
                                "'csv', got '" + config_.metrics_format + "'");
  }
  if (config_.snapshot_interval > 0 && config_.snapshot_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: snapshot interval set but no snapshot path");
  }
  if (config_.snapshot_interval == 0 && !config_.snapshot_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: snapshot path set but snapshot interval is 0 "
        "(pass --snapshot-interval)");
  }
  if (!config_.metrics_path.empty()) {
    metrics_ = std::make_unique<MetricsRegistry>();
  }
  if (!config_.trace_path.empty()) {
    trace_file_ = open_or_throw(config_.trace_path, "trace");
    trace_ = std::make_unique<TraceWriter>(trace_file_);
  }
  if (config_.snapshot_interval > 0) {
    snapshot_file_ = open_or_throw(config_.snapshot_path, "snapshot");
    snapshots_ =
        std::make_unique<SnapshotEmitter>(snapshot_file_,
                                          config_.snapshot_interval);
  }
}

ObsSession::~ObsSession() {
  try {
    finalize();
  } catch (const std::exception& e) {
    log_error() << "ObsSession: finalize failed: " << e.what();
  }
}

Observer ObsSession::observer() {
  return Observer{metrics_.get(), trace_.get(), snapshots_.get()};
}

void ObsSession::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (metrics_) {
    std::ofstream out = open_or_throw(config_.metrics_path, "metrics");
    if (config_.metrics_format == "csv") {
      metrics_->write_csv(out);
    } else {
      metrics_->write_json(out);
    }
  }
  if (trace_) {
    trace_->finish();
    trace_file_.close();
  }
  if (snapshots_) {
    snapshot_file_.flush();
    snapshot_file_.close();
  }
}

}  // namespace nvmsec
