#include "obs/session.h"

#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "util/log.h"

namespace nvmsec {

namespace {

// Streaming sinks write into a temp file that only finalize() renames into
// place; an open failure surfaces immediately with the writer's Status.
std::unique_ptr<AtomicFileWriter> open_or_throw(const std::string& path) {
  auto writer = std::make_unique<AtomicFileWriter>(path);
  writer->open_status().throw_if_error();
  return writer;
}

}  // namespace

ObsSession::ObsSession(ObsConfig config) : config_(std::move(config)) {
  if (config_.metrics_format != "json" && config_.metrics_format != "csv") {
    throw std::invalid_argument("ObsSession: metrics format must be 'json' or "
                                "'csv', got '" + config_.metrics_format + "'");
  }
  if (config_.snapshot_interval > 0 && config_.snapshot_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: snapshot interval set but no snapshot path");
  }
  if (config_.snapshot_interval == 0 && !config_.snapshot_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: snapshot path set but snapshot interval is 0 "
        "(pass --snapshot-interval)");
  }
  if (config_.resume && !config_.trace_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: a trace cannot be resumed — it is a wall-clock event "
        "array and appending a second process's timeline would corrupt it; "
        "drop --trace-out for the resumed run or write a fresh trace file "
        "without --resume");
  }
  if (!config_.metrics_path.empty()) {
    metrics_ = std::make_unique<MetricsRegistry>();
  }
  if (!config_.trace_path.empty()) {
    trace_writer_ = open_or_throw(config_.trace_path);
    trace_ = std::make_unique<TraceWriter>(trace_writer_->stream());
  }
  if (config_.snapshot_interval > 0) {
    if (config_.resume) {
      // Resume appends to the final file (the interrupted run's atomic temp
      // file is gone) behind an explicit boundary line, so consumers can
      // tell where one process's samples end and the next one's begin.
      snapshot_append_.open(config_.snapshot_path,
                            std::ios::out | std::ios::app);
      if (!snapshot_append_) {
        throw std::runtime_error(
            "ObsSession: cannot open snapshot file for append: '" +
            config_.snapshot_path + "'");
      }
      snapshot_append_ << "{\"resume\": true}\n";
      snapshots_ = std::make_unique<SnapshotEmitter>(
          snapshot_append_, config_.snapshot_interval);
    } else {
      snapshot_writer_ = open_or_throw(config_.snapshot_path);
      snapshots_ =
          std::make_unique<SnapshotEmitter>(snapshot_writer_->stream(),
                                            config_.snapshot_interval);
    }
  }
  if (!config_.profile_path.empty()) {
    profiler_ = std::make_unique<Profiler>();
    profile_start_ns_ = Profiler::now_ns();
  }
  if (!config_.events_path.empty()) {
    const std::ios::openmode mode =
        std::ios::out | std::ios::binary |
        (config_.resume ? std::ios::app : std::ios::trunc);
    events_stream_.open(config_.events_path, mode);
    if (!events_stream_) {
      throw std::runtime_error("ObsSession: cannot open event log '" +
                               config_.events_path + "'");
    }
    std::uint64_t existing = 0;
    if (config_.resume) {
      std::error_code ec;
      const auto size = std::filesystem::file_size(config_.events_path, ec);
      if (!ec) existing = static_cast<std::uint64_t>(size);
    }
    events_ = std::make_unique<EventLog>(events_stream_,
                                         EventLog::kDefaultMaxEvents,
                                         /*write_header=*/!config_.resume);
    if (config_.resume) events_->set_offset(existing);
    events_->set_truncator(
        [path = config_.events_path](std::uint64_t offset) -> Status {
          std::error_code ec;
          std::filesystem::resize_file(path, offset, ec);
          if (ec) {
            return Status::io_error("cannot rewind event log '" + path +
                                    "' to byte " + std::to_string(offset) +
                                    ": " + ec.message());
          }
          return Status::ok_status();
        });
  }
}

ObsSession::~ObsSession() {
  try {
    finalize();
  } catch (const std::exception& e) {
    log_error() << "ObsSession: finalize failed: " << e.what();
  }
}

Observer ObsSession::observer() {
  return Observer{metrics_.get(), trace_.get(), snapshots_.get(),
                  events_.get(), profiler_.get()};
}

void ObsSession::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (metrics_) {
    AtomicFileWriter writer(config_.metrics_path);
    writer.open_status().throw_if_error();
    if (config_.metrics_format == "csv") {
      metrics_->write_csv(writer.stream());
    } else {
      metrics_->write_json(writer.stream());
    }
    writer.commit().throw_if_error();
  }
  if (trace_) {
    trace_->finish();
    trace_writer_->commit().throw_if_error();
  }
  if (snapshots_) {
    if (snapshot_writer_) {
      snapshot_writer_->commit().throw_if_error();
    } else {
      snapshot_append_.flush();
    }
  }
  if (events_) {
    events_->finalize();
    events_stream_.flush();
  }
  if (profiler_) {
    AtomicFileWriter writer(config_.profile_path);
    writer.open_status().throw_if_error();
    writer.stream() << profiler_->to_json(Profiler::now_ns() -
                                          profile_start_ns_);
    writer.commit().throw_if_error();
  }
}

}  // namespace nvmsec
