#include "obs/session.h"

#include <stdexcept>

#include "util/log.h"

namespace nvmsec {

namespace {

// Streaming sinks write into a temp file that only finalize() renames into
// place; an open failure surfaces immediately with the writer's Status.
std::unique_ptr<AtomicFileWriter> open_or_throw(const std::string& path) {
  auto writer = std::make_unique<AtomicFileWriter>(path);
  writer->open_status().throw_if_error();
  return writer;
}

}  // namespace

ObsSession::ObsSession(ObsConfig config) : config_(std::move(config)) {
  if (config_.metrics_format != "json" && config_.metrics_format != "csv") {
    throw std::invalid_argument("ObsSession: metrics format must be 'json' or "
                                "'csv', got '" + config_.metrics_format + "'");
  }
  if (config_.snapshot_interval > 0 && config_.snapshot_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: snapshot interval set but no snapshot path");
  }
  if (config_.snapshot_interval == 0 && !config_.snapshot_path.empty()) {
    throw std::invalid_argument(
        "ObsSession: snapshot path set but snapshot interval is 0 "
        "(pass --snapshot-interval)");
  }
  if (!config_.metrics_path.empty()) {
    metrics_ = std::make_unique<MetricsRegistry>();
  }
  if (!config_.trace_path.empty()) {
    trace_writer_ = open_or_throw(config_.trace_path);
    trace_ = std::make_unique<TraceWriter>(trace_writer_->stream());
  }
  if (config_.snapshot_interval > 0) {
    snapshot_writer_ = open_or_throw(config_.snapshot_path);
    snapshots_ =
        std::make_unique<SnapshotEmitter>(snapshot_writer_->stream(),
                                          config_.snapshot_interval);
  }
}

ObsSession::~ObsSession() {
  try {
    finalize();
  } catch (const std::exception& e) {
    log_error() << "ObsSession: finalize failed: " << e.what();
  }
}

Observer ObsSession::observer() {
  return Observer{metrics_.get(), trace_.get(), snapshots_.get()};
}

void ObsSession::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (metrics_) {
    AtomicFileWriter writer(config_.metrics_path);
    writer.open_status().throw_if_error();
    if (config_.metrics_format == "csv") {
      metrics_->write_csv(writer.stream());
    } else {
      metrics_->write_json(writer.stream());
    }
    writer.commit().throw_if_error();
  }
  if (trace_) {
    trace_->finish();
    trace_writer_->commit().throw_if_error();
  }
  if (snapshots_) {
    snapshot_writer_->commit().throw_if_error();
  }
}

}  // namespace nvmsec
