// EventLog: the decision-level flight recorder.
//
// Metrics say *how many* rescues happened; the event log says *which* spare
// line rescued *which* raw line, and when. Instrumented components emit
// typed, schema-versioned events (one JSON object per line) stamped with
// the simulation's write clock, so an offline tool (tools/maxwe_report) can
// reconstruct the full decision history of a run: SWR/RWR pairing, dynamic
// rescues, pool exhaustion, scrub repairs, checkpoints, end-of-life cause.
//
// Determinism contract: emitted bytes depend only on the simulation state
// (never on wall-clock time, pointers, or thread scheduling), so two runs
// of the same configuration produce byte-identical logs regardless of
// --jobs, and a checkpoint-resumed run reproduces the uninterrupted log
// exactly. To make the latter work across a SIGKILL, the log streams to
// its final path (no temp-file rename — a flight recorder must survive the
// crash it is recording), is flushed at every checkpoint, and the
// checkpoint stores the log's byte offset; restore rewinds the file to
// that offset via truncate_to() before the run continues.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace nvmsec {

/// Version stamped into every event line as "v". Bump when the meaning or
/// set of fields of an existing event type changes; adding a new event
/// type is backward compatible and does not bump it.
inline constexpr std::uint32_t kEventSchemaVersion = 1;

/// One key/value field of an event: either a number or a string. Keys and
/// string values are borrowed for the duration of the emit() call only.
struct EventField {
  EventField(std::string_view k, double v) : key(k), num(v) {}
  EventField(std::string_view k, std::string_view v)
      : key(k), str(v), is_string(true) {}

  std::string_view key;
  double num{0};
  std::string_view str{};
  bool is_string{false};
};

class EventLog {
 public:
  /// Hard cap on emitted events; beyond it events are counted but dropped,
  /// and finalize() appends a "log_truncated" marker with the drop count.
  static constexpr std::uint64_t kDefaultMaxEvents = 1'000'000;

  /// `write_header` emits the schema preamble line (fresh logs); pass
  /// false when appending to an existing log on resume.
  explicit EventLog(std::ostream& out,
                    std::uint64_t max_events = kDefaultMaxEvents,
                    bool write_header = true);

  /// Count-only log: no sink, no JSON formatting. Events are admitted or
  /// dropped by exactly the same cap arithmetic as a streaming log, and the
  /// last admitted end_of_life cause is captured, so a consumer that only
  /// needs the failure-cause taxonomy (the fleet runner) gets byte-identical
  /// classifications without paying for serialization.
  explicit EventLog(std::uint64_t max_events);

  /// Set the write clock: user writes completed so far. Events emitted
  /// until the next call are stamped with this value as "t".
  void set_now(double user_writes) { now_ = user_writes; }
  [[nodiscard]] double now() const { return now_; }

  /// Append one event line: {"v":1,"type":<type>,"t":<now>,<fields...>}.
  void emit(std::string_view type,
            std::initializer_list<EventField> fields = {});

  /// Bytes this log has emitted so far (including the schema preamble, or
  /// the pre-existing file content registered via set_offset()). This is
  /// the value checkpoints store and truncate_to() rewinds to.
  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  [[nodiscard]] std::uint64_t events_written() const { return written_; }
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }

  void flush() {
    if (out_ != nullptr) out_->flush();
  }

  /// File-backed logs install a truncator that resizes the backing file;
  /// truncate_to() flushes, invokes it, and rewinds offset(). The output
  /// stream must be in append mode so later writes land at the new end.
  using Truncator = std::function<Status(std::uint64_t)>;
  void set_truncator(Truncator truncator) { truncator_ = std::move(truncator); }

  /// Register the byte offset of pre-existing content when appending to an
  /// existing log (resume).
  void set_offset(std::uint64_t offset) { offset_ = offset; }

  /// Rewind the log to `offset` (a value a checkpoint captured earlier).
  /// Fails with failed_precondition when no truncator is installed (not
  /// file-backed) and with corruption when the log is already shorter than
  /// `offset` — the file cannot contain the checkpoint's history.
  [[nodiscard]] Status truncate_to(std::uint64_t offset);

  /// Append the "log_truncated" marker if events were dropped, then flush.
  /// Idempotent; ObsSession calls it when the run ends. No-op for
  /// count-only logs (there is nothing to append the marker to).
  void finalize();

  /// The "cause" field of the last *admitted* end_of_life event, or empty
  /// when none was emitted within the cap — the same event a JSONL parse of
  /// a streaming log would surface.
  [[nodiscard]] const std::string& end_of_life_cause() const {
    return eol_cause_;
  }
  /// True when any event was dropped — the condition under which finalize()
  /// would write the "log_truncated" marker into a streaming log.
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }
  [[nodiscard]] bool count_only() const { return out_ == nullptr; }

  /// Rearm a count-only log for the next run (counts, clock and captured
  /// cause cleared). Not meaningful for streaming logs, whose sink already
  /// holds the emitted bytes.
  void reset(std::uint64_t max_events);

 private:
  void write_line(std::string_view type,
                  std::initializer_list<EventField> fields);

  std::ostream* out_;  // nullptr = count-only mode
  std::uint64_t max_events_;
  double now_{0};
  std::uint64_t offset_{0};
  std::uint64_t written_{0};
  std::uint64_t dropped_{0};
  bool finalized_{false};
  std::string eol_cause_;
  Truncator truncator_;
};

}  // namespace nvmsec
