#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace nvmsec {

void json_append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void json_append_number(std::string& out, double x) {
  if (!std::isfinite(x)) {
    out += "null";
    return;
  }
  // Integers up to 2^53 print exactly and without an exponent, which keeps
  // counters readable; everything else gets round-trip precision.
  char buf[40];
  if (x == std::floor(x) && std::abs(x) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", x);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", x);
  }
  out += buf;
}

void json_write_number(std::ostream& out, double x) {
  std::string s;
  json_append_number(s, x);
  out << s;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_string(out, s);
  return out;
}

}  // namespace nvmsec
