// TraceWriter: Chrome-trace-format event stream.
//
// Emits a JSON array of trace events directly loadable in Perfetto /
// chrome://tracing: complete spans ("ph":"X", produced by ScopedTimer),
// instant events ("ph":"i", wear-outs / remaps / spare allocations) and
// counter tracks ("ph":"C", e.g. LMT occupancy over time).
//
// The timeline is wall-clock microseconds since the writer was created;
// simulation coordinates (user writes, rounds, line/region ids) travel in
// each event's "args" so both views stay available. Args are numeric-only —
// every coordinate in this simulator is a number, and it keeps the per-event
// cost one small string append.
//
// A full-scale attack run can wear out hundreds of thousands of lines, so
// the writer caps the event count (default 100k) and then drops, counting
// what it dropped; finish() appends one final metadata event with the drop
// count so a truncated trace is self-describing.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string_view>

namespace nvmsec {

/// One numeric key/value for a trace event's "args" object.
struct TraceArg {
  std::string_view key;
  double value;
};

class TraceWriter {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 100'000;

  /// `out` must outlive the writer. Events stream to it immediately; call
  /// finish() (or let the destructor) to close the JSON array.
  explicit TraceWriter(std::ostream& out,
                       std::size_t max_events = kDefaultMaxEvents);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Instant event at the current time.
  void instant(std::string_view name, std::initializer_list<TraceArg> args = {});

  /// Counter sample: each arg becomes a series on the `name` counter track.
  void counter(std::string_view name, std::initializer_list<TraceArg> args);

  /// Complete span [ts_us, ts_us + dur_us]. ScopedTimer calls this.
  void complete(std::string_view name, std::uint64_t ts_us,
                std::uint64_t dur_us,
                std::initializer_list<TraceArg> args = {});

  /// Microseconds since writer construction (the trace timeline).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Close the JSON array (idempotent). Emits the drop-count metadata event
  /// first if any events were dropped.
  void finish();

  [[nodiscard]] std::uint64_t events_written() const { return written_; }
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }

 private:
  bool begin_event();  // returns false when over the cap
  void write_event(std::string_view name, char phase, std::uint64_t ts_us,
                   const std::uint64_t* dur_us,
                   std::initializer_list<TraceArg> args);

  std::ostream& out_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t max_events_;
  std::uint64_t written_{0};
  std::uint64_t dropped_{0};
  bool first_{true};
  bool finished_{false};
};

/// RAII span: emits a complete event covering its lifetime. Null-safe —
/// constructed with a null writer it is a no-op, so instrumented code needs
/// no branches.
class ScopedTimer {
 public:
  ScopedTimer(TraceWriter* trace, std::string_view name)
      : trace_(trace), name_(name), start_us_(trace ? trace->now_us() : 0) {}
  ~ScopedTimer() {
    if (trace_) {
      trace_->complete(name_, start_us_, trace_->now_us() - start_us_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TraceWriter* trace_;
  std::string_view name_;
  std::uint64_t start_us_;
};

}  // namespace nvmsec
