#include "nvm/geometry.h"

#include <stdexcept>
#include <string>

namespace nvmsec {

DeviceGeometry::DeviceGeometry(std::uint64_t total_bytes,
                               std::uint32_t line_bytes,
                               std::uint64_t num_regions)
    : total_bytes_(total_bytes),
      line_bytes_(line_bytes),
      num_regions_(num_regions) {
  if (line_bytes == 0) {
    throw std::invalid_argument("DeviceGeometry: line_bytes must be > 0");
  }
  if (num_regions == 0) {
    throw std::invalid_argument("DeviceGeometry: num_regions must be > 0");
  }
  if (total_bytes % line_bytes != 0) {
    throw std::invalid_argument(
        "DeviceGeometry: total_bytes not divisible by line_bytes");
  }
  num_lines_ = total_bytes / line_bytes;
  if (num_lines_ % num_regions != 0) {
    throw std::invalid_argument(
        "DeviceGeometry: num_lines (" + std::to_string(num_lines_) +
        ") not divisible by num_regions (" + std::to_string(num_regions) + ")");
  }
  lines_per_region_ = num_lines_ / num_regions;
}

DeviceGeometry DeviceGeometry::paper_1gb() {
  return DeviceGeometry(std::uint64_t{1} << 30, 256, 2048);
}

DeviceGeometry DeviceGeometry::scaled(std::uint64_t num_lines,
                                      std::uint64_t num_regions) {
  return DeviceGeometry(num_lines * 256, 256, num_regions);
}

RegionId DeviceGeometry::region_of(PhysLineAddr line) const {
  if (!contains(line)) {
    throw std::out_of_range("DeviceGeometry::region_of: line out of range");
  }
  return RegionId{line.value() / lines_per_region_};
}

LineInRegion DeviceGeometry::offset_in_region(PhysLineAddr line) const {
  if (!contains(line)) {
    throw std::out_of_range(
        "DeviceGeometry::offset_in_region: line out of range");
  }
  return LineInRegion{line.value() % lines_per_region_};
}

PhysLineAddr DeviceGeometry::line_at(RegionId region,
                                     LineInRegion offset) const {
  if (region.value() >= num_regions_) {
    throw std::out_of_range("DeviceGeometry::line_at: region out of range");
  }
  if (offset.value() >= lines_per_region_) {
    throw std::out_of_range("DeviceGeometry::line_at: offset out of range");
  }
  return PhysLineAddr{region.value() * lines_per_region_ + offset.value()};
}

}  // namespace nvmsec
