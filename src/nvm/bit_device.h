// BitDevice: cell-granular device wear state.
//
// The line-level Device charges one wear unit per line write — the right
// abstraction for the paper's lifetime experiments. BitDevice refines it
// for the full-stack studies: every line holds individually worn cells
// (512 data + 8 Flip-N-Write flag cells), writes are programmed through a
// WriteCodec so the data pattern determines which cells wear, and ECP
// entries (§2.2.2) repair the first k cell failures. A line is worn out
// when a cell fails beyond the ECP budget; from there the spare-scheme
// layer takes over exactly as with the line-level device.
//
// Per-line cell endurance is drawn lognormally around the line's endurance
// from the EnduranceMap, so region-level variation (the paper's model) and
// within-line variation compose.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvm/endurance_map.h"
#include "reduction/codec.h"
#include "util/rng.h"
#include "util/types.h"

namespace nvmsec {

struct BitDeviceParams {
  /// Lognormal sigma of per-cell endurance within a line.
  double cell_sigma{0.1};
  /// ECP entries per line (cell failures tolerated before line death).
  std::uint32_t ecp_entries{0};

  void validate() const;
};

enum class BitWriteOutcome {
  kOk,       ///< write absorbed; line alive (ECP may have repaired cells)
  kWornOut,  ///< a cell failed beyond the ECP budget: line is dead
};

class BitDevice {
 public:
  BitDevice(std::shared_ptr<const EnduranceMap> endurance,
            BitDeviceParams params, Rng& rng);

  [[nodiscard]] const DeviceGeometry& geometry() const {
    return endurance_->geometry();
  }

  /// Program `payload` onto `line` through `codec`. Throws std::logic_error
  /// if the line is already worn out.
  BitWriteOutcome write(PhysLineAddr line, const LineData& payload,
                        WriteCodec& codec);

  [[nodiscard]] bool is_worn_out(PhysLineAddr line) const;
  [[nodiscard]] WriteCount writes_to(PhysLineAddr line) const;
  [[nodiscard]] std::uint32_t ecp_used(PhysLineAddr line) const;
  [[nodiscard]] WriteCount total_writes() const { return total_writes_; }
  [[nodiscard]] WriteCount total_cells_programmed() const {
    return total_cells_programmed_;
  }
  [[nodiscard]] std::uint64_t worn_out_count() const {
    return worn_out_count_;
  }

  /// Comparison denominator: the writes the device would absorb if every
  /// line took one full-stress write per cell-endurance unit — identical in
  /// expectation to the line-level Device's total budget, so normalized
  /// lifetimes are comparable across the two devices (and can exceed 1
  /// when a codec programs fewer cells per write than full stress).
  [[nodiscard]] double reference_lifetime() const {
    return reference_lifetime_;
  }

 private:
  struct LineState {
    StoredLine stored;
    /// Remaining programs per cell position (data then flags).
    std::vector<std::uint32_t> remaining;
    WriteCount writes{0};
    std::uint32_t ecp_used{0};
    bool dead{false};
  };

  static constexpr std::size_t kPositions =
      LineData::kBits + LineData::kWords;

  [[nodiscard]] std::uint32_t draw_cell_budget(double line_endurance,
                                               Rng& rng) const;
  /// Wear one position; true while the line remains correctable.
  bool wear_position(LineState& state, std::size_t position,
                     double line_endurance);

  std::shared_ptr<const EnduranceMap> endurance_;
  BitDeviceParams params_;
  Rng rng_;
  std::vector<LineState> lines_;
  WriteCount total_writes_{0};
  WriteCount total_cells_programmed_{0};
  std::uint64_t worn_out_count_{0};
  double reference_lifetime_{0};
};

}  // namespace nvmsec
