// Endurance-variation model (paper §2.1, Eqs. (1)-(2)).
//
// Following Zhang & Li (MICRO'09), the memory is divided into equal-size
// domains (we identify domains with the simulator's regions) whose
// programming current is normally distributed: I ~ N(mu, sigma). Endurance
// follows a power law of the programming energy:
//
//     E(I) = E_ref * (I / I_ref)^(-k)            (Eq. 1, normalized form)
//
// The paper prints E(I) = 1e8 * (I^2 * R * T)^-6 with R, T constant, i.e.
// E proportional to I^-12, but its own worked numbers are inconsistent with
// that exponent:
//   * §2.1 claims a 56x strongest/weakest ratio for 512 domains with
//     mu = 0.3 mA, sigma = 0.033 mA — that implies E ~ I^-6;
//   * §5's headline "UAA lifetime = 4.1% of ideal" for 2048 regions implies
//     an exponent near 8 (I^-12 would give ~0.9%, I^-6 would give ~11%).
// We therefore expose the exponent as a parameter, defaulting to the value
// calibrated against the headline result (see EXPERIMENTS.md, "Endurance
// model calibration").
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace nvmsec {

struct EnduranceModelParams {
  /// Mean programming current of a domain, in mA (paper: 0.3).
  double current_mean_ma{0.3};
  /// Standard deviation of the domain programming current, in mA (paper:
  /// 0.033).
  double current_stddev_ma{0.033};
  /// Normal draws are truncated to +/- this many sigmas so a pathological
  /// draw can never produce a non-positive current.
  double truncate_sigma{3.5};
  /// Power-law exponent k in E ~ I^-k. 6 reproduces the paper's §2.1 "56x
  /// for 512 domains" example; 12 is the formula as printed; 8 (default)
  /// reproduces the headline "4.1% of ideal under UAA" for 2048 regions
  /// while keeping the Max-WE vs PCD vs PS-worst ordering and gaps. See
  /// EXPERIMENTS.md, "Endurance model calibration", for the full sweep.
  double endurance_exponent{8.0};
  /// Endurance of a cell programmed at exactly the mean current (paper's
  /// 1e8 prefactor).
  double endurance_at_mean{1e8};

  void validate() const;  // throws std::invalid_argument on bad values
};

/// Generates per-region (domain) endurance values from the current model.
class EnduranceModel {
 public:
  explicit EnduranceModel(EnduranceModelParams params = {});

  [[nodiscard]] const EnduranceModelParams& params() const { return params_; }

  /// Eq. (1): endurance of a cell with programming current `current_ma`.
  [[nodiscard]] Endurance endurance_for_current(double current_ma) const;

  /// Inverse of Eq. (1): programming current that yields `endurance`.
  [[nodiscard]] double current_for_endurance(Endurance endurance) const;

  /// Draw one domain programming current (truncated normal), in mA.
  [[nodiscard]] double sample_current(Rng& rng) const;

  /// Draw endurance values for `num_regions` domains.
  [[nodiscard]] std::vector<Endurance> sample_region_endurances(
      std::uint64_t num_regions, Rng& rng) const;

  /// Analytic strongest/weakest endurance ratio when the extreme domains sit
  /// at +/- `z` standard deviations (used to reproduce the §2.1 56x example).
  [[nodiscard]] double extreme_ratio(double z) const;

  /// Expected extreme z-score for the min/max of `n` standard-normal draws
  /// (Blom's approximation); used by tests and the calibration bench.
  [[nodiscard]] static double expected_extreme_z(std::uint64_t n);

 private:
  EnduranceModelParams params_;
};

}  // namespace nvmsec
