#include "nvm/endurance_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nvmsec {

void EnduranceModelParams::validate() const {
  if (current_mean_ma <= 0) {
    throw std::invalid_argument("EnduranceModelParams: mean current <= 0");
  }
  if (current_stddev_ma < 0) {
    throw std::invalid_argument("EnduranceModelParams: negative stddev");
  }
  if (truncate_sigma <= 0) {
    throw std::invalid_argument("EnduranceModelParams: truncate_sigma <= 0");
  }
  if (current_mean_ma - truncate_sigma * current_stddev_ma <= 0) {
    throw std::invalid_argument(
        "EnduranceModelParams: truncation window allows non-positive current");
  }
  if (endurance_exponent <= 0) {
    throw std::invalid_argument("EnduranceModelParams: exponent <= 0");
  }
  if (endurance_at_mean <= 0) {
    throw std::invalid_argument("EnduranceModelParams: endurance_at_mean <= 0");
  }
}

EnduranceModel::EnduranceModel(EnduranceModelParams params) : params_(params) {
  params_.validate();
}

Endurance EnduranceModel::endurance_for_current(double current_ma) const {
  if (current_ma <= 0) {
    throw std::invalid_argument("endurance_for_current: current <= 0");
  }
  return params_.endurance_at_mean *
         std::pow(current_ma / params_.current_mean_ma,
                  -params_.endurance_exponent);
}

double EnduranceModel::current_for_endurance(Endurance endurance) const {
  if (endurance <= 0) {
    throw std::invalid_argument("current_for_endurance: endurance <= 0");
  }
  return params_.current_mean_ma *
         std::pow(endurance / params_.endurance_at_mean,
                  -1.0 / params_.endurance_exponent);
}

double EnduranceModel::sample_current(Rng& rng) const {
  const double lo = -params_.truncate_sigma;
  const double hi = params_.truncate_sigma;
  double z = rng.normal();
  // Truncation by rejection: acceptance probability is ~0.9995 at 3.5 sigma,
  // so this loop terminates almost immediately.
  while (z < lo || z > hi) z = rng.normal();
  return params_.current_mean_ma + params_.current_stddev_ma * z;
}

std::vector<Endurance> EnduranceModel::sample_region_endurances(
    std::uint64_t num_regions, Rng& rng) const {
  std::vector<Endurance> out;
  out.reserve(num_regions);
  for (std::uint64_t i = 0; i < num_regions; ++i) {
    out.push_back(endurance_for_current(sample_current(rng)));
  }
  return out;
}

double EnduranceModel::extreme_ratio(double z) const {
  const double weak_current =
      params_.current_mean_ma + z * params_.current_stddev_ma;
  const double strong_current =
      params_.current_mean_ma - z * params_.current_stddev_ma;
  if (strong_current <= 0) {
    throw std::invalid_argument("extreme_ratio: z too large for the model");
  }
  return endurance_for_current(strong_current) /
         endurance_for_current(weak_current);
}

double EnduranceModel::expected_extreme_z(std::uint64_t n) {
  if (n < 2) return 0.0;
  // Blom's approximation for the expected maximum of n standard normals:
  // E[max] ~= Phi^-1((n - 0.375) / (n + 0.25)). We invert the normal CDF
  // with the Acklam rational approximation (|error| < 1.2e-9).
  const double p =
      (static_cast<double>(n) - 0.375) / (static_cast<double>(n) + 0.25);
  // Acklam inverse-normal-CDF coefficients (central + tail regions).
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q = 0.0;
  if (p < p_low) {
    const double r = std::sqrt(-2 * std::log(p));
    q = (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) /
        ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1);
  } else if (p <= 1 - p_low) {
    const double r = p - 0.5;
    const double s = r * r;
    q = (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s + a[5]) *
        r /
        (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s + 1);
  } else {
    const double r = std::sqrt(-2 * std::log(1 - p));
    q = -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) /
        ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1);
  }
  return q;
}

}  // namespace nvmsec
