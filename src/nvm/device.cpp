#include "nvm/device.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nvmsec {

Device::Device(std::shared_ptr<const EnduranceMap> endurance)
    : endurance_(std::move(endurance)) {
  if (!endurance_) {
    throw std::invalid_argument("Device: endurance map is null");
  }
  const std::uint64_t n = endurance_->geometry().num_lines();
  budget_.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double e = endurance_->line_endurance(PhysLineAddr{i});
    budget_[i] = static_cast<WriteCount>(std::llround(std::max(1.0, e)));
    total_budget_ += static_cast<double>(budget_[i]);
  }
  remaining_ = budget_;
}

WriteOutcome Device::write(PhysLineAddr line) {
  if (!geometry().contains(line)) {
    throw std::out_of_range("Device::write: line out of range");
  }
  if (remaining_[line.value()] == 0) {
    throw std::logic_error(
        "Device::write: write to a worn-out line (spare layer must redirect)");
  }
  return write_unchecked(line);
}

BulkWriteResult Device::write_many(PhysLineAddr line, WriteCount count) {
  if (!geometry().contains(line)) {
    throw std::out_of_range("Device::write_many: line out of range");
  }
  if (count == 0) {
    throw std::invalid_argument("Device::write_many: count must be >= 1");
  }
  WriteCount& rem = remaining_[line.value()];
  if (rem == 0) {
    throw std::logic_error(
        "Device::write_many: write to a worn-out line (spare layer must "
        "redirect)");
  }
  BulkWriteResult res;
  res.absorbed = std::min(count, rem);
  total_writes_ += res.absorbed;
  rem -= res.absorbed;
  if (rem == 0) {
    note_wear_out(line);
    res.wore_out = true;
  }
  return res;
}

BulkCountsResult Device::write_counts(std::span<const std::uint64_t> lines,
                                      std::span<const WriteCount> counts) {
  if (lines.size() != counts.size()) {
    throw std::invalid_argument("Device::write_counts: span length mismatch");
  }
  const std::uint64_t num_lines = geometry().num_lines();
  BulkCountsResult res;
  // Tight SoA loop: two flat input arrays against the flat remaining_
  // vector. No virtual dispatch, no per-write branching — the only cold
  // exit is the first wear-out, which returns control to the engine so the
  // spare layer can rescue and the stale tail can be re-resolved.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::uint64_t l = lines[i];
    if (l >= num_lines) {
      throw std::out_of_range("Device::write_counts: line out of range");
    }
    WriteCount& rem = remaining_[l];
    if (rem == 0) {
      throw std::logic_error(
          "Device::write_counts: write to a worn-out line (spare layer must "
          "redirect)");
    }
    const WriteCount take = std::min(counts[i], rem);
    rem -= take;
    res.absorbed += take;
    if (rem == 0) {
      total_writes_ += res.absorbed;
      res.entries_done = i;
      res.entry_absorbed = take;
      res.wore_out = true;
      note_wear_out(PhysLineAddr{l});
      return res;
    }
  }
  total_writes_ += res.absorbed;
  res.entries_done = lines.size();
  return res;
}

WriteOutcome Device::note_wear_out(PhysLineAddr line) {
  ++worn_out_count_;
  if (wear_outs_ != nullptr) wear_outs_->inc();
  if (obs_.trace != nullptr) {
    obs_.trace->instant(
        "wear_out",
        {{"line", static_cast<double>(line.value())},
         {"region", static_cast<double>(geometry().region_of(line).value())},
         {"worn_out_lines", static_cast<double>(worn_out_count_)}});
  }
  return WriteOutcome::kWornOut;
}

void Device::set_observer(const Observer& obs) {
  obs_ = obs;
  wear_outs_ =
      obs.metrics != nullptr ? &obs.metrics->counter("device.wear_outs")
                             : nullptr;
}

WriteCount Device::write_budget(PhysLineAddr line) const {
  if (!geometry().contains(line)) {
    throw std::out_of_range("Device::write_budget: line out of range");
  }
  return budget_[line.value()];
}

WriteCount Device::remaining(PhysLineAddr line) const {
  if (!geometry().contains(line)) {
    throw std::out_of_range("Device::remaining: line out of range");
  }
  return remaining_[line.value()];
}

bool Device::is_worn_out(PhysLineAddr line) const {
  return remaining(line) == 0;
}

WriteCount Device::writes_to(PhysLineAddr line) const {
  if (!geometry().contains(line)) {
    throw std::out_of_range("Device::writes_to: line out of range");
  }
  return budget_[line.value()] - remaining_[line.value()];
}

void Device::weaken(PhysLineAddr line, WriteCount remaining) {
  if (!geometry().contains(line)) {
    throw std::out_of_range("Device::weaken: line out of range");
  }
  if (remaining == 0) {
    throw std::invalid_argument(
        "Device::weaken: remaining must be >= 1 (the line dies through a "
        "write, not by fiat)");
  }
  WriteCount& rem = remaining_[line.value()];
  if (rem == 0) {
    throw std::logic_error("Device::weaken: line already worn out");
  }
  rem = std::min(rem, remaining);
}

void Device::reset() {
  remaining_ = budget_;
  total_writes_ = 0;
  worn_out_count_ = 0;
}

void Device::rebind(std::shared_ptr<const EnduranceMap> endurance) {
  if (!endurance) {
    throw std::invalid_argument("Device::rebind: endurance map is null");
  }
  endurance_ = std::move(endurance);
  const std::uint64_t n = endurance_->geometry().num_lines();
  budget_.resize(n);
  total_budget_ = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double e = endurance_->line_endurance(PhysLineAddr{i});
    budget_[i] = static_cast<WriteCount>(std::llround(std::max(1.0, e)));
    total_budget_ += static_cast<double>(budget_[i]);
  }
  remaining_ = budget_;
  total_writes_ = 0;
  worn_out_count_ = 0;
  // Fresh-construction equivalence: a new Device has no observer attached.
  obs_ = Observer{};
  wear_outs_ = nullptr;
}

void Device::save_state(StateWriter& w) const {
  w.u64(total_writes_);
  w.u64(worn_out_count_);
  w.vec_u64(remaining_);
}

Status Device::load_state(StateReader& r) {
  std::uint64_t total_writes = 0, worn_out = 0;
  if (Status st = r.u64(total_writes); !st.ok()) return st;
  if (Status st = r.u64(worn_out); !st.ok()) return st;
  std::vector<WriteCount> remaining;
  if (Status st = r.vec_u64(remaining); !st.ok()) return st;
  if (remaining.size() != budget_.size()) {
    return Status::corruption("device state: line count " +
                              std::to_string(remaining.size()) +
                              " != configured " +
                              std::to_string(budget_.size()));
  }
  std::uint64_t dead = 0;
  for (std::uint64_t i = 0; i < remaining.size(); ++i) {
    if (remaining[i] > budget_[i]) {
      return Status::corruption(
          "device state: line " + std::to_string(i) +
          " has more remaining writes than its budget (endurance map "
          "mismatch?)");
    }
    if (remaining[i] == 0) ++dead;
  }
  if (dead != worn_out) {
    return Status::corruption("device state: worn-out count inconsistent");
  }
  remaining_ = std::move(remaining);
  total_writes_ = total_writes;
  worn_out_count_ = worn_out;
  return Status{};
}

}  // namespace nvmsec
