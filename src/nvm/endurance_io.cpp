#include "nvm/endurance_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/atomic_file.h"

namespace nvmsec {

namespace {

constexpr const char* kMagic = "# maxwe-endurance-map v1";

Status malformed(std::size_t line_number, const std::string& what) {
  return Status::corruption("endurance CSV, line " +
                            std::to_string(line_number) + ": " + what);
}

Status truncated(std::size_t line_number) {
  return Status::data_loss("endurance CSV: unexpected end of input after " +
                           std::to_string(line_number) + " line(s)");
}

bool next_line(std::istream& in, std::size_t& line_number, std::string& line) {
  if (!std::getline(in, line)) return false;
  ++line_number;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

void write_endurance_csv(const EnduranceMap& map, std::ostream& out) {
  const DeviceGeometry& geom = map.geometry();
  out << kMagic << "\n";
  out << "total_bytes,line_bytes,num_regions\n";
  out << geom.total_bytes() << "," << geom.line_bytes() << ","
      << geom.num_regions() << "\n";
  out << "region,endurance\n";
  out.precision(17);
  for (std::uint64_t r = 0; r < geom.num_regions(); ++r) {
    out << r << "," << map.region_endurance(RegionId{r}) << "\n";
  }
}

Status save_endurance_csv(const EnduranceMap& map, const std::string& path) {
  AtomicFileWriter writer(path);
  if (!writer.is_open()) return writer.open_status();
  write_endurance_csv(map, writer.stream());
  return writer.commit();
}

Result<EnduranceMap> read_endurance_csv(std::istream& in) {
  std::size_t line_number = 0;
  std::string line;
  if (!next_line(in, line_number, line)) return truncated(line_number);
  if (line != kMagic) {
    return malformed(line_number,
                     std::string("expected header '") + kMagic + "'");
  }
  if (!next_line(in, line_number, line)) return truncated(line_number);
  if (line != "total_bytes,line_bytes,num_regions") {
    return malformed(line_number, "expected geometry column header");
  }
  if (!next_line(in, line_number, line)) return truncated(line_number);
  std::uint64_t total_bytes = 0, num_regions = 0;
  std::uint32_t line_bytes = 0;
  {
    std::istringstream fields(line);
    char c1 = 0, c2 = 0;
    if (!(fields >> total_bytes >> c1 >> line_bytes >> c2 >> num_regions) ||
        c1 != ',' || c2 != ',') {
      return malformed(line_number, "malformed geometry row: " + line);
    }
  }
  if (!next_line(in, line_number, line)) return truncated(line_number);
  if (line != "region,endurance") {
    return malformed(line_number, "expected data column header");
  }

  std::vector<Endurance> endurance(num_regions, 0.0);
  std::vector<bool> seen(num_regions, false);
  for (std::uint64_t i = 0; i < num_regions; ++i) {
    if (!next_line(in, line_number, line)) return truncated(line_number);
    std::istringstream fields(line);
    std::uint64_t region = 0;
    double value = 0;
    char comma = 0;
    if (!(fields >> region >> comma >> value) || comma != ',') {
      return malformed(line_number, "malformed data row: " + line);
    }
    if (region >= num_regions) {
      return malformed(line_number, "region id out of range");
    }
    if (seen[region]) return malformed(line_number, "duplicate region id");
    seen[region] = true;
    endurance[region] = value;
  }
  // The geometry and endurance constructors validate positivity and
  // divisibility; in a parsed file a rejected value is file corruption.
  try {
    return EnduranceMap(DeviceGeometry(total_bytes, line_bytes, num_regions),
                        std::move(endurance));
  } catch (const std::invalid_argument& e) {
    return Status::corruption(std::string("endurance CSV: ") + e.what());
  }
}

Result<EnduranceMap> load_endurance_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::not_found("endurance CSV '" + path +
                             "' cannot be opened (does it exist?)");
  }
  return read_endurance_csv(in);
}

}  // namespace nvmsec
