#include "nvm/endurance_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace nvmsec {

namespace {

constexpr const char* kMagic = "# maxwe-endurance-map v1";

[[noreturn]] void fail(std::size_t line_number, const std::string& what) {
  throw std::runtime_error("endurance CSV, line " +
                           std::to_string(line_number) + ": " + what);
}

std::string next_line(std::istream& in, std::size_t& line_number) {
  std::string line;
  if (!std::getline(in, line)) {
    fail(line_number, "unexpected end of input");
  }
  ++line_number;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

void write_endurance_csv(const EnduranceMap& map, std::ostream& out) {
  const DeviceGeometry& geom = map.geometry();
  out << kMagic << "\n";
  out << "total_bytes,line_bytes,num_regions\n";
  out << geom.total_bytes() << "," << geom.line_bytes() << ","
      << geom.num_regions() << "\n";
  out << "region,endurance\n";
  out.precision(17);
  for (std::uint64_t r = 0; r < geom.num_regions(); ++r) {
    out << r << "," << map.region_endurance(RegionId{r}) << "\n";
  }
}

void save_endurance_csv(const EnduranceMap& map, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_endurance_csv: cannot open " + path);
  }
  write_endurance_csv(map, out);
  if (!out) {
    throw std::runtime_error("save_endurance_csv: write failed for " + path);
  }
}

EnduranceMap read_endurance_csv(std::istream& in) {
  std::size_t line_number = 0;
  if (next_line(in, line_number) != kMagic) {
    fail(line_number, std::string("expected header '") + kMagic + "'");
  }
  if (next_line(in, line_number) != "total_bytes,line_bytes,num_regions") {
    fail(line_number, "expected geometry column header");
  }
  const std::string geom_line = next_line(in, line_number);
  std::uint64_t total_bytes = 0, num_regions = 0;
  std::uint32_t line_bytes = 0;
  {
    std::istringstream fields(geom_line);
    char c1 = 0, c2 = 0;
    if (!(fields >> total_bytes >> c1 >> line_bytes >> c2 >> num_regions) ||
        c1 != ',' || c2 != ',') {
      fail(line_number, "malformed geometry row: " + geom_line);
    }
  }
  if (next_line(in, line_number) != "region,endurance") {
    fail(line_number, "expected data column header");
  }

  std::vector<Endurance> endurance(num_regions, 0.0);
  std::vector<bool> seen(num_regions, false);
  for (std::uint64_t i = 0; i < num_regions; ++i) {
    const std::string row = next_line(in, line_number);
    std::istringstream fields(row);
    std::uint64_t region = 0;
    double value = 0;
    char comma = 0;
    if (!(fields >> region >> comma >> value) || comma != ',') {
      fail(line_number, "malformed data row: " + row);
    }
    if (region >= num_regions) fail(line_number, "region id out of range");
    if (seen[region]) fail(line_number, "duplicate region id");
    seen[region] = true;
    endurance[region] = value;
  }
  // Geometry and endurance validation (positivity etc.) happens in the
  // respective constructors and surfaces as std::invalid_argument.
  return EnduranceMap(DeviceGeometry(total_bytes, line_bytes, num_regions),
                      std::move(endurance));
}

EnduranceMap load_endurance_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_endurance_csv: cannot open " + path);
  }
  return read_endurance_csv(in);
}

}  // namespace nvmsec
