// Device: the raw NVM bank's wear state.
//
// Tracks per-line write budgets derived from the EnduranceMap and reports
// the wear-out event on exactly the write that exhausts a line. Writing to
// a line that is already worn out is a logic error (the spare-replacement
// layer above must redirect such writes), so it throws rather than silently
// corrupting lifetime accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvm/endurance_map.h"
#include "obs/observer.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

enum class WriteOutcome {
  kOk,       ///< Write absorbed; line still alive.
  kWornOut,  ///< This write was the line's last: it is now worn out.
};

class Device {
 public:
  explicit Device(std::shared_ptr<const EnduranceMap> endurance);

  [[nodiscard]] const DeviceGeometry& geometry() const {
    return endurance_->geometry();
  }
  [[nodiscard]] const EnduranceMap& endurance_map() const { return *endurance_; }

  /// Apply one write to `line`. Throws std::logic_error if the line is
  /// already worn out.
  WriteOutcome write(PhysLineAddr line);

  /// Integer write budget of `line` (endurance rounded, at least 1).
  [[nodiscard]] WriteCount write_budget(PhysLineAddr line) const;

  /// Writes `line` can still absorb.
  [[nodiscard]] WriteCount remaining(PhysLineAddr line) const;

  [[nodiscard]] bool is_worn_out(PhysLineAddr line) const;

  /// Writes absorbed by `line` so far.
  [[nodiscard]] WriteCount writes_to(PhysLineAddr line) const;

  /// Total writes absorbed by the whole device.
  [[nodiscard]] WriteCount total_writes() const { return total_writes_; }

  /// Number of worn-out lines.
  [[nodiscard]] std::uint64_t worn_out_count() const { return worn_out_count_; }

  /// Sum of all line write budgets: the ideal lifetime denominator (§5.1's
  /// normalized-lifetime metric).
  [[nodiscard]] double total_budget() const { return total_budget_; }

  /// Failure injection: cap `line`'s remaining writes at `remaining`
  /// (>= 1), modelling a latent defect that the manufacture-time endurance
  /// map missed. The line still dies through the normal wear-out event on
  /// its last write, so the spare-replacement flow is exercised unchanged.
  /// Throws std::logic_error if the line is already worn out.
  void weaken(PhysLineAddr line, WriteCount remaining);

  /// Restore the factory-fresh wear state.
  void reset();

  /// Checkpointing: per-line remaining budgets plus the aggregate wear
  /// counters. Budgets themselves are rebuilt from the endurance map, and
  /// load_state() cross-checks the saved remainders against them.
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

  /// Attach observability sinks. Wear-out events then emit a trace instant
  /// with the line/region coordinates and bump the `device.wear_outs`
  /// counter. Only the wear-out branch is instrumented — the per-write hot
  /// path stays untouched.
  void set_observer(const Observer& obs);

 private:
  Observer obs_{};
  Counter* wear_outs_{nullptr};
  std::shared_ptr<const EnduranceMap> endurance_;
  std::vector<WriteCount> remaining_;
  std::vector<WriteCount> budget_;
  WriteCount total_writes_{0};
  std::uint64_t worn_out_count_{0};
  double total_budget_{0};
};

}  // namespace nvmsec
