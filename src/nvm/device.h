// Device: the raw NVM bank's wear state.
//
// Tracks per-line write budgets derived from the EnduranceMap and reports
// the wear-out event on exactly the write that exhausts a line. Writing to
// a line that is already worn out is a logic error (the spare-replacement
// layer above must redirect such writes), so it throws rather than silently
// corrupting lifetime accounting.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nvm/endurance_map.h"
#include "obs/observer.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

enum class WriteOutcome {
  kOk,       ///< Write absorbed; line still alive.
  kWornOut,  ///< This write was the line's last: it is now worn out.
};

/// Result of a batched Device::write_many call.
struct BulkWriteResult {
  WriteCount absorbed{0};  ///< Writes the line actually took (<= requested).
  bool wore_out{false};    ///< The last absorbed write exhausted the line.
};

/// Result of a Device::write_counts scan over an SoA count vector.
struct BulkCountsResult {
  /// Entries fully absorbed before the scan stopped; equals lines.size()
  /// when no wear-out occurred. On a wear-out, the stopping entry's index.
  std::size_t entries_done{0};
  WriteCount absorbed{0};        ///< Total writes absorbed this call.
  WriteCount entry_absorbed{0};  ///< Absorbed within the stopping entry.
  bool wore_out{false};          ///< Scan stopped at a line wear-out.
};

class Device {
 public:
  explicit Device(std::shared_ptr<const EnduranceMap> endurance);

  [[nodiscard]] const DeviceGeometry& geometry() const {
    return endurance_->geometry();
  }
  [[nodiscard]] const EnduranceMap& endurance_map() const { return *endurance_; }

  /// Apply one write to `line`. Throws std::logic_error if the line is
  /// already worn out.
  WriteOutcome write(PhysLineAddr line);

  /// Batched entry: apply up to `count` writes to `line`, validating once
  /// and bulk-decrementing the budget. Returns how many writes the line
  /// absorbed (min(count, remaining)) and whether the last absorbed write
  /// wore it out. Throws exactly like write() for an out-of-range or
  /// already-worn-out line; `count` must be >= 1.
  BulkWriteResult write_many(PhysLineAddr line, WriteCount count);

  /// Structure-of-arrays bulk decrement: apply counts[i] writes to raw
  /// physical line lines[i], in order, as one tight loop over two flat
  /// arrays — the wear half of the batched stochastic fast path. The scan
  /// stops at the first line that wears out (the caller must let the spare
  /// layer rescue it and re-resolve the tail before continuing) and reports
  /// how far it got. Lines may repeat; zero counts are skipped. Throws like
  /// write() on an out-of-range or already-worn-out line, and
  /// std::invalid_argument on mismatched span lengths.
  BulkCountsResult write_counts(std::span<const std::uint64_t> lines,
                                std::span<const WriteCount> counts);

  /// Fast-path single write: range/liveness validation reduced to
  /// debug-only asserts. Callers must guarantee `line` is in range and not
  /// worn out (the batched engine path validates once per span).
  WriteOutcome write_unchecked(PhysLineAddr line) {
    assert(geometry().contains(line));
    WriteCount& rem = remaining_[line.value()];
    assert(rem > 0);
    ++total_writes_;
    --rem;
    if (rem == 0) return note_wear_out(line);
    return WriteOutcome::kOk;
  }

  /// Integer write budget of `line` (endurance rounded, at least 1).
  [[nodiscard]] WriteCount write_budget(PhysLineAddr line) const;

  /// Writes `line` can still absorb.
  [[nodiscard]] WriteCount remaining(PhysLineAddr line) const;

  [[nodiscard]] bool is_worn_out(PhysLineAddr line) const;

  /// Writes absorbed by `line` so far.
  [[nodiscard]] WriteCount writes_to(PhysLineAddr line) const;

  /// Total writes absorbed by the whole device.
  [[nodiscard]] WriteCount total_writes() const { return total_writes_; }

  /// Number of worn-out lines.
  [[nodiscard]] std::uint64_t worn_out_count() const { return worn_out_count_; }

  /// Sum of all line write budgets: the ideal lifetime denominator (§5.1's
  /// normalized-lifetime metric).
  [[nodiscard]] double total_budget() const { return total_budget_; }

  /// Failure injection: cap `line`'s remaining writes at `remaining`
  /// (>= 1), modelling a latent defect that the manufacture-time endurance
  /// map missed. The line still dies through the normal wear-out event on
  /// its last write, so the spare-replacement flow is exercised unchanged.
  /// Throws std::logic_error if the line is already worn out.
  void weaken(PhysLineAddr line, WriteCount remaining);

  /// Restore the factory-fresh wear state.
  void reset();

  /// Re-target the device at a different endurance map, reusing the budget
  /// vectors — equivalent to constructing Device(endurance) fresh, without
  /// the allocations. The fleet runner's per-worker reuse hook.
  void rebind(std::shared_ptr<const EnduranceMap> endurance);

  /// Checkpointing: per-line remaining budgets plus the aggregate wear
  /// counters. Budgets themselves are rebuilt from the endurance map, and
  /// load_state() cross-checks the saved remainders against them.
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

  /// Attach observability sinks. Wear-out events then emit a trace instant
  /// with the line/region coordinates and bump the `device.wear_outs`
  /// counter. Only the wear-out branch is instrumented — the per-write hot
  /// path stays untouched.
  void set_observer(const Observer& obs);

 private:
  /// Cold path shared by write_unchecked/write_many: bump the worn-out
  /// counters and emit the trace instant. Always returns kWornOut.
  WriteOutcome note_wear_out(PhysLineAddr line);

  Observer obs_{};
  Counter* wear_outs_{nullptr};
  std::shared_ptr<const EnduranceMap> endurance_;
  std::vector<WriteCount> remaining_;
  std::vector<WriteCount> budget_;
  WriteCount total_writes_{0};
  std::uint64_t worn_out_count_{0};
  double total_budget_{0};
};

}  // namespace nvmsec
