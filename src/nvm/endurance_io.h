// CSV import/export of endurance maps.
//
// The endurance distribution is the experiment's most important input:
// persisting it lets a study fix the map once and vary everything else, or
// feed measured per-region endurance from a real characterization into the
// simulator. Format:
//
//   # maxwe-endurance-map v1
//   total_bytes,line_bytes,num_regions
//   <u64>,<u32>,<u64>
//   region,endurance
//   0,<double>
//   1,<double>
//   ...
//
// Only region-level endurance is persisted (the paper's model; per-line
// jitter is a run-time transformation and is reapplied from its sigma).
#pragma once

#include <iosfwd>
#include <string>

#include "nvm/endurance_map.h"

namespace nvmsec {

/// Serialize `map` to the CSV format above.
void write_endurance_csv(const EnduranceMap& map, std::ostream& out);
void save_endurance_csv(const EnduranceMap& map, const std::string& path);

/// Parse the CSV format; throws std::runtime_error with a line number on
/// malformed input.
EnduranceMap read_endurance_csv(std::istream& in);
EnduranceMap load_endurance_csv(const std::string& path);

}  // namespace nvmsec
