// CSV import/export of endurance maps.
//
// The endurance distribution is the experiment's most important input:
// persisting it lets a study fix the map once and vary everything else, or
// feed measured per-region endurance from a real characterization into the
// simulator. Format:
//
//   # maxwe-endurance-map v1
//   total_bytes,line_bytes,num_regions
//   <u64>,<u32>,<u64>
//   region,endurance
//   0,<double>
//   1,<double>
//   ...
//
// Only region-level endurance is persisted (the paper's model; per-line
// jitter is a run-time transformation and is reapplied from its sigma).
#pragma once

#include <iosfwd>
#include <string>

#include "nvm/endurance_map.h"
#include "util/status.h"

namespace nvmsec {

/// Serialize `map` to the CSV format above.
void write_endurance_csv(const EnduranceMap& map, std::ostream& out);

/// Atomically persist `map` (temp file + rename, so a crash never leaves a
/// truncated map under the final name). io_error on open/write failure.
[[nodiscard]] Status save_endurance_csv(const EnduranceMap& map,
                                        const std::string& path);

/// Parse the CSV format. Every error carries the offending line number:
/// data_loss for truncated input, corruption for a bad header, malformed
/// row, out-of-range/duplicate region id, or values the geometry and
/// endurance constructors reject.
[[nodiscard]] Result<EnduranceMap> read_endurance_csv(std::istream& in);

/// read_endurance_csv from a file; not_found when it cannot be opened.
[[nodiscard]] Result<EnduranceMap> load_endurance_csv(const std::string& path);

}  // namespace nvmsec
