// Device geometry: how a bank is carved into regions and lines.
//
// The paper's experimental configuration (§5.1) is a 1 GB NVM bank with
// 256 B lines divided into 2048 equal regions (so 2048 lines per region).
// All address arithmetic between the line- and region-granular views lives
// here so the rest of the library never repeats it.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace nvmsec {

class DeviceGeometry {
 public:
  /// Throws std::invalid_argument unless total_bytes is divisible into whole
  /// lines and the line count is divisible into whole regions.
  DeviceGeometry(std::uint64_t total_bytes, std::uint32_t line_bytes,
                 std::uint64_t num_regions);

  /// The paper's evaluation setup: 1 GB bank, 256 B lines, 2048 regions.
  static DeviceGeometry paper_1gb();

  /// A small configuration for stochastic simulation / tests: `num_lines`
  /// lines of 256 B grouped into `num_regions` regions.
  static DeviceGeometry scaled(std::uint64_t num_lines,
                               std::uint64_t num_regions);

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint32_t line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::uint64_t num_lines() const { return num_lines_; }
  [[nodiscard]] std::uint64_t num_regions() const { return num_regions_; }
  [[nodiscard]] std::uint64_t lines_per_region() const {
    return lines_per_region_;
  }

  [[nodiscard]] RegionId region_of(PhysLineAddr line) const;
  [[nodiscard]] LineInRegion offset_in_region(PhysLineAddr line) const;
  [[nodiscard]] PhysLineAddr line_at(RegionId region, LineInRegion offset) const;

  /// True when `line` indexes an existing line.
  [[nodiscard]] bool contains(PhysLineAddr line) const {
    return line.value() < num_lines_;
  }

  bool operator==(const DeviceGeometry&) const = default;

 private:
  std::uint64_t total_bytes_;
  std::uint32_t line_bytes_;
  std::uint64_t num_lines_;
  std::uint64_t num_regions_;
  std::uint64_t lines_per_region_;
};

}  // namespace nvmsec
