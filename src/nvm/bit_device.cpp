#include "nvm/bit_device.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace nvmsec {

void BitDeviceParams::validate() const {
  if (cell_sigma < 0) {
    throw std::invalid_argument("BitDeviceParams: negative cell_sigma");
  }
}

BitDevice::BitDevice(std::shared_ptr<const EnduranceMap> endurance,
                     BitDeviceParams params, Rng& rng)
    : endurance_(std::move(endurance)), params_(params), rng_(rng.fork()) {
  if (!endurance_) {
    throw std::invalid_argument("BitDevice: endurance map is null");
  }
  params_.validate();
  const std::uint64_t n = endurance_->geometry().num_lines();
  // Each line keeps ~2 KiB of cell state; cap the device size so a
  // misconfigured full-scale run fails fast instead of exhausting memory.
  if (n > (1ULL << 20)) {
    throw std::invalid_argument(
        "BitDevice: cell-granular state is meant for scaled devices "
        "(<= 2^20 lines); use Device for full-scale line-level runs");
  }
  lines_.resize(n);
  for (std::uint64_t l = 0; l < n; ++l) {
    const double e = endurance_->line_endurance(PhysLineAddr{l});
    lines_[l].remaining.resize(kPositions);
    for (auto& r : lines_[l].remaining) r = draw_cell_budget(e, rng_);
    reference_lifetime_ += e;
  }
}

std::uint32_t BitDevice::draw_cell_budget(double line_endurance,
                                          Rng& rng) const {
  const double factor =
      std::exp(params_.cell_sigma * rng.normal() -
               0.5 * params_.cell_sigma * params_.cell_sigma);
  const double e = line_endurance * factor;
  const double clamped = std::min(e, 4.0e9);
  return static_cast<std::uint32_t>(std::llround(std::max(1.0, clamped)));
}

bool BitDevice::wear_position(LineState& state, std::size_t position,
                              double line_endurance) {
  if (--state.remaining[position] > 0) return true;
  if (state.ecp_used >= params_.ecp_entries) {
    state.dead = true;
    return false;
  }
  ++state.ecp_used;  // redirect to a fresh spare cell in the ECP area
  state.remaining[position] = draw_cell_budget(line_endurance, rng_);
  return true;
}

BitWriteOutcome BitDevice::write(PhysLineAddr line, const LineData& payload,
                                 WriteCodec& codec) {
  if (!geometry().contains(line)) {
    throw std::out_of_range("BitDevice::write: line out of range");
  }
  LineState& state = lines_[line.value()];
  if (state.dead) {
    throw std::logic_error(
        "BitDevice::write: write to a worn-out line (spare layer must "
        "redirect)");
  }
  const double line_endurance = endurance_->line_endurance(line);

  ProgramMask mask;
  const WriteCost cost = codec.program(state.stored, payload, &mask);
  ++state.writes;
  ++total_writes_;
  total_cells_programmed_ += cost.total();

  bool alive = true;
  for (std::size_t w = 0; w < LineData::kWords && alive; ++w) {
    std::uint64_t bits = mask.cells.words[w];
    while (bits && alive) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      alive = wear_position(state, w * 64 + static_cast<std::size_t>(bit),
                            line_endurance);
    }
    if (alive && mask.flags[w]) {
      alive = wear_position(state, LineData::kBits + w, line_endurance);
    }
  }
  if (!alive) {
    ++worn_out_count_;
    return BitWriteOutcome::kWornOut;
  }
  return BitWriteOutcome::kOk;
}

bool BitDevice::is_worn_out(PhysLineAddr line) const {
  if (!geometry().contains(line)) {
    throw std::out_of_range("BitDevice::is_worn_out: line out of range");
  }
  return lines_[line.value()].dead;
}

WriteCount BitDevice::writes_to(PhysLineAddr line) const {
  if (!geometry().contains(line)) {
    throw std::out_of_range("BitDevice::writes_to: line out of range");
  }
  return lines_[line.value()].writes;
}

std::uint32_t BitDevice::ecp_used(PhysLineAddr line) const {
  if (!geometry().contains(line)) {
    throw std::out_of_range("BitDevice::ecp_used: line out of range");
  }
  return lines_[line.value()].ecp_used;
}

}  // namespace nvmsec
