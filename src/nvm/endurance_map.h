// EnduranceMap: the per-region (and derived per-line) endurance of a device.
//
// Max-WE assumes the endurance distribution parameters "can be obtained at
// the manufacture time" (§2.1) and that "the endurance of each region is
// constant" (§4.4): every line in a region shares the region's endurance.
// An optional per-line jitter is provided for robustness studies (how do the
// schemes behave when the manufacture-time map is imperfect?); it is off by
// default to match the paper's model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvm/endurance_model.h"
#include "nvm/geometry.h"
#include "util/rng.h"
#include "util/types.h"

namespace nvmsec {

class EnduranceMap {
 public:
  /// Per-region endurances sampled from the Zhang&Li current model.
  static EnduranceMap from_model(const DeviceGeometry& geometry,
                                 const EnduranceModel& model, Rng& rng);

  /// The tractable linear model of §3.1 / §4.3: region endurances linearly
  /// spaced between `weakest` and `strongest`. `shuffled` randomizes which
  /// physical region gets which endurance (true matches real devices; false
  /// gives an address-ordered ramp convenient for tests).
  static EnduranceMap linear(const DeviceGeometry& geometry, Endurance weakest,
                             Endurance strongest, bool shuffled, Rng& rng);

  /// Every region has the same endurance (variation-free baseline).
  static EnduranceMap uniform(const DeviceGeometry& geometry,
                              Endurance endurance);

  /// Explicit per-region endurances (size must equal num_regions).
  EnduranceMap(const DeviceGeometry& geometry,
               std::vector<Endurance> region_endurance);

  /// Multiply every line's endurance by lognormal-ish jitter exp(sigma * Z),
  /// modelling intra-region cell variation the manufacture-time map cannot
  /// see. After this call line_endurance() != region_endurance().
  void apply_line_jitter(double sigma, Rng& rng);

  /// In-place resample from `model`: consumes exactly the RNG draws
  /// from_model() would and leaves the map equal to a freshly built one,
  /// but reuses the existing region storage (and clears any line jitter).
  /// The setup-amortization path for callers that build one map per seed
  /// in a tight loop (the fleet runner).
  void rebuild_from_model(const EnduranceModel& model, Rng& rng);

  /// Fault injection: overwrite one line's endurance (must be > 0). Used to
  /// model latent defects — stuck-at and early-death lines — that the
  /// manufacture-time characterization missed; the faulted copy of the map
  /// drives the device while schemes keep planning on the clean one.
  void set_line_endurance(PhysLineAddr line, Endurance endurance);

  /// Fault injection: multiply one region's endurance (and its lines', when
  /// per-line values exist) by `factor` > 0 — an endurance outlier.
  void scale_region_endurance(RegionId region, double factor);

  [[nodiscard]] const DeviceGeometry& geometry() const { return geometry_; }

  [[nodiscard]] Endurance region_endurance(RegionId region) const;
  [[nodiscard]] Endurance line_endurance(PhysLineAddr line) const;

  /// Sum of all line endurances = the ideal lifetime in writes (§3.1).
  [[nodiscard]] double ideal_lifetime() const { return ideal_lifetime_; }

  [[nodiscard]] Endurance min_line_endurance() const;
  [[nodiscard]] Endurance max_line_endurance() const;

  /// Region ids sorted by ascending region endurance (weakest first).
  /// Ties broken by region id so the order is deterministic.
  [[nodiscard]] std::vector<RegionId> regions_weakest_first() const;

  /// Line addresses sorted by ascending line endurance (weakest first).
  [[nodiscard]] std::vector<PhysLineAddr> lines_weakest_first() const;

  [[nodiscard]] bool has_line_jitter() const { return !line_endurance_.empty(); }

 private:
  DeviceGeometry geometry_;
  std::vector<Endurance> region_endurance_;
  /// Empty unless apply_line_jitter() was called; then one entry per line.
  std::vector<Endurance> line_endurance_;
  double ideal_lifetime_{0};

  void recompute_ideal_lifetime();
};

}  // namespace nvmsec
