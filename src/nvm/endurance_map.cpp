#include "nvm/endurance_map.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nvmsec {

EnduranceMap EnduranceMap::from_model(const DeviceGeometry& geometry,
                                      const EnduranceModel& model, Rng& rng) {
  return EnduranceMap(geometry,
                      model.sample_region_endurances(geometry.num_regions(), rng));
}

EnduranceMap EnduranceMap::linear(const DeviceGeometry& geometry,
                                  Endurance weakest, Endurance strongest,
                                  bool shuffled, Rng& rng) {
  if (weakest <= 0 || strongest < weakest) {
    throw std::invalid_argument(
        "EnduranceMap::linear: need 0 < weakest <= strongest");
  }
  const std::uint64_t r = geometry.num_regions();
  std::vector<Endurance> endurances(r);
  for (std::uint64_t i = 0; i < r; ++i) {
    const double frac =
        r == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(r - 1);
    endurances[i] = weakest + (strongest - weakest) * frac;
  }
  if (shuffled) rng.shuffle(endurances);
  return EnduranceMap(geometry, std::move(endurances));
}

EnduranceMap EnduranceMap::uniform(const DeviceGeometry& geometry,
                                   Endurance endurance) {
  if (endurance <= 0) {
    throw std::invalid_argument("EnduranceMap::uniform: endurance <= 0");
  }
  return EnduranceMap(geometry,
                      std::vector<Endurance>(geometry.num_regions(), endurance));
}

EnduranceMap::EnduranceMap(const DeviceGeometry& geometry,
                           std::vector<Endurance> region_endurance)
    : geometry_(geometry), region_endurance_(std::move(region_endurance)) {
  if (region_endurance_.size() != geometry_.num_regions()) {
    throw std::invalid_argument(
        "EnduranceMap: endurance vector size != num_regions");
  }
  for (Endurance e : region_endurance_) {
    if (!(e > 0) || !std::isfinite(e)) {
      throw std::invalid_argument(
          "EnduranceMap: endurances must be finite and > 0");
    }
  }
  recompute_ideal_lifetime();
}

void EnduranceMap::rebuild_from_model(const EnduranceModel& model, Rng& rng) {
  // Mirrors from_model(): one sample_current() draw per region, in region
  // order, validated like the constructor would.
  for (Endurance& e : region_endurance_) {
    e = model.endurance_for_current(model.sample_current(rng));
    if (!(e > 0) || !std::isfinite(e)) {
      throw std::invalid_argument(
          "EnduranceMap: endurances must be finite and > 0");
    }
  }
  line_endurance_.clear();
  recompute_ideal_lifetime();
}

void EnduranceMap::apply_line_jitter(double sigma, Rng& rng) {
  if (sigma < 0) {
    throw std::invalid_argument("apply_line_jitter: sigma must be >= 0");
  }
  line_endurance_.resize(geometry_.num_lines());
  for (std::uint64_t i = 0; i < geometry_.num_lines(); ++i) {
    const Endurance base =
        region_endurance_[i / geometry_.lines_per_region()];
    line_endurance_[i] = base * std::exp(sigma * rng.normal());
  }
  recompute_ideal_lifetime();
}

void EnduranceMap::set_line_endurance(PhysLineAddr line, Endurance endurance) {
  if (!geometry_.contains(line)) {
    throw std::out_of_range("set_line_endurance: line out of range");
  }
  if (!(endurance > 0) || !std::isfinite(endurance)) {
    throw std::invalid_argument(
        "set_line_endurance: endurance must be finite and > 0");
  }
  if (line_endurance_.empty()) {
    // Materialize per-line values from the region-constant model first.
    line_endurance_.resize(geometry_.num_lines());
    for (std::uint64_t i = 0; i < geometry_.num_lines(); ++i) {
      line_endurance_[i] = region_endurance_[i / geometry_.lines_per_region()];
    }
  }
  line_endurance_[line.value()] = endurance;
  recompute_ideal_lifetime();
}

void EnduranceMap::scale_region_endurance(RegionId region, double factor) {
  if (region.value() >= region_endurance_.size()) {
    throw std::out_of_range("scale_region_endurance: region out of range");
  }
  if (!(factor > 0) || !std::isfinite(factor)) {
    throw std::invalid_argument(
        "scale_region_endurance: factor must be finite and > 0");
  }
  region_endurance_[region.value()] *= factor;
  if (!line_endurance_.empty()) {
    const std::uint64_t lpr = geometry_.lines_per_region();
    for (std::uint64_t k = 0; k < lpr; ++k) {
      line_endurance_[region.value() * lpr + k] *= factor;
    }
  }
  recompute_ideal_lifetime();
}

Endurance EnduranceMap::region_endurance(RegionId region) const {
  if (region.value() >= region_endurance_.size()) {
    throw std::out_of_range("region_endurance: region out of range");
  }
  return region_endurance_[region.value()];
}

Endurance EnduranceMap::line_endurance(PhysLineAddr line) const {
  if (!geometry_.contains(line)) {
    throw std::out_of_range("line_endurance: line out of range");
  }
  if (!line_endurance_.empty()) return line_endurance_[line.value()];
  return region_endurance_[line.value() / geometry_.lines_per_region()];
}

Endurance EnduranceMap::min_line_endurance() const {
  if (!line_endurance_.empty()) {
    return *std::min_element(line_endurance_.begin(), line_endurance_.end());
  }
  return *std::min_element(region_endurance_.begin(), region_endurance_.end());
}

Endurance EnduranceMap::max_line_endurance() const {
  if (!line_endurance_.empty()) {
    return *std::max_element(line_endurance_.begin(), line_endurance_.end());
  }
  return *std::max_element(region_endurance_.begin(), region_endurance_.end());
}

std::vector<RegionId> EnduranceMap::regions_weakest_first() const {
  std::vector<RegionId> order(geometry_.num_regions());
  for (std::uint64_t i = 0; i < order.size(); ++i) order[i] = RegionId{i};
  std::stable_sort(order.begin(), order.end(),
                   [&](RegionId a, RegionId b) {
                     const Endurance ea = region_endurance_[a.value()];
                     const Endurance eb = region_endurance_[b.value()];
                     if (ea != eb) return ea < eb;
                     return a.value() < b.value();
                   });
  return order;
}

std::vector<PhysLineAddr> EnduranceMap::lines_weakest_first() const {
  std::vector<PhysLineAddr> order(geometry_.num_lines());
  for (std::uint64_t i = 0; i < order.size(); ++i) {
    order[i] = PhysLineAddr{i};
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](PhysLineAddr a, PhysLineAddr b) {
                     const Endurance ea = line_endurance(a);
                     const Endurance eb = line_endurance(b);
                     if (ea != eb) return ea < eb;
                     return a.value() < b.value();
                   });
  return order;
}

void EnduranceMap::recompute_ideal_lifetime() {
  double total = 0;
  if (!line_endurance_.empty()) {
    for (Endurance e : line_endurance_) total += e;
  } else {
    for (Endurance e : region_endurance_) {
      total += e * static_cast<double>(geometry_.lines_per_region());
    }
  }
  ideal_lifetime_ = total;
}

}  // namespace nvmsec
