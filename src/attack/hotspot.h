// Hotspot attack: hammer a small fixed working set of logical addresses
// forever. This is the classic wear-out attack that address-randomizing
// wear levelers (Start-Gap, Security Refresh) were designed to defeat; we
// keep it as a sanity baseline for the wear-leveling implementations.
#pragma once

#include "attack/attack.h"

namespace nvmsec {

class HotspotAttack final : public Attack {
 public:
  explicit HotspotAttack(std::uint64_t working_set);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;

  /// The round-robin cursor makes batched counts fully deterministic: a
  /// chunk of n writes touches exactly the same per-line totals the
  /// per-write loop would (floor/ceil split around the cursor), with no RNG
  /// involved — only the within-chunk write order differs.
  [[nodiscard]] BatchContract batch_contract() const override {
    return BatchContract::kMultisetExact;
  }
  bool next_counts(Rng& rng, std::uint64_t user_lines, std::uint64_t n_writes,
                   WriteCountVector& out) override;

  [[nodiscard]] std::string name() const override { return "hotspot"; }
  void reset() override { cursor_ = 0; }

  [[nodiscard]] std::uint64_t working_set() const { return working_set_; }

  void save_state(StateWriter& w) const override { w.u64(cursor_); }
  [[nodiscard]] Status load_state(StateReader& r) override {
    return r.u64(cursor_);
  }

 private:
  std::uint64_t working_set_;
  std::uint64_t cursor_{0};
};

}  // namespace nvmsec
