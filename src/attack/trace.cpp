#include "attack/trace.h"

#include <fstream>
#include <stdexcept>

#include "util/atomic_file.h"

namespace nvmsec {

namespace {
constexpr const char* kMagic = "# maxwe-trace v1";
}

TraceRecorder::TraceRecorder(std::unique_ptr<Attack> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("TraceRecorder: inner attack is null");
  }
}

LogicalLineAddr TraceRecorder::next(Rng& rng, std::uint64_t user_lines) {
  const LogicalLineAddr la = inner_->next(rng, user_lines);
  addresses_.push_back(la.value());
  return la;
}

void TraceRecorder::reset() {
  inner_->reset();
  addresses_.clear();
}

Status TraceRecorder::save(const std::string& path) const {
  AtomicFileWriter writer(path);
  if (!writer.is_open()) return writer.open_status();
  writer.stream() << kMagic << "\n";
  for (std::uint64_t a : addresses_) writer.stream() << a << "\n";
  return writer.commit();
}

TraceReplay::TraceReplay(std::vector<std::uint64_t> addresses)
    : addresses_(std::move(addresses)) {
  if (addresses_.empty()) {
    throw std::invalid_argument("TraceReplay: empty trace");
  }
}

Result<TraceReplay> TraceReplay::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::not_found("trace '" + path +
                             "' cannot be opened (does it exist?)");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::data_loss("trace '" + path + "' is empty");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kMagic) {
    return Status::corruption("'" + path + "' is not a trace file " +
                              "(expected header '" + kMagic + "')");
  }
  std::vector<std::uint64_t> addresses;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::size_t pos = 0;
    std::uint64_t value = 0;
    try {
      value = std::stoull(line, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != line.size()) {
      return Status::corruption("trace '" + path + "', line " +
                                std::to_string(line_number) +
                                ": malformed address '" + line + "'");
    }
    addresses.push_back(value);
  }
  if (addresses.empty()) {
    return Status::corruption("trace '" + path + "' holds no addresses");
  }
  return TraceReplay(std::move(addresses));
}

LogicalLineAddr TraceReplay::next(Rng& /*rng*/, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("TraceReplay: empty address space");
  }
  if (cursor_ >= addresses_.size()) cursor_ = 0;
  return LogicalLineAddr{addresses_[cursor_++] % user_lines};
}

}  // namespace nvmsec
