#include "attack/trace.h"

#include <fstream>
#include <stdexcept>

namespace nvmsec {

namespace {
constexpr const char* kMagic = "# maxwe-trace v1";
}

TraceRecorder::TraceRecorder(std::unique_ptr<Attack> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("TraceRecorder: inner attack is null");
  }
}

LogicalLineAddr TraceRecorder::next(Rng& rng, std::uint64_t user_lines) {
  const LogicalLineAddr la = inner_->next(rng, user_lines);
  addresses_.push_back(la.value());
  return la;
}

void TraceRecorder::reset() {
  inner_->reset();
  addresses_.clear();
}

void TraceRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceRecorder::save: cannot open " + path);
  }
  out << kMagic << "\n";
  for (std::uint64_t a : addresses_) out << a << "\n";
  if (!out) {
    throw std::runtime_error("TraceRecorder::save: write failed for " + path);
  }
}

TraceReplay::TraceReplay(std::vector<std::uint64_t> addresses)
    : addresses_(std::move(addresses)) {
  if (addresses_.empty()) {
    throw std::invalid_argument("TraceReplay: empty trace");
  }
}

TraceReplay TraceReplay::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("TraceReplay: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("TraceReplay: empty file " + path);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kMagic) {
    throw std::runtime_error("TraceReplay: bad header in " + path);
  }
  std::vector<std::uint64_t> addresses;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::size_t pos = 0;
    std::uint64_t value = 0;
    try {
      value = std::stoull(line, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != line.size()) {
      throw std::runtime_error("TraceReplay: malformed address at line " +
                               std::to_string(line_number) + " of " + path);
    }
    addresses.push_back(value);
  }
  return TraceReplay(std::move(addresses));
}

LogicalLineAddr TraceReplay::next(Rng& /*rng*/, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("TraceReplay: empty address space");
  }
  if (cursor_ >= addresses_.size()) cursor_ = 0;
  return LogicalLineAddr{addresses_[cursor_++] % user_lines};
}

}  // namespace nvmsec
