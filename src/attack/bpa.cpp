#include "attack/bpa.h"

#include <stdexcept>

namespace nvmsec {

BirthdayParadoxAttack::BirthdayParadoxAttack(std::uint64_t burst_length)
    : burst_length_(burst_length) {
  if (burst_length == 0) {
    throw std::invalid_argument("BPA: burst_length must be > 0");
  }
}

LogicalLineAddr BirthdayParadoxAttack::next(Rng& rng,
                                            std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("BPA: empty address space");
  }
  if (remaining_in_burst_ == 0 || target_.value() >= user_lines) {
    target_ = LogicalLineAddr{rng.uniform_u64(user_lines)};
    remaining_in_burst_ = burst_length_;
  }
  --remaining_in_burst_;
  return target_;
}

AttackRun BirthdayParadoxAttack::next_run(Rng& rng, std::uint64_t user_lines,
                                          std::uint64_t max_len) {
  if (user_lines == 0) {
    throw std::invalid_argument("BPA: empty address space");
  }
  if (max_len == 0) {
    throw std::invalid_argument("BPA: next_run needs max_len >= 1");
  }
  if (remaining_in_burst_ == 0 || target_.value() >= user_lines) {
    target_ = LogicalLineAddr{rng.uniform_u64(user_lines)};
    remaining_in_burst_ = burst_length_;
  }
  const std::uint64_t n = std::min(max_len, remaining_in_burst_);
  remaining_in_burst_ -= n;
  return AttackRun{target_, n, 0};
}

void BirthdayParadoxAttack::reset() {
  remaining_in_burst_ = 0;
  target_ = LogicalLineAddr::invalid();
}

void BirthdayParadoxAttack::save_state(StateWriter& w) const {
  w.u64(remaining_in_burst_);
  w.u64(target_.value());
}

Status BirthdayParadoxAttack::load_state(StateReader& r) {
  std::uint64_t remaining = 0, target = 0;
  if (Status st = r.u64(remaining); !st.ok()) return st;
  if (Status st = r.u64(target); !st.ok()) return st;
  if (remaining > burst_length_) {
    return Status::corruption("bpa state: burst remainder exceeds length");
  }
  remaining_in_burst_ = remaining;
  target_ = LogicalLineAddr{target};
  return Status{};
}

}  // namespace nvmsec
