#include "attack/mixed.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace nvmsec {

namespace {

std::uint64_t parse_writes(const std::string& tok) {
  if (tok.empty()) {
    throw std::invalid_argument("mixed phases: empty write budget");
  }
  std::uint64_t mult = 1;
  std::string digits = tok;
  switch (tok.back()) {
    case 'k':
    case 'K':
      mult = 1000;
      digits.pop_back();
      break;
    case 'm':
    case 'M':
      mult = 1000000;
      digits.pop_back();
      break;
    case 'g':
    case 'G':
      mult = 1000000000;
      digits.pop_back();
      break;
    default:
      break;
  }
  if (digits.empty()) {
    throw std::invalid_argument("mixed phases: bad write budget '" + tok + "'");
  }
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("mixed phases: bad write budget '" + tok +
                                  "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value * mult;
}

}  // namespace

std::vector<MixedPhaseSpec> parse_mixed_phases(const std::string& spec) {
  std::vector<MixedPhaseSpec> phases;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    const std::size_t colon = entry.find(':');
    if (entry.empty() || colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("mixed phases: bad entry '" + entry +
                                  "' (want name:writes)");
    }
    MixedPhaseSpec p;
    p.attack = entry.substr(0, colon);
    p.writes = parse_writes(entry.substr(colon + 1));
    phases.push_back(std::move(p));
    pos = comma + 1;
  }
  if (phases.empty()) {
    throw std::invalid_argument("mixed phases: empty schedule");
  }
  for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
    if (phases[i].writes == 0) {
      throw std::invalid_argument(
          "mixed phases: unbounded phase (writes 0) must be last");
    }
  }
  return phases;
}

MixedAttack::MixedAttack(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw std::invalid_argument("MixedAttack: empty schedule");
  }
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (!phases_[i].attack) {
      throw std::invalid_argument("MixedAttack: null phase generator");
    }
    if (phases_[i].writes == 0 && i + 1 < phases_.size()) {
      throw std::invalid_argument(
          "MixedAttack: unbounded phase must be last");
    }
    phase_names_.push_back(phases_[i].attack->name());
    if (phases_[i].attack->batch_contract() > contract_) {
      contract_ = phases_[i].attack->batch_contract();
    }
  }
  cyclic_ = phases_.back().writes != 0;
}

std::uint64_t MixedAttack::phase_remaining() const {
  const Phase& p = phases_[phase_idx_];
  if (p.writes == 0) return std::numeric_limits<std::uint64_t>::max();
  return p.writes - phase_written_;
}

void MixedAttack::advance_if_exhausted() {
  while (phases_[phase_idx_].writes != 0 &&
         phase_written_ >= phases_[phase_idx_].writes) {
    phase_written_ = 0;
    if (++phase_idx_ == phases_.size()) {
      // Only reachable when the last phase is bounded (cyclic schedule).
      phase_idx_ = 0;
    }
  }
}

LogicalLineAddr MixedAttack::next(Rng& rng, std::uint64_t user_lines) {
  advance_if_exhausted();
  ++phase_written_;
  return phases_[phase_idx_].attack->next(rng, user_lines);
}

AttackRun MixedAttack::next_run(Rng& rng, std::uint64_t user_lines,
                                std::uint64_t max_len) {
  advance_if_exhausted();
  const std::uint64_t cap = std::min(max_len, phase_remaining());
  AttackRun run = phases_[phase_idx_].attack->next_run(rng, user_lines, cap);
  phase_written_ += run.count;
  return run;
}

bool MixedAttack::next_counts(Rng& rng, std::uint64_t user_lines,
                              std::uint64_t n_writes, WriteCountVector& out) {
  advance_if_exhausted();
  const std::uint64_t n = std::min(n_writes, phase_remaining());
  if (!phases_[phase_idx_].attack->next_counts(rng, user_lines, n, out)) {
    return false;
  }
  phase_written_ += n;
  return true;
}

void MixedAttack::reset() {
  for (auto& p : phases_) p.attack->reset();
  phase_idx_ = 0;
  phase_written_ = 0;
}

void MixedAttack::save_state(StateWriter& w) const {
  w.u64(static_cast<std::uint64_t>(phase_idx_));
  w.u64(phase_written_);
  for (const auto& p : phases_) p.attack->save_state(w);
}

Status MixedAttack::load_state(StateReader& r) {
  std::uint64_t idx = 0, written = 0;
  if (Status st = r.u64(idx); !st.ok()) return st;
  if (Status st = r.u64(written); !st.ok()) return st;
  if (idx >= phases_.size()) {
    return Status::corruption("mixed attack state: phase index out of range");
  }
  if (phases_[idx].writes != 0 && written > phases_[idx].writes) {
    return Status::corruption("mixed attack state: phase position overflow");
  }
  for (auto& p : phases_) {
    if (Status st = p.attack->load_state(r); !st.ok()) return st;
  }
  phase_idx_ = static_cast<std::size_t>(idx);
  phase_written_ = written;
  return Status{};
}

}  // namespace nvmsec
