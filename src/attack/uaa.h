// Uniform Address Attack (UAA), the paper's attack model (§3.1).
//
// "UAA performs one write operation to each line one by one and repeats
// such a procedure until many of the memory lines are worn out." The
// attacker needs no endurance information; the sweep alone guarantees every
// line — including the weakest — receives the same write rate.
#pragma once

#include "attack/attack.h"

namespace nvmsec {

class UniformAddressAttack final : public Attack {
 public:
  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  /// Emits the rest of the current sweep pass (up to max_len) as one
  /// stride-1 run; bit-identical to per-write next() calls (no RNG use).
  AttackRun next_run(Rng& rng, std::uint64_t user_lines,
                     std::uint64_t max_len) override;
  [[nodiscard]] std::string name() const override { return "uaa"; }
  void reset() override { cursor_ = 0; }

  void save_state(StateWriter& w) const override { w.u64(cursor_); }
  [[nodiscard]] Status load_state(StateReader& r) override {
    return r.u64(cursor_);
  }

 private:
  std::uint64_t cursor_{0};
};

}  // namespace nvmsec
