#include "attack/hotspot.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

HotspotAttack::HotspotAttack(std::uint64_t working_set)
    : working_set_(working_set) {
  if (working_set == 0) {
    throw std::invalid_argument("HotspotAttack: working_set must be > 0");
  }
}

LogicalLineAddr HotspotAttack::next(Rng& /*rng*/, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("HotspotAttack: empty address space");
  }
  const std::uint64_t set = std::min(working_set_, user_lines);
  if (cursor_ >= set) cursor_ = 0;
  return LogicalLineAddr{cursor_++};
}

bool HotspotAttack::next_counts(Rng& /*rng*/, std::uint64_t user_lines,
                                std::uint64_t n_writes,
                                WriteCountVector& out) {
  if (user_lines == 0) {
    throw std::invalid_argument("HotspotAttack: empty address space");
  }
  const std::uint64_t set = std::min(working_set_, user_lines);
  if (cursor_ >= set) cursor_ = 0;
  // n_writes round-robin steps from the cursor: the first n_writes % set
  // offsets after it get ceil(n/set) writes, the rest floor(n/set) — the
  // exact multiset the per-write loop would produce.
  const std::uint64_t base = n_writes / set;
  const std::uint64_t extra = n_writes % set;
  for (std::uint64_t i = 0; i < set; ++i) {
    const WriteCount count = base + (i < extra ? 1 : 0);
    if (count > 0) {
      out.append((cursor_ + i) % set, count);
    }
  }
  cursor_ = (cursor_ + extra) % set;
  return true;
}

}  // namespace nvmsec
