#include "attack/hotspot.h"

#include <algorithm>
#include <stdexcept>

namespace nvmsec {

HotspotAttack::HotspotAttack(std::uint64_t working_set)
    : working_set_(working_set) {
  if (working_set == 0) {
    throw std::invalid_argument("HotspotAttack: working_set must be > 0");
  }
}

LogicalLineAddr HotspotAttack::next(Rng& /*rng*/, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("HotspotAttack: empty address space");
  }
  const std::uint64_t set = std::min(working_set_, user_lines);
  if (cursor_ >= set) cursor_ = 0;
  return LogicalLineAddr{cursor_++};
}

}  // namespace nvmsec
