#include "attack/uaa.h"

#include <stdexcept>

namespace nvmsec {

LogicalLineAddr UniformAddressAttack::next(Rng& /*rng*/,
                                           std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("UAA: empty address space");
  }
  // The space can shrink between calls (PCD); wrap the cursor so the sweep
  // stays uniform over whatever space remains.
  if (cursor_ >= user_lines) cursor_ = 0;
  return LogicalLineAddr{cursor_++};
}

}  // namespace nvmsec
