#include "attack/uaa.h"

#include <stdexcept>

namespace nvmsec {

LogicalLineAddr UniformAddressAttack::next(Rng& /*rng*/,
                                           std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("UAA: empty address space");
  }
  // The space can shrink between calls (PCD); wrap the cursor so the sweep
  // stays uniform over whatever space remains.
  if (cursor_ >= user_lines) cursor_ = 0;
  return LogicalLineAddr{cursor_++};
}

AttackRun UniformAddressAttack::next_run(Rng& /*rng*/,
                                         std::uint64_t user_lines,
                                         std::uint64_t max_len) {
  if (user_lines == 0) {
    throw std::invalid_argument("UAA: empty address space");
  }
  if (max_len == 0) {
    throw std::invalid_argument("UAA: next_run needs max_len >= 1");
  }
  if (cursor_ >= user_lines) cursor_ = 0;
  // The run ends at the sweep boundary so the wrap happens exactly where
  // the per-write path would wrap it.
  const std::uint64_t n = std::min(max_len, user_lines - cursor_);
  const AttackRun run{LogicalLineAddr{cursor_}, n, 1};
  cursor_ += n;
  return run;
}

}  // namespace nvmsec
