#include "attack/zipf.h"

#include <cmath>
#include <stdexcept>

namespace nvmsec {

namespace {

std::vector<double> zipf_weights(double s, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("ZipfWorkload: max_lines == 0");
  if (s < 0) throw std::invalid_argument("ZipfWorkload: skew must be >= 0");
  std::vector<double> w(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  return w;
}

}  // namespace

ZipfWorkload::ZipfWorkload(double s, std::uint64_t max_lines,
                           std::uint64_t placement_seed)
    : s_(s), max_lines_(max_lines), ranks_(zipf_weights(s, max_lines)) {
  if (max_lines > UINT32_MAX) {
    throw std::invalid_argument("ZipfWorkload: max_lines exceeds 2^32");
  }
  placement_.resize(max_lines);
  for (std::uint64_t i = 0; i < max_lines; ++i) {
    placement_[i] = static_cast<std::uint32_t>(i);
  }
  Rng placement_rng(placement_seed);
  placement_rng.shuffle(placement_);
}

LogicalLineAddr ZipfWorkload::next(Rng& rng, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("ZipfWorkload: empty address space");
  }
  // Draw a rank, scatter it; fold into the current space if it shrank.
  const std::uint64_t addr = placement_[ranks_.sample(rng)];
  return LogicalLineAddr{addr % user_lines};
}

std::unique_ptr<Attack> make_zipf(double s, std::uint64_t max_lines,
                                  std::uint64_t placement_seed) {
  return std::make_unique<ZipfWorkload>(s, max_lines, placement_seed);
}

}  // namespace nvmsec
