#include "attack/zipf.h"

#include <bit>
#include <cmath>
#include <list>
#include <mutex>
#include <stdexcept>

namespace nvmsec {

namespace {

std::vector<double> zipf_weights(double s, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("ZipfWorkload: max_lines == 0");
  if (s < 0) throw std::invalid_argument("ZipfWorkload: skew must be >= 0");
  std::vector<double> w(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  return w;
}

/// LRU cache of immutable ZipfDist instances (endurance-cache idiom: mutex
/// + MRU-first list with linear scan — entries number in the tens and a
/// lookup is orders of magnitude cheaper than the build it replaces).
class ZipfDistCache {
 public:
  std::shared_ptr<const ZipfDist> get_or_build(double s,
                                               std::uint64_t max_lines) {
    const Key key{std::bit_cast<std::uint64_t>(s), max_lines};
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key == key) {
        ++hits_;
        entries_.splice(entries_.begin(), entries_, it);
        return entries_.front().dist;
      }
    }
    ++misses_;
    auto dist = std::make_shared<const ZipfDist>(zipf_weights(s, max_lines));
    entries_.push_front(Entry{key, dist});
    while (entries_.size() > kMaxEntries) entries_.pop_back();
    return dist;
  }

  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  static ZipfDistCache& global() {
    static ZipfDistCache cache;
    return cache;
  }

 private:
  struct Key {
    std::uint64_t skew_bits;  // bit_cast'd double: exact-value keying
    std::uint64_t max_lines;
    bool operator==(const Key&) const = default;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const ZipfDist> dist;
  };

  /// Each entry holds ~3 doubles per rank; 16 distinct (skew, size) pairs
  /// is plenty for any sweep while bounding memory.
  static constexpr std::size_t kMaxEntries = 16;

  mutable std::mutex mutex_;
  std::list<Entry> entries_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

}  // namespace

std::shared_ptr<const ZipfDist> zipf_dist(double s, std::uint64_t max_lines) {
  return ZipfDistCache::global().get_or_build(s, max_lines);
}

std::uint64_t zipf_dist_cache_hits() { return ZipfDistCache::global().hits(); }

std::uint64_t zipf_dist_cache_misses() {
  return ZipfDistCache::global().misses();
}

std::vector<double> zipf_address_rates(double s, std::uint64_t max_lines,
                                       std::uint64_t placement_seed) {
  const auto dist = zipf_dist(s, max_lines);
  // Replay the same placement shuffle the workload instance performs.
  std::vector<std::uint32_t> placement(max_lines);
  for (std::uint64_t i = 0; i < max_lines; ++i) {
    placement[i] = static_cast<std::uint32_t>(i);
  }
  Rng placement_rng(placement_seed);
  placement_rng.shuffle(placement);
  std::vector<double> rates(max_lines, 0.0);
  for (std::uint64_t k = 0; k < max_lines; ++k) {
    rates[placement[k]] += dist->ranks.probability(k);
  }
  return rates;
}

ZipfWorkload::ZipfWorkload(double s, std::uint64_t max_lines,
                           std::uint64_t placement_seed)
    : s_(s), max_lines_(max_lines), dist_(zipf_dist(s, max_lines)) {
  if (max_lines > UINT32_MAX) {
    throw std::invalid_argument("ZipfWorkload: max_lines exceeds 2^32");
  }
  placement_.resize(max_lines);
  for (std::uint64_t i = 0; i < max_lines; ++i) {
    placement_[i] = static_cast<std::uint32_t>(i);
  }
  Rng placement_rng(placement_seed);
  placement_rng.shuffle(placement_);
}

LogicalLineAddr ZipfWorkload::next(Rng& rng, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("ZipfWorkload: empty address space");
  }
  // Draw a rank, scatter it; fold into the current space if it shrank.
  const std::uint64_t addr = placement_[dist_->ranks.sample(rng)];
  return LogicalLineAddr{addr % user_lines};
}

bool ZipfWorkload::next_counts(Rng& rng, std::uint64_t user_lines,
                               std::uint64_t n_writes, WriteCountVector& out) {
  if (user_lines == 0) {
    throw std::invalid_argument("ZipfWorkload: empty address space");
  }
  // Draw rank counts, then map each rank through the placement scatter and
  // the shrink fold, rewriting the just-appended entries in place. Distinct
  // ranks can fold onto one address; duplicate entries are fine downstream.
  const std::size_t first = out.size();
  dist_->rank_counts.draw(rng, n_writes, out);
  for (std::size_t i = first; i < out.size(); ++i) {
    out.addrs[i] = placement_[out.addrs[i]] % user_lines;
  }
  return true;
}

std::unique_ptr<Attack> make_zipf(double s, std::uint64_t max_lines,
                                  std::uint64_t placement_seed) {
  return std::make_unique<ZipfWorkload>(s, max_lines, placement_seed);
}

}  // namespace nvmsec
