#include "attack/random_uniform.h"

#include <stdexcept>

#include "attack/bpa.h"
#include "attack/hotspot.h"
#include "attack/uaa.h"

namespace nvmsec {

LogicalLineAddr RandomUniformAttack::next(Rng& rng, std::uint64_t user_lines) {
  if (user_lines == 0) {
    throw std::invalid_argument("RandomUniformAttack: empty address space");
  }
  return LogicalLineAddr{rng.uniform_u64(user_lines)};
}

bool RandomUniformAttack::next_counts(Rng& rng, std::uint64_t user_lines,
                                      std::uint64_t n_writes,
                                      WriteCountVector& out) {
  if (user_lines == 0) {
    throw std::invalid_argument("RandomUniformAttack: empty address space");
  }
  multinomial_uniform(rng, n_writes, user_lines, out);
  return true;
}

const char* batch_contract_name(BatchContract contract) {
  switch (contract) {
    case BatchContract::kBitIdentical:
      return "bit_identical";
    case BatchContract::kMultisetExact:
      return "multiset_exact";
    case BatchContract::kDistributionEquivalent:
      return "distribution_equivalent";
  }
  throw std::invalid_argument("batch_contract_name: unknown contract");
}

BatchContract attack_batch_contract(const std::string& name) {
  if (name == "uaa" || name == "bpa" || name == "trace") {
    return BatchContract::kBitIdentical;
  }
  if (name == "hotspot") return BatchContract::kMultisetExact;
  if (name == "random" || name == "zipf") {
    return BatchContract::kDistributionEquivalent;
  }
  throw std::invalid_argument("attack_batch_contract: unknown attack '" +
                              name + "'");
}

std::unique_ptr<Attack> make_uaa() {
  return std::make_unique<UniformAddressAttack>();
}

std::unique_ptr<Attack> make_bpa(std::uint64_t burst_length) {
  return std::make_unique<BirthdayParadoxAttack>(burst_length);
}

std::unique_ptr<Attack> make_hotspot(std::uint64_t working_set) {
  return std::make_unique<HotspotAttack>(working_set);
}

std::unique_ptr<Attack> make_random_uniform() {
  return std::make_unique<RandomUniformAttack>();
}

std::unique_ptr<Attack> make_attack(const std::string& name) {
  if (name == "uaa") return make_uaa();
  if (name == "bpa") return make_bpa();
  if (name == "hotspot") return make_hotspot();
  if (name == "random") return make_random_uniform();
  throw std::invalid_argument("make_attack: unknown attack '" + name + "'");
}

}  // namespace nvmsec
