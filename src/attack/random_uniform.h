// Uniform-random attack: every write targets an independently drawn random
// logical address. In expectation this produces the same per-line write
// rate as UAA's deterministic sweep; we use it in tests to confirm the
// simulator's UAA results are a property of uniformity, not of the sweep
// order, and it doubles as a generic "no locality" workload for examples.
#pragma once

#include "attack/attack.h"

namespace nvmsec {

class RandomUniformAttack final : public Attack {
 public:
  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  [[nodiscard]] std::string name() const override { return "random"; }
  void reset() override {}
};

}  // namespace nvmsec
