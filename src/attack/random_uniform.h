// Uniform-random attack: every write targets an independently drawn random
// logical address. In expectation this produces the same per-line write
// rate as UAA's deterministic sweep; we use it in tests to confirm the
// simulator's UAA results are a property of uniformity, not of the sweep
// order, and it doubles as a generic "no locality" workload for examples.
#pragma once

#include "attack/attack.h"

namespace nvmsec {

class RandomUniformAttack final : public Attack {
 public:
  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;

  /// Batched draws are Multinomial(n; uniform) count vectors from the
  /// sampling substream — same stationary distribution as next(), different
  /// stream, so fastpath runs are distribution-equivalent, not bit-equal.
  [[nodiscard]] BatchContract batch_contract() const override {
    return BatchContract::kDistributionEquivalent;
  }
  bool next_counts(Rng& rng, std::uint64_t user_lines, std::uint64_t n_writes,
                   WriteCountVector& out) override;

  [[nodiscard]] std::string name() const override { return "random"; }
  void reset() override {}
};

}  // namespace nvmsec
