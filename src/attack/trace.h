// Trace recording and replay.
//
// The paper's NVMsim generates requests directly from attack models to
// avoid workload files (§5.1) — and so does this simulator. But a usable
// tool also needs the other direction: record any generator's address
// stream for inspection/sharing, and replay an externally produced trace
// (e.g. from a real application run) through the same pipeline. Format:
//
//   # maxwe-trace v1
//   <decimal logical address>
//   <decimal logical address>
//   ...
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"

namespace nvmsec {

/// Wraps another attack and tees every generated address into a buffer
/// that can be saved as a trace file.
class TraceRecorder final : public Attack {
 public:
  explicit TraceRecorder(std::unique_ptr<Attack> inner);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+record";
  }
  void reset() override;

  [[nodiscard]] const std::vector<std::uint64_t>& recorded() const {
    return addresses_;
  }
  void save(const std::string& path) const;

 private:
  std::unique_ptr<Attack> inner_;
  std::vector<std::uint64_t> addresses_;
};

/// Replays a trace, looping when it is exhausted. Addresses outside the
/// current space are folded with modulo (the space can shrink under PCD).
class TraceReplay final : public Attack {
 public:
  explicit TraceReplay(std::vector<std::uint64_t> addresses);

  static TraceReplay from_file(const std::string& path);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  [[nodiscard]] std::string name() const override { return "trace"; }
  void reset() override { cursor_ = 0; }

  [[nodiscard]] std::size_t length() const { return addresses_.size(); }

 private:
  std::vector<std::uint64_t> addresses_;
  std::size_t cursor_{0};
};

}  // namespace nvmsec
