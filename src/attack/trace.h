// Trace recording and replay.
//
// The paper's NVMsim generates requests directly from attack models to
// avoid workload files (§5.1) — and so does this simulator. But a usable
// tool also needs the other direction: record any generator's address
// stream for inspection/sharing, and replay an externally produced trace
// (e.g. from a real application run) through the same pipeline. Format:
//
//   # maxwe-trace v1
//   <decimal logical address>
//   <decimal logical address>
//   ...
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"

namespace nvmsec {

/// Wraps another attack and tees every generated address into a buffer
/// that can be saved as a trace file.
class TraceRecorder final : public Attack {
 public:
  explicit TraceRecorder(std::unique_ptr<Attack> inner);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+record";
  }
  void reset() override;

  [[nodiscard]] const std::vector<std::uint64_t>& recorded() const {
    return addresses_;
  }
  /// Atomically persist the recording (temp file + rename); io_error on
  /// open/write failure.
  [[nodiscard]] Status save(const std::string& path) const;

 private:
  std::unique_ptr<Attack> inner_;
  std::vector<std::uint64_t> addresses_;
};

/// Replays a trace, looping when it is exhausted. Addresses outside the
/// current space are folded with modulo (the space can shrink under PCD).
class TraceReplay final : public Attack {
 public:
  explicit TraceReplay(std::vector<std::uint64_t> addresses);

  /// Load a trace file. Errors: not_found (missing file), data_loss
  /// (empty file), corruption (bad header, malformed or missing
  /// addresses) — each naming the offending path and line.
  static Result<TraceReplay> from_file(const std::string& path);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  [[nodiscard]] std::string name() const override { return "trace"; }
  void reset() override { cursor_ = 0; }

  [[nodiscard]] std::size_t length() const { return addresses_.size(); }

  void save_state(StateWriter& w) const override {
    w.u64(static_cast<std::uint64_t>(cursor_));
  }
  [[nodiscard]] Status load_state(StateReader& r) override {
    std::uint64_t cursor = 0;
    if (Status st = r.u64(cursor); !st.ok()) return st;
    if (!addresses_.empty() && cursor >= addresses_.size()) {
      return Status::corruption("trace replay cursor out of range");
    }
    cursor_ = static_cast<std::size_t>(cursor);
    return Status{};
  }

 private:
  std::vector<std::uint64_t> addresses_;
  std::size_t cursor_{0};
};

}  // namespace nvmsec
