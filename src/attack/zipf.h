// Zipfian workload: a benign-application proxy, not an attack.
//
// The wear-leveling baselines exist because real workloads have skewed
// cold/hot locality; UAA's whole point is to *remove* that skew (§3.3.1).
// A Zipf(s) address stream gives the examples and tests a representative
// "normal program" against which the wear levelers visibly help — the
// contrast that makes UAA's flatness meaningful.
#pragma once

#include <memory>
#include <vector>

#include "attack/attack.h"
#include "util/alias_table.h"

namespace nvmsec {

class ZipfWorkload final : public Attack {
 public:
  /// P(rank k) proportional to 1/k^s over `max_lines` ranks; rank-to-address
  /// assignment is a fixed pseudo-random permutation so the hot set is
  /// scattered across the address space (seeded by `placement_seed`).
  ZipfWorkload(double s, std::uint64_t max_lines,
               std::uint64_t placement_seed = 1);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  [[nodiscard]] std::string name() const override { return "zipf"; }
  void reset() override {}

  [[nodiscard]] double skew() const { return s_; }

 private:
  double s_;
  std::uint64_t max_lines_;
  AliasTable ranks_;
  /// rank -> logical address scatter.
  std::vector<std::uint32_t> placement_;
};

std::unique_ptr<Attack> make_zipf(double s, std::uint64_t max_lines,
                                  std::uint64_t placement_seed = 1);

}  // namespace nvmsec
