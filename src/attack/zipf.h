// Zipfian workload: a benign-application proxy, not an attack.
//
// The wear-leveling baselines exist because real workloads have skewed
// cold/hot locality; UAA's whole point is to *remove* that skew (§3.3.1).
// A Zipf(s) address stream gives the examples and tests a representative
// "normal program" against which the wear levelers visibly help — the
// contrast that makes UAA's flatness meaningful.
#pragma once

#include <memory>
#include <vector>

#include "attack/attack.h"
#include "util/alias_table.h"
#include "util/multinomial.h"

namespace nvmsec {

/// Immutable sampling machinery for a Zipf(s) rank distribution over n
/// ranks: the raw 1/k^s weights, the per-draw alias table, and the batched
/// multinomial splitter. Building all three is O(n) with large constants
/// (a pow() per rank), so instances are shared: a spare-fraction sweep over
/// N seeds would otherwise rebuild the identical tables 7·N times. All
/// members are read-only after construction and safe to share across
/// threads.
struct ZipfDist {
  std::vector<double> weights;
  AliasTable ranks;
  MultinomialSampler rank_counts;

  explicit ZipfDist(std::vector<double> w)
      : weights(std::move(w)), ranks(weights), rank_counts(weights) {}
};

/// Process-wide LRU cache of Zipf distributions keyed by (skew, max_lines)
/// — the endurance-cache idiom. The per-instance placement permutation is
/// NOT cached (it depends on the placement seed and is a cheap shuffle).
/// Thread-safe; returns a shared immutable instance.
std::shared_ptr<const ZipfDist> zipf_dist(double s, std::uint64_t max_lines);

/// Cache telemetry (for tests).
std::uint64_t zipf_dist_cache_hits();
std::uint64_t zipf_dist_cache_misses();

/// Per-address stationary write rates of the Zipf workload over an address
/// space of `max_lines` lines: rates[a] = sum of P(rank k) over ranks the
/// placement permutation maps to address a. Sums to 1. Used by the
/// event-driven engine to bulk-advance a zipf phase analytically.
std::vector<double> zipf_address_rates(double s, std::uint64_t max_lines,
                                       std::uint64_t placement_seed = 1);

class ZipfWorkload final : public Attack {
 public:
  /// P(rank k) proportional to 1/k^s over `max_lines` ranks; rank-to-address
  /// assignment is a fixed pseudo-random permutation so the hot set is
  /// scattered across the address space (seeded by `placement_seed`).
  ZipfWorkload(double s, std::uint64_t max_lines,
               std::uint64_t placement_seed = 1);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;

  /// Batched draws are Multinomial(n; zipf ranks) count vectors scattered
  /// through the same placement permutation next() uses, drawn from the
  /// sampling substream: distribution-equivalent to the per-write stream.
  [[nodiscard]] BatchContract batch_contract() const override {
    return BatchContract::kDistributionEquivalent;
  }
  bool next_counts(Rng& rng, std::uint64_t user_lines, std::uint64_t n_writes,
                   WriteCountVector& out) override;

  [[nodiscard]] std::string name() const override { return "zipf"; }
  void reset() override {}

  [[nodiscard]] double skew() const { return s_; }

 private:
  double s_;
  std::uint64_t max_lines_;
  std::shared_ptr<const ZipfDist> dist_;
  /// rank -> logical address scatter.
  std::vector<std::uint32_t> placement_;
};

std::unique_ptr<Attack> make_zipf(double s, std::uint64_t max_lines,
                                  std::uint64_t placement_seed = 1);

}  // namespace nvmsec
