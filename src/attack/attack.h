// Attack model interface (paper §3).
//
// NVMsim "generates the read/write requests according to the attack models,
// thus avoiding reading memory requests from the workload files" (§5.1) —
// an attack is therefore just a generator of logical line addresses. The
// address space bound is passed per call because some spare schemes (PCD)
// shrink the usable space as lines fail.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/multinomial.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

/// RNG-stream contract: how an attack's batched draws relate to the exact
/// per-write address stream. This is a *declared* property the equivalence
/// test enforces — the engine uses it to decide which batching paths are
/// legal, and the fleet fingerprint uses it to refuse resume across runs
/// whose sampling contracts are incompatible.
enum class BatchContract : std::uint8_t {
  /// Batched runs replay the per-write stream exactly: same addresses, same
  /// order, same RNG consumption (UAA sweeps, BPA bursts, traces). Fastpath
  /// and per-write runs are byte-identical end to end.
  kBitIdentical = 0,
  /// next_counts() emits deterministically the same per-line write totals
  /// the per-write stream would issue over the chunk, but the engine may
  /// apply them out of order within the chunk (hotspot's round-robin). No
  /// RNG involved; cross-mode results agree up to within-chunk reordering.
  kMultisetExact = 1,
  /// next_counts() draws a Multinomial(chunk; p) count vector over the same
  /// stationary per-line distribution the per-write stream samples, from a
  /// dedicated substream (zipf, random). Fastpath and per-write runs are
  /// equal in distribution — lifetime/wear statistics match within sampling
  /// noise — and each mode is independently reproducible from the seed, but
  /// trajectories are not bit-comparable across modes.
  kDistributionEquivalent = 2,
};

/// Canonical token for JSON output ("bit_identical", "multiset_exact",
/// "distribution_equivalent").
const char* batch_contract_name(BatchContract contract);

/// Contract of the attack registered under `name` in make_attack (plus
/// "zipf", which experiment configs construct directly). Throws
/// std::invalid_argument for unknown names.
BatchContract attack_batch_contract(const std::string& name);

/// A run of consecutive writes emitted as one unit by Attack::next_run:
/// `count` writes starting at `start`, with logical addresses advancing by
/// `stride` per write. stride 0 repeats one address (a BPA burst segment);
/// stride 1 sweeps sequentially (a UAA sweep segment).
struct AttackRun {
  LogicalLineAddr start{LogicalLineAddr::invalid()};
  std::uint64_t count{1};
  std::uint64_t stride{0};

  [[nodiscard]] LogicalLineAddr addr_at(std::uint64_t i) const {
    return LogicalLineAddr{start.value() + i * stride};
  }
};

class Attack {
 public:
  virtual ~Attack() = default;

  /// Produce the next logical address to write, strictly < user_lines.
  virtual LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) = 0;

  /// Batched form of next(): emit up to `max_len` (>= 1) upcoming writes in
  /// one run. The contract is strict bit-equivalence with the per-write
  /// path — consuming a run of length n must leave the attack state *and*
  /// the RNG stream exactly as n successive next() calls would, and every
  /// address in the run must be strictly < user_lines. Attacks whose
  /// addresses are a deterministic function of their cursor (UAA's sweep,
  /// BPA's burst remainder) override this to emit whole segments; attacks
  /// that draw per write (zipf, hotspot, random) keep this default so their
  /// RNG consumption is untouched.
  virtual AttackRun next_run(Rng& rng, std::uint64_t user_lines,
                             std::uint64_t max_len) {
    (void)max_len;
    return AttackRun{next(rng, user_lines), 1, 0};
  }

  /// Which equivalence class this attack's batched draws fall into. The
  /// engine only takes the count-vector path for contracts that allow it
  /// (anything but kBitIdentical) and only when next_counts() is overridden.
  [[nodiscard]] virtual BatchContract batch_contract() const {
    return BatchContract::kBitIdentical;
  }

  /// Count-vector form of the next `n_writes` writes: append (address,
  /// count) entries whose counts sum to exactly `n_writes`, every address
  /// strictly < user_lines. `rng` is the dedicated batched-sampling
  /// substream (NOT the simulation stream — the per-write RNG position is
  /// untouched by a counts draw). Distribution-equivalent attacks draw the
  /// multinomial from it; multiset-exact attacks ignore it. Returns false
  /// when the attack has no counts form (the default), in which case the
  /// engine falls back to next_run().
  virtual bool next_counts(Rng& rng, std::uint64_t user_lines,
                           std::uint64_t n_writes, WriteCountVector& out) {
    (void)rng;
    (void)user_lines;
    (void)n_writes;
    (void)out;
    return false;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Restore the attack's initial state (e.g. UAA's sweep cursor).
  virtual void reset() = 0;

  /// Checkpointing: stateful attacks (sweep cursors, burst positions)
  /// serialize their position; stateless ones write nothing — all their
  /// randomness lives in the simulation Rng, which is saved separately.
  virtual void save_state(StateWriter& w) const { (void)w; }
  [[nodiscard]] virtual Status load_state(StateReader& r) {
    (void)r;
    return Status{};
  }
};

/// Named constructors for the attacks the paper evaluates, plus extras used
/// by tests and examples.
std::unique_ptr<Attack> make_uaa();
std::unique_ptr<Attack> make_bpa(std::uint64_t burst_length = 1024);
std::unique_ptr<Attack> make_hotspot(std::uint64_t working_set = 1);
std::unique_ptr<Attack> make_random_uniform();

/// Factory by name ("uaa", "bpa", "hotspot", "random"); throws
/// std::invalid_argument for unknown names.
std::unique_ptr<Attack> make_attack(const std::string& name);

}  // namespace nvmsec
