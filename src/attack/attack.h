// Attack model interface (paper §3).
//
// NVMsim "generates the read/write requests according to the attack models,
// thus avoiding reading memory requests from the workload files" (§5.1) —
// an attack is therefore just a generator of logical line addresses. The
// address space bound is passed per call because some spare schemes (PCD)
// shrink the usable space as lines fail.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/types.h"

namespace nvmsec {

class Attack {
 public:
  virtual ~Attack() = default;

  /// Produce the next logical address to write, strictly < user_lines.
  virtual LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Restore the attack's initial state (e.g. UAA's sweep cursor).
  virtual void reset() = 0;

  /// Checkpointing: stateful attacks (sweep cursors, burst positions)
  /// serialize their position; stateless ones write nothing — all their
  /// randomness lives in the simulation Rng, which is saved separately.
  virtual void save_state(StateWriter& w) const { (void)w; }
  [[nodiscard]] virtual Status load_state(StateReader& r) {
    (void)r;
    return Status{};
  }
};

/// Named constructors for the attacks the paper evaluates, plus extras used
/// by tests and examples.
std::unique_ptr<Attack> make_uaa();
std::unique_ptr<Attack> make_bpa(std::uint64_t burst_length = 1024);
std::unique_ptr<Attack> make_hotspot(std::uint64_t working_set = 1);
std::unique_ptr<Attack> make_random_uniform();

/// Factory by name ("uaa", "bpa", "hotspot", "random"); throws
/// std::invalid_argument for unknown names.
std::unique_ptr<Attack> make_attack(const std::string& name);

}  // namespace nvmsec
