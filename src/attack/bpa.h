// Birthday Paradox Attack (BPA), the secondary attack the paper evaluates
// against (§5.2.2, Figs. 7-8).
//
// BPA originates from Seong et al.'s Security Refresh analysis (ISCA'10):
// against a randomized address mapping the attacker cannot aim at a chosen
// physical line, but by hammering one logical address in long bursts and
// re-picking the address at random, repeated bursts collide with weak
// physical lines with birthday-paradox probability. The burst length
// controls how much wear each randomized placement absorbs before the
// attacker moves on.
#pragma once

#include "attack/attack.h"

namespace nvmsec {

class BirthdayParadoxAttack final : public Attack {
 public:
  explicit BirthdayParadoxAttack(std::uint64_t burst_length);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  /// Emits the rest of the current burst (up to max_len) as one stride-0
  /// run. RNG use is bit-identical to the per-write path: the target is
  /// drawn once at burst start, never inside a burst.
  AttackRun next_run(Rng& rng, std::uint64_t user_lines,
                     std::uint64_t max_len) override;
  [[nodiscard]] std::string name() const override { return "bpa"; }
  void reset() override;

  [[nodiscard]] std::uint64_t burst_length() const { return burst_length_; }

  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

 private:
  std::uint64_t burst_length_;
  std::uint64_t remaining_in_burst_{0};
  LogicalLineAddr target_{LogicalLineAddr::invalid()};
};

}  // namespace nvmsec
