// Composite attack: a phase schedule interleaving benign background traffic
// with attack bursts (ROADMAP: "Adaptive defenses and online attack
// detection").
//
// Real adversaries do not announce themselves at write 0 — the detector
// scenarios need streams that *become* hostile (benign zipf, then a UAA
// onset) or blink ("bursty" on/off hammering). A MixedAttack runs a list
// of (generator, write budget) phases: each phase emits its generator's
// stream until its budget is spent, then the schedule moves on. A terminal
// phase with budget 0 runs forever; a schedule whose last phase is bounded
// cycles, which is how the on/off scenarios are expressed.
//
// Phase generators keep their state across phase switches and cycles (a
// UAA phase resumes its sweep where the previous burst left off), and all
// cursors ride save_state/load_state, so crash/resume and the batched fast
// path see exactly the per-write stream.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"

namespace nvmsec {

/// One parsed entry of a "--attack-phases" schedule spec.
struct MixedPhaseSpec {
  std::string attack;
  /// User writes this phase emits; 0 = unbounded (terminal, last phase
  /// only).
  std::uint64_t writes{0};
};

/// Parse "name:writes,name:writes,..." (e.g. "zipf:200000,uaa:0"). Writes
/// accepts plain integers with optional k/m/g suffix (powers of ten).
/// Throws std::invalid_argument on malformed specs, an unbounded phase
/// anywhere but last, or an empty schedule.
std::vector<MixedPhaseSpec> parse_mixed_phases(const std::string& spec);

class MixedAttack final : public Attack {
 public:
  struct Phase {
    std::unique_ptr<Attack> attack;
    /// 0 = unbounded.
    std::uint64_t writes{0};
  };

  /// Takes ownership of the phase generators. Enforces the same shape
  /// rules as parse_mixed_phases.
  explicit MixedAttack(std::vector<Phase> phases);

  LogicalLineAddr next(Rng& rng, std::uint64_t user_lines) override;
  /// Delegates to the current phase, capping the run at the phase
  /// boundary so a run never straddles two generators.
  AttackRun next_run(Rng& rng, std::uint64_t user_lines,
                     std::uint64_t max_len) override;
  /// The weakest (largest) contract among the phases: one
  /// distribution-equivalent phase makes the whole stream
  /// distribution-equivalent.
  [[nodiscard]] BatchContract batch_contract() const override {
    return contract_;
  }
  /// Delegates min(n_writes, phase remaining) to the current phase. May
  /// therefore emit counts summing to FEWER than n_writes (it stops at the
  /// phase boundary) — callers must total the returned vector rather than
  /// assume n_writes. Returns false when the current phase has no counts
  /// form (e.g. a UAA phase); the caller falls back to next_run() and the
  /// counts path resumes once a counts-capable phase is current.
  bool next_counts(Rng& rng, std::uint64_t user_lines, std::uint64_t n_writes,
                   WriteCountVector& out) override;

  [[nodiscard]] std::string name() const override { return "mixed"; }
  void reset() override;
  void save_state(StateWriter& w) const override;
  [[nodiscard]] Status load_state(StateReader& r) override;

  // --- schedule introspection (run_start event ground truth, report) -------
  [[nodiscard]] std::size_t phase_count() const { return phases_.size(); }
  [[nodiscard]] const std::string& phase_name(std::size_t i) const {
    return phase_names_[i];
  }
  [[nodiscard]] std::uint64_t phase_writes(std::size_t i) const {
    return phases_[i].writes;
  }
  [[nodiscard]] std::size_t current_phase() const { return phase_idx_; }

 private:
  /// Writes left in the current phase (max() when unbounded).
  [[nodiscard]] std::uint64_t phase_remaining() const;
  void advance_if_exhausted();

  std::vector<Phase> phases_;
  std::vector<std::string> phase_names_;
  BatchContract contract_{BatchContract::kBitIdentical};
  /// True when the last phase is bounded: the schedule wraps around.
  bool cyclic_{false};
  std::size_t phase_idx_{0};
  std::uint64_t phase_written_{0};
};

}  // namespace nvmsec
