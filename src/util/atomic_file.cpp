#include "util/atomic_file.h"

#include <cstdio>

#ifdef _WIN32
#include <process.h>
#define maxwe_getpid _getpid
#else
#include <unistd.h>
#define maxwe_getpid getpid
#endif

namespace nvmsec {

AtomicFileWriter::AtomicFileWriter(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    open_status_ = Status::invalid_argument("AtomicFileWriter: empty path");
    return;
  }
  temp_path_ = path_ + ".tmp." + std::to_string(maxwe_getpid());
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    open_status_ = Status::io_error(
        "cannot open '" + temp_path_ +
        "' for writing (is the directory writable?)");
  }
}

AtomicFileWriter::~AtomicFileWriter() { discard(); }

Status AtomicFileWriter::commit() {
  if (done_) return Status{};
  if (!out_.is_open()) {
    return open_status_.ok()
               ? Status::failed_precondition("AtomicFileWriter: already closed")
               : open_status_;
  }
  out_.flush();
  if (!out_) {
    discard();
    return Status::io_error("write failed for '" + temp_path_ +
                            "' (disk full?)");
  }
  out_.close();
  if (out_.fail()) {
    discard();
    return Status::io_error("close failed for '" + temp_path_ + "'");
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    done_ = true;
    return Status::io_error("rename '" + temp_path_ + "' -> '" + path_ +
                            "' failed");
  }
  done_ = true;
  return Status{};
}

void AtomicFileWriter::discard() {
  if (done_) return;
  done_ = true;
  if (out_.is_open()) out_.close();
  if (!temp_path_.empty()) std::remove(temp_path_.c_str());
}

Status atomic_write_file(const std::string& path, const std::string& contents) {
  AtomicFileWriter writer(path);
  if (!writer.is_open()) return writer.open_status();
  writer.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
  return writer.commit();
}

}  // namespace nvmsec
