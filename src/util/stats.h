// Small statistics toolkit used by the benchmarks and the endurance model:
// summary statistics, geometric mean (Fig. 8's Gmean column), percentiles,
// and a fixed-width histogram for endurance-distribution reporting.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace nvmsec {

class StateWriter;
class StateReader;

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  /// Serialize for checkpointing (rides the fleet sketch state).
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  std::size_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{0};
  double max_{0};
};

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
double geometric_mean(std::span<const double> xs);

/// Linear-interpolation percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Min / max helpers; throw on empty input.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Gini coefficient of a non-negative sample (0 = perfectly equal wear,
/// approaching 1 = one region took everything). Degenerate inputs — empty,
/// a single sample, or an all-zero sample — have no meaningful inequality
/// and return 0. Throws std::invalid_argument on negative values.
double gini(std::span<const double> xs);

/// max(xs) / min(xs), the paper's wear-imbalance ratio. Returns 1 for
/// empty, single-sample and all-zero inputs (no imbalance to speak of),
/// +infinity when min is 0 but max is not. Throws std::invalid_argument on
/// negative values.
double max_min_ratio(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render an ASCII bar chart (one line per bucket), for bench output.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

}  // namespace nvmsec
