#include "util/status.h"

namespace nvmsec {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kDataLoss:
      return "data loss";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kVersionMismatch:
      return "version mismatch";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kOutOfRange:
      return "out of range";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  return std::string(status_code_name(code_)) + ": " + message_;
}

void Status::throw_if_error() const {
  if (!ok()) throw std::runtime_error(to_string());
}

}  // namespace nvmsec
