// Minimal command-line flag parser for the bench/example binaries.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags are an error by default, so typos in experiment sweeps fail
// loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nvmsec {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Register flags before parse(). `help` appears in usage output.
  void add_flag(const std::string& name, const std::string& help,
                std::string default_value);
  void add_switch(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing usage) when --help was given.
  /// Throws std::invalid_argument on unknown or malformed flags.
  bool parse(int argc, const char* const* argv);

  /// Numeric getters parse the whole value or fail: trailing garbage
  /// ("10x"), overflow, and empty values all raise std::invalid_argument
  /// with a one-line "flag --name: ..." message. get_uint additionally
  /// rejects negative values, so unsigned flags can never be silently
  /// wrapped through a signed cast.
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_switch{false};
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nvmsec
