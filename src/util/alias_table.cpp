#include "util/alias_table.h"

#include <stdexcept>

namespace nvmsec {

AliasTable::AliasTable(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasTable: empty weight vector");
  }
  if (weights.size() > UINT32_MAX) {
    throw std::invalid_argument("AliasTable: too many weights");
  }
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("AliasTable: all weights are zero");
  }

  const std::size_t n = weights.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's algorithm: partition scaled probabilities into under-/over-full
  // buckets and pair them so every column has at most two outcomes.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = static_cast<std::uint32_t>(i);

  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both lists should hold columns with weight ~1.
  for (std::uint32_t i : small) prob_[i] = 1.0;
  for (std::uint32_t i : large) prob_[i] = 1.0;
}

std::uint64_t AliasTable::sample(Rng& rng) const {
  const std::uint64_t column = rng.uniform_u64(prob_.size());
  return rng.uniform_double() < prob_[column] ? column : alias_[column];
}

double AliasTable::probability(std::size_t i) const {
  return normalized_.at(i);
}

}  // namespace nvmsec
