#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/serialize.h"

namespace nvmsec {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::save_state(StateWriter& w) const {
  w.u64(n_);
  w.f64(mean_);
  w.f64(m2_);
  w.f64(min_);
  w.f64(max_);
}

Status RunningStats::load_state(StateReader& r) {
  std::uint64_t n = 0;
  if (Status st = r.u64(n); !st.ok()) return st;
  if (Status st = r.f64(mean_); !st.ok()) return st;
  if (Status st = r.f64(m2_); !st.ok()) return st;
  if (Status st = r.f64(min_); !st.ok()) return st;
  if (Status st = r.f64(max_); !st.ok()) return st;
  n_ = static_cast<std::size_t>(n);
  return Status::ok_status();
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) {
      throw std::invalid_argument("geometric_mean: inputs must be > 0");
    }
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double gini(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() < 0.0) {
    throw std::invalid_argument("gini: inputs must be non-negative");
  }
  const auto n = static_cast<double>(sorted.size());
  double sum = 0.0;
  double weighted = 0.0;  // sum of rank_i * x_i with 1-based ranks
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    sum += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  if (sum == 0.0) return 0.0;
  return 2.0 * weighted / (n * sum) - (n + 1.0) / n;
}

double max_min_ratio(std::span<const double> xs) {
  if (xs.size() < 2) return 1.0;
  double lo = xs[0];
  double hi = xs[0];
  for (double x : xs) {
    if (x < 0.0) {
      throw std::invalid_argument("max_min_ratio: inputs must be non-negative");
    }
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi == 0.0) return 1.0;  // all zeros: equal, not infinitely unequal
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0) throw std::invalid_argument("Histogram: buckets == 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace nvmsec
