// Exact batched sampling: binomial draws and multinomial count vectors.
//
// The batched stochastic fast path replaces "one RNG draw per address" with
// "one count vector per chunk": instead of sampling k addresses one by one,
// draw how many of the chunk's k writes land on each line in a single pass.
// The count vector is distributed exactly as the per-draw histogram —
// Multinomial(k; p_0..p_{n-1}) — because it is built from exact Binomial
// splits down an implicit binary tree over the weight vector: the root
// splits k between the left and right halves with Binomial(k, w_L/(w_L+w_R)),
// and so on recursively. Subtrees that receive a zero count are pruned, so a
// draw costs O(hit_lines * log n) RNG work instead of O(k).
//
// Everything here is deterministic for a fixed RNG stream: the tree shape is
// a function of the weight vector alone and the traversal order is fixed
// (left subtree first), so two runs with equal seeds produce equal vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace nvmsec {

/// Exact Binomial(n, p) variate. Inversion (BINV) for small n*p, Hörmann's
/// BTRS transformed-rejection for large n*p — both sample the exact binomial
/// law, not a normal/Poisson approximation, so recursive splits compose into
/// an exact multinomial. p outside [0, 1] is clamped; n up to 2^53 (the
/// double-precision integer range; chunk sizes are far below this).
std::uint64_t binomial_draw(Rng& rng, std::uint64_t n, double p);

/// Structure-of-arrays batch of (address, count) pairs: the unit of work the
/// engine hands to Device::write_counts. Parallel vectors rather than a
/// vector of pairs so the device's bulk-decrement loop streams two flat
/// arrays. Entries may repeat an address (zipf's modulo fold does); counts
/// are always >= 1.
struct WriteCountVector {
  std::vector<std::uint64_t> addrs;
  std::vector<WriteCount> counts;

  void clear() {
    addrs.clear();
    counts.clear();
  }
  void append(std::uint64_t addr, WriteCount count) {
    addrs.push_back(addr);
    counts.push_back(count);
  }
  [[nodiscard]] std::size_t size() const { return addrs.size(); }
  [[nodiscard]] bool empty() const { return addrs.empty(); }
  /// Sum of all counts (the number of writes the vector represents).
  [[nodiscard]] WriteCount total() const;
};

/// Exact multinomial sampler over a fixed non-negative weight vector.
/// Construction is O(n) (the subtree-sum tree); draw() is O(hit * log n).
/// Reusable across draws and across threads (draw() is const and touches
/// only the caller's RNG and output).
class MultinomialSampler {
 public:
  /// Weights must be non-empty, finite, non-negative, with a positive sum.
  explicit MultinomialSampler(std::span<const double> weights);

  /// Append one entry per index that received a non-zero count, in
  /// ascending index order, with counts summing to exactly `n_draws`.
  void draw(Rng& rng, std::uint64_t n_draws, WriteCountVector& out) const;

  [[nodiscard]] std::size_t size() const { return leaves_; }

  /// Exact sampling probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  /// Implicit complete binary tree of subtree weight sums: leaves (padded
  /// to a power of two with zero weight) live at [cap_, cap_ + leaves_),
  /// node j's children are 2j and 2j+1, the root is node 1.
  std::vector<double> tree_;
  std::size_t cap_{0};
  std::size_t leaves_{0};
  double total_{0};
};

/// Exact Multinomial(n_draws; uniform over n_outcomes) without a weight
/// table: recursive range-halving with Binomial splits. The uniform-random
/// attack uses this so it needs no per-size precomputation.
void multinomial_uniform(Rng& rng, std::uint64_t n_draws,
                         std::uint64_t n_outcomes, WriteCountVector& out);

}  // namespace nvmsec
