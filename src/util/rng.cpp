#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_set>

#include "util/serialize.h"

namespace nvmsec {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

Xoshiro256 Xoshiro256::fork() {
  // Child gets the block [J, 2J) of the sequence; the parent resumes at 2J,
  // so the two streams never overlap.
  Xoshiro256 child = *this;
  child.jump();
  jump();
  jump();
  return child;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform_u64: bound must be > 0");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = gen_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = gen_.next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard against log(0).
  double u1 = uniform_double();
  while (u1 <= 0.0) u1 = uniform_double();
  const double u2 = uniform_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  // For dense samples do a partial Fisher–Yates; for sparse ones rejection
  // sampling with a hash set is cheaper than materializing [0, n).
  if (k * 3 >= n) {
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + uniform_u64(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::uint64_t x = uniform_u64(n);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

Rng Rng::fork() { return Rng(gen_.fork()); }

Rng Rng::substream(std::uint64_t tag) const {
  // Fold the domain tag and the four state words through SplitMix64. Each
  // word perturbs the running seed before another SplitMix64 round, so all
  // 256 state bits (and the tag) influence the child seed.
  std::uint64_t seed = SplitMix64(tag).next();
  for (std::uint64_t word : gen_.state()) {
    seed = SplitMix64(seed ^ word).next();
  }
  return Rng(seed);
}

void Rng::save_state(StateWriter& w) const {
  for (std::uint64_t word : gen_.state()) w.u64(word);
  w.boolean(has_cached_normal_);
  w.f64(cached_normal_);
}

Status Rng::load_state(StateReader& r) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) {
    if (Status st = r.u64(word); !st.ok()) return st;
  }
  bool has_cached = false;
  double cached = 0.0;
  if (Status st = r.boolean(has_cached); !st.ok()) return st;
  if (Status st = r.f64(cached); !st.ok()) return st;
  gen_.set_state(s);
  has_cached_normal_ = has_cached;
  cached_normal_ = cached;
  return Status{};
}

}  // namespace nvmsec
