#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

namespace nvmsec {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("ThreadPool: worker count must be > 0");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged tasks capture their own exceptions
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for_each(n, fn, nullptr);
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    std::vector<WorkerUtilization>* utilization) {
  if (utilization != nullptr) utilization->clear();
  if (n == 0) return;

  // Shared by the driver tasks: a dynamic index dispenser and one exception
  // slot per index (written at most once, by the claimer of that index).
  struct State {
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors;
    explicit State(std::size_t count) : errors(count) {}
  };
  auto state = std::make_shared<State>(n);

  // Each driver writes only its own utilization slot; the future joins
  // below publish the slots to the caller with no locking in the loop.
  const auto drive = [state, &fn, n](WorkerUtilization* slot) {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const std::chrono::steady_clock::time_point start =
          slot != nullptr ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
      try {
        fn(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      if (slot != nullptr) {
        slot->busy_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        ++slot->tasks;
      }
    }
  };

  // One driver per worker (capped at n); the caller drives too, so a pool
  // whose workers are all busy with unrelated tasks still makes progress.
  const std::size_t drivers = std::min(worker_count(), n);
  if (utilization != nullptr) utilization->resize(drivers + 1);
  const auto slot_for = [utilization](std::size_t i) -> WorkerUtilization* {
    return utilization != nullptr ? &(*utilization)[i] : nullptr;
  };
  std::vector<std::future<void>> futures;
  futures.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    futures.push_back(submit([&drive, slot = slot_for(i)] { drive(slot); }));
  }
  drive(slot_for(drivers));
  for (std::future<void>& f : futures) f.get();

  for (const std::exception_ptr& error : state->errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace nvmsec
