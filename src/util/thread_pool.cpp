#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <utility>

namespace nvmsec {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("ThreadPool: worker count must be > 0");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged tasks capture their own exceptions
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Shared by the driver tasks: a dynamic index dispenser and one exception
  // slot per index (written at most once, by the claimer of that index).
  struct State {
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors;
    explicit State(std::size_t count) : errors(count) {}
  };
  auto state = std::make_shared<State>(n);

  const auto drive = [state, &fn, n] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
    }
  };

  // One driver per worker (capped at n); the caller drives too, so a pool
  // whose workers are all busy with unrelated tasks still makes progress.
  const std::size_t drivers = std::min(worker_count(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) futures.push_back(submit(drive));
  drive();
  for (std::future<void>& f : futures) f.get();

  for (const std::exception_ptr& error : state->errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace nvmsec
