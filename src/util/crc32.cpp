#include "util/crc32.h"

#include <array>

namespace nvmsec {

namespace {

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = build_table();
  return t;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state = table()[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace nvmsec
