// Deterministic, fast pseudo-random number generation.
//
// The simulator must be reproducible across runs and platforms, so we ship
// our own xoshiro256** implementation instead of relying on libstdc++'s
// unspecified std::default_random_engine. Distribution helpers (uniform,
// normal via Box–Muller) are also hand-rolled because libstdc++ and libc++
// produce different std::normal_distribution streams for the same seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace nvmsec {

class StateWriter;
class StateReader;

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: all-purpose 64-bit generator (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// 2^128 steps forward; use to derive independent parallel streams.
  void jump();

  /// Fork an independent generator (jump-based, deterministic).
  Xoshiro256 fork();

  /// Raw stream position, for checkpointing. Restoring the state resumes
  /// the exact sequence: set_state(state()) is a no-op.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return s_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Random utilities layered on Xoshiro256. One instance per simulation so
/// that component draws never interleave nondeterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  Xoshiro256& generator() { return gen_; }

  /// Derive an independent child stream (for parallel experiment arms).
  Rng fork();

  /// Derive a deterministic side stream from the current position WITHOUT
  /// advancing this stream (fork() consumes a jump). The child seed hashes
  /// the four xoshiro state words together with a caller-chosen domain tag
  /// through SplitMix64, so distinct tags at the same position — and the
  /// same tag at distinct positions — yield unrelated streams. Used for the
  /// batched-sampling substream: both fastpath and per-write runs derive it
  /// identically at engine construction, keeping the main stream untouched.
  [[nodiscard]] Rng substream(std::uint64_t tag) const;

  /// Checkpointing: the full stream position is the xoshiro state plus the
  /// Box–Muller carry (the cached second normal), all of which must be
  /// restored for a resumed run to draw the identical sequence.
  void save_state(StateWriter& w) const;
  Status load_state(StateReader& r);

 private:
  explicit Rng(Xoshiro256 gen) : gen_(gen) {}

  Xoshiro256 gen_;
  double cached_normal_{0};
  bool has_cached_normal_{false};
};

}  // namespace nvmsec
