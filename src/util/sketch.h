// Streaming statistics sketches for population-scale aggregation.
//
// The fleet runner (sim/fleet.h) folds millions of per-device results into
// O(shards) memory; these are the primitives that make that possible. All
// of them share three properties the fleet layer depends on:
//
//   1. Mergeable: shard-local sketches combine into a population sketch.
//      StreamingHistogram and WeightedReservoir merge associatively and
//      commutatively (bit-identical results regardless of merge structure);
//      QuantileSketch's merge is deterministic for a fixed operand order,
//      which is why the fleet runner always merges shards in shard-index
//      order.
//   2. Serializable via StateWriter/StateReader, so per-shard sketch state
//      rides the MXWECKPT checkpoint container and a resumed campaign
//      produces bit-identical aggregates.
//   3. Deterministic: no wall-clock, no platform-dependent libm calls on
//      the default paths, no unordered containers — the same input stream
//      yields the same bytes everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/status.h"

namespace nvmsec {

class StateWriter;
class StateReader;

/// Mergeable online quantile estimator in the t-digest family (Dunning's
/// merging-digest formulation with the classic 4*n*q*(1-q)/compression
/// cluster-size bound — pure arithmetic, no libm, so compression decisions
/// are platform-independent).
///
/// Accuracy: the cluster-size bound concentrates resolution at the tails,
/// so relative *rank* error is O(q*(1-q)/compression). At the default
/// compression of 128 the p50/p99 estimates land within a ~1% rank band of
/// an exact sort for the unimodal and bimodal inputs the tests exercise;
/// callers that need tighter tails raise `compression`.
///
/// Determinism: add() order and merge() operand order determine the
/// centroid set exactly. Two sketches fed the same stream are bit-identical;
/// merging shards in a fixed order is the caller's side of the contract.
class QuantileSketch {
 public:
  explicit QuantileSketch(std::uint32_t compression = 128);

  void add(double x);
  /// Fold `other` into this sketch (buffer + centroids, then compress).
  /// Merging with an empty sketch on either side is an exact identity:
  /// an empty `other` is a no-op, and an empty `this` adopts `other`'s
  /// representation (compression included) byte for byte.
  void merge(const QuantileSketch& other);

  /// Canonicalize: fold the unmerged buffer into centroids. Called
  /// automatically by quantile()/merge()/save_state(); exposed so a shard
  /// can canonicalize before checkpointing.
  void compress();

  /// Quantile estimate, q in [0, 1]. Exact for q=0/q=1 (tracked min/max)
  /// and for streams small enough to fit one centroid per point. Throws
  /// std::invalid_argument on an empty sketch or q outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] std::uint32_t compression() const { return compression_; }
  /// Centroids after compress(), (mean, weight) in ascending mean order.
  [[nodiscard]] std::vector<std::pair<double, std::uint64_t>> centroids() const;

  /// Serialization compresses first, so the written form is canonical:
  /// save -> load -> save yields identical bytes.
  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  struct Centroid {
    double mean{0};
    std::uint64_t weight{0};
  };

  /// compress() in const clothing: quantile() and save_state() canonicalize
  /// on demand, which mutates only the representation, never the value.
  void canonicalize() const;

  std::uint32_t compression_;
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<double> buffer_;
  std::uint64_t count_{0};
  double min_{0};
  double max_{0};
};

/// Mergeable histogram with geometrically spaced buckets: bucket i covers
/// [lo * growth^i, lo * growth^(i+1)), values below `lo` (including zero)
/// land in a dedicated underflow bucket, values at or above the last edge
/// land in an overflow bucket. Edges are produced by repeated IEEE
/// multiplication (no pow()), so the layout is bit-identical everywhere.
///
/// Merging requires an identical (lo, growth, buckets) layout and is a
/// plain count addition — associative and commutative, so merge structure
/// cannot change the result.
class StreamingHistogram {
 public:
  /// Default layout covers [1e-6, 1e-6 * 2^64) in powers of two — wide
  /// enough for normalized lifetimes and raw write counts alike.
  StreamingHistogram(double lo = 1e-6, double growth = 2.0,
                     std::size_t buckets = 64);

  void add(double x) { add_weighted(x, 1); }
  void add_weighted(double x, std::uint64_t weight);
  /// Throws std::invalid_argument when two *non-empty* layouts differ.
  /// An empty `other` merges as a no-op and an empty `this` adopts
  /// `other`'s layout and counts wholesale, so merging an empty sketch is
  /// an exact identity in both directions.
  void merge(const StreamingHistogram& other);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const { return edges_.at(i); }
  [[nodiscard]] double bucket_hi(std::size_t i) const {
    return edges_.at(i + 1);
  }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double lo() const { return edges_.front(); }
  [[nodiscard]] double growth() const { return growth_; }

  /// ASCII bar chart of the non-empty bucket range, for report output.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  [[nodiscard]] bool same_layout(const StreamingHistogram& other) const;

  double growth_;
  std::vector<double> edges_;  // buckets + 1 ascending edges
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

/// Weighted reservoir sample of a keyed population (A-Res family). Each
/// item's priority is derived from a SplitMix64 hash of (salt, id) — not
/// from a stateful RNG — so the sample is a pure function of the item set:
/// add order and merge structure cannot change it, and merging two
/// reservoirs is exactly "union, keep the top-k priorities".
///
/// With the default weight of 1 the priority is the hash-uniform itself
/// (no libm); weighted adds sharpen it with pow(u, 1/w), which keeps the
/// distribution property (P[selected] proportional to weight) at the cost
/// of last-ulp libm variation across platforms for weighted items.
class WeightedReservoir {
 public:
  struct Item {
    double priority{0};
    std::uint64_t id{0};
    double value{0};
  };

  explicit WeightedReservoir(std::size_t capacity = 64,
                             std::uint64_t salt = 0x5EEDFEEDDEADBEEFULL);

  void add(std::uint64_t id, double value, double weight = 1.0);
  /// Union + top-k. Throws std::invalid_argument when capacity or salt
  /// differ (the priorities would not be comparable).
  void merge(const WeightedReservoir& other);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t salt() const { return salt_; }
  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  /// Current sample, descending priority (deterministic id tie-break).
  [[nodiscard]] const std::vector<Item>& items() const { return items_; }

  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  void truncate();

  std::size_t capacity_;
  std::uint64_t salt_;
  std::uint64_t seen_{0};
  std::vector<Item> items_;
};

/// The bundle the fleet aggregates carry per metric: Welford moments and
/// min/max (exact) plus a quantile sketch (approximate percentiles), with
/// one add/merge/save/load surface. Also the single streaming-stats
/// implementation behind bench_common's seed sweeps.
class StreamSummary {
 public:
  explicit StreamSummary(std::uint32_t compression = 128)
      : sketch_(compression) {}

  void add(double x) {
    moments_.add(x);
    sketch_.add(x);
  }
  void merge(const StreamSummary& other) {
    moments_.merge(other.moments_);
    sketch_.merge(other.sketch_);
  }
  void compress() { sketch_.compress(); }

  [[nodiscard]] std::uint64_t count() const { return moments_.count(); }
  [[nodiscard]] double mean() const { return moments_.mean(); }
  [[nodiscard]] double stddev() const { return moments_.stddev(); }
  [[nodiscard]] double variance() const { return moments_.variance(); }
  [[nodiscard]] double min() const { return moments_.min(); }
  [[nodiscard]] double max() const { return moments_.max(); }
  /// Sketch percentile, q in [0, 1]; 0 on an empty summary (a fleet with
  /// zero devices has no percentiles worth throwing over).
  [[nodiscard]] double quantile(double q) const {
    return count() == 0 ? 0.0 : sketch_.quantile(q);
  }
  [[nodiscard]] const QuantileSketch& sketch() const { return sketch_; }

  void save_state(StateWriter& w) const;
  [[nodiscard]] Status load_state(StateReader& r);

 private:
  RunningStats moments_;
  QuantileSketch sketch_;
};

}  // namespace nvmsec
