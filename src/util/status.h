// Structured error handling for failure-prone paths.
//
// The simulator's compute layers (engines, schemes, levelers) validate
// their invariants with exceptions — a bad argument is a programming error
// and the process should stop loudly. The *environment-facing* layers
// (file I/O, parsing, checkpoints) fail for reasons outside the program's
// control, so they report through Status / Result<T>: every error carries a
// machine-checkable code plus an actionable message, callers are forced to
// look before they touch the value, and nothing is thrown across a layer
// that might be mid-stream. Convention: I/O primitives return
// Status/Result; the high-level run_experiment surface converts unrecovered
// Statuses into exceptions at its boundary (main catches once).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nvmsec {

enum class StatusCode {
  kOk,
  kInvalidArgument,    ///< caller passed something unusable (bad flag value)
  kNotFound,           ///< file or entry does not exist
  kIoError,            ///< open/read/write/rename failed
  kDataLoss,           ///< truncated input, short read
  kCorruption,         ///< checksum/parity mismatch, malformed content
  kVersionMismatch,    ///< recognized file, unsupported format version
  kFailedPrecondition, ///< operation not valid in the current state/config
  kOutOfRange,         ///< numeric value outside the representable range
};

/// Stable lowercase name ("ok", "corruption", ...) for messages and tests.
const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "corruption: endurance CSV, line 7: ..." — one line, actionable.
  [[nodiscard]] std::string to_string() const;

  /// Exception bridge for the throwing layers: no-op when ok, otherwise
  /// throws std::runtime_error carrying to_string().
  void throw_if_error() const;

  static Status ok_status() { return {}; }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status io_error(std::string m) {
    return {StatusCode::kIoError, std::move(m)};
  }
  static Status data_loss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  static Status corruption(std::string m) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status version_mismatch(std::string m) {
    return {StatusCode::kVersionMismatch, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

/// A value or the Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}                // NOLINT
  Result(Status status) : data_(std::move(status)) {          // NOLINT
    if (std::get<Status>(data_).ok()) {
      throw std::logic_error("Result: constructed from an ok Status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] Status status() const {
    return ok() ? Status{} : std::get<Status>(data_);
  }

  /// Value access; throws std::runtime_error with the error message when
  /// called on a failed Result (the "I already checked ok()" contract).
  [[nodiscard]] T& value() {
    if (!ok()) throw std::runtime_error(std::get<Status>(data_).to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const {
    if (!ok()) throw std::runtime_error(std::get<Status>(data_).to_string());
    return std::get<T>(data_);
  }

  /// Move the value out (for non-copyable payloads).
  [[nodiscard]] T take() {
    if (!ok()) throw std::runtime_error(std::get<Status>(data_).to_string());
    return std::move(std::get<T>(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace nvmsec
