// ASCII / CSV table emitter used by the benchmark harness so every
// figure/table reproduction prints the same rows the paper reports, in a
// format that is both human-readable and machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace nvmsec {

/// One table cell: text, integer, or double (formatted with fixed precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Title printed above the table (e.g. "Figure 6: ...").
  void set_title(std::string title) { title_ = std::move(title); }

  /// Digits after the decimal point for double cells (default 2).
  void set_precision(int digits) { precision_ = digits; }

  void add_row(std::vector<Cell> row);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }
  [[nodiscard]] const std::vector<Cell>& row(std::size_t i) const;

  /// Render with aligned columns and +--+ borders.
  [[nodiscard]] std::string ascii() const;

  /// RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  [[nodiscard]] std::string csv() const;

  /// Print the ASCII rendering (and a trailing newline) to a stream.
  void print(std::ostream& os) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_{2};
};

}  // namespace nvmsec
