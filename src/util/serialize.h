// Binary state serialization for checkpoints.
//
// A deliberately tiny, explicit format: fixed-width little-endian integers,
// doubles as IEEE-754 bit patterns, containers as (u64 count, elements).
// No reflection, no varints — every component writes exactly the fields it
// owns and reads them back in the same order, and the reader detects short
// input on every call instead of running off the end (the "short read"
// class of checkpoint corruption surfaces as a Status, never as UB).
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace nvmsec {

class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void vec_u32(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }
  void vec_bool(const std::vector<bool>& v) {
    u64(v.size());
    for (bool b : v) u8(b ? 1 : 0);
  }
  void bytes(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads the StateWriter format back. Every accessor returns a Status;
/// after the first failure the reader stays failed (callers may chain reads
/// and check once at the end).
class StateReader {
 public:
  explicit StateReader(const std::vector<std::uint8_t>& buf)
      : buf_(buf.data()), size_(buf.size()) {}
  StateReader(const std::uint8_t* data, std::size_t size)
      : buf_(data), size_(size) {}

  Status u8(std::uint8_t& out);
  Status u32(std::uint32_t& out);
  Status u64(std::uint64_t& out);
  Status f64(double& out);
  Status boolean(bool& out);
  Status str(std::string& out);
  Status vec_u32(std::vector<std::uint32_t>& out);
  Status vec_u64(std::vector<std::uint64_t>& out);
  Status vec_bool(std::vector<bool>& out);
  Status bytes(std::vector<std::uint8_t>& out);

  /// First error encountered so far (ok while healthy).
  [[nodiscard]] Status status() const { return status_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  /// True when the whole buffer was consumed without error.
  [[nodiscard]] bool exhausted() const { return status_.ok() && pos_ == size_; }

 private:
  Status take(std::size_t n, const std::uint8_t*& out);

  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_{0};
  Status status_;
};

}  // namespace nvmsec
