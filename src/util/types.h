// Strong address/index types shared across the library.
//
// The simulator deals with distinct address spaces that are easy to
// confuse: logical line addresses (what the attacker writes), physical line
// addresses (after wear leveling and spare redirection), region ids, and
// line offsets within a region. Each is a distinct tagged-integer type so
// the compiler rejects accidental cross-space mixing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace nvmsec {

/// Number of writes a cell/line can absorb before it hard-fails.
using Endurance = double;

/// A count of write operations.
using WriteCount = std::uint64_t;

/// Tagged integer: each Tag instantiation is a distinct, non-convertible
/// type.
template <typename Tag>
struct TaggedU64 {
  std::uint64_t v{0};

  constexpr TaggedU64() = default;
  constexpr explicit TaggedU64(std::uint64_t value) : v(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v; }
  constexpr auto operator<=>(const TaggedU64&) const = default;

  static constexpr TaggedU64 invalid() {
    return TaggedU64{std::numeric_limits<std::uint64_t>::max()};
  }
  [[nodiscard]] constexpr bool is_valid() const {
    return v != std::numeric_limits<std::uint64_t>::max();
  }
};

/// Line index in the attacker-visible (logical) address space.
using LogicalLineAddr = TaggedU64<struct LogicalLineTag>;

/// Line index in the physical address space.
using PhysLineAddr = TaggedU64<struct PhysLineTag>;

/// Region index (a region is a fixed-size group of consecutive lines).
using RegionId = TaggedU64<struct RegionTag>;

/// Offset of a line within its region.
using LineInRegion = TaggedU64<struct LineInRegionTag>;

}  // namespace nvmsec

template <typename Tag>
struct std::hash<nvmsec::TaggedU64<Tag>> {
  std::size_t operator()(const nvmsec::TaggedU64<Tag>& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.v);
  }
};
