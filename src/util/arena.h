// Bump-pointer scratch arena for per-worker hot-loop reuse.
//
// The fleet runner executes hundreds of thousands of short device
// simulations per worker; each one used to malloc (and free) the same
// handful of scratch vectors — event-sim death heaps, per-line budget
// arrays, SoA write-count buffers. An Arena turns that steady-state churn
// into pointer bumps: allocate() carves from a growing block list, reset()
// recycles every byte without returning memory to the OS, and after the
// first device warms the arena to its peak footprint, subsequent devices
// allocate without touching the system allocator at all.
//
// reset() also coalesces: when a run overflowed into multiple blocks, the
// next reset replaces them with one block sized to the total, so the
// steady state is a single contiguous block and allocation is one branch
// plus a pointer bump.
//
// Only trivially-destructible types may live in an arena (reset() never
// runs destructors); make_span() enforces this at compile time.
// ArenaAllocator adapts the arena to standard containers for scratch
// vectors/heaps whose capacity should be recycled the same way —
// deallocate() is a no-op, so container growth wastes arena bytes until
// the next reset(), which is exactly the bump-allocator bargain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace nvmsec {

class Arena {
 public:
  explicit Arena(std::size_t initial_capacity = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Carve `bytes` aligned to `align` (a power of two). Never returns
  /// nullptr: grows the block list when the current block is exhausted.
  /// allocate(0) returns a valid, unique, aligned pointer.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t));

  /// A value-initialized span of `n` trivially-destructible Ts.
  template <typename T>
  [[nodiscard]] std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::reset() never runs destructors");
    if (n == 0) return {};
    auto* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return {p, n};
  }

  /// Recycle every byte. Capacity is retained; a multi-block arena is
  /// coalesced into one block of at least the combined size so the steady
  /// state allocates from a single contiguous block.
  void reset();

  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t used() const { return used_; }
  /// Total bytes owned across all blocks.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
    std::size_t used{0};
  };

  /// Append a block with room for at least `min_bytes`.
  void add_block(std::size_t min_bytes);

  static constexpr std::size_t kMinBlockBytes = 4096;

  std::vector<Block> blocks_;
  std::size_t current_{0};  // index of the block being bumped
  std::size_t used_{0};
  std::size_t capacity_{0};
};

/// Standard-allocator adapter over a borrowed Arena. deallocate() is a
/// no-op — memory comes back only via Arena::reset(), so use it for
/// scratch containers whose lifetime ends before the reset.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace nvmsec
