// Walker/Vose alias method: O(1) sampling from a fixed discrete distribution.
//
// WAWL samples remap destinations with probability proportional to region
// endurance on every swap epoch; the alias table makes that O(1) per draw
// regardless of how many regions the device has.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace nvmsec {

class AliasTable {
 public:
  /// Build from non-negative weights (at least one must be positive).
  explicit AliasTable(std::span<const double> weights);

  /// Draw an index with probability weights[i] / sum(weights).
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Exact sampling probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace nvmsec
