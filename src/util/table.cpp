#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nvmsec {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

const std::vector<Cell>& Table::row(std::size_t i) const { return rows_.at(i); }

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return out.str();
}

std::string Table::ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  const auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule;
  out += emit_row(headers_);
  out += rule;
  for (const auto& cells : rendered) out += emit_row(cells);
  out += rule;
  return out;
}

std::string Table::csv() const {
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    return quoted + "\"";
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ",";
    out += escape(headers_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += escape(format_cell(row[c]));
    }
    out += "\n";
  }
  return out;
}

void Table::print(std::ostream& os) const { os << ascii() << "\n"; }

}  // namespace nvmsec
