// CRC-32 (IEEE 802.3 polynomial, reflected) for file and table integrity.
//
// Used by the checkpoint format, the mapping tables' per-entry checksums
// and the fault-injection tests. Table-driven, byte at a time: integrity
// checks here run once per file or per table entry, never per simulated
// write, so simplicity beats throughput.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvmsec {

/// One-shot CRC over a buffer.
std::uint32_t crc32(const void* data, std::size_t size);

/// Incremental form: feed `crc32_update(seed, ...)` chunks, starting from
/// crc32_init() and finishing with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace nvmsec
