#include "util/cli.h"

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nvmsec {

namespace {

// strtoll/strtoull/strtod with the full error surface mapped to one-line
// messages: empty value, leading junk, trailing junk, and range overflow
// each produce a distinct, actionable diagnostic instead of std::stoul's
// exception text (or, worse, its silent acceptance of "10abc").
[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const std::string& why) {
  throw std::invalid_argument("flag --" + name + ": " + why + ": '" + value +
                              "'");
}

void check_tail(const std::string& name, const std::string& value,
                const char* end) {
  if (end == value.c_str()) bad_value(name, value, "not a number");
  if (*end != '\0') bad_value(name, value, "trailing characters after number");
}

}  // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_switch("help", "Show this help message");
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         std::string default_value) {
  flags_[name] = Flag{help, std::move(default_value), false};
}

void CliParser::add_switch(const std::string& name, const std::string& help) {
  flags_[name] = Flag{help, "false", true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag: --" + name + "\n" + usage());
    }
    Flag& flag = it->second;
    if (flag.is_switch) {
      if (inline_value && *inline_value != "true" && *inline_value != "false") {
        throw std::invalid_argument("switch --" + name +
                                    " takes only true/false");
      }
      flag.value = inline_value.value_or("true");
    } else if (inline_value) {
      flag.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " needs a value");
      }
      flag.value = argv[++i];
    }
  }
  if (get_bool("help")) {
    std::cout << usage();
    return false;
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("get_string: unregistered flag --" + name);
  }
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  if (v.empty()) bad_value(name, v, "empty value, expected an integer");
  errno = 0;
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  check_tail(name, v, end);
  if (errno == ERANGE) {
    bad_value(name, v, "integer out of range (64-bit signed)");
  }
  return out;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  const std::string v = get_string(name);
  if (v.empty()) bad_value(name, v, "empty value, expected a non-negative integer");
  // strtoull happily wraps "-1" to 2^64-1; reject any minus sign up front.
  if (v.find('-') != std::string::npos) {
    bad_value(name, v, "must be a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
  check_tail(name, v, end);
  if (errno == ERANGE) {
    bad_value(name, v, "integer out of range (64-bit unsigned)");
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  if (v.empty()) bad_value(name, v, "empty value, expected a number");
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  check_tail(name, v, end);
  if (errno == ERANGE) bad_value(name, v, "number out of range");
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true") return true;
  if (v == "false") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.is_switch) out << "=<value> (default: " << flag.value << ")";
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace nvmsec
