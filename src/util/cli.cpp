#include "util/cli.h"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace nvmsec {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_switch("help", "Show this help message");
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         std::string default_value) {
  flags_[name] = Flag{help, std::move(default_value), false};
}

void CliParser::add_switch(const std::string& name, const std::string& help) {
  flags_[name] = Flag{help, "false", true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag: --" + name + "\n" + usage());
    }
    Flag& flag = it->second;
    if (flag.is_switch) {
      if (inline_value && *inline_value != "true" && *inline_value != "false") {
        throw std::invalid_argument("switch --" + name +
                                    " takes only true/false");
      }
      flag.value = inline_value.value_or("true");
    } else if (inline_value) {
      flag.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " needs a value");
      }
      flag.value = argv[++i];
    }
  }
  if (get_bool("help")) {
    std::cout << usage();
    return false;
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("get_string: unregistered flag --" + name);
  }
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true") return true;
  if (v == "false") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.is_switch) out << "=<value> (default: " << flag.value << ")";
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace nvmsec
