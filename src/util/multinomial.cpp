#include "util/multinomial.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace nvmsec {
namespace {

// Stirling tail: log(k!) - [k*log(k) - k + 0.5*log(2*pi*k)]. Exact table for
// small k, two-term series beyond — the same correction TensorFlow/JAX use in
// their exact BTRS binomial kernels (Hörmann 1993).
double stirling_approx_tail(double k) {
  static constexpr double kTable[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) {
    return kTable[static_cast<int>(k)];
  }
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) /
         (k + 1.0);
}

// Inversion (BINV): walk the CDF from 0. O(n*p) expected steps — used only
// when n*p < 10, where it beats rejection on constant factors.
std::uint64_t binomial_binv(Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::exp(static_cast<double>(n) * std::log1p(-p));  // q^n
  double u = rng.uniform_double();
  std::uint64_t x = 0;
  while (u > r) {
    u -= r;
    ++x;
    if (x > n) {  // floating-point slack at the extreme tail
      return n;
    }
    r *= (a / static_cast<double>(x)) - s;
  }
  return x;
}

// Transformed rejection with squeeze (BTRS, Hörmann 1993): exact binomial
// sampling in O(1) expected RNG draws for n*p >= 10. Requires p <= 0.5
// (callers apply the symmetry reduction first).
std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double stddev = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * stddev;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * stddev;
  const double m = std::floor((nd + 1.0) * p);
  for (;;) {
    const double u = rng.uniform_double() - 0.5;
    double v = rng.uniform_double();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) {
      continue;
    }
    // Cheap acceptance region covering ~86% of proposals.
    if (us >= 0.07 && v <= v_r) {
      return static_cast<std::uint64_t>(kd);
    }
    // Full log-acceptance test against the exact binomial pmf.
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) +
        stirling_approx_tail(m) + stirling_approx_tail(nd - m) -
        stirling_approx_tail(kd) - stirling_approx_tail(nd - kd);
    if (v <= upper) {
      return static_cast<std::uint64_t>(kd);
    }
  }
}

}  // namespace

std::uint64_t binomial_draw(Rng& rng, std::uint64_t n, double p) {
  if (n == 0 || !(p > 0.0)) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  if (p > 0.5) {
    return n - binomial_draw(rng, n, 1.0 - p);
  }
  if (static_cast<double>(n) * p < 10.0) {
    return binomial_binv(rng, n, p);
  }
  return binomial_btrs(rng, n, p);
}

WriteCount WriteCountVector::total() const {
  WriteCount sum = 0;
  for (const WriteCount c : counts) {
    sum += c;
  }
  return sum;
}

MultinomialSampler::MultinomialSampler(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("MultinomialSampler: empty weight vector");
  }
  leaves_ = weights.size();
  cap_ = std::bit_ceil(leaves_);
  tree_.assign(2 * cap_, 0.0);
  for (std::size_t i = 0; i < leaves_; ++i) {
    const double w = weights[i];
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument(
          "MultinomialSampler: weights must be finite and non-negative");
    }
    tree_[cap_ + i] = w;
  }
  for (std::size_t j = cap_ - 1; j >= 1; --j) {
    tree_[j] = tree_[2 * j] + tree_[2 * j + 1];
  }
  total_ = tree_[1];
  if (!(total_ > 0.0)) {
    throw std::invalid_argument("MultinomialSampler: weight sum must be > 0");
  }
}

void MultinomialSampler::draw(Rng& rng, std::uint64_t n_draws,
                              WriteCountVector& out) const {
  if (n_draws == 0) {
    return;
  }
  struct Pending {
    std::size_t node;
    std::uint64_t count;
  };
  // Explicit stack, right child pushed first so the left subtree resolves
  // first: output entries come out in ascending index order. Depth is
  // bounded by log2(cap_) + 1.
  Pending stack[66];
  std::size_t depth = 0;
  stack[depth++] = {1, n_draws};
  while (depth > 0) {
    const Pending cur = stack[--depth];
    if (cur.count == 0) {
      continue;
    }
    if (cur.node >= cap_) {
      out.append(cur.node - cap_, cur.count);
      continue;
    }
    const double left = tree_[2 * cur.node];
    const double right = tree_[2 * cur.node + 1];
    std::uint64_t to_left;
    if (!(right > 0.0)) {
      to_left = cur.count;
    } else if (!(left > 0.0)) {
      to_left = 0;
    } else {
      to_left = binomial_draw(rng, cur.count, left / (left + right));
    }
    stack[depth++] = {2 * cur.node + 1, cur.count - to_left};
    stack[depth++] = {2 * cur.node, to_left};
  }
}

double MultinomialSampler::probability(std::size_t i) const {
  if (i >= leaves_) {
    throw std::out_of_range("MultinomialSampler::probability: index");
  }
  return tree_[cap_ + i] / total_;
}

void multinomial_uniform(Rng& rng, std::uint64_t n_draws,
                         std::uint64_t n_outcomes, WriteCountVector& out) {
  if (n_outcomes == 0) {
    throw std::invalid_argument("multinomial_uniform: zero outcomes");
  }
  if (n_draws == 0) {
    return;
  }
  struct Pending {
    std::uint64_t lo;
    std::uint64_t hi;  // exclusive
    std::uint64_t count;
  };
  Pending stack[130];
  std::size_t depth = 0;
  stack[depth++] = {0, n_outcomes, n_draws};
  while (depth > 0) {
    const Pending cur = stack[--depth];
    if (cur.count == 0) {
      continue;
    }
    if (cur.hi - cur.lo == 1) {
      out.append(cur.lo, cur.count);
      continue;
    }
    const std::uint64_t mid = cur.lo + (cur.hi - cur.lo) / 2;
    const double p_left = static_cast<double>(mid - cur.lo) /
                          static_cast<double>(cur.hi - cur.lo);
    const std::uint64_t to_left = binomial_draw(rng, cur.count, p_left);
    stack[depth++] = {mid, cur.hi, cur.count - to_left};
    stack[depth++] = {cur.lo, mid, to_left};
  }
}

}  // namespace nvmsec
