// Fixed-size worker pool with a task queue, used by the parallel experiment
// runner (sim/parallel.h).
//
// Design constraints, in order:
//   1. Determinism lives above the pool. The pool promises nothing about
//      execution order; callers that need ordered results index into a
//      pre-sized output array and reduce on their own thread.
//   2. Exceptions must never vanish. `submit()` returns a future that
//      rethrows; `parallel_for_each()` rethrows the failed index with the
//      smallest value (so which exception wins is deterministic even though
//      scheduling is not).
//   3. No work-stealing, no priorities, no detach: a pool this simulator
//      needs is a queue, N workers, and a join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace nvmsec {

/// Per-driver busy time from one parallel_for_each call: how long each
/// driver (pool workers plus the calling thread, last slot) spent inside
/// fn(), and how many indices it claimed. Idle time is the section wall
/// time minus busy_ns; the profiler's utilization report derives worker
/// imbalance from exactly this.
struct WorkerUtilization {
  std::uint64_t busy_ns{0};
  std::uint64_t tasks{0};
};

class ThreadPool {
 public:
  /// Spawns `workers` threads. Throws std::invalid_argument on 0 — a
  /// zero-worker pool would deadlock the first submit, so it is a config
  /// error, not a degenerate mode.
  explicit ThreadPool(std::size_t workers);

  /// Drains nothing: queued tasks that never started are dropped, running
  /// tasks are joined. Callers that care about completion hold the futures.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue one task; the future rethrows any exception the task threw.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(0), fn(1), ..., fn(n-1) across the workers and block until all
  /// have finished. Indices are claimed dynamically (an atomic counter), so
  /// long and short items interleave without static partitioning skew. If
  /// any invocations throw, the exception from the smallest failing index
  /// is rethrown after every index has been attempted. Not reentrant: do
  /// not call from inside a pool task.
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn);

  /// Same contract, plus per-driver utilization accounting: `utilization`
  /// is resized to drivers + 1 (each submitted driver occupies one worker
  /// for the whole call; the final slot is the calling thread) and each
  /// slot is written only by its own driver — the future join provides the
  /// happens-before, so there is no per-task synchronization cost.
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::vector<WorkerUtilization>* utilization);

  /// max(1, std::thread::hardware_concurrency()) — the default worker count
  /// everywhere a caller says "use all cores".
  static std::size_t hardware_workers();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_{false};
};

}  // namespace nvmsec
