#include "util/serialize.h"

namespace nvmsec {

Status StateReader::take(std::size_t n, const std::uint8_t*& out) {
  if (!status_.ok()) return status_;
  if (size_ - pos_ < n) {
    status_ = Status::data_loss(
        "state buffer too short: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " + std::to_string(size_ - pos_));
    return status_;
  }
  out = buf_ + pos_;
  pos_ += n;
  return Status{};
}

Status StateReader::u8(std::uint8_t& out) {
  const std::uint8_t* p = nullptr;
  if (Status s = take(1, p); !s.ok()) return s;
  out = p[0];
  return Status{};
}

Status StateReader::u32(std::uint32_t& out) {
  const std::uint8_t* p = nullptr;
  if (Status s = take(4, p); !s.ok()) return s;
  out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return Status{};
}

Status StateReader::u64(std::uint64_t& out) {
  const std::uint8_t* p = nullptr;
  if (Status s = take(8, p); !s.ok()) return s;
  out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return Status{};
}

Status StateReader::f64(double& out) {
  std::uint64_t bits = 0;
  if (Status s = u64(bits); !s.ok()) return s;
  out = std::bit_cast<double>(bits);
  return Status{};
}

Status StateReader::boolean(bool& out) {
  std::uint8_t v = 0;
  if (Status s = u8(v); !s.ok()) return s;
  out = v != 0;
  return Status{};
}

namespace {

// Container counts are attacker-/corruption-controlled; cap any single
// allocation at what the remaining buffer could actually hold.
Status check_count(std::uint64_t count, std::size_t elem_size,
                   std::size_t remaining) {
  if (elem_size > 0 && count > remaining / elem_size) {
    return Status::corruption("container count " + std::to_string(count) +
                              " exceeds remaining buffer");
  }
  return Status{};
}

}  // namespace

Status StateReader::str(std::string& out) {
  std::uint64_t n = 0;
  if (Status s = u64(n); !s.ok()) return s;
  if (Status s = check_count(n, 1, remaining()); !s.ok()) return status_ = s;
  const std::uint8_t* p = nullptr;
  if (Status s = take(static_cast<std::size_t>(n), p); !s.ok()) return s;
  out.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
  return Status{};
}

Status StateReader::vec_u32(std::vector<std::uint32_t>& out) {
  std::uint64_t n = 0;
  if (Status s = u64(n); !s.ok()) return s;
  if (Status s = check_count(n, 4, remaining()); !s.ok()) return status_ = s;
  out.resize(static_cast<std::size_t>(n));
  for (auto& x : out) {
    if (Status s = u32(x); !s.ok()) return s;
  }
  return Status{};
}

Status StateReader::vec_u64(std::vector<std::uint64_t>& out) {
  std::uint64_t n = 0;
  if (Status s = u64(n); !s.ok()) return s;
  if (Status s = check_count(n, 8, remaining()); !s.ok()) return status_ = s;
  out.resize(static_cast<std::size_t>(n));
  for (auto& x : out) {
    if (Status s = u64(x); !s.ok()) return s;
  }
  return Status{};
}

Status StateReader::vec_bool(std::vector<bool>& out) {
  std::uint64_t n = 0;
  if (Status s = u64(n); !s.ok()) return s;
  if (Status s = check_count(n, 1, remaining()); !s.ok()) return status_ = s;
  out.assign(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint8_t v = 0;
    if (Status s = u8(v); !s.ok()) return s;
    out[i] = v != 0;
  }
  return Status{};
}

Status StateReader::bytes(std::vector<std::uint8_t>& out) {
  std::uint64_t n = 0;
  if (Status s = u64(n); !s.ok()) return s;
  if (Status s = check_count(n, 1, remaining()); !s.ok()) return status_ = s;
  const std::uint8_t* p = nullptr;
  if (Status s = take(static_cast<std::size_t>(n), p); !s.ok()) return s;
  out.assign(p, p + n);
  return Status{};
}

}  // namespace nvmsec
