#include "util/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"
#include "util/serialize.h"

namespace nvmsec {

// ---------------------------------------------------------------------------
// QuantileSketch

namespace {

/// Buffered points per compression unit before an automatic compress();
/// larger buffers amortize sorting, smaller ones bound memory.
constexpr std::size_t kBufferMultiple = 4;

}  // namespace

QuantileSketch::QuantileSketch(std::uint32_t compression)
    : compression_(compression) {
  if (compression_ == 0) {
    throw std::invalid_argument("QuantileSketch: compression must be > 0");
  }
}

void QuantileSketch::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  buffer_.push_back(x);
  if (buffer_.size() >= kBufferMultiple * compression_) canonicalize();
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    // Adopt the representation wholesale (compression included): merging
    // into an empty sketch must reproduce `other` exactly, byte for byte.
    // Re-running the greedy partition here is not idempotent — midpoint
    // quantiles shift once clusters exist — so a rebuilt copy could
    // serialize differently from its source.
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
  canonicalize();
}

void QuantileSketch::compress() { canonicalize(); }

void QuantileSketch::canonicalize() const {
  if (buffer_.empty() && centroids_.size() <= 1) return;
  std::vector<Centroid> points;
  points.reserve(centroids_.size() + buffer_.size());
  points.insert(points.end(), centroids_.begin(), centroids_.end());
  for (double x : buffer_) points.push_back(Centroid{x, 1});
  buffer_.clear();
  std::sort(points.begin(), points.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean != b.mean ? a.mean < b.mean : a.weight < b.weight;
            });

  // One left-to-right greedy pass: grow the current cluster until the
  // classic t-digest size bound 4*n*q*(1-q)/compression (evaluated at the
  // cluster's midpoint quantile) would be exceeded, then start a new one.
  // Pure +-*/ arithmetic, so the partition is platform-independent.
  const auto total = static_cast<double>(count_);
  std::vector<Centroid> merged;
  merged.reserve(points.size());
  double weight_before = 0;  // total weight strictly left of current cluster
  for (const Centroid& c : points) {
    if (!merged.empty()) {
      Centroid& last = merged.back();
      const auto proposed =
          static_cast<double>(last.weight) + static_cast<double>(c.weight);
      const double mid_q = (weight_before + proposed / 2.0) / total;
      const double limit =
          4.0 * total * mid_q * (1.0 - mid_q) /
          static_cast<double>(compression_);
      if (proposed <= std::max(1.0, limit)) {
        last.mean += (c.mean - last.mean) *
                     (static_cast<double>(c.weight) / proposed);
        last.weight += c.weight;
        continue;
      }
      weight_before += static_cast<double>(last.weight);
    }
    merged.push_back(c);
  }
  centroids_ = std::move(merged);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) {
    throw std::invalid_argument("QuantileSketch::quantile: empty sketch");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("QuantileSketch::quantile: q must be in [0, 1]");
  }
  canonicalize();
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  if (centroids_.size() == 1) return centroids_.front().mean;

  // Each centroid is pinned at the midpoint of its weight span; interpolate
  // linearly between adjacent pins, and between min/max and the outermost
  // pins at the extremes.
  const double target = q * static_cast<double>(count_);
  double cum = 0;  // weight strictly left of centroid i
  double prev_pos = 0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double pos = cum + static_cast<double>(c.weight) / 2.0;
    if (target < pos) {
      const double span = pos - prev_pos;
      const double frac = span > 0 ? (target - prev_pos) / span : 0.0;
      return prev_mean + (c.mean - prev_mean) * frac;
    }
    prev_pos = pos;
    prev_mean = c.mean;
    cum += static_cast<double>(c.weight);
  }
  const double span = static_cast<double>(count_) - prev_pos;
  const double frac = span > 0 ? (target - prev_pos) / span : 0.0;
  return prev_mean + (max_ - prev_mean) * std::min(1.0, frac);
}

double QuantileSketch::min() const { return count_ == 0 ? 0.0 : min_; }
double QuantileSketch::max() const { return count_ == 0 ? 0.0 : max_; }

std::vector<std::pair<double, std::uint64_t>> QuantileSketch::centroids()
    const {
  canonicalize();
  std::vector<std::pair<double, std::uint64_t>> out;
  out.reserve(centroids_.size());
  for (const Centroid& c : centroids_) out.emplace_back(c.mean, c.weight);
  return out;
}

void QuantileSketch::save_state(StateWriter& w) const {
  canonicalize();
  w.u32(compression_);
  w.u64(count_);
  w.f64(min_);
  w.f64(max_);
  w.u64(centroids_.size());
  for (const Centroid& c : centroids_) {
    w.f64(c.mean);
    w.u64(c.weight);
  }
}

Status QuantileSketch::load_state(StateReader& r) {
  std::uint32_t compression = 0;
  if (Status st = r.u32(compression); !st.ok()) return st;
  if (compression == 0) {
    return Status::corruption("QuantileSketch: zero compression");
  }
  if (Status st = r.u64(count_); !st.ok()) return st;
  if (Status st = r.f64(min_); !st.ok()) return st;
  if (Status st = r.f64(max_); !st.ok()) return st;
  std::uint64_t n = 0;
  if (Status st = r.u64(n); !st.ok()) return st;
  std::vector<Centroid> centroids;
  std::uint64_t weight_sum = 0;
  centroids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Centroid c;
    if (Status st = r.f64(c.mean); !st.ok()) return st;
    if (Status st = r.u64(c.weight); !st.ok()) return st;
    weight_sum += c.weight;
    centroids.push_back(c);
  }
  if (weight_sum != count_) {
    return Status::corruption(
        "QuantileSketch: centroid weights do not sum to the count");
  }
  compression_ = compression;
  centroids_ = std::move(centroids);
  buffer_.clear();
  return Status::ok_status();
}

// ---------------------------------------------------------------------------
// StreamingHistogram

StreamingHistogram::StreamingHistogram(double lo, double growth,
                                       std::size_t buckets)
    : growth_(growth) {
  if (!(lo > 0.0)) {
    throw std::invalid_argument("StreamingHistogram: lo must be > 0");
  }
  if (!(growth > 1.0)) {
    throw std::invalid_argument("StreamingHistogram: growth must be > 1");
  }
  if (buckets == 0) {
    throw std::invalid_argument("StreamingHistogram: buckets == 0");
  }
  edges_.reserve(buckets + 1);
  double edge = lo;
  for (std::size_t i = 0; i <= buckets; ++i) {
    edges_.push_back(edge);
    edge *= growth;  // repeated IEEE multiply: bit-identical everywhere
  }
  counts_.assign(buckets, 0);
}

void StreamingHistogram::add_weighted(double x, std::uint64_t weight) {
  total_ += weight;
  if (!(x >= edges_.front())) {  // below lo, zero, negative, or NaN
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  counts_[static_cast<std::size_t>(it - edges_.begin()) - 1] += weight;
}

bool StreamingHistogram::same_layout(const StreamingHistogram& other) const {
  return growth_ == other.growth_ && edges_.size() == other.edges_.size() &&
         edges_.front() == other.edges_.front();
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  // Empty operands merge as exact identities regardless of layout: a shard
  // that saw no devices contributes nothing, and an aggregate that hasn't
  // seen data yet adopts the first real shard's layout wholesale. Only two
  // non-empty sketches need comparable buckets.
  if (other.total_ == 0) return;
  if (total_ == 0) {
    *this = other;
    return;
  }
  if (!same_layout(other)) {
    throw std::invalid_argument(
        "StreamingHistogram::merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::string StreamingHistogram::ascii(std::size_t max_width) const {
  // Render only the occupied bucket range (the default layout spans 19
  // decades; most of it is empty for any one metric).
  std::size_t first = counts_.size();
  std::size_t last = 0;
  std::uint64_t peak = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    first = std::min(first, i);
    last = std::max(last, i);
    peak = std::max(peak, counts_[i]);
  }
  peak = std::max({peak, underflow_, overflow_});
  std::ostringstream out;
  const auto bar = [&](std::uint64_t c) {
    return std::string(static_cast<std::size_t>(
                           static_cast<double>(c) / static_cast<double>(peak) *
                           static_cast<double>(max_width)),
                       '#');
  };
  if (underflow_ > 0) {
    out << "(-inf, " << edges_.front() << ") " << bar(underflow_) << " "
        << underflow_ << "\n";
  }
  for (std::size_t i = first; i <= last && first < counts_.size(); ++i) {
    out << "[" << edges_[i] << ", " << edges_[i + 1] << ") "
        << bar(counts_[i]) << " " << counts_[i] << "\n";
  }
  if (overflow_ > 0) {
    out << "[" << edges_.back() << ", inf) " << bar(overflow_) << " "
        << overflow_ << "\n";
  }
  return out.str();
}

void StreamingHistogram::save_state(StateWriter& w) const {
  w.f64(edges_.front());
  w.f64(growth_);
  w.u64(counts_.size());
  for (std::uint64_t c : counts_) w.u64(c);
  w.u64(underflow_);
  w.u64(overflow_);
  w.u64(total_);
}

Status StreamingHistogram::load_state(StateReader& r) {
  double lo = 0;
  double growth = 0;
  std::uint64_t buckets = 0;
  if (Status st = r.f64(lo); !st.ok()) return st;
  if (Status st = r.f64(growth); !st.ok()) return st;
  if (Status st = r.u64(buckets); !st.ok()) return st;
  if (!(lo > 0.0) || !(growth > 1.0) || buckets == 0) {
    return Status::corruption("StreamingHistogram: invalid layout");
  }
  StreamingHistogram fresh(lo, growth, static_cast<std::size_t>(buckets));
  for (std::uint64_t& c : fresh.counts_) {
    if (Status st = r.u64(c); !st.ok()) return st;
  }
  if (Status st = r.u64(fresh.underflow_); !st.ok()) return st;
  if (Status st = r.u64(fresh.overflow_); !st.ok()) return st;
  if (Status st = r.u64(fresh.total_); !st.ok()) return st;
  *this = std::move(fresh);
  return Status::ok_status();
}

// ---------------------------------------------------------------------------
// WeightedReservoir

WeightedReservoir::WeightedReservoir(std::size_t capacity, std::uint64_t salt)
    : capacity_(capacity), salt_(salt) {
  if (capacity_ == 0) {
    throw std::invalid_argument("WeightedReservoir: capacity must be > 0");
  }
}

namespace {

/// Hash-uniform in [0, 1): the item's priority seed. Pure integer mixing
/// plus one exact scale, so identical on every platform.
double priority_uniform(std::uint64_t salt, std::uint64_t id) {
  SplitMix64 mix(salt ^ (id * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

bool priority_before(const WeightedReservoir::Item& a,
                     const WeightedReservoir::Item& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.id < b.id;
}

}  // namespace

void WeightedReservoir::add(std::uint64_t id, double value, double weight) {
  if (!(weight > 0.0)) {
    throw std::invalid_argument("WeightedReservoir::add: weight must be > 0");
  }
  ++seen_;
  const double u = priority_uniform(salt_, id);
  Item item;
  item.priority = weight == 1.0 ? u : std::pow(u, 1.0 / weight);
  item.id = id;
  item.value = value;
  const auto pos =
      std::lower_bound(items_.begin(), items_.end(), item, priority_before);
  if (pos != items_.begin()) {
    const Item& prev = *(pos - 1);
    if (prev.priority == item.priority && prev.id == item.id) return;
  }
  items_.insert(pos, item);
  truncate();
}

void WeightedReservoir::merge(const WeightedReservoir& other) {
  if (capacity_ != other.capacity_ || salt_ != other.salt_) {
    throw std::invalid_argument(
        "WeightedReservoir::merge: capacity/salt mismatch — priorities are "
        "not comparable");
  }
  for (const Item& item : other.items_) {
    const auto pos =
        std::lower_bound(items_.begin(), items_.end(), item, priority_before);
    if (pos != items_.begin()) {
      const Item& prev = *(pos - 1);
      if (prev.priority == item.priority && prev.id == item.id) continue;
    }
    items_.insert(pos, item);
  }
  seen_ += other.seen_;
  truncate();
}

void WeightedReservoir::truncate() {
  if (items_.size() > capacity_) items_.resize(capacity_);
}

void WeightedReservoir::save_state(StateWriter& w) const {
  w.u64(capacity_);
  w.u64(salt_);
  w.u64(seen_);
  w.u64(items_.size());
  for (const Item& item : items_) {
    w.f64(item.priority);
    w.u64(item.id);
    w.f64(item.value);
  }
}

Status WeightedReservoir::load_state(StateReader& r) {
  std::uint64_t capacity = 0;
  if (Status st = r.u64(capacity); !st.ok()) return st;
  if (capacity == 0) {
    return Status::corruption("WeightedReservoir: zero capacity");
  }
  if (Status st = r.u64(salt_); !st.ok()) return st;
  if (Status st = r.u64(seen_); !st.ok()) return st;
  std::uint64_t n = 0;
  if (Status st = r.u64(n); !st.ok()) return st;
  if (n > capacity) {
    return Status::corruption("WeightedReservoir: more items than capacity");
  }
  capacity_ = static_cast<std::size_t>(capacity);
  items_.clear();
  items_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Item item;
    if (Status st = r.f64(item.priority); !st.ok()) return st;
    if (Status st = r.u64(item.id); !st.ok()) return st;
    if (Status st = r.f64(item.value); !st.ok()) return st;
    items_.push_back(item);
  }
  return Status::ok_status();
}

// ---------------------------------------------------------------------------
// StreamSummary

void StreamSummary::save_state(StateWriter& w) const {
  moments_.save_state(w);
  sketch_.save_state(w);
}

Status StreamSummary::load_state(StateReader& r) {
  if (Status st = moments_.load_state(r); !st.ok()) return st;
  return sketch_.load_state(r);
}

}  // namespace nvmsec
