#include "util/arena.h"

#include <algorithm>
#include <bit>

namespace nvmsec {

Arena::Arena(std::size_t initial_capacity) {
  if (initial_capacity > 0) add_block(initial_capacity);
}

void Arena::add_block(std::size_t min_bytes) {
  // Geometric growth over the arena's total footprint keeps the number of
  // blocks (and mallocs) logarithmic in the peak working-set size.
  const std::size_t target =
      std::max({min_bytes, kMinBlockBytes, capacity_});
  Block b;
  b.data = std::make_unique<std::byte[]>(target);
  b.size = target;
  capacity_ += target;
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (blocks_.empty()) add_block(bytes + align);
  for (;;) {
    Block& b = blocks_[current_];
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t aligned =
        (b.used + (align - 1)) & ~(align - 1);
    // `base` is new[]-aligned (max_align_t); offset alignment suffices.
    (void)base;
    const std::size_t want = bytes == 0 ? std::max<std::size_t>(align, 1)
                                        : bytes;
    if (aligned + want <= b.size) {
      used_ += (aligned - b.used) + want;
      b.used = aligned + want;
      return b.data.get() + aligned;
    }
    if (current_ + 1 < blocks_.size()) {
      ++current_;
      continue;
    }
    add_block(want + align);
  }
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Coalesce so the steady state is one contiguous block: drop every
    // block and re-allocate their combined size in a single piece.
    const std::size_t total = capacity_;
    blocks_.clear();
    capacity_ = 0;
    add_block(total);
  }
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
  used_ = 0;
}

}  // namespace nvmsec
