// Crash-safe file writing: temp file + atomic rename.
//
// Every output the simulator produces (metrics, traces, snapshots,
// endurance maps, checkpoints) goes through this writer so a crashed or
// SIGKILLed run can never leave a truncated file under the final name: the
// data streams into "<path>.tmp.<pid>" and only commit() renames it into
// place (POSIX rename(2) is atomic within a filesystem). A writer destroyed
// without commit() removes its temp file.
#pragma once

#include <fstream>
#include <string>

#include "util/status.h"

namespace nvmsec {

class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// False when the temp file could not be opened; open_status() says why.
  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] Status open_status() const { return open_status_; }

  /// The stream to write into (valid only while is_open()).
  [[nodiscard]] std::ofstream& stream() { return out_; }

  /// Temp path the data is currently streaming into (for diagnostics).
  [[nodiscard]] const std::string& temp_path() const { return temp_path_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Flush, close and rename into place. Returns a Status describing the
  /// first failure (stream error, close failure, rename failure). After a
  /// successful commit the writer is inert.
  Status commit();

  /// Drop the temp file without renaming (also done by the destructor).
  void discard();

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  Status open_status_;
  bool done_{false};
};

/// Convenience: atomically write `contents` to `path`.
Status atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace nvmsec
