// Figure 1 / headline claim: "the lifetime of NVMs under UAA is reduced to
// 4.1% of the ideal lifetime" (paper abstract, §1, §3.1).
//
// Runs the Uniform Address Attack against an unprotected full-size device
// (1 GB, 2048 regions) on the event-driven engine and prints the measured
// normalized lifetime next to the paper's 4.1% and Eq. (5)'s linear-model
// prediction for the realized endurance spread.

#include <iostream>

#include "bench_common.h"
#include "core/analytic.h"
#include "nvm/endurance_map.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Figure 1: ideal vs UAA lifetime on an unprotected device");
  cli.add_flag("seeds", "number of endurance-map draws to average", "5");
  cli.add_switch("histogram", "print the endurance distribution (the red "
                              "curve of Fig. 1)");
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));

  ExperimentConfig config;  // paper 1 GB geometry, UAA, event engine
  config.spare_scheme = "none";

  Table table({"seed", "normalized lifetime (%)", "realized q = EH/EL",
               "Eq.(5) linear-model (%)"});
  table.set_title(
      "Figure 1 - lifetime of the ideal scenario (100%) vs UAA, unprotected "
      "1 GB / 2048-region bank");

  RunningStats measured;
  for (int s = 0; s < seeds; ++s) {
    config.seed = 42 + static_cast<std::uint64_t>(s);
    const LifetimeResult r = run_experiment(config);
    measured.add(r.normalized);

    // Rebuild the same endurance map to report the realized spread and the
    // linear-model prediction Eq. (5) for it.
    Rng rng(config.seed);
    const EnduranceModel model(config.endurance);
    const EnduranceMap map =
        EnduranceMap::from_model(config.geometry, model, rng);
    const double q = map.max_line_endurance() / map.min_line_endurance();
    LinearLifetimeModel lin;
    lin.num_lines = static_cast<double>(config.geometry.num_lines());
    lin.e_low = map.min_line_endurance();
    lin.e_high = map.max_line_endurance();
    table.add_row({Cell{static_cast<std::int64_t>(config.seed)},
                   Cell{bench::pct(r.normalized)}, Cell{q},
                   Cell{bench::pct(lin.uaa_fraction_of_ideal())}});
  }
  table.print(std::cout);

  if (cli.get_bool("histogram")) {
    Rng rng(42);
    const EnduranceModel model(config.endurance);
    const EnduranceMap map =
        EnduranceMap::from_model(config.geometry, model, rng);
    std::vector<double> region_endurance;
    region_endurance.reserve(config.geometry.num_regions());
    for (std::uint64_t r = 0; r < config.geometry.num_regions(); ++r) {
      region_endurance.push_back(
          map.region_endurance(RegionId{r}) / config.endurance.endurance_at_mean);
    }
    Histogram hist(0.0, 10.0, 25);
    hist.add_all(region_endurance);
    std::cout << "region endurance distribution (x = endurance / endurance "
                 "at mean current; Fig. 1's red curve; values beyond 10 are "
                 "clamped into the last bucket):\n"
              << hist.ascii(40) << "\n";
  }

  std::cout << "mean measured UAA lifetime: " << bench::pct(measured.mean())
            << "% of ideal  (paper: 4.1%)\n"
            << "paper spot check: \"If EH is 50 times more than EL, LUAA "
               "will be only 3.9%\"; Eq.(5) at q=50 gives "
            << bench::pct(2.0 / 51.0) << "%\n";
  return 0;
}
