// Ablation bench (DESIGN.md A1): how much does each of Max-WE's design
// choices contribute?
//
//   1. weak-priority spare selection  vs  random spare regions,
//   2. weak-strong matching           vs  identity (like-order) matching,
//   3. sensitivity to intra-region endurance jitter the manufacture-time
//      map cannot see (region-level mapping's blind spot).
//
// All runs: UAA on the full-size device, 10% spares, event-driven engine.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/maxwe.h"
#include "sim/event_sim.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace nvmsec;

double lifetime_with(const MaxWeParams& params, double jitter_sigma,
                     std::uint64_t seed) {
  Rng rng(seed);
  const EnduranceModel model;
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::paper_1gb(), model, rng));
  if (jitter_sigma > 0) map->apply_line_jitter(jitter_sigma, rng);
  auto scheme = make_maxwe(map, params);
  UniformEventSimulator sim(map, *scheme);
  return sim.run().normalized;
}

double averaged(const MaxWeParams& params, double jitter, int seeds) {
  RunningStats stats;
  for (int s = 0; s < seeds; ++s) {
    stats.add(lifetime_with(params, jitter, 42 + static_cast<std::uint64_t>(s)));
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation: Max-WE design choices under UAA (10% spares)");
  cli.add_flag("seeds", "endurance-map draws to average", "3");
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));

  Table strategies({"variant", "lifetime (%)"});
  strategies.set_title("Ablation 1/2 - allocation-strategy variants");
  strategies.set_precision(1);

  MaxWeParams full;  // paper design
  strategies.add_row({Cell{std::string{"Max-WE (weak-priority + weak-strong)"}},
                      Cell{bench::pct(averaged(full, 0.0, seeds))}});

  MaxWeParams identity = full;
  identity.matching = MatchingPolicy::kIdentity;
  strategies.add_row({Cell{std::string{"identity matching"}},
                      Cell{bench::pct(averaged(identity, 0.0, seeds))}});

  MaxWeParams random_sel = full;
  random_sel.selection = SpareSelectionPolicy::kRandomRegions;
  strategies.add_row({Cell{std::string{"random spare selection"}},
                      Cell{bench::pct(averaged(random_sel, 0.0, seeds))}});

  MaxWeParams both = random_sel;
  both.matching = MatchingPolicy::kIdentity;
  strategies.add_row({Cell{std::string{"random selection + identity matching"}},
                      Cell{bench::pct(averaged(both, 0.0, seeds))}});
  strategies.print(std::cout);

  // With the default 90/10 SWR/ASR split, a weak chain that dies early is
  // silently rescued from the ASR pool, hiding most of the matching
  // benefit. At 100% SWR the chains bind — this is where weak-strong
  // matching earns its keep.
  Table binding({"variant (100% SWR, no ASR fallback)", "lifetime (%)"});
  binding.set_title("Ablation 2b - matching policy where chains bind");
  binding.set_precision(1);
  for (const auto matching :
       {MatchingPolicy::kWeakStrong, MatchingPolicy::kIdentity}) {
    MaxWeParams p;
    p.swr_fraction = 1.0;
    p.matching = matching;
    binding.add_row(
        {Cell{std::string{matching == MatchingPolicy::kWeakStrong
                              ? "weak-strong matching"
                              : "identity matching"}},
         Cell{bench::pct(averaged(p, 0.0, seeds))}});
  }
  binding.print(std::cout);

  Table jitter({"intra-region jitter sigma", "Max-WE (%)",
                "all-ASR Max-WE q=0 (%)"});
  jitter.set_title(
      "Ablation 3 - sensitivity to endurance the region map cannot see");
  jitter.set_precision(1);
  for (double sigma : {0.0, 0.1, 0.2, 0.3}) {
    MaxWeParams all_asr = full;
    all_asr.swr_fraction = 0.0;
    jitter.add_row({Cell{sigma},
                    Cell{bench::pct(averaged(full, sigma, seeds))},
                    Cell{bench::pct(averaged(all_asr, sigma, seeds))}});
  }
  jitter.print(std::cout);
  std::cout << "reading: weak-strong matching and weak-priority selection "
               "should each cost lifetime when removed; rising jitter "
               "erodes the region-mapped (90% SWR) design faster than the "
               "line-mapped (q=0) one.\n";
  return 0;
}
