// Endurance-model calibration sweep (EXPERIMENTS.md, "Endurance model
// calibration").
//
// The paper's printed formula (E ~ I^-12), its §2.1 worked example
// (implies E ~ I^-6) and its headline UAA measurement (4.1% of ideal,
// implying an exponent near 8) are mutually inconsistent; this bench makes
// the trade-off visible by sweeping the exponent and reporting the four
// §5.3.1 quantities at each value. The library defaults to k = 8.

#include <iostream>

#include "bench_common.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Calibration: endurance power-law exponent sweep under UAA");
  cli.add_flag("seeds", "endurance-map draws to average", "2");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const ParallelOptions jobs = bench::jobs_from_cli(cli);

  Table table({"exponent k (E ~ I^-k)", "unprotected (%)", "Max-WE (%)",
               "PCD (%)", "PS-worst (%)"});
  table.set_title(
      "Endurance-model calibration, UAA, 1 GB / 2048 regions, 10% spares "
      "(paper targets: 4.1 / 43.1 / 30.6 / 28.5)");
  table.set_precision(1);

  for (double k : {6.0, 7.0, 8.0, 9.0, 10.0, 12.0}) {
    ExperimentConfig base;
    base.endurance.endurance_exponent = k;
    auto lifetime = [&](const std::string& scheme) {
      ExperimentConfig c = base;
      c.spare_scheme = scheme;
      return bench::pct(bench::mean_normalized_lifetime(c, seeds, 42, jobs));
    };
    table.add_row({Cell{k}, Cell{lifetime("none")}, Cell{lifetime("maxwe")},
                   Cell{lifetime("pcd")}, Cell{lifetime("ps-worst")}});
  }
  table.print(std::cout);
  std::cout << "k=6 matches §2.1's \"56x for 512 domains\" example; k=8 "
               "(library default) matches the 4.1% headline while keeping "
               "the §5.3.1 ordering; the printed formula's k=12 matches "
               "neither.\n";
  return 0;
}
