// Figure 8: "The lifetime comparison of Max-WE, PCD/PS and PS-worst under
// BPA" across the four wear levelers, plus the geometric mean.
//
// Paper Gmeans: Max-WE 47.4%, PCD/PS 41.2%, PS-worst 25.6%; Max-WE beats
// PCD/PS by 14.8% and PS-worst by 85.0%.

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "wearlevel/wear_leveler.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Figure 8: Max-WE vs PCD/PS vs PS-worst under BPA");
  cli.add_flag("seeds", "runs to average per point", "2");
  cli.add_switch("csv", "emit CSV instead of the ASCII table");
  cli.add_flag("lines", "scaled device size in lines", "2048");
  cli.add_flag("regions", "scaled region count", "128");
  cli.add_flag("endurance", "mean endurance (scaled)", "50000");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const ParallelOptions jobs = bench::jobs_from_cli(cli);

  const std::vector<std::pair<std::string, std::string>> schemes = {
      {"ps-worst", "PS-worst"}, {"pcd", "PCD/PS"}, {"maxwe", "Max-WE"}};

  std::map<std::string, std::vector<double>> lifetimes;
  Table table({"wear leveler", "PS-worst", "PCD/PS", "Max-WE"});
  table.set_title(
      "Figure 8 - lifetime (%) under BPA, 10% spares, by wear leveler");
  table.set_precision(1);

  for (const std::string& wl : paper_wear_levelers()) {
    std::vector<Cell> row{Cell{wl}};
    for (const auto& [scheme, label] : schemes) {
      ExperimentConfig config = scaled_stochastic_config(
          static_cast<std::uint64_t>(cli.get_int("lines")),
          static_cast<std::uint64_t>(cli.get_int("regions")),
          cli.get_double("endurance"));
      config.attack = "bpa";
      config.wear_leveler = wl;
      config.spare_scheme = scheme;
      const double lifetime =
          bench::mean_normalized_lifetime(config, seeds, 7, jobs);
      lifetimes[scheme].push_back(lifetime);
      row.push_back(Cell{bench::pct(lifetime)});
    }
    table.add_row(std::move(row));
  }
  {
    std::vector<Cell> row{Cell{std::string{"Gmean"}}};
    for (const auto& [scheme, label] : schemes) {
      row.push_back(Cell{bench::pct(geometric_mean(lifetimes[scheme]))});
    }
    table.add_row(std::move(row));
  }
  if (cli.get_bool("csv")) {
    std::cout << table.csv();
  } else {
    table.print(std::cout);
  }

  const double g_maxwe = geometric_mean(lifetimes["maxwe"]);
  const double g_pcd = geometric_mean(lifetimes["pcd"]);
  const double g_worst = geometric_mean(lifetimes["ps-worst"]);
  std::cout << "Gmean: Max-WE " << bench::pct(g_maxwe) << "%, PCD/PS "
            << bench::pct(g_pcd) << "%, PS-worst " << bench::pct(g_worst)
            << "%  (paper: 47.4, 41.2, 25.6)\n"
            << "Max-WE vs PCD/PS: +" << 100 * (g_maxwe / g_pcd - 1)
            << "% (paper +14.8%);  vs PS-worst: +"
            << 100 * (g_maxwe / g_worst - 1) << "% (paper +85.0%)\n";
  return 0;
}
