// Figure 7: "The lifetime of Max-WE with various percentage of SWRs under
// BPA" for the four wear-leveling schemes (TLSR, PCM-S, BWL, WAWL).
//
// Paper shape: lifetime is highest when all spare lines are line-mapped
// additional spare regions (0% SWRs: 42.7 / 42.8 / 53.5 / 72.5% for
// TLSR / PCM-S / BWL / WAWL) and declines as the SWR share grows; at the
// chosen 90% operating point BWL and WAWL lose only ~1.1%.
//
// Runs on the scaled stochastic configuration (normalized lifetime is
// endurance-scale-free; see EXPERIMENTS.md "Scaling" for the invariants).

#include <iostream>

#include "bench_common.h"
#include "util/cli.h"
#include "util/table.h"
#include "wearlevel/wear_leveler.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Figure 7: Max-WE lifetime vs SWR share under BPA");
  cli.add_flag("seeds", "runs to average per point", "2");
  cli.add_switch("csv", "emit CSV instead of the ASCII table");
  cli.add_flag("lines", "scaled device size in lines", "2048");
  cli.add_flag("regions", "scaled region count", "128");
  cli.add_flag("endurance", "mean endurance (scaled)", "50000");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const ParallelOptions jobs = bench::jobs_from_cli(cli);

  const double swr_shares[] = {0.0, 0.2, 0.6, 0.8, 0.9, 1.0};

  Table table({"SWR share of spare lines (%)", "TLSR", "PCM-S", "BWL",
               "WAWL"});
  table.set_title(
      "Figure 7 - Max-WE lifetime (%) under BPA vs SWR share, 10% spares");
  table.set_precision(1);

  for (double q : swr_shares) {
    std::vector<Cell> row{Cell{100.0 * q}};
    for (const std::string& wl : paper_wear_levelers()) {
      ExperimentConfig config = scaled_stochastic_config(
          static_cast<std::uint64_t>(cli.get_int("lines")),
          static_cast<std::uint64_t>(cli.get_int("regions")),
          cli.get_double("endurance"));
      config.attack = "bpa";
      config.wear_leveler = wl;
      config.spare_scheme = "maxwe";
      config.swr_fraction = q;
      row.push_back(Cell{bench::pct(
          bench::mean_normalized_lifetime(config, seeds, 7, jobs))});
    }
    table.add_row(std::move(row));
  }
  if (cli.get_bool("csv")) {
    std::cout << table.csv();
  } else {
    table.print(std::cout);
  }
  std::cout << "paper series at 0% SWRs: TLSR 42.7, PCM-S 42.8, BWL 53.5, "
               "WAWL 72.5 (%); shape target: monotone decline with SWR "
               "share, small loss at 90% for BWL/WAWL.\n";
  return 0;
}
