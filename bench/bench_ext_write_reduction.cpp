// Extension bench (§3.3.2 / §2.2.2): write reduction and salvaging under
// benign vs adversarial data, at cell granularity.
//
// Reproduces the paper's two prose claims as measurements:
//  * "For Flip-N-Write ... an adversary can always write 0x0000 and 0x5555
//    to the same address in turn" — FNW's lifetime gain over differential
//    write vanishes under that pattern;
//  * ECP's per-line salvaging buys only a bounded lifetime slice ("ECP can
//    correct six hard failures per line"), far from a spare-line scheme's
//    multiples.

#include <iostream>

#include "salvage/line_sim.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Extension: write-reduction codecs and ECP at cell level");
  cli.add_flag("trials", "independent lines per cell", "6");
  cli.add_flag("cell-endurance", "mean cell endurance (scaled)", "2000");
  if (!cli.parse(argc, argv)) return 0;
  const auto trials = static_cast<std::uint32_t>(cli.get_int("trials"));

  LineSimConfig config;
  config.cell_endurance_mean = cli.get_double("cell-endurance");
  config.cell_endurance_sigma = 0.15;

  Rng rng(42);

  {
    Table table({"payload", "full-write", "differential", "flip-n-write",
                 "FNW gain over differential"});
    table.set_title(
        "Write-reduction codecs - line lifetime in writes (cell-level sim)");
    table.set_precision(2);
    for (const std::string payload_name :
         {"random", "complement", "fnw-adversarial"}) {
      std::vector<Cell> row{Cell{payload_name}};
      double diff_life = 0, fnw_life = 0;
      for (const std::string codec_name : {"full", "differential", "fnw"}) {
        auto payload = make_payload(payload_name);
        auto codec = make_codec(codec_name);
        const auto r =
            average_line_lifetime(*codec, *payload, config, rng, trials);
        row.push_back(Cell{static_cast<std::int64_t>(r.writes_to_failure)});
        if (codec_name == "differential") {
          diff_life = static_cast<double>(r.writes_to_failure);
        }
        if (codec_name == "fnw") {
          fnw_life = static_cast<double>(r.writes_to_failure);
        }
      }
      row.push_back(Cell{fnw_life / diff_life});
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "shape target: FNW gain > 1 for benign data, ~1.0 for the "
                 "0x0000/0x5555 alternation (§3.3.2).\n\n";
  }

  {
    Table table({"ECP entries", "lifetime (writes)", "gain vs no ECP"});
    table.set_title(
        "ECP salvaging - line lifetime under always-program stress");
    table.set_precision(2);
    double base = 0;
    for (std::uint32_t entries : {0u, 1u, 2u, 4u, 6u, 12u}) {
      auto payload = make_random_payload();
      auto codec = make_full_write_codec();
      LineSimConfig c = config;
      c.ecp_entries = entries;
      const auto r =
          average_line_lifetime(*codec, *payload, c, rng, trials);
      if (entries == 0) base = static_cast<double>(r.writes_to_failure);
      table.add_row({Cell{static_cast<std::int64_t>(entries)},
                     Cell{static_cast<std::int64_t>(r.writes_to_failure)},
                     Cell{static_cast<double>(r.writes_to_failure) / base}});
    }
    table.print(std::cout);
    std::cout << "shape target: monotone but saturating gain in the few-"
                 "percent range — §2.2.2's argument that salvaging cannot "
                 "counter wear-out attacks the way spare-line replacement "
                 "does (Max-WE: multiple-x, see bench_tbl_uaa_lifetime).\n";
  }
  return 0;
}
