// Figure 6: "The lifetime of Max-WE with various percentage of spare lines
// under UAA" — full-size device (1 GB, 2048 regions), event-driven engine.
//
// Paper series: {0, 1, 10, 20, 30, 40, 50}% spares ->
//               {4.1, 14.0, 43.1, 57.9, 74.1, 86.9, 87.4}% of ideal.

#include <iostream>

#include "bench_common.h"
#include "core/analytic.h"
#include "nvm/endurance_map.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Figure 6: Max-WE lifetime vs spare-line percentage (UAA)");
  cli.add_flag("seeds", "endurance-map draws to average", "3");
  cli.add_switch("csv", "emit CSV instead of the ASCII table");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const ParallelOptions jobs = bench::jobs_from_cli(cli);

  const double paper[] = {4.1, 14.0, 43.1, 57.9, 74.1, 86.9, 87.4};
  const double fractions[] = {0.0, 0.01, 0.10, 0.20, 0.30, 0.40, 0.50};

  Table table({"spare lines (% of capacity)", "measured lifetime (%)",
               "paper (%)", "Eq.(6) linear model (%)"});
  table.set_title(
      "Figure 6 - Max-WE lifetime under UAA vs spare-line percentage "
      "(1 GB / 2048 regions, 90% SWR split)");
  table.set_precision(1);

  // Eq. (6) reference column: the linear endurance model with the realized
  // EH/EL of the default-seed endurance map.
  Rng rng(42);
  ExperimentConfig reference;
  const EnduranceModel model(reference.endurance);
  const EnduranceMap map =
      EnduranceMap::from_model(reference.geometry, model, rng);

  for (std::size_t i = 0; i < std::size(fractions); ++i) {
    ExperimentConfig config;  // paper geometry, UAA, event engine
    config.spare_fraction = fractions[i];
    // 0% spares has no scheme to run; use the unprotected baseline.
    config.spare_scheme = fractions[i] == 0.0 ? "none" : "maxwe";
    const double lifetime =
        bench::mean_normalized_lifetime(config, seeds, 42, jobs);

    LinearLifetimeModel lin;
    lin.num_lines = static_cast<double>(config.geometry.num_lines());
    lin.e_low = map.min_line_endurance();
    lin.e_high = map.max_line_endurance();
    lin.spare_lines = static_cast<double>(config.spare_lines());
    const double eq6 = lin.maxwe() / lin.ideal();

    table.add_row({Cell{100.0 * fractions[i]}, Cell{bench::pct(lifetime)},
                   Cell{paper[i]}, Cell{bench::pct(eq6)}});
  }
  if (cli.get_bool("csv")) {
    std::cout << table.csv();
  } else {
    table.print(std::cout);
  }
  std::cout << "note: the paper chooses 10% spares as the operating point "
               "(\"to ensure both security and durability with low "
               "overhead\", §5.2.1).\n";
  return 0;
}
