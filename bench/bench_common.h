// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/experiment.h"
#include "util/stats.h"

namespace nvmsec::bench {

/// Average a lifetime experiment over `seeds` seeds starting at base_seed.
inline double mean_normalized_lifetime(ExperimentConfig config, int seeds,
                                       std::uint64_t base_seed = 42) {
  RunningStats stats;
  for (int s = 0; s < seeds; ++s) {
    config.seed = base_seed + static_cast<std::uint64_t>(s);
    stats.add(run_experiment(config).normalized);
  }
  return stats.mean();
}

/// Percentage formatting convention used in every table (paper reports
/// normalized lifetime in percent).
inline double pct(double normalized) { return 100.0 * normalized; }

}  // namespace nvmsec::bench
