// Shared helpers for the figure/table reproduction benches.
//
// Every sweep helper here routes through sim/parallel.h: runs fan out
// across `--jobs` workers, results come back in input order, and the
// reduction happens on the calling thread — so a bench's numbers are
// bit-identical at any job count (see docs/architecture.md, "Threading
// model & determinism").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/parallel.h"
#include "util/cli.h"
#include "util/sketch.h"

namespace nvmsec::bench {

/// Register the shared --jobs flag (0 = all hardware threads; 1 = the
/// serial code path). Call before cli.parse().
inline void add_jobs_flag(CliParser& cli) {
  cli.add_flag("jobs", "worker threads (0 = all cores, 1 = serial)", "0");
}

/// Read --jobs back into ParallelOptions.
inline ParallelOptions jobs_from_cli(const CliParser& cli) {
  ParallelOptions options;
  options.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  return options;
}

/// Distribution of normalized lifetime across a seed sweep: exact moments
/// plus sketch percentiles, built on the same StreamSummary the fleet
/// aggregates use. The reduction is a deterministic input-order
/// (seed-order) pass over the results, so the summary — sketch centroids
/// included — is bit-identical at any job count.
struct SeedSweepStats {
  StreamSummary summary;
  int seeds{0};

  [[nodiscard]] double mean() const { return summary.mean(); }
  [[nodiscard]] double stddev() const { return summary.stddev(); }
  [[nodiscard]] double min() const { return summary.min(); }
  [[nodiscard]] double max() const { return summary.max(); }
  /// Sketch percentile, q in [0, 1] (exact for small sweeps, where every
  /// seed fits its own centroid).
  [[nodiscard]] double quantile(double q) const { return summary.quantile(q); }
};

/// Run `seeds` experiments (base_seed, base_seed+1, ...) and reduce in seed
/// order.
inline SeedSweepStats lifetime_over_seeds(
    ExperimentConfig config, int seeds, std::uint64_t base_seed = 42,
    const ParallelOptions& options = {}) {
  std::vector<ExperimentConfig> configs(static_cast<std::size_t>(seeds),
                                        config);
  for (int s = 0; s < seeds; ++s) {
    configs[static_cast<std::size_t>(s)].seed =
        base_seed + static_cast<std::uint64_t>(s);
  }
  const std::vector<LifetimeResult> results =
      run_experiments(configs, options);
  SeedSweepStats stats;
  stats.seeds = seeds;
  for (const LifetimeResult& r : results) stats.summary.add(r.normalized);
  return stats;
}

/// Average a lifetime experiment over `seeds` seeds starting at base_seed.
inline double mean_normalized_lifetime(ExperimentConfig config, int seeds,
                                       std::uint64_t base_seed = 42,
                                       const ParallelOptions& options = {}) {
  return lifetime_over_seeds(config, seeds, base_seed, options).mean();
}

/// Percentage formatting convention used in every table (paper reports
/// normalized lifetime in percent).
inline double pct(double normalized) { return 100.0 * normalized; }

}  // namespace nvmsec::bench
