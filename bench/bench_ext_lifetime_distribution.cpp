// Extension bench: lifetime *distributions*, not just means.
//
// The paper reports mean normalized lifetimes; a deployment decision also
// needs the spread — how bad is the unlucky device? This bench draws many
// endurance maps and reports percentiles of the normalized lifetime for
// the §5.3.1 schemes under UAA. Spare-line replacement should compress the
// distribution as well as shift it: the unprotected lifetime is dominated
// by one extreme-value draw (the weakest line), while Max-WE's is set by
// an order statistic deep in the distribution's bulk.

#include <iostream>
#include <vector>

#include "sim/experiment.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Extension: lifetime distribution across endurance-map draws");
  cli.add_flag("draws", "endurance-map draws per scheme", "30");
  cli.add_flag("lines", "device size in lines", "65536");
  cli.add_flag("regions", "region count", "512");
  if (!cli.parse(argc, argv)) return 0;
  const int draws = static_cast<int>(cli.get_int("draws"));

  Table table({"scheme", "p5 (%)", "median (%)", "p95 (%)", "mean (%)",
               "rel. spread (p95-p5)/median"});
  table.set_title("Normalized lifetime distribution under UAA, 10% spares, " +
                  std::to_string(draws) + " endurance-map draws");
  table.set_precision(2);

  for (const std::string scheme : {"none", "ps-worst", "pcd", "maxwe"}) {
    std::vector<double> lifetimes;
    lifetimes.reserve(static_cast<std::size_t>(draws));
    for (int d = 0; d < draws; ++d) {
      ExperimentConfig c;
      c.geometry = DeviceGeometry::scaled(
          static_cast<std::uint64_t>(cli.get_int("lines")),
          static_cast<std::uint64_t>(cli.get_int("regions")));
      c.endurance.endurance_at_mean = 1e6;
      c.spare_fraction = 0.10;
      c.spare_scheme = c.spare_lines() == 0 ? "none" : scheme;
      if (scheme == "none") c.spare_scheme = "none";
      c.seed = 1000 + static_cast<std::uint64_t>(d);
      lifetimes.push_back(100.0 * run_experiment(c).normalized);
    }
    const double p5 = percentile(lifetimes, 5);
    const double p50 = percentile(lifetimes, 50);
    const double p95 = percentile(lifetimes, 95);
    table.add_row({Cell{scheme}, Cell{p5}, Cell{p50}, Cell{p95},
                   Cell{mean(lifetimes)}, Cell{(p95 - p5) / p50}});
  }
  table.print(std::cout);
  std::cout << "shape target: Max-WE both shifts the distribution up and "
               "tightens it relative to the unprotected device (the min of "
               "~4M draws varies a lot; the 20th-percentile order statistic "
               "barely moves).\n";
  return 0;
}
