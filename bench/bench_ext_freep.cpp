// Extension bench (§2.2.2): FREE-p vs Max-WE — lifetime AND translation
// latency.
//
// FREE-p spends no SRAM but walks pointer chains through the array;
// Max-WE spends 0.16 MB of SRAM for O(1) translation. This bench runs both
// to failure under UAA at the same spare budget and prices the difference
// with the latency model.

#include <iostream>
#include <memory>

#include "core/latency_model.h"
#include "core/maxwe.h"
#include "core/overhead.h"
#include "sim/event_sim.h"
#include "spare/freep.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Extension: FREE-p vs Max-WE, lifetime and latency");
  cli.add_flag("seeds", "endurance-map draws to average", "3");
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));

  const DeviceGeometry geometry = DeviceGeometry::paper_1gb();
  double freep_lifetime = 0, maxwe_lifetime = 0, freep_hops = 0;
  double freep_max_chain = 0;
  for (int s = 0; s < seeds; ++s) {
    Rng rng(42 + static_cast<std::uint64_t>(s));
    const EnduranceModel model;
    auto map = std::make_shared<EnduranceMap>(
        EnduranceMap::from_model(geometry, model, rng));
    const std::uint64_t spare_lines = geometry.num_lines() / 10;

    auto freep = std::make_unique<FreeP>(map, spare_lines);
    UniformEventSimulator sim_freep(map, *freep);
    freep_lifetime += sim_freep.run().normalized;
    freep_hops += freep->mean_pointer_hops();
    freep_max_chain =
        std::max(freep_max_chain, static_cast<double>(freep->max_chain_depth()));

    auto maxwe = make_maxwe(map, MaxWeParams{});
    UniformEventSimulator sim_maxwe(map, *maxwe);
    maxwe_lifetime += sim_maxwe.run().normalized;
  }
  freep_lifetime /= seeds;
  maxwe_lifetime /= seeds;
  freep_hops /= seeds;

  const LatencyModelParams latency;
  const TranslationLatency maxwe_lat = table_translation_latency(latency);
  const TranslationLatency freep_lat =
      pointer_chain_latency(latency, freep_hops);
  const auto overhead = mapping_overhead(
      MappingOverheadInputs::from_geometry(geometry, 0.10, 0.90));

  Table table({"scheme", "UAA lifetime (%)", "SRAM (MB)",
               "mean access latency (ns)", "latency overhead"});
  table.set_title(
      "FREE-p vs Max-WE at a 10% spare budget (latency: end-of-life "
      "average; FREE-p hops grow as lines fail)");
  table.set_precision(2);
  table.add_row({Cell{std::string{"FREE-p"}}, Cell{100 * freep_lifetime},
                 Cell{0.0}, Cell{freep_lat.mean_access_ns},
                 Cell{freep_lat.relative}});
  table.add_row({Cell{std::string{"Max-WE"}}, Cell{100 * maxwe_lifetime},
                 Cell{overhead.maxwe_total_mb()},
                 Cell{maxwe_lat.mean_access_ns}, Cell{maxwe_lat.relative}});
  table.print(std::cout);
  std::cout << "FREE-p mean pointer hops at death: " << freep_hops
            << " (max chain " << freep_max_chain
            << "); Max-WE keeps translation O(1) for " << std::fixed
            << overhead.maxwe_total_mb()
            << " MB of SRAM — §4.1's design argument, priced.\n";
  return 0;
}
