// §5.3.1's headline comparison under UAA at 10% spares (full-size device):
//   Max-WE 43.1% (9.5x), PCD/PS 30.6% (7.4x), PS-worst 28.5% (6.9x),
//   Max-WE beating PCD/PS by 40.7% and PS-worst by 51.1%.

#include <iostream>

#include "bench_common.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Table (§5.3.1): lifetime under UAA at 10% spares");
  cli.add_flag("seeds", "endurance-map draws to average", "3");
  cli.add_switch("csv", "emit CSV instead of the ASCII table");
  cli.add_flag("spare", "spare fraction of total capacity", "0.10");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const double spare = cli.get_double("spare");
  const ParallelOptions jobs = bench::jobs_from_cli(cli);

  ExperimentConfig base;  // paper geometry, UAA, event engine
  base.spare_fraction = spare;

  auto lifetime = [&](const std::string& scheme) {
    ExperimentConfig c = base;
    c.spare_scheme = scheme;
    return bench::lifetime_over_seeds(c, seeds, 42, jobs);
  };

  const bench::SeedSweepStats none = lifetime("none");
  struct Row {
    const char* name;
    bench::SeedSweepStats measured;
    double paper_pct;
    double paper_factor;
  };
  const Row rows[] = {
      {"unprotected", none, 4.1, 1.0},
      {"Max-WE", lifetime("maxwe"), 43.1, 9.5},
      {"PCD", lifetime("pcd"), 30.6, 7.4},
      {"PS (average)", lifetime("ps"), 30.6, 7.4},
      {"PS-worst", lifetime("ps-worst"), 28.5, 6.9},
  };

  Table table({"scheme", "lifetime (%)", "stddev (pp)", "min (%)", "max (%)",
               "improvement vs unprotected", "paper lifetime (%)",
               "paper improvement"});
  table.set_title("§5.3.1 - lifetime under UAA, spare capacity = " +
                  std::to_string(100 * spare) + "% of total, " +
                  std::to_string(seeds) + " seeds");
  table.set_precision(1);
  for (const Row& r : rows) {
    table.add_row({Cell{std::string{r.name}}, Cell{bench::pct(r.measured.mean())},
                   Cell{bench::pct(r.measured.stddev())},
                   Cell{bench::pct(r.measured.min())},
                   Cell{bench::pct(r.measured.max())},
                   Cell{r.measured.mean() / none.mean()}, Cell{r.paper_pct},
                   Cell{r.paper_factor}});
  }
  if (cli.get_bool("csv")) {
    std::cout << table.csv();
  } else {
    table.print(std::cout);
  }

  std::cout << "Max-WE vs PCD/PS: +"
            << 100.0 * (rows[1].measured.mean() / rows[2].measured.mean() - 1.0)
            << "% (paper: +40.7%); vs PS-worst: +"
            << 100.0 * (rows[1].measured.mean() / rows[4].measured.mean() - 1.0)
            << "% (paper: +51.1%)\n";
  return 0;
}
