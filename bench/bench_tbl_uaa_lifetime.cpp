// §5.3.1's headline comparison under UAA at 10% spares (full-size device):
//   Max-WE 43.1% (9.5x), PCD/PS 30.6% (7.4x), PS-worst 28.5% (6.9x),
//   Max-WE beating PCD/PS by 40.7% and PS-worst by 51.1%.

#include <iostream>

#include "bench_common.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Table (§5.3.1): lifetime under UAA at 10% spares");
  cli.add_flag("seeds", "endurance-map draws to average", "3");
  cli.add_switch("csv", "emit CSV instead of the ASCII table");
  cli.add_flag("spare", "spare fraction of total capacity", "0.10");
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const double spare = cli.get_double("spare");

  ExperimentConfig base;  // paper geometry, UAA, event engine
  base.spare_fraction = spare;

  auto lifetime = [&](const std::string& scheme) {
    ExperimentConfig c = base;
    c.spare_scheme = scheme;
    return bench::mean_normalized_lifetime(c, seeds);
  };

  const double none = lifetime("none");
  struct Row {
    const char* name;
    double measured;
    double paper_pct;
    double paper_factor;
  };
  const Row rows[] = {
      {"unprotected", none, 4.1, 1.0},
      {"Max-WE", lifetime("maxwe"), 43.1, 9.5},
      {"PCD", lifetime("pcd"), 30.6, 7.4},
      {"PS (average)", lifetime("ps"), 30.6, 7.4},
      {"PS-worst", lifetime("ps-worst"), 28.5, 6.9},
  };

  Table table({"scheme", "lifetime (%)", "improvement vs unprotected",
               "paper lifetime (%)", "paper improvement"});
  table.set_title("§5.3.1 - lifetime under UAA, spare capacity = " +
                  std::to_string(100 * spare) + "% of total");
  table.set_precision(1);
  for (const Row& r : rows) {
    table.add_row({Cell{std::string{r.name}}, Cell{bench::pct(r.measured)},
                   Cell{r.measured / none}, Cell{r.paper_pct},
                   Cell{r.paper_factor}});
  }
  if (cli.get_bool("csv")) {
    std::cout << table.csv();
  } else {
    table.print(std::cout);
  }

  std::cout << "Max-WE vs PCD/PS: +"
            << 100.0 * (rows[1].measured / rows[2].measured - 1.0)
            << "% (paper: +40.7%); vs PS-worst: +"
            << 100.0 * (rows[1].measured / rows[4].measured - 1.0)
            << "% (paper: +51.1%)\n";
  return 0;
}
