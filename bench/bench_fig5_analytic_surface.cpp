// Figure 5: analytic lifetime comparison of Max-WE, PCD/PS and PS-worst
// over spare ratio p in [0.1, 0.3] and variation degree q in [10, 100]
// (Eqs. (6)-(8), normalized to the ideal lifetime of Eq. (3)).

#include <iostream>

#include "core/analytic.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Figure 5: analytic lifetime surface (linear endurance model)");
  cli.add_flag("p-steps", "grid points along the spare-ratio axis", "5");
  cli.add_flag("q-steps", "grid points along the variation axis", "10");
  cli.add_switch("csv", "emit CSV instead of the ASCII table");
  if (!cli.parse(argc, argv)) return 0;

  const auto surface = fig5_surface(
      0.1, 0.3, static_cast<std::uint32_t>(cli.get_int("p-steps")), 10.0,
      100.0, static_cast<std::uint32_t>(cli.get_int("q-steps")));

  Table table({"p = S/N", "q = EH/EL", "Max-WE", "PCD/PS", "PS-worst"});
  table.set_title(
      "Figure 5 - normalized lifetime, linear endurance model (Eqs. 6-8)");
  table.set_precision(3);
  for (const auto& pt : surface) {
    table.add_row({Cell{pt.p}, Cell{pt.q}, Cell{pt.maxwe}, Cell{pt.pcd_ps},
                   Cell{pt.ps_worst}});
  }
  if (cli.get_bool("csv")) {
    std::cout << table.csv();
  } else {
    table.print(std::cout);
  }

  const Fig5Point spot = fig5_point(0.1, 50.0);
  std::cout << "spot check p=0.1, q=50 -> Max-WE " << 100 * spot.maxwe
            << "%, PCD/PS " << 100 * spot.pcd_ps << "%, PS-worst "
            << 100 * spot.ps_worst
            << "%  (paper: 38.1%, 22.2%, 20.8%)\n";
  return 0;
}
