// Extension bench: system-level lifetime across banks.
//
// A module dies with its first bank. As the bank count grows, the system
// lifetime is the minimum of independent per-bank draws — so a scheme's
// value at system scale depends on the *low tail* of its per-bank
// distribution, not its mean. Max-WE compresses that tail (its lifetime is
// an order statistic deep in the endurance distribution's bulk, not an
// extreme value), so its advantage widens with the bank count.

#include <iostream>

#include "sim/parallel.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Extension: module lifetime vs bank count under UAA");
  cli.add_flag("lines", "lines per bank", "65536");
  cli.add_flag("regions", "regions per bank", "512");
  cli.add_flag("jobs", "worker threads (0 = all cores, 1 = serial)", "0");
  if (!cli.parse(argc, argv)) return 0;
  ParallelOptions jobs;
  jobs.jobs = static_cast<std::size_t>(cli.get_int("jobs"));

  Table table({"banks", "unprotected system (%)", "Max-WE system (%)",
               "Max-WE mean bank (%)", "Max-WE advantage"});
  table.set_title(
      "System (min-over-banks) lifetime under UAA, 10% spares per bank");
  table.set_precision(2);

  for (std::uint32_t banks : {1u, 2u, 4u, 8u, 16u}) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(
        static_cast<std::uint64_t>(cli.get_int("lines")),
        static_cast<std::uint64_t>(cli.get_int("regions")));
    c.endurance.endurance_at_mean = 1e6;
    c.seed = 42;

    c.spare_scheme = "none";
    const MultiBankResult unprotected = run_multi_bank(c, banks, jobs);
    c.spare_scheme = "maxwe";
    const MultiBankResult maxwe = run_multi_bank(c, banks, jobs);

    table.add_row({Cell{static_cast<std::int64_t>(banks)},
                   Cell{100 * unprotected.system_normalized},
                   Cell{100 * maxwe.system_normalized},
                   Cell{100 * maxwe.mean_bank},
                   Cell{maxwe.system_normalized /
                        unprotected.system_normalized}});
  }
  table.print(std::cout);
  std::cout << "shape target: both system lifetimes fall with the bank "
               "count (extreme-value effect), but Max-WE's falls less — "
               "its advantage factor grows.\n";
  return 0;
}
