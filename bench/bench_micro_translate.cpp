// Microbenchmarks (google-benchmark) for the hot paths a memory controller
// would execute per access: Max-WE's read-path translation (§4.2's
// LMT -> RMT -> raw cascade), the O(1) resolve cache, wear-leveler
// translation, and a full simulated write through the engine pipeline.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "core/maxwe.h"
#include "nvm/device.h"
#include "reduction/codec.h"
#include "sim/engine.h"
#include "util/alias_table.h"
#include "util/multinomial.h"
#include "wearlevel/wear_leveler.h"

namespace {

using namespace nvmsec;

std::shared_ptr<const EnduranceMap> bench_map() {
  static const auto map = [] {
    Rng rng(42);
    const EnduranceModel model;
    return std::make_shared<EnduranceMap>(EnduranceMap::from_model(
        DeviceGeometry::scaled(1 << 18, 512), model, rng));
  }();
  return map;
}

std::unique_ptr<MaxWe> worn_maxwe(double worn_fraction) {
  auto m = std::make_unique<MaxWe>(bench_map(), MaxWeParams{});
  Rng rng(7);
  const auto target = static_cast<std::uint64_t>(
      worn_fraction * static_cast<double>(m->working_lines()));
  for (std::uint64_t k = 0; k < target; ++k) {
    m->on_wear_out(rng.uniform_u64(m->working_lines()));
  }
  return m;
}

void BM_MaxWeTranslateRead(benchmark::State& state) {
  const auto m = worn_maxwe(static_cast<double>(state.range(0)) / 100.0);
  Rng rng(1);
  const std::uint64_t n = bench_map()->geometry().num_lines();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m->translate_read(PhysLineAddr{rng.uniform_u64(n)}));
  }
}
BENCHMARK(BM_MaxWeTranslateRead)->Arg(0)->Arg(5)->Arg(20);

void BM_MaxWeResolveCache(benchmark::State& state) {
  auto m = worn_maxwe(0.05);
  Rng rng(2);
  const std::uint64_t u = m->working_lines();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->resolve(rng.uniform_u64(u)));
  }
}
BENCHMARK(BM_MaxWeResolveCache);

void BM_WearLevelerTranslate(benchmark::State& state) {
  static const char* kNames[] = {"none", "startgap", "tlsr", "pcms", "bwl",
                                 "wawl"};
  const std::string name = kNames[state.range(0)];
  Rng rng(3);
  constexpr std::uint64_t kLines = 1 << 16;
  EnduranceView view(kLines);
  for (std::uint64_t i = 0; i < kLines; ++i) {
    view[i] = 1000.0 + static_cast<double>(i % 512);
  }
  WearLevelerParams params;
  params.group_lines = 512;
  auto wl = make_wear_leveler(name, kLines, view, params, rng);
  state.SetLabel(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wl->translate(LogicalLineAddr{rng.uniform_u64(wl->logical_lines())}));
  }
}
BENCHMARK(BM_WearLevelerTranslate)->DenseRange(0, 5);

void BM_EnginePipelineWrite(benchmark::State& state) {
  // Whole write path: attack -> wear leveler -> spare resolve -> device.
  Rng rng(4);
  auto map = bench_map();
  Device device(map);
  auto attack = make_bpa(256);
  auto spare = make_maxwe(map, MaxWeParams{});
  EnduranceView view(spare->working_lines());
  for (std::uint64_t i = 0; i < view.size(); ++i) {
    view[i] = map->line_endurance(spare->working_line(i));
  }
  WearLevelerParams params;
  params.group_lines = 512;
  auto wl = make_wear_leveler("wawl", spare->working_lines(), view, params,
                              rng);
  std::vector<WlPhysWrite> batch;
  for (auto _ : state) {
    const LogicalLineAddr la = attack->next(rng, wl->logical_lines());
    batch.clear();
    wl->on_write(la, rng, batch);
    for (const WlPhysWrite& w : batch) {
      benchmark::DoNotOptimize(spare->resolve(w.working_index));
    }
  }
}
BENCHMARK(BM_EnginePipelineWrite);

void BM_DeviceWriteMany(benchmark::State& state) {
  // Bulk budget decrement vs. the equivalent loop of single writes. The
  // device is reset whenever the target line runs low so the batch never
  // hits the wear-out path (that cost is measured by the engine bench).
  auto map = bench_map();
  Device device(map);
  const PhysLineAddr line{0};
  const auto batch = static_cast<WriteCount>(state.range(0));
  for (auto _ : state) {
    if (device.remaining(line) <= batch) {
      state.PauseTiming();
      device.reset();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(device.write_many(line, batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_DeviceWriteMany)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_DeviceWriteLoop(benchmark::State& state) {
  // Baseline for BM_DeviceWriteMany: the same writes issued one by one
  // through the validated entry point.
  auto map = bench_map();
  Device device(map);
  const PhysLineAddr line{0};
  const auto batch = static_cast<WriteCount>(state.range(0));
  for (auto _ : state) {
    if (device.remaining(line) <= batch) {
      state.PauseTiming();
      device.reset();
      state.ResumeTiming();
    }
    for (WriteCount i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(device.write(line));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_DeviceWriteLoop)->Arg(8)->Arg(64)->Arg(512);

void BM_MultinomialDraw(benchmark::State& state) {
  // One batched multinomial chunk draw (recursive binomial splits) over a
  // zipf-shaped weight vector. Items = writes sampled, so items/sec is
  // directly comparable to BM_AliasTableSample (one write per call).
  const auto outcomes = static_cast<std::size_t>(state.range(0));
  const auto chunk = static_cast<std::uint64_t>(state.range(1));
  std::vector<double> weights(outcomes);
  for (std::size_t i = 0; i < outcomes; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.99);
  }
  const MultinomialSampler sampler{std::span<const double>(weights)};
  Rng rng(6);
  WriteCountVector out;
  for (auto _ : state) {
    out.clear();
    sampler.draw(rng, chunk, out);
    benchmark::DoNotOptimize(out.addrs.data());
    benchmark::DoNotOptimize(out.counts.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_MultinomialDraw)
    ->Args({512, 2048})
    ->Args({4096, 2048})
    ->Args({4096, 1 << 16})
    ->Unit(benchmark::kMicrosecond);

void BM_DeviceWriteCountsSoA(benchmark::State& state) {
  // The SoA bulk-decrement the counts path rides on: one write_counts call
  // absorbing `lines * kPerLine` writes across distinct lines, vs the same
  // multiset issued one write() at a time (BM_DeviceWriteCountsPerWrite).
  auto map = bench_map();
  Device device(map);
  const auto lines = static_cast<std::size_t>(state.range(0));
  constexpr WriteCount kPerLine = 4;
  std::vector<std::uint64_t> addrs(lines);
  std::vector<WriteCount> counts(lines, kPerLine);
  for (std::size_t i = 0; i < lines; ++i) addrs[i] = i;
  for (auto _ : state) {
    if (device.remaining(PhysLineAddr{0}) <= kPerLine) {
      state.PauseTiming();
      device.reset();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        device.write_counts(std::span<const std::uint64_t>(addrs),
                            std::span<const WriteCount>(counts)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines * kPerLine));
}
BENCHMARK(BM_DeviceWriteCountsSoA)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeviceWriteCountsPerWrite(benchmark::State& state) {
  // Baseline for BM_DeviceWriteCountsSoA: identical write multiset through
  // the validated single-write entry point.
  auto map = bench_map();
  Device device(map);
  const auto lines = static_cast<std::size_t>(state.range(0));
  constexpr WriteCount kPerLine = 4;
  for (auto _ : state) {
    if (device.remaining(PhysLineAddr{0}) <= kPerLine) {
      state.PauseTiming();
      device.reset();
      state.ResumeTiming();
    }
    for (std::size_t i = 0; i < lines; ++i) {
      for (WriteCount k = 0; k < kPerLine; ++k) {
        benchmark::DoNotOptimize(device.write(PhysLineAddr{i}));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lines * kPerLine));
}
BENCHMARK(BM_DeviceWriteCountsPerWrite)->Arg(64)->Arg(512)->Arg(4096);

void BM_EngineBatchedWrite(benchmark::State& state) {
  // Full Engine::run through the batched fast path vs. the per-write path
  // (Arg: 1 = fastpath, 0 = per-write), on a UAA sweep under Start-Gap +
  // Max-WE — the configuration the run-length batching targets. Each
  // iteration runs a capped fresh engine; items = user writes simulated.
  const bool fastpath = state.range(0) != 0;
  constexpr WriteCount kCap = 200'000;
  auto map = bench_map();
  auto attack = make_attack("uaa");
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(11);
    Device device(map);
    auto spare = make_maxwe(map, MaxWeParams{});
    EnduranceView view(spare->working_lines());
    for (std::uint64_t i = 0; i < view.size(); ++i) {
      view[i] = map->line_endurance(spare->working_line(i));
    }
    WearLevelerParams params;
    auto wl =
        make_wear_leveler("startgap", spare->working_lines(), view, params,
                          rng);
    attack->reset();
    Engine engine(device, *attack, *wl, *spare, rng);
    engine.set_fast_path(fastpath);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.run(kCap));
  }
  state.SetLabel(fastpath ? "fastpath" : "per-write");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kCap));
}
BENCHMARK(BM_EngineBatchedWrite)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_u64(1000003));
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 97);
  }
  AliasTable table(weights);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(128)->Arg(2048)->Arg(1 << 16);

void BM_EnduranceMapConstruction(benchmark::State& state) {
  const EnduranceModel model;
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(EnduranceMap::from_model(
        DeviceGeometry::scaled(1 << 14, static_cast<std::uint64_t>(
                                            state.range(0))),
        model, rng));
  }
}
BENCHMARK(BM_EnduranceMapConstruction)->Arg(128)->Arg(2048);

void BM_FnwCodecProgram(benchmark::State& state) {
  auto codec = make_codec("fnw");
  StoredLine stored;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->program(stored, LineData::random(rng)));
  }
}
BENCHMARK(BM_FnwCodecProgram);

}  // namespace

BENCHMARK_MAIN();
