// Extension bench (§3.3.2): a DRAM write buffer in front of the NVM.
//
// "The DRAM buffer is able to cache the hot accessed lines. UAA has uniform
// write accesses, and therefore the DRAM buffer does not work." The bench
// runs hotspot, BPA and UAA against increasing buffer sizes and reports the
// absorption rate and the attacker cost (writes issued per NVM write).

#include <iostream>

#include "sim/experiment.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Extension: DRAM front buffer vs the attack models");
  cli.add_flag("lines", "device size in lines", "2048");
  cli.add_flag("regions", "region count", "128");
  if (!cli.parse(argc, argv)) return 0;
  const auto lines = static_cast<std::uint64_t>(cli.get_int("lines"));
  const auto regions = static_cast<std::uint64_t>(cli.get_int("regions"));

  Table table({"attack", "buffer (lines)", "absorbed (%)",
               "device lifetime used (%)"});
  table.set_title(
      "DRAM buffer absorption by attack (write cap = 2M attacker writes)");
  table.set_precision(1);

  for (const std::string attack : {"hotspot", "bpa", "uaa"}) {
    for (std::uint64_t buffer : {16ULL, 64ULL, 256ULL}) {
      ExperimentConfig c = scaled_stochastic_config(lines, regions, 2e4);
      c.attack = attack;
      c.wear_leveler = "none";
      c.spare_scheme = "none";
      c.dram_buffer_lines = buffer;
      c.max_user_writes = 2'000'000;
      c.seed = 9;
      const LifetimeResult r = run_experiment(c);
      const double absorbed =
          100.0 * static_cast<double>(r.absorbed_writes) / r.user_writes;
      const double wear_used =
          100.0 * static_cast<double>(r.device_writes) / r.ideal_lifetime;
      table.add_row({Cell{attack}, Cell{static_cast<std::int64_t>(buffer)},
                     Cell{absorbed}, Cell{r.failed ? 100.0 : wear_used}});
    }
  }
  table.print(std::cout);
  std::cout << "shape target: hotspot absorbed ~100% once its working set "
               "fits; BPA mostly absorbed (a burst is a cache-resident "
               "working set of one); UAA absorbed ~0% at any realistic "
               "buffer size (§3.3.2) — the buffer-defeating attack is "
               "exactly the uniform sweep.\n";
  return 0;
}
