// §4.4 / §5.3.2: mapping-table storage overhead.
//
// Paper numbers for 1 GB / 2048 regions / 10% spares / 90% SWRs:
//   Max-WE ~0.16 MB vs traditional line-level ~1.1 MB -> 15.0% (85%
//   reduction), i.e. 0.016% of total capacity.
//
// Prints both the paper's closed-form model and the exact bit cost of a
// constructed MaxWe instance (they differ only by ceil() on the pointer
// widths).

#include <iostream>
#include <memory>

#include "core/maxwe.h"
#include "core/overhead.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;
  CliParser cli("Table (§5.3.2): mapping-table storage overhead");
  if (!cli.parse(argc, argv)) return 0;

  const DeviceGeometry geometry = DeviceGeometry::paper_1gb();

  Table table({"SWR share q (%)", "LMT (MB)", "RMT (MB)", "wot tags (MB)",
               "Max-WE total (MB)", "traditional (MB)", "ratio (%)"});
  table.set_title(
      "§5.3.2 - mapping-table overhead, 1 GB / 2048 regions / 10% spares");
  table.set_precision(3);
  const auto mb = [](double bits) { return bits / 8.0 / 1024.0 / 1024.0; };
  for (double q : {0.0, 0.2, 0.6, 0.8, 0.9, 1.0}) {
    const auto out = mapping_overhead(
        MappingOverheadInputs::from_geometry(geometry, 0.1, q));
    table.add_row({Cell{100.0 * q}, Cell{mb(out.lmt_bits)},
                   Cell{mb(out.rmt_bits)}, Cell{mb(out.wear_out_tag_bits)},
                   Cell{out.maxwe_total_mb()}, Cell{out.traditional_mb()},
                   Cell{100.0 * out.ratio}});
  }
  table.print(std::cout);

  const auto paper_point = mapping_overhead(
      MappingOverheadInputs::from_geometry(geometry, 0.1, 0.9));
  std::cout << "operating point q=90%: " << paper_point.maxwe_total_mb()
            << " MB vs " << paper_point.traditional_mb() << " MB = "
            << 100.0 * paper_point.ratio
            << "% (paper: 0.16 MB vs 1.1 MB = 15.0%)\n"
            << "as a fraction of the 1 GB capacity: "
            << 100.0 * paper_point.maxwe_total_bits / 8.0 /
                   static_cast<double>(geometry.total_bytes())
            << "% (paper abstract: 0.016%)\n";

  // Cross-check with a real instance built on a sampled endurance map.
  Rng rng(42);
  const EnduranceModel model;
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(geometry, model, rng));
  const MaxWe instance(map, MaxWeParams{});
  std::cout << "constructed MaxWe instance (exact bit accounting): "
            << static_cast<double>(instance.mapping_overhead_bits()) / 8.0 /
                   1024.0 / 1024.0
            << " MB\n";
  return 0;
}
