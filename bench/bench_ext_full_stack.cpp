// Extension bench: the full defense stack under UAA, cell-granular.
//
//   payload -> write codec -> (wear leveling) -> spare scheme
//           -> per-cell wear with ECP repair
//
// One table answers the question the paper's related-work section raises
// qualitatively: how do write reduction (§3.3.2), salvaging (§2.2.2) and
// spare-line replacement (§4) compose, and which one actually moves the
// needle against a uniform attack?

#include <iostream>
#include <memory>

#include "core/maxwe.h"
#include "sim/bit_engine.h"
#include "util/cli.h"
#include "util/table.h"
#include "wearlevel/none.h"

namespace {

using namespace nvmsec;

struct RunSpec {
  const char* label;
  const char* payload;
  const char* codec;
  std::uint32_t ecp;
  bool maxwe;
};

double run_spec(const RunSpec& spec, std::uint64_t lines,
                std::uint64_t regions, double endurance_mean,
                std::uint64_t seed) {
  Rng setup(seed);
  EnduranceModelParams ep;
  ep.endurance_at_mean = endurance_mean;
  const EnduranceModel model(ep);
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(lines, regions), model,
                               setup));
  BitDeviceParams dp;
  dp.ecp_entries = spec.ecp;
  Rng rng(seed + 1);
  BitDevice device(map, dp, rng);
  auto attack = make_uaa();
  auto payload = make_payload(spec.payload);
  auto codec = make_codec(spec.codec);
  std::unique_ptr<SpareScheme> spare;
  if (spec.maxwe) {
    spare = make_maxwe(map, MaxWeParams{});
  } else {
    spare = make_no_spare(map);
  }
  NoWearLeveling wl(spare->working_lines());
  BitEngine engine(device, *attack, *payload, *codec, wl, *spare, rng);
  return engine.run().normalized;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Extension: composed defenses under UAA (cell-granular)");
  cli.add_flag("lines", "device size in lines", "1024");
  cli.add_flag("regions", "region count", "64");
  cli.add_flag("endurance", "mean line endurance (scaled)", "1000");
  if (!cli.parse(argc, argv)) return 0;
  const auto lines = static_cast<std::uint64_t>(cli.get_int("lines"));
  const auto regions = static_cast<std::uint64_t>(cli.get_int("regions"));
  const double endurance = cli.get_double("endurance");

  const RunSpec specs[] = {
      {"baseline (full write)", "random", "full", 0, false},
      {"+ differential write", "random", "differential", 0, false},
      {"+ Flip-N-Write", "random", "fnw", 0, false},
      {"+ FNW + ECP-6", "random", "fnw", 6, false},
      {"+ FNW + ECP-6 + Max-WE", "random", "fnw", 6, true},
      {"adversarial data, FNW + ECP-6", "fnw-adversarial", "fnw", 6, false},
      {"adversarial data, FNW + ECP-6 + Max-WE", "fnw-adversarial", "fnw", 6,
       true},
  };

  Table table({"configuration", "normalized lifetime (%)"});
  table.set_title(
      "Composed defenses under UAA (cell-level; >100% is possible because "
      "write-reducing codecs beat the full-stress reference)");
  table.set_precision(1);
  for (const RunSpec& spec : specs) {
    const double lifetime =
        run_spec(spec, lines, regions, endurance, /*seed=*/42);
    table.add_row({Cell{std::string{spec.label}}, Cell{100.0 * lifetime}});
  }
  table.print(std::cout);
  std::cout << "reading: codecs and ECP shift the curve a little and are "
               "erased by adversarial data; the spare-line scheme is the "
               "only layer whose gain survives the attack (§1's thesis).\n";
  return 0;
}
