// EventLog unit tests: schema header, write-clock stamping, escaping, the
// event cap, and the truncate/rewind machinery that checkpoint-resume
// byte-identity rests on — plus a full instrumented run asserting the
// decision events a Max-WE lifetime actually produces.
#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "json_test_util.h"
#include "obs/session.h"
#include "sim/experiment.h"
#include "util/status.h"

namespace nvmsec {
namespace {

using testjson::JsonValue;
using testjson::parse_json;
using testjson::parse_jsonl;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(EventLogTest, WritesVersionedSchemaHeaderFirst) {
  std::ostringstream out;
  EventLog log(out);
  const std::vector<JsonValue> lines = parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].str("type"), "schema");
  EXPECT_DOUBLE_EQ(lines[0].num("v"), kEventSchemaVersion);
  EXPECT_EQ(lines[0].str("format"), "maxwe-events");
  EXPECT_EQ(log.offset(), out.str().size());
}

TEST(EventLogTest, NoHeaderWhenAppending) {
  std::ostringstream out;
  EventLog log(out, EventLog::kDefaultMaxEvents, /*write_header=*/false);
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(log.offset(), 0u);
}

TEST(EventLogTest, EventsCarryWriteClockAndFields) {
  std::ostringstream out;
  EventLog log(out);
  log.set_now(1234);
  log.emit("asr_alloc", {{"raw_line", 17.0}, {"scheme", "maxwe"}});
  const std::vector<JsonValue> lines = parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue& e = lines[1];
  EXPECT_DOUBLE_EQ(e.num("v"), 1.0);
  EXPECT_EQ(e.str("type"), "asr_alloc");
  EXPECT_DOUBLE_EQ(e.num("t"), 1234.0);
  EXPECT_DOUBLE_EQ(e.num("raw_line"), 17.0);
  EXPECT_EQ(e.str("scheme"), "maxwe");
  EXPECT_EQ(log.events_written(), 1u);
  EXPECT_EQ(log.offset(), out.str().size());
}

TEST(EventLogTest, StringFieldsAreEscaped) {
  std::ostringstream out;
  EventLog log(out);
  log.emit("note", {{"text", "a \"quote\" and \\ and \n tab\t"}});
  const std::vector<JsonValue> lines = parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].str("text"), "a \"quote\" and \\ and \n tab\t");
}

TEST(EventLogTest, CapDropsEventsAndFinalizeMarksTruncation) {
  std::ostringstream out;
  EventLog log(out, /*max_events=*/3);
  for (int i = 0; i < 5; ++i) {
    log.emit("tick", {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(log.events_written(), 3u);
  EXPECT_EQ(log.events_dropped(), 2u);
  log.finalize();
  log.finalize();  // idempotent
  const std::vector<JsonValue> lines = parse_jsonl(out.str());
  // schema + 3 ticks + log_truncated.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines.back().str("type"), "log_truncated");
  EXPECT_DOUBLE_EQ(lines.back().num("dropped"), 2.0);
}

TEST(EventLogTest, TruncateNeedsATruncator) {
  std::ostringstream out;
  EventLog log(out);
  log.emit("tick");
  const Status st = log.truncate_to(log.offset() - 1);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // Rewinding to the current offset is a no-op and needs no truncator.
  EXPECT_TRUE(log.truncate_to(log.offset()).ok());
}

TEST(EventLogTest, TruncateBeyondEndIsCorruption) {
  std::ostringstream out;
  EventLog log(out);
  const Status st = log.truncate_to(log.offset() + 100);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(EventLogTest, FileBackedTruncateRestoresExactBytes) {
  const std::string path = temp_path("event_log_truncate_test.jsonl");
  std::filesystem::remove(path);
  {
    // Append mode, per the truncate_to() contract: after the backing file
    // shrinks, later writes must land at the new end, not the old offset.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    EventLog log(out);
    log.set_truncator([&out, &path](std::uint64_t offset) -> Status {
      out.flush();
      std::error_code ec;
      std::filesystem::resize_file(path, offset, ec);
      if (ec) return Status::io_error("resize failed: " + ec.message());
      return Status::ok_status();
    });
    log.set_now(10);
    log.emit("keep", {{"k", 1.0}});
    const std::uint64_t mark = log.offset();
    const std::string snapshot_bytes = [&] {
      out.flush();
      return slurp(path);
    }();
    log.set_now(20);
    log.emit("discard", {{"k", 2.0}});
    ASSERT_TRUE(log.truncate_to(mark).ok());
    EXPECT_EQ(log.offset(), mark);
    out.flush();
    EXPECT_EQ(slurp(path), snapshot_bytes);
    // Writes after the rewind continue from the truncation point.
    log.set_now(20);
    log.emit("replay", {{"k", 3.0}});
    out.flush();
  }
  const std::vector<JsonValue> lines = parse_jsonl(slurp(path));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].str("type"), "keep");
  EXPECT_EQ(lines[2].str("type"), "replay");
  std::filesystem::remove(path);
}

TEST(ObsSessionEventsTest, SessionWiresFileBackedEventLog) {
  const std::string path = temp_path("obs_session_events_test.jsonl");
  std::filesystem::remove(path);
  {
    ObsConfig config;
    config.events_path = path;
    ASSERT_TRUE(config.any());
    ObsSession session(config);
    ASSERT_NE(session.observer().events, nullptr);
    session.observer().events->emit("tick");
    session.finalize();
  }
  const std::vector<JsonValue> lines = parse_jsonl(slurp(path));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].str("type"), "schema");
  EXPECT_EQ(lines[1].str("type"), "tick");
  std::filesystem::remove(path);
}

TEST(ObsSessionEventsTest, ResumeRefusesTraceSink) {
  ObsConfig config;
  config.trace_path = temp_path("obs_session_trace_resume_test.json");
  config.resume = true;
  EXPECT_THROW(ObsSession{config}, std::invalid_argument);
}

TEST(EventLogIntegrationTest, MaxWeRunEmitsDecisionHistory) {
  ExperimentConfig config;
  config.geometry = DeviceGeometry::scaled(2048, 128);
  config.endurance.endurance_at_mean = 1000.0;
  config.mode = SimulationMode::kUniformEvent;
  config.spare_scheme = "maxwe";

  std::ostringstream out;
  EventLog log(out);
  config.observer.events = &log;
  const LifetimeResult result = run_experiment(config);

  const std::vector<JsonValue> lines = parse_jsonl(out.str());
  ASSERT_GT(lines.size(), 4u);
  std::size_t run_starts = 0, pairings = 0, rescues = 0, run_ends = 0;
  double end_user_writes = -1;
  for (const JsonValue& e : lines) {
    const std::string& type = e.str("type");
    if (type == "run_start") {
      ++run_starts;
      EXPECT_EQ(e.str("spare"), "maxwe");
      EXPECT_DOUBLE_EQ(e.num("lines"), 2048.0);
    } else if (type == "pairing") {
      ++pairings;
      // Antitone matching: the strong partner must out-endure the weak one.
      EXPECT_GE(e.num("rwr_endurance"), e.num("swr_endurance"));
    } else if (type == "rmt_redirect" || type == "asr_alloc") {
      ++rescues;
    } else if (type == "run_end") {
      ++run_ends;
      end_user_writes = e.num("user_writes");
    }
  }
  EXPECT_EQ(run_starts, 1u);
  EXPECT_GT(pairings, 0u);
  EXPECT_GT(rescues, 0u);
  EXPECT_EQ(run_ends, 1u);
  EXPECT_DOUBLE_EQ(end_user_writes, result.user_writes);

  // The same run with no observer is unchanged (zero-cost when off).
  ExperimentConfig plain = config;
  plain.observer = Observer{};
  const LifetimeResult baseline = run_experiment(plain);
  EXPECT_DOUBLE_EQ(baseline.normalized, result.normalized);
  EXPECT_EQ(baseline.line_deaths, result.line_deaths);
}

}  // namespace
}  // namespace nvmsec
