// HeartbeatSink: JSONL schema conformance, interval gating, and the
// always-emitted final line.
#include "obs/heartbeat.h"

#include <gtest/gtest.h>

#include <sstream>

#include "json_test_util.h"

namespace nvmsec {
namespace {

HeartbeatSample make_sample(std::uint64_t done, std::uint64_t total) {
  HeartbeatSample s;
  s.devices_done = done;
  s.devices_total = total;
  s.p50 = 1.25;
  s.p99 = 0.5;
  s.failure_causes = {{"all_backed_lines_worn", done / 2},
                      {"unreplaceable_wear_out", done - done / 2}};
  s.truncated_logs = 3;
  s.shards_done = done / 100;
  s.shards_total = total / 100;
  s.workers = 4;
  s.shards_timed = done / 100;
  s.shard_sec_sum = 2.0 * static_cast<double>(done / 100);
  s.shard_sec_max = 3.0;
  return s;
}

TEST(HeartbeatSink, LinesMatchDocumentedSchema) {
  std::ostringstream out;
  HeartbeatSink sink(out, /*interval_devices=*/100);
  sink.sample(make_sample(100, 1000));
  sink.finish(make_sample(1000, 1000));

  const auto lines = testjson::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.num("v"), 3);
    EXPECT_EQ(line.str("type"), "fleet_heartbeat");
    EXPECT_TRUE(line.find("devices_done") != nullptr);
    EXPECT_EQ(line.num("devices_total"), 1000);
    EXPECT_EQ(line.num("p50"), 1.25);
    EXPECT_EQ(line.num("p99"), 0.5);
    const testjson::JsonValue* causes = line.find("failure_causes");
    ASSERT_TRUE(causes != nullptr && causes->is_object());
    EXPECT_EQ(causes->object.size(), 2u);
    EXPECT_EQ(line.num("truncated_logs"), 3);
    EXPECT_EQ(line.num("shards_total"), 10);
    EXPECT_EQ(line.num("workers"), 4);
    // Shards were timed in this sample, so the throughput fields exist.
    EXPECT_TRUE(line.find("shard_sec_mean")->is_number());
    EXPECT_TRUE(line.find("shard_sec_max")->is_number());
    EXPECT_TRUE(line.find("shard_imbalance")->is_number());
    EXPECT_TRUE(line.find("worker_busy_frac")->is_number());
  }
  EXPECT_EQ(lines[0].num("devices_done"), 100);
  EXPECT_EQ(lines[0].num("shards_done"), 1);
  // shard_sec_mean = sum / timed = 2.0; imbalance = max / mean = 1.5.
  EXPECT_EQ(lines[0].num("shard_sec_mean"), 2.0);
  EXPECT_EQ(lines[0].num("shard_imbalance"), 1.5);
  EXPECT_EQ(lines[1].num("devices_done"), 1000);
  EXPECT_EQ(lines[1].num("shards_done"), 10);
}

TEST(HeartbeatSink, NoDataFieldsAreOmitted) {
  // v3: a sample with no timed shards (e.g. a fully resumed campaign) and
  // no journal omits the wall-clock-derived and checkpoint fields instead
  // of emitting -1 sentinels — consumers never see a negative rate.
  std::ostringstream out;
  HeartbeatSink sink(out, 1);
  HeartbeatSample s;
  s.devices_done = 5;
  s.devices_total = 10;
  sink.sample(s);
  const auto lines = testjson::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("shard_sec_mean"), nullptr);
  EXPECT_EQ(lines[0].find("shard_sec_max"), nullptr);
  EXPECT_EQ(lines[0].find("shard_imbalance"), nullptr);
  EXPECT_EQ(lines[0].find("worker_busy_frac"), nullptr);
  EXPECT_EQ(lines[0].find("checkpoint_bytes_written"), nullptr);
  // The always-present fields are unaffected.
  EXPECT_EQ(lines[0].num("devices_done"), 5);
  EXPECT_EQ(lines[0].num("shards_done"), 0);
}

TEST(HeartbeatSink, CheckpointBytesAppearWithAJournal) {
  std::ostringstream out;
  HeartbeatSink sink(out, 1);
  HeartbeatSample s = make_sample(100, 1000);
  s.checkpoint_bytes_written = 4096;
  sink.sample(s);
  const auto lines = testjson::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].num("checkpoint_bytes_written"), 4096);
}

TEST(HeartbeatSink, IntervalGatesEmission) {
  std::ostringstream out;
  HeartbeatSink sink(out, /*interval_devices=*/100);
  sink.sample(make_sample(10, 1000));   // below interval: silent
  sink.sample(make_sample(99, 1000));   // still below
  EXPECT_EQ(sink.lines_written(), 0u);
  sink.sample(make_sample(100, 1000));  // due
  EXPECT_EQ(sink.lines_written(), 1u);
  sink.sample(make_sample(150, 1000));  // only 50 since last emit
  EXPECT_EQ(sink.lines_written(), 1u);
  sink.sample(make_sample(200, 1000));
  EXPECT_EQ(sink.lines_written(), 2u);
}

TEST(HeartbeatSink, FinishAlwaysEmits) {
  std::ostringstream out;
  HeartbeatSink sink(out, /*interval_devices=*/1000000);
  sink.sample(make_sample(5, 10));
  EXPECT_EQ(sink.lines_written(), 0u);
  sink.finish(make_sample(10, 10));
  EXPECT_EQ(sink.lines_written(), 1u);
  const auto lines = testjson::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].num("devices_done"), 10);
}

TEST(HeartbeatSink, EmptyCausesRenderAsEmptyObject) {
  std::ostringstream out;
  HeartbeatSink sink(out, 1);
  HeartbeatSample s;
  s.devices_done = 1;
  s.devices_total = 2;
  sink.sample(s);
  const auto lines = testjson::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const testjson::JsonValue* causes = lines[0].find("failure_causes");
  ASSERT_TRUE(causes != nullptr && causes->is_object());
  EXPECT_TRUE(causes->object.empty());
}

}  // namespace
}  // namespace nvmsec
