#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "nvm/device.h"
#include "nvm/endurance_map.h"
#include "json_test_util.h"
#include "spare/spare_scheme.h"

namespace nvmsec {
namespace {

using testjson::JsonValue;
using testjson::parse_jsonl;

std::shared_ptr<const EnduranceMap> small_map() {
  return std::make_shared<const EnduranceMap>(
      DeviceGeometry::scaled(256, 16), std::vector<Endurance>(16, 100.0));
}

TEST(SnapshotEmitterTest, ZeroIntervalIsRejected) {
  std::ostringstream out;
  EXPECT_THROW(SnapshotEmitter(out, 0), std::invalid_argument);
}

TEST(SnapshotEmitterTest, DueFollowsTheCadence) {
  std::ostringstream out;
  SnapshotEmitter emitter(out, 100);
  EXPECT_FALSE(emitter.due(0));
  EXPECT_FALSE(emitter.due(99));
  EXPECT_TRUE(emitter.due(100));
  EXPECT_TRUE(emitter.due(5000));  // far past: still just one snapshot due
}

TEST(SnapshotEmitterTest, SkippedThresholdsCollapseIntoOneLine) {
  std::ostringstream out;
  SnapshotEmitter emitter(out, 100);
  SnapshotContext ctx;
  ctx.user_writes = 250;  // jumped the 100 and 200 thresholds at once
  ASSERT_TRUE(emitter.due(ctx.user_writes));
  emitter.snapshot(ctx);
  EXPECT_EQ(emitter.count(), 1u);
  // Cadence resumes at the next multiple of the interval, not at 300+250.
  EXPECT_FALSE(emitter.due(299));
  EXPECT_TRUE(emitter.due(300));
}

TEST(SnapshotEmitterTest, SnapshotNowDoesNotAdvanceTheCadence) {
  std::ostringstream out;
  SnapshotEmitter emitter(out, 100);
  SnapshotContext ctx;
  ctx.user_writes = 150;
  emitter.snapshot_now(ctx);
  EXPECT_EQ(emitter.count(), 1u);
  EXPECT_TRUE(emitter.due(150));  // first threshold still pending
}

TEST(SnapshotEmitterTest, BareContextOmitsComponentSections) {
  std::ostringstream out;
  SnapshotEmitter emitter(out, 10);
  SnapshotContext ctx;
  ctx.user_writes = 10;
  ctx.overhead_writes = 3;
  emitter.snapshot(ctx);

  const auto lines = parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue& line = lines[0];
  EXPECT_DOUBLE_EQ(line.num("user_writes"), 10.0);
  EXPECT_DOUBLE_EQ(line.num("overhead_writes"), 3.0);
  EXPECT_EQ(line.find("wear"), nullptr);
  EXPECT_EQ(line.find("spare"), nullptr);
  EXPECT_EQ(line.find("buffer"), nullptr);
  EXPECT_EQ(line.find("absorbed_writes"), nullptr);  // zero => omitted
}

TEST(SnapshotEmitterTest, DeviceAndSpareSectionsCarryWearState) {
  const auto map = small_map();
  Device device(map);
  const auto spare = make_no_spare(map);
  // Wear one line so the snapshot has something to report.
  const PhysLineAddr line = spare->working_line(0);
  device.write(line);
  device.write(line);

  std::ostringstream out;
  SnapshotEmitter emitter(out, 1);
  SnapshotContext ctx;
  ctx.device = &device;
  ctx.spare = spare.get();
  ctx.user_writes = 2;
  emitter.snapshot_now(ctx);

  const auto lines = parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue& wear = lines[0].at("wear");
  EXPECT_DOUBLE_EQ(wear.num("device_writes"), 2.0);
  EXPECT_GT(wear.num("max_line_utilization"), 0.0);
  // 16 regions <= the inline cap, so the per-region array is present.
  ASSERT_TRUE(wear.at("region_utilization").is_array());
  EXPECT_EQ(wear.at("region_utilization").array.size(), 16u);
  const JsonValue& spare_obj = lines[0].at("spare");
  EXPECT_EQ(spare_obj.at("scheme").string, spare->name());
  EXPECT_DOUBLE_EQ(spare_obj.num("line_deaths"), 0.0);
}

TEST(SnapshotEmitterTest, CapStopsEmissionButKeepsCounting) {
  std::ostringstream out;
  SnapshotEmitter emitter(out, 10, /*max_snapshots=*/2);
  SnapshotContext ctx;
  for (int i = 1; i <= 5; ++i) {
    ctx.user_writes = 10.0 * i;
    emitter.snapshot(ctx);
  }
  EXPECT_EQ(emitter.count(), 2u);
  EXPECT_EQ(parse_jsonl(out.str()).size(), 2u);
}

TEST(SnapshotEmitterTest, EverySnapshotLineIsSelfContainedJson) {
  const auto map = small_map();
  Device device(map);
  std::ostringstream out;
  SnapshotEmitter emitter(out, 10);
  for (int i = 1; i <= 3; ++i) {
    SnapshotContext ctx;
    ctx.device = &device;
    ctx.user_writes = 10.0 * i;
    emitter.snapshot(ctx);
  }
  // parse_jsonl throws on any malformed line.
  EXPECT_EQ(parse_jsonl(out.str()).size(), 3u);
}

}  // namespace
}  // namespace nvmsec
