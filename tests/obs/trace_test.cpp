#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "json_test_util.h"

namespace nvmsec {
namespace {

using testjson::JsonValue;
using testjson::parse_json;

JsonValue events_of(const std::string& text) {
  JsonValue root = parse_json(text);
  EXPECT_TRUE(root.is_array());
  return root;
}

TEST(TraceWriterTest, EmptyTraceIsAValidJsonArray) {
  std::ostringstream out;
  {
    TraceWriter trace(out);
  }
  const JsonValue root = events_of(out.str());
  EXPECT_TRUE(root.array.empty());
}

TEST(TraceWriterTest, InstantEventCarriesChromeTraceFields) {
  std::ostringstream out;
  {
    TraceWriter trace(out);
    trace.instant("wear_out", {{"line", 7.0}, {"region", 2.0}});
  }
  const JsonValue root = events_of(out.str());
  ASSERT_EQ(root.array.size(), 1u);
  const JsonValue& e = root.array[0];
  EXPECT_EQ(e.at("name").string, "wear_out");
  EXPECT_EQ(e.at("ph").string, "i");
  EXPECT_EQ(e.at("s").string, "g");  // global-scope instant for Perfetto
  EXPECT_TRUE(e.at("ts").is_number());
  EXPECT_TRUE(e.find("pid") != nullptr && e.find("tid") != nullptr);
  EXPECT_DOUBLE_EQ(e.at("args").num("line"), 7.0);
  EXPECT_DOUBLE_EQ(e.at("args").num("region"), 2.0);
}

TEST(TraceWriterTest, CounterAndCompletePhases) {
  std::ostringstream out;
  {
    TraceWriter trace(out);
    trace.counter("wear", {{"line_deaths", 3.0}});
    trace.complete("engine.run", 10, 250);
  }
  const JsonValue root = events_of(out.str());
  ASSERT_EQ(root.array.size(), 2u);
  EXPECT_EQ(root.array[0].at("ph").string, "C");
  const JsonValue& span = root.array[1];
  EXPECT_EQ(span.at("ph").string, "X");
  EXPECT_DOUBLE_EQ(span.num("ts"), 10.0);
  EXPECT_DOUBLE_EQ(span.num("dur"), 250.0);
}

TEST(TraceWriterTest, IntegerArgsArePrintedWithoutDecimalPoint) {
  std::ostringstream out;
  {
    TraceWriter trace(out);
    trace.instant("e", {{"whole", 42.0}, {"frac", 0.5}});
  }
  EXPECT_NE(out.str().find("\"whole\": 42,"), std::string::npos);
  EXPECT_NE(out.str().find("\"frac\": 0.5"), std::string::npos);
}

TEST(TraceWriterTest, ScopedTimerEmitsASpanCoveringItsLifetime) {
  std::ostringstream out;
  {
    TraceWriter trace(out);
    {
      const ScopedTimer span(&trace, "work");
    }
    EXPECT_EQ(trace.events_written(), 1u);
  }
  const JsonValue root = events_of(out.str());
  ASSERT_EQ(root.array.size(), 1u);
  EXPECT_EQ(root.array[0].at("name").string, "work");
  EXPECT_EQ(root.array[0].at("ph").string, "X");
  EXPECT_GE(root.array[0].num("dur"), 0.0);
}

TEST(TraceWriterTest, ScopedTimerIsNullSafe) {
  const ScopedTimer span(nullptr, "nothing");  // must not crash
}

TEST(TraceWriterTest, EventCapDropsAndRecordsTruncation) {
  std::ostringstream out;
  {
    TraceWriter trace(out, /*max_events=*/3);
    for (int i = 0; i < 5; ++i) {
      trace.instant("e", {{"i", static_cast<double>(i)}});
    }
    EXPECT_EQ(trace.events_written(), 3u);
    EXPECT_EQ(trace.events_dropped(), 2u);
  }
  const JsonValue root = events_of(out.str());
  // Three real events plus the self-describing truncation marker.
  ASSERT_EQ(root.array.size(), 4u);
  const JsonValue& marker = root.array[3];
  EXPECT_EQ(marker.at("name").string, "trace_events_dropped");
  EXPECT_DOUBLE_EQ(marker.at("args").num("dropped"), 2.0);
}

TEST(TraceWriterTest, FinishIsIdempotentAndBlocksLaterEvents) {
  std::ostringstream out;
  TraceWriter trace(out);
  trace.instant("before");
  trace.finish();
  trace.finish();
  trace.instant("after");  // silently ignored, keeps the file valid
  const JsonValue root = events_of(out.str());
  ASSERT_EQ(root.array.size(), 1u);
  EXPECT_EQ(root.array[0].at("name").string, "before");
}

TEST(TraceWriterTest, TimestampsAreMonotonic) {
  std::ostringstream out;
  TraceWriter trace(out);
  const std::uint64_t a = trace.now_us();
  const std::uint64_t b = trace.now_us();
  EXPECT_LE(a, b);
  trace.finish();
}

}  // namespace
}  // namespace nvmsec
