#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "json_test_util.h"

namespace nvmsec {
namespace {

using testjson::JsonValue;
using testjson::parse_json;

TEST(CounterTest, IncrementsAndSets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  MetricsRegistry m;
  Counter& a = m.counter("writes");
  a.inc(3);
  // Force rebalancing by creating many more metrics; the reference must
  // survive (components cache it across the whole run).
  for (int i = 0; i < 100; ++i) {
    m.counter("c" + std::to_string(i)).inc();
  }
  Counter& b = m.counter("writes");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistryTest, KindsAreSeparateNamespaces) {
  MetricsRegistry m;
  m.counter("x").inc(5);
  m.gauge("x").set(2.5);
  m.histogram("x").observe(1.0);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.find_counter("x")->value(), 5u);
  EXPECT_DOUBLE_EQ(m.find_gauge("x")->value(), 2.5);
  EXPECT_EQ(m.find_histogram("x")->summary().count(), 1u);
}

TEST(MetricsRegistryTest, FindReturnsNullWhenAbsent) {
  MetricsRegistry m;
  m.counter("present");
  EXPECT_EQ(m.find_counter("absent"), nullptr);
  EXPECT_EQ(m.find_gauge("present"), nullptr);  // wrong kind
  EXPECT_EQ(m.find_histogram("present"), nullptr);
  EXPECT_NE(m.find_counter("present"), nullptr);
}

TEST(MetricsRegistryTest, HistogramBucketBoundsFixedByFirstCall) {
  MetricsRegistry m;
  HistogramMetric& h = m.histogram("lat", 0.0, 10.0, 5);
  // Later calls with different bounds return the same metric unchanged.
  HistogramMetric& again = m.histogram("lat", 0.0, 100.0, 50);
  EXPECT_EQ(&h, &again);
  ASSERT_NE(h.buckets(), nullptr);
  EXPECT_EQ(h.buckets()->bucket_count(), 5u);
  // And a summary-only request for the same name keeps the buckets too.
  EXPECT_NE(m.histogram("lat").buckets(), nullptr);
}

TEST(MetricsRegistryTest, HistogramObservesIntoSummaryAndBuckets) {
  MetricsRegistry m;
  HistogramMetric& h = m.histogram("v", 0.0, 4.0, 4);
  for (const double x : {0.5, 1.5, 1.6, 3.5}) h.observe(x);
  EXPECT_EQ(h.summary().count(), 4u);
  EXPECT_DOUBLE_EQ(h.summary().mean(), (0.5 + 1.5 + 1.6 + 3.5) / 4.0);
  EXPECT_EQ(h.buckets()->bucket(1), 2u);  // [1, 2) holds 1.5 and 1.6
}

TEST(MetricsRegistryTest, JsonExportRoundTrips) {
  MetricsRegistry m;
  m.counter("engine.user_writes").set(123456789);
  m.gauge("spare.lmt_entries").set(40960.0);
  m.gauge("result.normalized_lifetime").set(0.270185);
  HistogramMetric& h = m.histogram("wear", 0.0, 2.0, 2);
  h.observe(0.5);
  h.observe(1.5);

  std::ostringstream out;
  m.write_json(out);
  const JsonValue root = parse_json(out.str());

  EXPECT_DOUBLE_EQ(root.at("counters").num("engine.user_writes"), 123456789.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").num("spare.lmt_entries"), 40960.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").num("result.normalized_lifetime"),
                   0.270185);
  const JsonValue& hist = root.at("histograms").at("wear");
  EXPECT_DOUBLE_EQ(hist.num("count"), 2.0);
  EXPECT_DOUBLE_EQ(hist.num("mean"), 1.0);
  const JsonValue& buckets = hist.at("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.array.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets.array[0].num("count"), 1.0);
  EXPECT_DOUBLE_EQ(buckets.array[1].num("lo"), 1.0);
}

TEST(MetricsRegistryTest, JsonExportIsDeterministic) {
  auto dump = [](std::initializer_list<const char*> order) {
    MetricsRegistry m;
    for (const char* name : order) m.counter(name).inc();
    std::ostringstream out;
    m.write_json(out);
    return out.str();
  };
  // Same metrics registered in different orders export byte-identically.
  EXPECT_EQ(dump({"b", "a", "c"}), dump({"c", "b", "a"}));
}

TEST(MetricsRegistryTest, NonFiniteGaugeExportsAsNull) {
  MetricsRegistry m;
  m.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
  m.gauge("worse").set(std::numeric_limits<double>::infinity());
  std::ostringstream out;
  m.write_json(out);
  const JsonValue root = parse_json(out.str());
  EXPECT_TRUE(root.at("gauges").at("bad").is_null());
  EXPECT_TRUE(root.at("gauges").at("worse").is_null());
}

TEST(MetricsRegistryTest, NamesWithQuotesAreEscaped) {
  MetricsRegistry m;
  m.counter("odd\"name\\with\ncontrol").inc(9);
  std::ostringstream out;
  m.write_json(out);
  const JsonValue root = parse_json(out.str());
  EXPECT_DOUBLE_EQ(root.at("counters").num("odd\"name\\with\ncontrol"), 9.0);
}

TEST(MetricsRegistryTest, CsvExportHasHeaderAndOneRowPerMetric) {
  MetricsRegistry m;
  m.counter("writes").set(10);
  m.gauge("pool").set(0.5);
  m.histogram("lat").observe(2.0);

  std::ostringstream out;
  m.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "kind,name,value,count,mean,stddev,min,max");
  std::size_t rows = 0;
  bool saw_counter = false;
  while (std::getline(in, line)) {
    ++rows;
    if (line.rfind("counter,writes,10", 0) == 0) saw_counter = true;
  }
  EXPECT_EQ(rows, m.size());
  EXPECT_TRUE(saw_counter);
}

TEST(MetricsRegistryTest, LargeCounterSurvivesJsonExactly) {
  // Counters are printed as integers up to 2^53; the acceptance run's write
  // counts are far below that but well above 2^32.
  MetricsRegistry m;
  const std::uint64_t big = (1ull << 52) + 12345;
  m.counter("big").set(big);
  std::ostringstream out;
  m.write_json(out);
  const JsonValue root = parse_json(out.str());
  EXPECT_EQ(static_cast<std::uint64_t>(root.at("counters").num("big")), big);
}

}  // namespace
}  // namespace nvmsec
