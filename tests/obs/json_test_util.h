// The obs tests' JSON checker. The parser itself moved into the library
// (obs/json_parse.h) when tools/maxwe_report started needing it at
// runtime; this header keeps the tests' historical nvmsec::testjson
// spelling working.
#pragma once

#include "obs/json_parse.h"

namespace nvmsec {
namespace testjson = minijson;
}  // namespace nvmsec
