// Observer plumbing through the real simulators: attaching sinks must not
// change any simulation result, and the files written must be valid and
// carry the run's actual totals.
#include <gtest/gtest.h>

#include <sstream>

#include "json_test_util.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace nvmsec {
namespace {

using testjson::JsonValue;
using testjson::parse_json;
using testjson::parse_jsonl;

ExperimentConfig small_event_config() {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(2048, 128);
  c.endurance.endurance_at_mean = 1000.0;
  c.mode = SimulationMode::kUniformEvent;
  c.spare_scheme = "maxwe";
  return c;
}

/// Bundles the three sinks over in-memory streams.
struct TestSinks {
  std::ostringstream metrics_out;  // unused; registry exports on demand
  std::ostringstream trace_out;
  std::ostringstream snapshot_out;
  MetricsRegistry metrics;
  TraceWriter trace{trace_out};
  SnapshotEmitter snapshots;

  explicit TestSinks(WriteCount interval) : snapshots(snapshot_out, interval) {}

  Observer observer() {
    Observer obs;
    obs.metrics = &metrics;
    obs.trace = &trace;
    obs.snapshots = &snapshots;
    return obs;
  }
};

TEST(ObsEndToEndTest, ObserverDoesNotChangeEventSimResults) {
  ExperimentConfig plain = small_event_config();
  const LifetimeResult baseline = run_experiment(plain);

  ExperimentConfig observed = small_event_config();
  TestSinks sinks(10000);
  observed.observer = sinks.observer();
  const LifetimeResult instrumented = run_experiment(observed);

  EXPECT_DOUBLE_EQ(instrumented.normalized, baseline.normalized);
  EXPECT_DOUBLE_EQ(instrumented.user_writes, baseline.user_writes);
  EXPECT_EQ(instrumented.line_deaths, baseline.line_deaths);
}

TEST(ObsEndToEndTest, ObserverDoesNotChangeStochasticResults) {
  ExperimentConfig plain = scaled_stochastic_config(512, 32, 300.0);
  plain.spare_scheme = "ps";
  plain.wear_leveler = "startgap";
  const LifetimeResult baseline = run_experiment(plain);

  ExperimentConfig observed = plain;
  TestSinks sinks(5000);
  observed.observer = sinks.observer();
  const LifetimeResult instrumented = run_experiment(observed);

  EXPECT_DOUBLE_EQ(instrumented.normalized, baseline.normalized);
  EXPECT_EQ(instrumented.line_deaths, baseline.line_deaths);
}

TEST(ObsEndToEndTest, EventSimPublishesMetricsTraceAndSnapshots) {
  ExperimentConfig c = small_event_config();
  TestSinks sinks(10000);
  c.observer = sinks.observer();
  const LifetimeResult r = run_experiment(c);

  // Metrics mirror the LifetimeResult totals.
  ASSERT_NE(sinks.metrics.find_counter("engine.user_writes"), nullptr);
  EXPECT_EQ(sinks.metrics.find_counter("engine.line_deaths")->value(),
            r.line_deaths);
  EXPECT_NE(sinks.metrics.find_counter("device.wear_outs"), nullptr);
  EXPECT_NE(sinks.metrics.find_gauge("maxwe.lmt_entries"), nullptr);
  EXPECT_NE(sinks.metrics.find_gauge("spare.rmt_entries"), nullptr);
  EXPECT_NE(sinks.metrics.find_counter("maxwe.asr_allocs"), nullptr);

  // The metrics file parses and carries the same counter.
  std::ostringstream json;
  sinks.metrics.write_json(json);
  const JsonValue root = parse_json(json.str());
  EXPECT_EQ(static_cast<std::uint64_t>(
                root.at("counters").num("engine.line_deaths")),
            r.line_deaths);

  // The trace is a valid Chrome-trace array containing the run span and
  // wear-out instants.
  sinks.trace.finish();
  const JsonValue trace = parse_json(sinks.trace_out.str());
  ASSERT_TRUE(trace.is_array());
  bool saw_run_span = false;
  bool saw_wear_out = false;
  for (const JsonValue& e : trace.array) {
    if (e.at("name").string == "event_sim.run") saw_run_span = true;
    if (e.at("name").string == "wear_out") saw_wear_out = true;
  }
  EXPECT_TRUE(saw_run_span);
  EXPECT_TRUE(saw_wear_out);

  // The snapshot series has at least the periodic samples plus the final
  // one, each a valid JSON line with the spare section.
  const auto lines = parse_jsonl(sinks.snapshot_out.str());
  ASSERT_GE(lines.size(), 2u);
  for (const JsonValue& line : lines) {
    EXPECT_NE(line.find("spare"), nullptr);
  }
  // user_writes is non-decreasing along the series.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_GE(lines[i].num("user_writes"), lines[i - 1].num("user_writes"));
  }
}

TEST(ObsEndToEndTest, StochasticEngineSnapshotsCarryDeviceWear) {
  ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
  c.spare_scheme = "ps";
  TestSinks sinks(20000);
  c.observer = sinks.observer();
  run_experiment(c);

  const auto lines = parse_jsonl(sinks.snapshot_out.str());
  ASSERT_GE(lines.size(), 2u);
  // The bit-true engine has a Device, so snapshots include the wear section
  // with monotone device_writes.
  for (const JsonValue& line : lines) {
    ASSERT_NE(line.find("wear"), nullptr);
  }
  const JsonValue& last = lines.back().at("wear");
  EXPECT_GT(last.num("device_writes"), 0.0);
  EXPECT_GT(last.num("worn_out_lines"), 0.0);

  // Engine-side counters exist too.
  EXPECT_NE(sinks.metrics.find_counter("engine.device_writes"), nullptr);
  EXPECT_NE(sinks.metrics.find_counter("wl.migration_writes"), nullptr);
}

TEST(ObsEndToEndTest, MetricsOnlyObserverWorksWithoutOtherSinks) {
  ExperimentConfig c = small_event_config();
  MetricsRegistry metrics;
  Observer obs;
  obs.metrics = &metrics;
  c.observer = obs;
  const LifetimeResult r = run_experiment(c);
  EXPECT_EQ(metrics.find_counter("engine.line_deaths")->value(),
            r.line_deaths);
}

}  // namespace
}  // namespace nvmsec
