// Profiler: re-entrant scopes, deterministic merge, the zero-cost
// detached contract, JSON schema round-trip, and the no-feedback guarantee
// (attaching a profiler cannot change simulation results).
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/profile_report.h"
#include "sim/fleet.h"
#include "sim/parallel.h"

namespace nvmsec {
namespace {

void spin(ScopedProfPhase&&) {}

TEST(ProfilerTest, ScopedPhaseRecordsOneSpan) {
  Profiler prof;
  {
    const ScopedProfPhase span(&prof, ProfPhase::kEngineRun);
  }
  const ProfPhaseStats& s = prof.phase(ProfPhase::kEngineRun);
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.max_ns, s.min_ns);
  EXPECT_EQ(prof.phase(ProfPhase::kEventRun).count, 0u);
}

TEST(ProfilerTest, ReentrantScopesCountOnlyTheOutermost) {
  Profiler prof;
  {
    const ScopedProfPhase outer(&prof, ProfPhase::kEngineRescue);
    {
      const ScopedProfPhase inner(&prof, ProfPhase::kEngineRescue);
      {
        const ScopedProfPhase deeper(&prof, ProfPhase::kEngineRescue);
      }
    }
  }
  // One recorded span: the inner activations folded into the outer one
  // instead of double-counting the same wall time.
  EXPECT_EQ(prof.phase(ProfPhase::kEngineRescue).count, 1u);

  // After full unwind the phase can be re-entered as outermost again.
  {
    const ScopedProfPhase again(&prof, ProfPhase::kEngineRescue);
  }
  EXPECT_EQ(prof.phase(ProfPhase::kEngineRescue).count, 2u);
}

TEST(ProfilerTest, NestingDistinctPhasesRecordsBoth) {
  Profiler prof;
  {
    const ScopedProfPhase run(&prof, ProfPhase::kEngineRun);
    {
      const ScopedProfPhase draw(&prof, ProfPhase::kEngineCountsDraw);
    }
    {
      const ScopedProfPhase draw(&prof, ProfPhase::kEngineCountsDraw);
    }
  }
  EXPECT_EQ(prof.phase(ProfPhase::kEngineRun).count, 1u);
  EXPECT_EQ(prof.phase(ProfPhase::kEngineCountsDraw).count, 2u);
  // The parent's inclusive total covers its children.
  EXPECT_GE(prof.phase(ProfPhase::kEngineRun).total_ns,
            prof.phase(ProfPhase::kEngineCountsDraw).total_ns);
}

TEST(ProfilerTest, NullProfilerScopesAreInertAndSmall) {
  // Compile-time: the scope must stay register-friendly (also asserted in
  // the header, repeated here so the contract shows up in the test run).
  static_assert(sizeof(ScopedProfPhase) <= 3 * sizeof(void*),
                "detached scope grew beyond three machine words");
  // Runtime: a null profiler means no clock reads and no stores — nothing
  // to observe, so just prove the path is safe to cross a million times.
  for (int i = 0; i < 1000000; ++i) {
    spin(ScopedProfPhase(nullptr, ProfPhase::kEngineBatchWrite));
  }
  SUCCEED();
}

TEST(ProfilerTest, RecordAndCountersAccumulate) {
  Profiler prof;
  prof.record(ProfPhase::kEngineBuffer, 100, 2);
  prof.record(ProfPhase::kEngineBuffer, 50, 1);
  const ProfPhaseStats& s = prof.phase(ProfPhase::kEngineBuffer);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total_ns, 150u);
  EXPECT_EQ(s.min_ns, 50u);
  EXPECT_EQ(s.max_ns, 100u);

  prof.add(ProfCounter::kBufferHit, 5);
  prof.add(ProfCounter::kBufferHit);
  EXPECT_EQ(prof.counter(ProfCounter::kBufferHit), 6u);
  EXPECT_EQ(prof.counter(ProfCounter::kBufferMiss), 0u);
}

Profiler make_profiler(std::uint64_t ns, std::uint64_t hits) {
  Profiler p;
  p.record(ProfPhase::kEngineRun, ns);
  p.record(ProfPhase::kEngineCountsDraw, ns / 2);
  p.add(ProfCounter::kResolveCacheHit, hits);
  p.set_utilization({ProfWorkerStats{ns, 1}}, ns);
  return p;
}

void expect_same(const Profiler& a, const Profiler& b) {
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const auto phase = static_cast<ProfPhase>(i);
    EXPECT_EQ(a.phase(phase).count, b.phase(phase).count);
    EXPECT_EQ(a.phase(phase).total_ns, b.phase(phase).total_ns);
    EXPECT_EQ(a.phase(phase).min_ns, b.phase(phase).min_ns);
    EXPECT_EQ(a.phase(phase).max_ns, b.phase(phase).max_ns);
  }
  for (std::size_t i = 0; i < kProfCounterCount; ++i) {
    const auto counter = static_cast<ProfCounter>(i);
    EXPECT_EQ(a.counter(counter), b.counter(counter));
  }
  EXPECT_EQ(a.workers().size(), b.workers().size());
  EXPECT_EQ(a.utilization_wall_ns(), b.utilization_wall_ns());
}

TEST(ProfilerTest, MergeIsAssociative) {
  // (a + b) + c == a + (b + c): the parallel runners' fixed-order merge
  // does not depend on how the merges associate.
  Profiler left = make_profiler(100, 1);
  left.merge(make_profiler(200, 2));
  left.merge(make_profiler(400, 4));

  Profiler bc = make_profiler(200, 2);
  bc.merge(make_profiler(400, 4));
  Profiler right = make_profiler(100, 1);
  right.merge(bc);

  expect_same(left, right);
  EXPECT_EQ(left.phase(ProfPhase::kEngineRun).count, 3u);
  EXPECT_EQ(left.phase(ProfPhase::kEngineRun).total_ns, 700u);
  EXPECT_EQ(left.phase(ProfPhase::kEngineRun).min_ns, 100u);
  EXPECT_EQ(left.phase(ProfPhase::kEngineRun).max_ns, 400u);
  EXPECT_EQ(left.counter(ProfCounter::kResolveCacheHit), 7u);
  EXPECT_EQ(left.workers().size(), 3u);
}

TEST(ProfilerTest, MergeOfEmptyIsIdentity) {
  Profiler a = make_profiler(123, 9);
  const Profiler empty;
  Profiler merged = make_profiler(123, 9);
  merged.merge(empty);
  expect_same(a, merged);
}

TEST(ProfilerTest, AttributedRootSkipsCoveredPhases) {
  Profiler prof;
  prof.record(ProfPhase::kEngineRun, 1000);
  prof.record(ProfPhase::kEngineCountsDraw, 400);  // covered by engine.run
  // experiment.setup's static ancestors (fleet.device, fleet.shard) are
  // unobserved here, so it attributes at the root.
  prof.record(ProfPhase::kExperimentSetup, 50);
  EXPECT_EQ(prof.attributed_root_ns(), 1050u);

  // Once fleet.shard is observed it covers both (via fleet.device, itself
  // unobserved but on the chain).
  prof.record(ProfPhase::kFleetShard, 5000);
  EXPECT_EQ(prof.attributed_root_ns(), 5000u);
}

TEST(ProfilerTest, JsonRoundTripsThroughProfileReport) {
  Profiler prof;
  prof.record(ProfPhase::kEngineRun, 1000);
  prof.record(ProfPhase::kEngineCountsDraw, 400, 2);
  prof.record(ProfPhase::kExperimentSetup, 50);
  prof.add(ProfCounter::kResolveCacheHit, 10);
  prof.add(ProfCounter::kResolveCacheMiss, 2);
  prof.set_utilization({ProfWorkerStats{700, 3}, ProfWorkerStats{300, 1}},
                       1200);

  const ProfileDoc doc = parse_profile(prof.to_json(2000));
  EXPECT_EQ(doc.version, 1);
  EXPECT_EQ(doc.wall_ns, 2000u);
  ASSERT_EQ(doc.phases.size(), 3u);
  // File order is enum order.
  EXPECT_EQ(doc.phases[0].name, "experiment.setup");
  EXPECT_EQ(doc.phases[1].name, "engine.run");
  EXPECT_EQ(doc.phases[2].name, "engine.counts.draw");
  EXPECT_EQ(doc.phases[2].parent, "engine.run");
  EXPECT_EQ(doc.phases[2].count, 2u);
  EXPECT_EQ(doc.phases[2].total_ns, 400u);
  EXPECT_EQ(doc.counter("resolve_cache.hit"), 10u);
  EXPECT_EQ(doc.counter("resolve_cache.miss"), 2u);
  EXPECT_EQ(doc.counter("buffer.hit"), 0u);  // omitted when zero
  ASSERT_EQ(doc.workers.size(), 2u);
  EXPECT_EQ(doc.workers[0].busy_ns, 700u);
  EXPECT_EQ(doc.utilization_wall_ns, 1200u);

  // The renderer-side attribution agrees with the profiler's own gate
  // numerator: engine.run + experiment.setup, not the covered draw.
  EXPECT_EQ(doc.attributed_ns(), prof.attributed_root_ns());
  EXPECT_EQ(doc.attributed_ns(), 1050u);
  // engine.counts.draw hangs off engine.run in the rendered hierarchy.
  EXPECT_EQ(doc.observed_parent(2), 1u);
  EXPECT_EQ(doc.observed_parent(1), ProfileDoc::npos);
}

TEST(ProfilerTest, PhaseTableIsSelfConsistent) {
  for (std::size_t i = 0; i < kProfPhaseCount; ++i) {
    const auto phase = static_cast<ProfPhase>(i);
    EXPECT_FALSE(prof_phase_name(phase).empty());
    // Parent chains terminate at the root (no cycles).
    ProfPhase parent = prof_phase_parent(phase);
    std::size_t hops = 0;
    while (parent != ProfPhase::kCount) {
      parent = prof_phase_parent(parent);
      ASSERT_LT(++hops, kProfPhaseCount);
    }
  }
  for (std::size_t i = 0; i < kProfCounterCount; ++i) {
    EXPECT_FALSE(prof_counter_name(static_cast<ProfCounter>(i)).empty());
  }
}

ExperimentConfig small_stochastic() {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(256, 16);
  c.endurance.endurance_at_mean = 200;
  c.mode = SimulationMode::kStochastic;
  c.attack = "zipf";
  c.wear_leveler = "tlsr";
  c.spare_scheme = "maxwe";
  c.detect = true;
  c.detector.window_writes = 4096;
  return c;
}

void expect_identical(const LifetimeResult& a, const LifetimeResult& b) {
  EXPECT_DOUBLE_EQ(a.user_writes, b.user_writes);
  EXPECT_EQ(a.overhead_writes, b.overhead_writes);
  EXPECT_EQ(a.device_writes, b.device_writes);
  EXPECT_DOUBLE_EQ(a.normalized, b.normalized);
  EXPECT_EQ(a.line_deaths, b.line_deaths);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.alarms_raised, b.alarms_raised);
}

TEST(ProfilerTest, AttachingProfilerDoesNotChangeResults) {
  const ExperimentConfig plain = small_stochastic();
  ExperimentConfig profiled = small_stochastic();
  Profiler prof;
  profiled.observer.profiler = &prof;

  const LifetimeResult a = run_experiment(plain);
  const LifetimeResult b = run_experiment(profiled);
  expect_identical(a, b);

  // And the profiler actually saw the run: the engine span plus the hot
  // counters populated.
  EXPECT_EQ(prof.phase(ProfPhase::kEngineRun).count, 1u);
  EXPECT_GT(prof.phase(ProfPhase::kExperimentSetup).count, 0u);
  EXPECT_GT(prof.counter(ProfCounter::kCountsWrites) +
                prof.counter(ProfCounter::kBatchWrites) +
                prof.counter(ProfCounter::kPerWriteFallback),
            0u);
  EXPECT_GT(prof.attributed_root_ns(), 0u);
}

TEST(ProfilerTest, ParallelSweepMergesPerRunProfilers) {
  std::vector<ExperimentConfig> configs(3, small_stochastic());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].seed = 7 + i;
  }

  Profiler prof;
  ParallelOptions options;
  options.jobs = 3;
  options.profiler = &prof;
  const std::vector<LifetimeResult> with_prof =
      run_experiments(configs, options);

  ParallelOptions bare;
  bare.jobs = 3;
  const std::vector<LifetimeResult> without =
      run_experiments(configs, bare);
  ASSERT_EQ(with_prof.size(), without.size());
  for (std::size_t i = 0; i < with_prof.size(); ++i) {
    expect_identical(with_prof[i], without[i]);
  }

  // One engine span per run landed in the merged profiler, and the pool
  // utilization section covers jobs drivers (workers + calling thread).
  EXPECT_EQ(prof.phase(ProfPhase::kEngineRun).count, configs.size());
  EXPECT_EQ(prof.workers().size(), 3u);
  EXPECT_GT(prof.utilization_wall_ns(), 0u);
}

TEST(ProfilerTest, FleetCampaignProfilesShardsAndDevices) {
  FleetSpec spec;
  spec.devices = 12;
  spec.shard_size = 4;
  spec.base.geometry = DeviceGeometry::scaled(256, 16);
  spec.base.endurance.endurance_at_mean = 100;
  spec.base.spare_scheme = "maxwe";

  FleetOptions plain;
  plain.jobs = 2;
  const FleetResult base = run_fleet(spec, plain);

  Profiler prof;
  FleetOptions profiled;
  profiled.jobs = 2;
  profiled.profiler = &prof;
  const FleetResult with_prof = run_fleet(spec, profiled);

  // The deterministic fleet JSON is byte-identical either way.
  EXPECT_EQ(fleet_result_json(spec, base),
            fleet_result_json(spec, with_prof));

  EXPECT_EQ(prof.phase(ProfPhase::kFleetShard).count, 3u);
  EXPECT_EQ(prof.phase(ProfPhase::kFleetDevice).count, spec.devices);
  EXPECT_EQ(prof.phase(ProfPhase::kFleetMerge).count, 1u);
  EXPECT_EQ(prof.workers().size(), 2u);
}

}  // namespace
}  // namespace nvmsec
