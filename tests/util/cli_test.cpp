#include "util/cli.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(CliTest, DefaultsApplyWhenUnset) {
  CliParser cli("test");
  cli.add_flag("count", "a count", "5");
  auto args = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.get_int("count"), 5);
}

TEST(CliTest, EqualsAndSpaceForms) {
  CliParser cli("test");
  cli.add_flag("a", "", "0");
  cli.add_flag("b", "", "0");
  auto args = argv_of({"--a=3", "--b", "4"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(cli.get_int("a"), 3);
  EXPECT_EQ(cli.get_int("b"), 4);
}

TEST(CliTest, SwitchesDefaultFalseAndToggle) {
  CliParser cli("test");
  cli.add_switch("verbose", "");
  {
    auto args = argv_of({});
    CliParser c2 = cli;
    ASSERT_TRUE(c2.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_FALSE(c2.get_bool("verbose"));
  }
  {
    auto args = argv_of({"--verbose"});
    ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_TRUE(cli.get_bool("verbose"));
  }
}

TEST(CliTest, SwitchWithExplicitValue) {
  CliParser cli("test");
  cli.add_switch("x", "");
  auto args = argv_of({"--x=false"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_FALSE(cli.get_bool("x"));
}

TEST(CliTest, UnknownFlagThrows) {
  CliParser cli("test");
  auto args = argv_of({"--nope=1"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               std::invalid_argument);
}

TEST(CliTest, MissingValueThrows) {
  CliParser cli("test");
  cli.add_flag("a", "", "0");
  auto args = argv_of({"--a"});
  EXPECT_THROW(cli.parse(static_cast<int>(args.size()), args.data()),
               std::invalid_argument);
}

TEST(CliTest, MalformedNumbersThrow) {
  CliParser cli("test");
  cli.add_flag("n", "", "1x");
  cli.add_flag("d", "", "2.5y");
  auto args = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_THROW(cli.get_int("n"), std::invalid_argument);
  EXPECT_THROW(cli.get_double("d"), std::invalid_argument);
}

TEST(CliTest, DoubleParsing) {
  CliParser cli("test");
  cli.add_flag("f", "", "0.5");
  auto args = argv_of({"--f=2.25"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("f"), 2.25);
}

TEST(CliTest, PositionalArgumentsCollected) {
  CliParser cli("test");
  cli.add_flag("a", "", "0");
  auto args = argv_of({"first", "--a=1", "second"});
  ASSERT_TRUE(cli.parse(static_cast<int>(args.size()), args.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "first");
  EXPECT_EQ(cli.positional()[1], "second");
}

TEST(CliTest, HelpReturnsFalse) {
  CliParser cli("test");
  auto args = argv_of({"--help"});
  EXPECT_FALSE(cli.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, UsageMentionsFlagsAndHelp) {
  CliParser cli("my description");
  cli.add_flag("alpha", "the alpha flag", "1");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha flag"), std::string::npos);
}

TEST(CliTest, UnregisteredGetterThrows) {
  CliParser cli("test");
  EXPECT_THROW(cli.get_string("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace nvmsec
