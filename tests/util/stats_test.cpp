#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nvmsec {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, AllNegativeValuesTrackMinMax) {
  // Guards against zero-initialised min/max leaking into the summary when
  // every sample is below zero.
  RunningStats s;
  for (double x : {-3.0, -1.0, -7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -11.0 / 3.0);
}

TEST(RunningStatsTest, ThreeWayMergeIsOrderIndependent) {
  std::vector<RunningStats> parts(3);
  RunningStats all;
  for (int i = 0; i < 30; ++i) {
    const double x = std::cos(i) * 5 + i;
    parts[static_cast<std::size_t>(i % 3)].add(x);
    all.add(x);
  }
  RunningStats ab = parts[0];
  ab.merge(parts[1]);
  ab.merge(parts[2]);
  RunningStats cb = parts[2];
  cb.merge(parts[1]);
  cb.merge(parts[0]);
  EXPECT_EQ(ab.count(), all.count());
  EXPECT_NEAR(ab.mean(), cb.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), cb.variance(), 1e-10);
  EXPECT_NEAR(ab.variance(), all.variance(), 1e-10);
}

TEST(RunningStatsTest, MergeOfTwoSingletonsMatchesPair) {
  // Smallest non-trivial merge: both sides have zero variance of their own.
  RunningStats a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.variance(), 2.0);  // ((1-2)^2 + (3-2)^2) / (2-1)
}

TEST(FreeFunctionsTest, MeanAndStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(FreeFunctionsTest, GeometricMean) {
  const std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(geometric_mean(std::vector<double>{-1.0}),
               std::invalid_argument);
}

TEST(FreeFunctionsTest, GeometricMeanMatchesPaperUsage) {
  // Fig. 8's Gmean column style: lifetimes as percentages.
  const std::vector<double> xs{42.7, 42.8, 53.5, 72.5};
  const double g = geometric_mean(xs);
  EXPECT_GT(g, 42.7);
  EXPECT_LT(g, 72.5);
  EXPECT_NEAR(g, std::pow(42.7 * 42.8 * 53.5 * 72.5, 0.25), 1e-9);
}

TEST(FreeFunctionsTest, Percentile) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_THROW(percentile(std::vector<double>{}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
}

TEST(FreeFunctionsTest, MinMax) {
  const std::vector<double> xs{3, 1, 2};
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 3.0);
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
}

TEST(GiniTest, DegenerateInputsHaveNoInequality) {
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{0.0, 0.0, 0.0}), 0.0);
}

TEST(GiniTest, AllEqualIsZero) {
  EXPECT_NEAR(gini(std::vector<double>{3.0, 3.0, 3.0, 3.0}), 0.0, 1e-12);
}

TEST(GiniTest, KnownValue) {
  // One of four holds everything: G = (n-1)/n = 0.75.
  EXPECT_NEAR(gini(std::vector<double>{1.0, 0.0, 0.0, 0.0}), 0.75, 1e-12);
  // Order must not matter.
  EXPECT_NEAR(gini(std::vector<double>{0.0, 0.0, 1.0, 0.0}), 0.75, 1e-12);
}

TEST(GiniTest, ModerateInequalityBetweenExtremes) {
  const double g = gini(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 0.75);
  EXPECT_NEAR(g, 0.25, 1e-12);
}

TEST(GiniTest, NegativeValuesThrow) {
  EXPECT_THROW(gini(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

TEST(MaxMinRatioTest, DegenerateInputsAreBalanced) {
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{7.0}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(MaxMinRatioTest, KnownRatioAndInfinity) {
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{4.0, 4.0}), 1.0);
  EXPECT_TRUE(std::isinf(max_min_ratio(std::vector<double>{0.0, 3.0})));
}

TEST(MaxMinRatioTest, NegativeValuesThrow) {
  EXPECT_THROW(max_min_ratio(std::vector<double>{-2.0, 8.0}),
               std::invalid_argument);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.99);   // bucket 4
  h.add(-5.0);   // clamped to bucket 0
  h.add(15.0);   // clamped to bucket 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(FreeFunctionsTest, PercentileSingleElementAndQuartiles) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 100), 7.0);
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 90), 46.0);  // interpolated
}

TEST(HistogramTest, ExactBoundsLandInEdgeBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // inclusive lower bound -> bucket 0
  h.add(10.0);   // hi is exclusive; clamps into the last bucket
  h.add(2.0);    // internal edge belongs to the upper bucket: [2, 4)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, SingleBucketAbsorbsEverything) {
  Histogram h(0.0, 1.0, 1);
  h.add_all(std::vector<double>{-100.0, 0.0, 0.5, 0.999, 100.0});
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.bucket(0), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 1.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1, 1, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2, 1, 4), std::invalid_argument);
}

TEST(HistogramTest, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add_all(std::vector<double>{0.5, 1.5, 1.6, 2.5});
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace nvmsec
