#include "util/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nvmsec {
namespace {

TEST(SerializeTest, RoundTripsEveryType) {
  StateWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");
  w.vec_u32({1, 2, 3});
  w.vec_u64({});
  w.vec_bool({true, false, true});
  w.bytes({0x00, 0xFF});

  const std::vector<std::uint8_t> buf = w.take();
  StateReader r(buf);
  std::uint8_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  double d = 0, e = 1;
  bool t = false, f = true;
  std::string s1, s2;
  std::vector<std::uint32_t> v32;
  std::vector<std::uint64_t> v64{9};
  std::vector<bool> vb;
  std::vector<std::uint8_t> by;
  EXPECT_TRUE(r.u8(a).ok());
  EXPECT_TRUE(r.u32(b).ok());
  EXPECT_TRUE(r.u64(c).ok());
  EXPECT_TRUE(r.f64(d).ok());
  EXPECT_TRUE(r.f64(e).ok());
  EXPECT_TRUE(r.boolean(t).ok());
  EXPECT_TRUE(r.boolean(f).ok());
  EXPECT_TRUE(r.str(s1).ok());
  EXPECT_TRUE(r.str(s2).ok());
  EXPECT_TRUE(r.vec_u32(v32).ok());
  EXPECT_TRUE(r.vec_u64(v64).ok());
  EXPECT_TRUE(r.vec_bool(vb).ok());
  EXPECT_TRUE(r.bytes(by).ok());

  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xDEADBEEF);
  EXPECT_EQ(c, 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(d, 3.141592653589793);
  EXPECT_TRUE(std::signbit(e));
  EXPECT_TRUE(t);
  EXPECT_FALSE(f);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(v32, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(v64.empty());
  EXPECT_EQ(vb, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(by, (std::vector<std::uint8_t>{0x00, 0xFF}));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, LittleEndianLayoutIsStable) {
  StateWriter w;
  w.u32(0x01020304);
  const std::vector<std::uint8_t>& buf = w.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerializeTest, ShortReadIsDataLoss) {
  StateWriter w;
  w.u32(7);
  const std::vector<std::uint8_t> buf = w.take();
  StateReader r(buf);
  std::uint64_t out = 0;
  const Status status = r.u64(out);  // asks for 8, only 4 available
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, ErrorIsSticky) {
  const std::vector<std::uint8_t> buf;  // empty
  StateReader r(buf);
  std::uint8_t out = 0;
  EXPECT_FALSE(r.u8(out).ok());
  // Every later read reports the same failure without touching `out`.
  EXPECT_FALSE(r.u8(out).ok());
  EXPECT_FALSE(r.status().ok());
  EXPECT_FALSE(r.exhausted());
}

TEST(SerializeTest, OversizedContainerCountIsRejected) {
  StateWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());  // absurd element count
  const std::vector<std::uint8_t> buf = w.take();
  StateReader r(buf);
  std::vector<std::uint64_t> out;
  const Status status = r.vec_u64(out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_TRUE(out.empty());
}

TEST(SerializeTest, ExhaustedDetectsTrailingBytes) {
  StateWriter w;
  w.u8(1);
  w.u8(2);
  const std::vector<std::uint8_t> buf = w.take();
  StateReader r(buf);
  std::uint8_t out = 0;
  EXPECT_TRUE(r.u8(out).ok());
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace nvmsec
