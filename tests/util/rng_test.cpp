#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace nvmsec {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a.next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (from_a.contains(b.next())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256Test, ForkAdvancesParent) {
  Xoshiro256 parent(7);
  Xoshiro256 reference(7);
  Xoshiro256 child = parent.fork();
  // Parent must not replay the child's stream.
  EXPECT_NE(parent.next(), child.next());
  (void)reference;
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_u64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64ZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(RngTest, UniformU64IsUnbiasedAcrossSmallBound) {
  Rng rng(99);
  constexpr std::uint64_t kBound = 7;
  constexpr int kDraws = 70000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u64(kBound)];
  const double expected = static_cast<double>(kDraws) / kBound;
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected))
        << "value " << v;
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(5);
  constexpr int kDraws = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(5);
  constexpr int kDraws = 100000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(11);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  int displaced = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<std::size_t>(i)] != i) ++displaced;
  }
  EXPECT_GT(displaced, 50);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (std::uint64_t k : {0ULL, 1ULL, 10ULL, 100ULL, 999ULL, 1000ULL}) {
    const auto sample = rng.sample_without_replacement(1000, k);
    ASSERT_EQ(sample.size(), k);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::uint64_t x : sample) EXPECT_LT(x, 1000u);
  }
}

TEST(RngTest, SampleWithoutReplacementKGreaterThanNThrows) {
  Rng rng(13);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementCoversBothCodePaths) {
  Rng rng(17);
  // Dense path (k*3 >= n) and sparse path both uniform-ish: every element
  // should appear sometimes across repetitions.
  std::set<std::uint64_t> seen_dense, seen_sparse;
  for (int rep = 0; rep < 200; ++rep) {
    for (std::uint64_t x : rng.sample_without_replacement(10, 5)) {
      seen_dense.insert(x);
    }
    for (std::uint64_t x : rng.sample_without_replacement(100, 3)) {
      seen_sparse.insert(x);
    }
  }
  EXPECT_EQ(seen_dense.size(), 10u);
  EXPECT_GT(seen_sparse.size(), 90u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  std::set<std::uint64_t> a, b;
  for (int i = 0; i < 500; ++i) {
    a.insert(parent.uniform_u64(1ULL << 62));
    b.insert(child.uniform_u64(1ULL << 62));
  }
  std::vector<std::uint64_t> overlap;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(RngTest, SubstreamIsDeterministicAndLeavesParentUntouched) {
  Rng a(33);
  Rng b(33);
  // Deriving a substream must not advance the parent: both parents keep
  // producing the identical sequence whether or not one derived a child.
  Rng child_a = a.substream(0x1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_u64(1ULL << 62), b.uniform_u64(1ULL << 62));
  }
  // Same tag at the same parent position reproduces the same substream.
  Rng c(33);
  Rng child_c = c.substream(0x1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child_a.uniform_u64(1ULL << 62),
              child_c.uniform_u64(1ULL << 62));
  }
}

TEST(RngTest, SubstreamTagAndPositionBothSelectTheStream) {
  Rng parent(33);
  Rng tag_a = parent.substream(1);
  Rng tag_b = parent.substream(2);
  std::set<std::uint64_t> a, b;
  for (int i = 0; i < 500; ++i) {
    a.insert(tag_a.uniform_u64(1ULL << 62));
    b.insert(tag_b.uniform_u64(1ULL << 62));
  }
  std::vector<std::uint64_t> overlap;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty()) << "distinct tags must give unrelated streams";

  // Advance the parent: the same tag now yields a different substream.
  (void)parent.uniform_u64(10);
  Rng tag_a_later = parent.substream(1);
  Rng tag_a_again(33);
  Rng reference = tag_a_again.substream(1);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    any_diff |= tag_a_later.uniform_u64(1ULL << 62) !=
                reference.uniform_u64(1ULL << 62);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace nvmsec
