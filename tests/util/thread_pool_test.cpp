#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nvmsec {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRejected) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, ReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPoolTest, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksRun) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<void> ok = pool.submit([] {});
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForEachVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for_each(kN, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEachResultsIndependentOfScheduling) {
  // Results written by index are identical however the indices were
  // interleaved — the determinism contract the experiment runner builds on.
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::uint64_t> out(kN, 0);
  pool.parallel_for_each(kN, [&out](std::size_t i) {
    // Uneven per-index work so dynamic claiming actually interleaves.
    std::uint64_t acc = i;
    for (std::size_t k = 0; k < (i % 7) * 1000; ++k) acc = acc * 6364136223846793005ULL + 1;
    out[i] = acc;
  });
  std::vector<std::uint64_t> serial(kN, 0);
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint64_t acc = i;
    for (std::size_t k = 0; k < (i % 7) * 1000; ++k) acc = acc * 6364136223846793005ULL + 1;
    serial[i] = acc;
  }
  EXPECT_EQ(out, serial);
}

TEST(ThreadPoolTest, ParallelForEachHandlesZeroAndFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for_each(0, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
  pool.parallel_for_each(3, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelForEachRethrowsSmallestFailingIndex) {
  ThreadPool pool(4);
  std::atomic<int> attempted{0};
  try {
    pool.parallel_for_each(100, [&attempted](std::size_t i) {
      ++attempted;
      if (i == 17 || i == 63) {
        throw std::runtime_error("failed at " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failed at 17");
  }
  // Every index was still attempted (no early abandonment of siblings).
  EXPECT_EQ(attempted.load(), 100);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_each(
                   4, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.parallel_for_each(10, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrentlyWhenWorkersAllow) {
  // Two tasks that each wait for the other can only finish if two threads
  // run them simultaneously.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  const auto rendezvous = [&arrived] {
    ++arrived;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error("rendezvous timed out");
      }
      std::this_thread::yield();
    }
  };
  auto a = pool.submit(rendezvous);
  auto b = pool.submit(rendezvous);
  EXPECT_NO_THROW(a.get());
  EXPECT_NO_THROW(b.get());
}

}  // namespace
}  // namespace nvmsec
