#include "util/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace nvmsec {
namespace {

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The canonical check value for CRC-32/IEEE (reflected, init/xorout
  // 0xFFFFFFFF) over the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyBufferIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const std::uint32_t oneshot = crc32(data.data(), data.size());
  // Feed the same bytes in uneven chunks.
  std::uint32_t state = crc32_init();
  std::size_t offset = 0;
  const std::size_t chunks[] = {1, 7, 13, 0, 20, data.size()};
  for (std::size_t chunk : chunks) {
    const std::size_t n = std::min(chunk, data.size() - offset);
    state = crc32_update(state, data.data() + offset, n);
    offset += n;
  }
  EXPECT_EQ(offset, data.size());
  EXPECT_EQ(crc32_final(state), oneshot);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  unsigned char buf[32];
  for (unsigned i = 0; i < sizeof buf; ++i) buf[i] = static_cast<unsigned char>(i * 37);
  const std::uint32_t clean = crc32(buf, sizeof buf);
  for (unsigned byte = 0; byte < sizeof buf; ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(crc32(buf, sizeof buf), clean)
          << "flip at byte " << byte << " bit " << bit << " went undetected";
      buf[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace nvmsec
