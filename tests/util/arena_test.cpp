// Arena: alignment, growth, reset coalescing, and the STL allocator shim.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace nvmsec {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Arena, MakeSpanValueInitializes) {
  Arena arena;
  const auto s = arena.make_span<double>(64);
  ASSERT_EQ(s.size(), 64u);
  for (double v : s) EXPECT_EQ(v, 0.0);
  const auto t = arena.make_span<std::uint32_t>(0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Arena, GrowsAcrossBlocksAndResetCoalesces) {
  Arena arena;
  // Force several block additions.
  for (int i = 0; i < 8; ++i) (void)arena.make_span<double>(4096);
  EXPECT_GT(arena.block_count(), 1u);
  const std::size_t grown_capacity = arena.capacity();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);
  // The coalesced block holds everything the grown arena held, so the next
  // identical allocation sequence never allocates again.
  EXPECT_GE(arena.capacity(), grown_capacity);
  for (int i = 0; i < 8; ++i) (void)arena.make_span<double>(4096);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(Arena, ResetReusesTheSameStorage) {
  Arena arena;
  const auto first = arena.make_span<std::uint64_t>(128);
  void* const first_data = first.data();
  arena.reset();
  const auto second = arena.make_span<std::uint64_t>(128);
  EXPECT_EQ(second.data(), first_data);
  // reset() value-initializes on make_span, not on reset: spans are fresh.
  for (std::uint64_t v : second) EXPECT_EQ(v, 0u);
}

TEST(ArenaAllocator, BacksStdVector) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  v.reserve(100);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  EXPECT_GE(arena.used(), 100 * sizeof(int));
  EXPECT_TRUE(ArenaAllocator<int>(&arena) == ArenaAllocator<long>(&arena));
}

}  // namespace
}  // namespace nvmsec
