#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nvmsec {
namespace {

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RowArityIsEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({Cell{std::int64_t{1}}}), std::invalid_argument);
  t.add_row({Cell{std::int64_t{1}}, Cell{std::string{"x"}}});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(TableTest, AsciiContainsHeadersAndValues) {
  Table t({"scheme", "lifetime"});
  t.set_title("Fig. X");
  t.add_row({Cell{std::string{"maxwe"}}, Cell{43.1}});
  const std::string art = t.ascii();
  EXPECT_NE(art.find("Fig. X"), std::string::npos);
  EXPECT_NE(art.find("scheme"), std::string::npos);
  EXPECT_NE(art.find("maxwe"), std::string::npos);
  EXPECT_NE(art.find("43.10"), std::string::npos);
}

TEST(TableTest, PrecisionControlsDoubles) {
  Table t({"v"});
  t.set_precision(4);
  t.add_row({Cell{1.5}});
  EXPECT_NE(t.ascii().find("1.5000"), std::string::npos);
}

TEST(TableTest, ColumnsAlign) {
  Table t({"x", "yyyyyy"});
  t.add_row({Cell{std::string{"aaaaaaaa"}}, Cell{std::int64_t{1}}});
  const std::string art = t.ascii();
  // Every body line (starting with | or +) has the same width.
  std::istringstream in(art);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty() || (line[0] != '|' && line[0] != '+')) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(TableTest, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({Cell{std::int64_t{1}}, Cell{std::string{"plain"}}});
  EXPECT_EQ(t.csv(), "a,b\n1,plain\n");
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({Cell{std::string{"has,comma"}}});
  t.add_row({Cell{std::string{"has\"quote"}}});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, RowAccessor) {
  Table t({"a"});
  t.add_row({Cell{2.0}});
  EXPECT_DOUBLE_EQ(std::get<double>(t.row(0)[0]), 2.0);
  EXPECT_THROW(t.row(1), std::out_of_range);
}

TEST(TableTest, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({Cell{std::int64_t{7}}});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("7"), std::string::npos);
}

}  // namespace
}  // namespace nvmsec
