#include "util/atomic_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace nvmsec {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(AtomicFileTest, CommitRenamesIntoPlace) {
  const std::string path = ::testing::TempDir() + "/atomic_commit.txt";
  fs::remove(path);
  AtomicFileWriter writer(path);
  ASSERT_TRUE(writer.is_open()) << writer.open_status().to_string();
  // Data streams into the temp file; the final name stays absent until
  // commit so a reader can never observe a half-written file.
  writer.stream() << "payload";
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(writer.temp_path()));
  ASSERT_TRUE(writer.commit().ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(writer.temp_path()));
  EXPECT_EQ(slurp(path), "payload");
}

TEST(AtomicFileTest, CommitReplacesExistingFileAtomically) {
  const std::string path = ::testing::TempDir() + "/atomic_replace.txt";
  ASSERT_TRUE(atomic_write_file(path, "old contents").ok());
  AtomicFileWriter writer(path);
  writer.stream() << "new contents";
  EXPECT_EQ(slurp(path), "old contents");  // old file intact until commit
  ASSERT_TRUE(writer.commit().ok());
  EXPECT_EQ(slurp(path), "new contents");
}

TEST(AtomicFileTest, DiscardRemovesTempAndLeavesNoFinalFile) {
  const std::string path = ::testing::TempDir() + "/atomic_discard.txt";
  fs::remove(path);
  AtomicFileWriter writer(path);
  writer.stream() << "doomed";
  const std::string temp = writer.temp_path();
  writer.discard();
  EXPECT_FALSE(fs::exists(temp));
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFileTest, DestructorCleansUpUncommittedTemp) {
  const std::string path = ::testing::TempDir() + "/atomic_dtor.txt";
  fs::remove(path);
  std::string temp;
  {
    AtomicFileWriter writer(path);
    writer.stream() << "abandoned";
    temp = writer.temp_path();
    EXPECT_TRUE(fs::exists(temp));
  }
  EXPECT_FALSE(fs::exists(temp));
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFileTest, OpenFailureIsIoErrorNamingThePath) {
  AtomicFileWriter writer("/nonexistent-dir/out.txt");
  EXPECT_FALSE(writer.is_open());
  const Status status = writer.open_status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("/nonexistent-dir/out.txt"),
            std::string::npos);
}

TEST(AtomicFileTest, EmptyPathIsInvalidArgument) {
  AtomicFileWriter writer("");
  EXPECT_FALSE(writer.is_open());
  EXPECT_EQ(writer.open_status().code(), StatusCode::kInvalidArgument);
}

TEST(AtomicFileTest, CommitIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/atomic_twice.txt";
  AtomicFileWriter writer(path);
  writer.stream() << "once";
  ASSERT_TRUE(writer.commit().ok());
  EXPECT_TRUE(writer.commit().ok());  // second commit is a no-op
  EXPECT_EQ(slurp(path), "once");
}

TEST(AtomicFileTest, AtomicWriteFileConvenience) {
  const std::string path = ::testing::TempDir() + "/atomic_conv.txt";
  ASSERT_TRUE(atomic_write_file(path, "hello\nworld\n").ok());
  EXPECT_EQ(slurp(path), "hello\nworld\n");
  const Status bad = atomic_write_file("/nonexistent-dir/x.txt", "y");
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace nvmsec
