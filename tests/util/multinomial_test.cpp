// Exactness contract of the batched-sampling primitives: count vectors
// conserve the draw count exactly, are deterministic for a fixed stream,
// and follow the same law as per-draw sampling (chi-squared against the
// exact probabilities; fixed seeds keep every check deterministic).
#include "util/multinomial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"

namespace nvmsec {
namespace {

std::vector<double> geometric_weights(std::size_t n) {
  std::vector<double> w(n);
  double v = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = v;
    v *= 0.93;
  }
  return w;
}

TEST(BinomialDrawTest, Edges) {
  Rng rng(1);
  EXPECT_EQ(binomial_draw(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial_draw(rng, 1000, 0.0), 0u);
  EXPECT_EQ(binomial_draw(rng, 1000, -0.3), 0u);
  EXPECT_EQ(binomial_draw(rng, 1000, 1.0), 1000u);
  EXPECT_EQ(binomial_draw(rng, 1000, 1.7), 1000u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(binomial_draw(rng, 1, 0.5), 1u);
  }
}

TEST(BinomialDrawTest, NeverExceedsN) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(binomial_draw(rng, 37, 0.9), 37u);
  }
}

// Both regimes (BINV for n*p < 10, BTRS above) must track the exact
// binomial moments. 50k samples put the sample mean within ~5 standard
// errors of n*p for the fixed seeds below.
TEST(BinomialDrawTest, MeanAndVarianceBothRegimes) {
  struct Case {
    std::uint64_t n;
    double p;
  };
  for (const Case c : {Case{200, 0.02}, Case{40, 0.1},      // BINV
                       Case{10'000, 0.3}, Case{500, 0.5}})  // BTRS
  {
    Rng rng(99);
    const int kSamples = 50'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const double x = static_cast<double>(binomial_draw(rng, c.n, c.p));
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    const double exp_mean = static_cast<double>(c.n) * c.p;
    const double exp_var = exp_mean * (1.0 - c.p);
    const double se = std::sqrt(exp_var / kSamples);
    EXPECT_NEAR(mean, exp_mean, 5.0 * se) << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, exp_var, 0.1 * exp_var) << "n=" << c.n << " p=" << c.p;
  }
}

TEST(WriteCountVectorTest, AppendTotalClear) {
  WriteCountVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.total(), 0u);
  v.append(7, 3);
  v.append(9, 5);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.total(), 8u);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.total(), 0u);
}

TEST(MultinomialSamplerTest, RejectsBadWeights) {
  EXPECT_THROW(MultinomialSampler(std::span<const double>{}),
               std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(MultinomialSampler(std::span<const double>(zeros)),
               std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(MultinomialSampler(std::span<const double>(negative)),
               std::invalid_argument);
  const std::vector<double> inf{1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(MultinomialSampler(std::span<const double>(inf)),
               std::invalid_argument);
}

TEST(MultinomialSamplerTest, ProbabilitiesSumToOne) {
  for (const std::size_t n : {1u, 2u, 3u, 64u, 1000u}) {
    const std::vector<double> w = geometric_weights(n);
    const MultinomialSampler sampler{std::span<const double>(w)};
    EXPECT_EQ(sampler.size(), n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += sampler.probability(i);
    EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n;
  }
}

// The load-bearing exactness property: counts sum to exactly n_draws (no
// rounding, no truncation), entries are in ascending index order, every
// emitted count is >= 1, and zero-weight indices never appear.
TEST(MultinomialSamplerTest, ExactCountConservation) {
  for (const std::size_t n : {1u, 2u, 3u, 64u, 1000u}) {
    std::vector<double> w = geometric_weights(n);
    if (n >= 3) w[n / 2] = 0.0;  // a hole the draw must never hit
    const MultinomialSampler sampler{std::span<const double>(w)};
    Rng rng(7 + n);
    for (const std::uint64_t draws : {std::uint64_t{0}, std::uint64_t{1},
                                      std::uint64_t{1'000'000}}) {
      WriteCountVector out;
      sampler.draw(rng, draws, out);
      EXPECT_EQ(out.total(), draws) << "n=" << n << " draws=" << draws;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out.counts[i], 1u);
        EXPECT_LT(out.addrs[i], n);
        if (n >= 3) EXPECT_NE(out.addrs[i], n / 2);
        if (i > 0) EXPECT_GT(out.addrs[i], out.addrs[i - 1]);
      }
      if (draws == 0) EXPECT_TRUE(out.empty());
    }
  }
}

TEST(MultinomialSamplerTest, DeterministicForFixedSeed) {
  const std::vector<double> w = geometric_weights(128);
  const MultinomialSampler sampler{std::span<const double>(w)};
  Rng a(42), b(42);
  WriteCountVector out_a, out_b;
  sampler.draw(a, 100'000, out_a);
  sampler.draw(b, 100'000, out_b);
  EXPECT_EQ(out_a.addrs, out_b.addrs);
  EXPECT_EQ(out_a.counts, out_b.counts);
  // And the next draw from the same stream differs (the stream advanced).
  WriteCountVector out_c;
  sampler.draw(a, 100'000, out_c);
  EXPECT_NE(out_a.counts, out_c.counts);
}

TEST(MultinomialSamplerTest, SingleOutcomeTakesEverything) {
  const std::vector<double> w{3.5};
  const MultinomialSampler sampler{std::span<const double>(w)};
  Rng rng(5);
  WriteCountVector out;
  sampler.draw(rng, 12'345, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.addrs[0], 0u);
  EXPECT_EQ(out.counts[0], 12'345u);
}

// One batched draw must follow the same law as the per-draw histogram.
// Chi-squared of the batched counts against the exact cell probabilities,
// and of an alias-table per-draw histogram for reference: both must sit
// below the same (generous) critical value. df = 63; the 99.9th percentile
// of chi2(63) is ~106, and the fixed seeds keep this fully deterministic.
TEST(MultinomialSamplerTest, MatchesPerDrawDistribution) {
  const std::size_t kOutcomes = 64;
  const std::uint64_t kDraws = 1'000'000;
  const std::vector<double> w = geometric_weights(kOutcomes);
  const MultinomialSampler sampler{std::span<const double>(w)};

  std::vector<double> batched(kOutcomes, 0.0);
  {
    Rng rng(123);
    WriteCountVector out;
    sampler.draw(rng, kDraws, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      batched[out.addrs[i]] = static_cast<double>(out.counts[i]);
    }
  }
  std::vector<double> per_draw(kOutcomes, 0.0);
  {
    Rng rng(321);
    const AliasTable alias(w);
    for (std::uint64_t i = 0; i < kDraws; ++i) {
      per_draw[alias.sample(rng)] += 1.0;
    }
  }

  const auto chi2 = [&](const std::vector<double>& observed) {
    double stat = 0.0;
    for (std::size_t i = 0; i < kOutcomes; ++i) {
      const double expected =
          sampler.probability(i) * static_cast<double>(kDraws);
      const double d = observed[i] - expected;
      stat += d * d / expected;
    }
    return stat;
  };
  EXPECT_LT(chi2(batched), 110.0);
  EXPECT_LT(chi2(per_draw), 110.0);
}

TEST(MultinomialUniformTest, ExactConservationAndOrder) {
  Rng rng(11);
  for (const std::uint64_t n : {std::uint64_t{1}, std::uint64_t{2},
                                std::uint64_t{1000}}) {
    WriteCountVector out;
    multinomial_uniform(rng, 250'000, n, out);
    EXPECT_EQ(out.total(), 250'000u) << "n=" << n;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_GE(out.counts[i], 1u);
      EXPECT_LT(out.addrs[i], n);
      if (i > 0) EXPECT_GT(out.addrs[i], out.addrs[i - 1]);
    }
  }
  WriteCountVector out;
  multinomial_uniform(rng, 0, 64, out);
  EXPECT_TRUE(out.empty());
}

TEST(MultinomialUniformTest, Deterministic) {
  Rng a(9), b(9);
  WriteCountVector out_a, out_b;
  multinomial_uniform(a, 100'000, 333, out_a);
  multinomial_uniform(b, 100'000, 333, out_b);
  EXPECT_EQ(out_a.addrs, out_b.addrs);
  EXPECT_EQ(out_a.counts, out_b.counts);
}

TEST(MultinomialUniformTest, UniformChiSquared) {
  const std::uint64_t kOutcomes = 64;
  const std::uint64_t kDraws = 1'000'000;
  Rng rng(77);
  WriteCountVector out;
  multinomial_uniform(rng, kDraws, kOutcomes, out);
  const double expected =
      static_cast<double>(kDraws) / static_cast<double>(kOutcomes);
  std::vector<double> observed(kOutcomes, 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    observed[out.addrs[i]] = static_cast<double>(out.counts[i]);
  }
  double stat = 0.0;
  for (std::uint64_t i = 0; i < kOutcomes; ++i) {
    const double d = observed[i] - expected;
    stat += d * d / expected;
  }
  EXPECT_LT(stat, 110.0);  // chi2(63) 99.9th percentile ~106
}

}  // namespace
}  // namespace nvmsec
