#include "util/status.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_NO_THROW(status.throw_if_error());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::corruption("bad checksum");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.message(), "bad checksum");
}

TEST(StatusTest, ToStringLeadsWithCodeName) {
  EXPECT_EQ(Status::not_found("no such file").to_string(),
            "not found: no such file");
  EXPECT_EQ(Status().to_string(), "ok");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "invalid argument");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "not found");
  EXPECT_STREQ(status_code_name(StatusCode::kIoError), "io error");
  EXPECT_STREQ(status_code_name(StatusCode::kDataLoss), "data loss");
  EXPECT_STREQ(status_code_name(StatusCode::kCorruption), "corruption");
  EXPECT_STREQ(status_code_name(StatusCode::kVersionMismatch),
               "version mismatch");
  EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition),
               "failed precondition");
  EXPECT_STREQ(status_code_name(StatusCode::kOutOfRange), "out of range");
}

TEST(StatusTest, ThrowIfErrorThrowsWithMessage) {
  try {
    Status::io_error("disk on fire").throw_if_error();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "io error: disk on fire");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.take(), 42);
}

TEST(ResultTest, HoldsStatus) {
  const Result<int> result(Status::not_found("gone"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(result.value(), std::runtime_error);
}

TEST(ResultTest, OkStatusIsRejected) {
  EXPECT_THROW(Result<int>(Status{}), std::logic_error);
}

TEST(ResultTest, TakeMovesNonCopyableValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  const std::unique_ptr<int> value = result.take();
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 7);
}

}  // namespace
}  // namespace nvmsec
