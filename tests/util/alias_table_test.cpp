#include "util/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nvmsec {
namespace {

TEST(AliasTableTest, InvalidInputs) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(AliasTableTest, SingleOutcome) {
  AliasTable t(std::vector<double>{5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(t.probability(0), 1.0);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable t(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(t.sample(rng), 1u);
}

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable t(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
}

class AliasTableDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasTableDistributionTest, EmpiricalMatchesWeights) {
  const std::vector<double> weights = GetParam();
  AliasTable t(weights);
  Rng rng(42);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample(rng)];
  double total_weight = 0;
  for (double w : weights) total_weight += w;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = kDraws * weights[i] / total_weight;
    const double tolerance = 5 * std::sqrt(std::max(expected, 1.0)) + 1;
    EXPECT_NEAR(counts[i], expected, tolerance) << "outcome " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AliasTableDistributionTest,
    ::testing::Values(std::vector<double>{1, 1, 1, 1},
                      std::vector<double>{1, 2, 3, 4},
                      std::vector<double>{100, 1},
                      std::vector<double>{0.001, 0.999},
                      std::vector<double>{5, 0, 5, 0, 10},
                      std::vector<double>(64, 1.0)));

TEST(AliasTableTest, LargeSkewedTable) {
  // Endurance-like weights: power-law spread over many groups.
  std::vector<double> weights(512);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = std::pow(1.01, static_cast<double>(i));
  }
  AliasTable t(weights);
  Rng rng(7);
  // Strongest group should be sampled much more often than the weakest.
  int weak = 0, strong = 0;
  for (int i = 0; i < 300000; ++i) {
    const std::uint64_t s = t.sample(rng);
    if (s == 0) ++weak;
    if (s == 511) ++strong;
  }
  EXPECT_GT(strong, weak * 20);
}

}  // namespace
}  // namespace nvmsec
