// Tests for the streaming statistics sketches (util/sketch.h): quantile
// accuracy against exact sorts on several distribution shapes, merge
// algebra, Welford vs two-pass variance, reservoir sampling properties,
// and the serialize -> deserialize -> merge bit-identity the fleet
// checkpoint machinery depends on.
#include "util/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/serialize.h"
#include "util/stats.h"

namespace nvmsec {
namespace {

std::vector<double> uniform_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform_double();
  return xs;
}

std::vector<double> zipf_like_samples(std::size_t n, std::uint64_t seed) {
  // Heavy right tail: x = u^-2 for uniform u (Pareto with alpha = 0.5).
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) {
    const double u = std::max(1e-9, rng.uniform_double());
    x = 1.0 / (u * u);
  }
  return xs;
}

std::vector<double> bimodal_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) {
    x = rng.uniform_double() < 0.5 ? 10.0 + rng.uniform_double()
                                   : 1000.0 + rng.uniform_double();
  }
  return xs;
}

/// Exact quantile with the same midpoint-interpolation convention as the
/// sketch (close enough for rank-tolerance checks).
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double pos = q * (static_cast<double>(xs.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/// Rank of `value` in the sample, in [0, 1].
double rank_of(std::vector<double> xs, double value) {
  std::sort(xs.begin(), xs.end());
  const auto below =
      std::lower_bound(xs.begin(), xs.end(), value) - xs.begin();
  return static_cast<double>(below) / static_cast<double>(xs.size());
}

// The documented sketch tolerance: estimated quantiles land within a 1.5%
// *rank* band of the request at compression 128 (rank error is the
// t-digest guarantee; value error depends on the local density).
constexpr double kRankTolerance = 0.015;

void expect_quantiles_close(const std::vector<double>& xs,
                            const char* label) {
  QuantileSketch sketch;
  for (double x : xs) sketch.add(x);
  for (double q : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double est = sketch.quantile(q);
    EXPECT_NEAR(rank_of(xs, est), q, kRankTolerance)
        << label << " q=" << q << " estimate=" << est
        << " exact=" << exact_quantile(xs, q);
  }
}

TEST(QuantileSketch, UniformAccuracy) {
  expect_quantiles_close(uniform_samples(20000, 1), "uniform");
}

TEST(QuantileSketch, ZipfTailAccuracy) {
  expect_quantiles_close(zipf_like_samples(20000, 2), "zipf");
}

TEST(QuantileSketch, BimodalAccuracy) {
  expect_quantiles_close(bimodal_samples(20000, 3), "bimodal");
}

TEST(QuantileSketch, ExactExtremesAndSmallStreams) {
  QuantileSketch s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(1.0), 5.0);
  EXPECT_EQ(s.quantile(0.5), 3.0);  // one centroid per point
  EXPECT_EQ(s.count(), 3u);
}

TEST(QuantileSketch, EmptyAndRangeChecks) {
  const QuantileSketch s;
  EXPECT_THROW((void)s.quantile(0.5), std::invalid_argument);
  QuantileSketch t;
  t.add(1.0);
  EXPECT_THROW((void)t.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)t.quantile(1.1), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(0), std::invalid_argument);
}

TEST(QuantileSketch, MergeMatchesCombinedAccuracy) {
  const std::vector<double> a = uniform_samples(8000, 10);
  const std::vector<double> b = zipf_like_samples(8000, 11);
  QuantileSketch sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  sa.merge(sb);

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_EQ(sa.count(), all.size());
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(rank_of(all, sa.quantile(q)), q, kRankTolerance) << q;
  }
}

TEST(QuantileSketch, MergeEmptyIsExactIdentityBothDirections) {
  QuantileSketch full;
  for (double x : uniform_samples(5000, 42)) full.add(x);
  StateWriter before;
  full.save_state(before);

  // Empty other is a no-op, byte for byte.
  full.merge(QuantileSketch());
  StateWriter after_noop;
  full.save_state(after_noop);
  EXPECT_EQ(before.buffer(), after_noop.buffer());

  // Empty this adopts other's representation (compression included) — a
  // rebuilt partition would not serialize identically, adoption must.
  QuantileSketch empty(64);
  empty.merge(full);
  StateWriter adopted;
  empty.save_state(adopted);
  EXPECT_EQ(before.buffer(), adopted.buffer());
  EXPECT_EQ(empty.compression(), full.compression());
}

TEST(QuantileSketch, SingleElementMergeIsExact) {
  QuantileSketch one;
  one.add(7.5);
  QuantileSketch target;
  target.merge(one);
  StateWriter w1, w2;
  one.save_state(w1);
  target.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.quantile(0.5), 7.5);
  EXPECT_EQ(target.min(), 7.5);
  EXPECT_EQ(target.max(), 7.5);
}

TEST(StreamSummary, MergeEmptyIsExactIdentityBothDirections) {
  StreamSummary full;
  for (double x : zipf_like_samples(3000, 9)) full.add(x);
  StateWriter before;
  full.save_state(before);

  full.merge(StreamSummary());
  StateWriter after_noop;
  full.save_state(after_noop);
  EXPECT_EQ(before.buffer(), after_noop.buffer());

  StreamSummary empty;
  empty.merge(full);
  StateWriter adopted;
  empty.save_state(adopted);
  EXPECT_EQ(before.buffer(), adopted.buffer());
}

TEST(StreamSummary, SingleElementMergePreservesMoments) {
  StreamSummary one;
  one.add(3.0);
  StreamSummary target;
  target.merge(one);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.mean(), 3.0);
  EXPECT_EQ(target.variance(), 0.0);
  EXPECT_EQ(target.min(), 3.0);
  EXPECT_EQ(target.max(), 3.0);
  StateWriter w1, w2;
  one.save_state(w1);
  target.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(QuantileSketch, BoundedMemory) {
  // The q*(1-q) cluster bound admits singleton clusters in the far tails,
  // so the centroid count is O(compression * log(n / compression)) — for
  // n = 1e5 at compression 64 that is a few hundred centroids, vs 1e5
  // retained points for an exact sort.
  QuantileSketch s(64);
  for (int i = 0; i < 100000; ++i) s.add(static_cast<double>(i % 977));
  s.compress();
  EXPECT_LE(s.centroids().size(), 8u * 64u);

  // And it grows logarithmically, not linearly: 4x the data should add
  // well under 4x the centroids.
  QuantileSketch big(64);
  for (int i = 0; i < 400000; ++i) big.add(static_cast<double>(i % 977));
  big.compress();
  EXPECT_LE(big.centroids().size(), 2u * s.centroids().size());
}

TEST(QuantileSketch, SerializeRoundTripIsBitIdentical) {
  QuantileSketch s(64);
  for (double x : zipf_like_samples(5000, 7)) s.add(x);
  StateWriter w1;
  s.save_state(w1);
  QuantileSketch loaded;
  StateReader r(w1.buffer());
  ASSERT_TRUE(loaded.load_state(r).ok());
  ASSERT_TRUE(r.exhausted());
  StateWriter w2;
  loaded.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());  // canonical form: save∘load = id
  EXPECT_EQ(s.quantile(0.5), loaded.quantile(0.5));
  EXPECT_EQ(s.count(), loaded.count());
}

TEST(QuantileSketch, LoadRejectsCorruptWeights) {
  QuantileSketch s;
  s.add(1.0);
  StateWriter w;
  s.save_state(w);
  std::vector<std::uint8_t> bytes = w.take();
  bytes[4] ^= 0x01;  // count no longer matches centroid weights
  QuantileSketch loaded;
  StateReader r(bytes);
  EXPECT_FALSE(loaded.load_state(r).ok());
}

TEST(StreamingHistogram, BucketsAndOverflows) {
  StreamingHistogram h(1.0, 2.0, 4);  // [1,2) [2,4) [4,8) [8,16)
  h.add(0.5);   // underflow
  h.add(0.0);   // underflow (below lo)
  h.add(1.0);   // bucket 0
  h.add(3.999); // bucket 1
  h.add(4.0);   // bucket 2
  h.add(16.0);  // overflow (at last edge)
  h.add(1e9);   // overflow
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 0u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(StreamingHistogram, MergeIsAssociativeAndCommutative) {
  const auto make = [](std::uint64_t seed) {
    StreamingHistogram h;
    for (double x : zipf_like_samples(1000, seed)) h.add(x);
    return h;
  };
  const StreamingHistogram a = make(1), b = make(2), c = make(3);

  StreamingHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  StreamingHistogram a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);  // different structure AND order

  StateWriter w1, w2;
  ab_c.save_state(w1);
  a_bc.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(StreamingHistogram, MergeRejectsLayoutMismatch) {
  // Only two *non-empty* sketches need comparable layouts; empty operands
  // merge as identities (covered below).
  StreamingHistogram a(1.0, 2.0, 8);
  StreamingHistogram b(1.0, 2.0, 16);
  StreamingHistogram c(2.0, 2.0, 8);
  a.add(1.5);
  b.add(1.5);
  c.add(2.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(StreamingHistogram, MergeEmptyIsExactIdentityBothDirections) {
  StreamingHistogram full(1.0, 2.0, 8);
  for (double x : {0.5, 1.5, 3.0, 300.0}) full.add(x);  // under/in/overflow
  StateWriter before;
  full.save_state(before);

  // Empty other — even with a different layout — is a no-op.
  full.merge(StreamingHistogram(2.0, 4.0, 4));
  StateWriter after_noop;
  full.save_state(after_noop);
  EXPECT_EQ(before.buffer(), after_noop.buffer());

  // Empty this adopts the non-empty operand wholesale, layout included.
  StreamingHistogram empty(2.0, 4.0, 4);
  empty.merge(full);
  StateWriter adopted;
  empty.save_state(adopted);
  EXPECT_EQ(before.buffer(), adopted.buffer());
}

TEST(StreamingHistogram, SingleElementMergeIsExact) {
  StreamingHistogram one(1.0, 2.0, 8);
  one.add(3.0);
  StreamingHistogram target(1.0, 2.0, 8);
  target.merge(one);
  StateWriter w1, w2;
  one.save_state(w1);
  target.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(target.total(), 1u);
}

TEST(StreamingHistogram, SerializeRoundTrip) {
  StreamingHistogram h;
  for (double x : uniform_samples(500, 4)) h.add(x);
  h.add(-1.0);
  StateWriter w1;
  h.save_state(w1);
  StreamingHistogram loaded(1.0, 2.0, 2);
  StateReader r(w1.buffer());
  ASSERT_TRUE(loaded.load_state(r).ok());
  ASSERT_TRUE(r.exhausted());
  StateWriter w2;
  loaded.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(h.total(), loaded.total());
  EXPECT_EQ(h.underflow(), loaded.underflow());
}

TEST(WelfordRunningStats, MatchesTwoPassMoments) {
  const std::vector<double> xs = zipf_like_samples(5000, 9);
  RunningStats rs;
  for (double x : xs) rs.add(x);

  // Two-pass reference.
  double m = 0;
  for (double x : xs) m += x;
  m /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - m) * (x - m);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(rs.mean(), m, std::abs(m) * 1e-12);
  EXPECT_NEAR(rs.variance(), var, var * 1e-9);
}

TEST(WelfordRunningStats, SerializeRoundTrip) {
  RunningStats rs;
  for (double x : uniform_samples(100, 5)) rs.add(x);
  StateWriter w1;
  rs.save_state(w1);
  RunningStats loaded;
  StateReader r(w1.buffer());
  ASSERT_TRUE(loaded.load_state(r).ok());
  ASSERT_TRUE(r.exhausted());
  EXPECT_EQ(rs.count(), loaded.count());
  EXPECT_EQ(rs.mean(), loaded.mean());
  EXPECT_EQ(rs.variance(), loaded.variance());
  EXPECT_EQ(rs.min(), loaded.min());
  EXPECT_EQ(rs.max(), loaded.max());
}

TEST(WeightedReservoir, SampleIsAddOrderAndMergeStructureIndependent) {
  WeightedReservoir forward(16);
  WeightedReservoir backward(16);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    forward.add(id, static_cast<double>(id));
  }
  for (std::uint64_t id = 1000; id-- > 0;) {
    backward.add(id, static_cast<double>(id));
  }
  ASSERT_EQ(forward.items().size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(forward.items()[i].id, backward.items()[i].id);
  }

  WeightedReservoir left(16), right(16);
  for (std::uint64_t id = 0; id < 500; ++id) {
    left.add(id, static_cast<double>(id));
  }
  for (std::uint64_t id = 500; id < 1000; ++id) {
    right.add(id, static_cast<double>(id));
  }
  left.merge(right);
  EXPECT_EQ(left.seen(), forward.seen());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(left.items()[i].id, forward.items()[i].id);
  }
}

TEST(WeightedReservoir, RoughlyUniformSelection) {
  // Each id is selected by hash priority; over many disjoint populations
  // the kept ids' mean rank should be near the population middle.
  double mean_rank = 0;
  constexpr int kTrials = 64;
  constexpr std::uint64_t kPop = 512;
  for (int trial = 0; trial < kTrials; ++trial) {
    WeightedReservoir r(8, /*salt=*/0x1234 + static_cast<std::uint64_t>(trial));
    const std::uint64_t base = static_cast<std::uint64_t>(trial) * kPop;
    for (std::uint64_t i = 0; i < kPop; ++i) {
      r.add(base + i, 0.0);
    }
    for (const WeightedReservoir::Item& item : r.items()) {
      mean_rank += static_cast<double>(item.id - base) /
                   static_cast<double>(kPop);
    }
  }
  mean_rank /= kTrials * 8;
  EXPECT_NEAR(mean_rank, 0.5, 0.05);
}

TEST(WeightedReservoir, WeightBiasesSelection) {
  // Heavily-weighted ids should dominate the kept sample.
  WeightedReservoir r(32);
  for (std::uint64_t id = 0; id < 2000; ++id) {
    r.add(id, 0.0, id < 100 ? 100.0 : 1.0);
  }
  std::size_t heavy = 0;
  for (const WeightedReservoir::Item& item : r.items()) {
    heavy += item.id < 100 ? 1 : 0;
  }
  EXPECT_GT(heavy, 24u);  // ~100*100 / (100*100 + 1900) of the mass
}

TEST(WeightedReservoir, MergeRejectsIncompatible) {
  WeightedReservoir a(8, 1);
  const WeightedReservoir b(8, 2);
  const WeightedReservoir c(16, 1);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_THROW(a.add(1, 0.0, 0.0), std::invalid_argument);
}

TEST(WeightedReservoir, SerializeRoundTrip) {
  WeightedReservoir r(8);
  for (std::uint64_t id = 0; id < 100; ++id) {
    r.add(id, static_cast<double>(id) * 0.5);
  }
  StateWriter w1;
  r.save_state(w1);
  WeightedReservoir loaded(1);
  StateReader reader(w1.buffer());
  ASSERT_TRUE(loaded.load_state(reader).ok());
  ASSERT_TRUE(reader.exhausted());
  StateWriter w2;
  loaded.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(r.seen(), loaded.seen());
}

TEST(StreamSummary, SerializeThenMergeIsBitIdenticalToDirectMerge) {
  // The fleet invariant: a shard checkpointed and reloaded merges exactly
  // like the shard that never left memory.
  const std::vector<double> a = uniform_samples(3000, 20);
  const std::vector<double> b = bimodal_samples(3000, 21);
  StreamSummary sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  sa.compress();
  sb.compress();

  // Path 1: direct merge.
  StreamSummary direct = sa;
  direct.merge(sb);

  // Path 2: both operands through serialization first.
  const auto round_trip = [](const StreamSummary& s) {
    StateWriter w;
    s.save_state(w);
    StreamSummary out;
    StateReader r(w.buffer());
    EXPECT_TRUE(out.load_state(r).ok());
    return out;
  };
  StreamSummary reloaded = round_trip(sa);
  reloaded.merge(round_trip(sb));

  StateWriter w1, w2;
  direct.save_state(w1);
  reloaded.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(direct.quantile(0.99), reloaded.quantile(0.99));
  EXPECT_EQ(direct.mean(), reloaded.mean());
}

TEST(StreamSummary, EmptyQuantileIsZeroNotThrow) {
  const StreamSummary s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

}  // namespace
}  // namespace nvmsec
