#include "cache/dram_buffer.h"

#include <gtest/gtest.h>

#include <set>

namespace nvmsec {
namespace {

TEST(DramBufferTest, ZeroCapacityRejected) {
  EXPECT_THROW(DramBuffer(0), std::invalid_argument);
}

TEST(DramBufferTest, HitAbsorbsWrite) {
  DramBuffer buf(4);
  EXPECT_EQ(buf.write(LogicalLineAddr{1}), std::nullopt);  // cold miss
  EXPECT_EQ(buf.write(LogicalLineAddr{1}), std::nullopt);  // hit
  EXPECT_EQ(buf.stats().hits, 1u);
  EXPECT_EQ(buf.stats().misses, 1u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(DramBufferTest, ColdMissesFillWithoutEviction) {
  DramBuffer buf(4);
  for (std::uint64_t a = 0; a < 4; ++a) {
    EXPECT_EQ(buf.write(LogicalLineAddr{a}), std::nullopt);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.stats().evictions, 0u);
}

TEST(DramBufferTest, LruVictimIsEvicted) {
  DramBuffer buf(3);
  buf.write(LogicalLineAddr{1});
  buf.write(LogicalLineAddr{2});
  buf.write(LogicalLineAddr{3});
  buf.write(LogicalLineAddr{1});  // refresh 1: LRU is now 2
  const auto evicted = buf.write(LogicalLineAddr{4});
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->value(), 2u);
  EXPECT_FALSE(buf.contains(LogicalLineAddr{2}));
  EXPECT_TRUE(buf.contains(LogicalLineAddr{1}));
  EXPECT_TRUE(buf.contains(LogicalLineAddr{4}));
}

TEST(DramBufferTest, HotWorkingSetWithinCapacityNeverEvicts) {
  // §3.3.2: "The DRAM buffer is able to cache the hot accessed lines."
  DramBuffer buf(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(buf.write(LogicalLineAddr{static_cast<std::uint64_t>(i % 8)}),
              std::nullopt);
  }
  EXPECT_EQ(buf.stats().evictions, 0u);
  EXPECT_GT(buf.stats().hit_rate(), 0.99);
}

TEST(DramBufferTest, UniformSweepBeyondCapacityAlwaysEvicts) {
  // §3.3.2: "UAA has uniform write accesses, and therefore the DRAM buffer
  // does not work."
  DramBuffer buf(8);
  std::uint64_t evictions = 0;
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t a = 0; a < 64; ++a) {
      if (buf.write(LogicalLineAddr{a})) ++evictions;
    }
  }
  EXPECT_EQ(buf.stats().hits, 0u);
  // All but the 8 warm-up fills evict.
  EXPECT_EQ(evictions, 10u * 64u - 8u);
}

TEST(DramBufferTest, FlushReturnsAllResidents) {
  DramBuffer buf(4);
  buf.write(LogicalLineAddr{5});
  buf.write(LogicalLineAddr{6});
  const auto drained = buf.flush();
  std::set<std::uint64_t> addrs;
  for (const LogicalLineAddr a : drained) addrs.insert(a.value());
  EXPECT_EQ(addrs, (std::set<std::uint64_t>{5, 6}));
  EXPECT_EQ(buf.size(), 0u);
}

TEST(DramBufferTest, ResetClearsEverything) {
  DramBuffer buf(4);
  buf.write(LogicalLineAddr{1});
  buf.write(LogicalLineAddr{1});
  buf.reset();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.stats().hits, 0u);
  EXPECT_FALSE(buf.contains(LogicalLineAddr{1}));
}

TEST(DramBufferStatsTest, HitRateHandlesEmpty) {
  DramBufferStats s;
  EXPECT_EQ(s.hit_rate(), 0.0);
}

}  // namespace
}  // namespace nvmsec
