// Tests for the endurance-variation-aware wear levelers: BWL and WAWL.
#include <gtest/gtest.h>

#include <vector>

#include "wearlevel/bwl.h"
#include "wearlevel/wawl.h"

namespace nvmsec {
namespace {

// 256 working lines in 16 groups of 16; group g has endurance 100*(g+1).
EnduranceView ramp_view() {
  EnduranceView v(256);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 100.0 * (static_cast<double>(i / 16) + 1.0);
  }
  return v;
}

TEST(BwlTest, ConstructionValidation) {
  const EnduranceView v = ramp_view();
  EXPECT_THROW(Bwl(128, v, 16, 4, 10, 0.5), std::invalid_argument);  // size
  EXPECT_THROW(Bwl(256, v, 0, 4, 10, 0.5), std::invalid_argument);
  EXPECT_THROW(Bwl(256, v, 17, 4, 10, 0.5), std::invalid_argument);  // no tile
  EXPECT_THROW(Bwl(256, v, 16, 0, 10, 0.5), std::invalid_argument);
  EXPECT_THROW(Bwl(256, v, 16, 4, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(Bwl(256, v, 16, 4, 10, 0.0), std::invalid_argument);
}

TEST(BwlTest, QuantizesGroupsIntoEqualPopulationClasses) {
  Bwl wl(256, ramp_view(), 16, 4, 10, 0.5);
  ASSERT_EQ(wl.num_groups(), 16u);
  // Groups are already endurance-sorted, so classes are contiguous runs.
  for (std::uint64_t g = 0; g < 16; ++g) {
    EXPECT_EQ(wl.class_of_group(g), g / 4) << "group " << g;
  }
}

TEST(BwlTest, ClassCountClampedToGroups) {
  Bwl wl(256, ramp_view(), 16, 100, 10, 0.5);
  // 16 groups cannot fill 100 classes; every group gets its own class.
  std::vector<bool> seen(16, false);
  for (std::uint64_t g = 0; g < 16; ++g) {
    seen[wl.class_of_group(g)] = true;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 16);
}

TEST(BwlTest, PlacementFavoursStrongClasses) {
  Bwl wl(256, ramp_view(), 16, 4, 1, 0.5);  // swap on every write
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  std::vector<int> dwell(16, 0);
  for (int i = 0; i < 30000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{3}, rng, batch);
    ++dwell[wl.translate(LogicalLineAddr{3}) / 16];
  }
  int weak_class = 0, strong_class = 0;
  for (int g = 0; g < 4; ++g) weak_class += dwell[g];
  for (int g = 12; g < 16; ++g) strong_class += dwell[g];
  // weight ratio = (mean_e ratio)^0.5 = (1400/250)^0.5 ~ 2.4.
  EXPECT_GT(strong_class, weak_class * 3 / 2);
}

TEST(WawlTest, ConstructionValidation) {
  const EnduranceView v = ramp_view();
  EXPECT_THROW(Wawl(128, v, 16, 10, 0.35), std::invalid_argument);
  EXPECT_THROW(Wawl(256, v, 0, 10, 0.35), std::invalid_argument);
  EXPECT_THROW(Wawl(256, v, 16, 0, 0.35), std::invalid_argument);
  EXPECT_THROW(Wawl(256, v, 16, 10, 0.0), std::invalid_argument);
}

TEST(WawlTest, DwellBudgetScalesWithGroupEndurance) {
  Wawl wl(256, ramp_view(), 16, 100, 0.35);
  // Strongest group (16x the weakest's endurance) gets a longer dwell.
  const std::uint64_t weak = wl.dwell_budget(0);
  const std::uint64_t strong = wl.dwell_budget(255);
  EXPECT_GT(strong, weak);
  // ratio = 16^0.35 ~ 2.64
  EXPECT_NEAR(static_cast<double>(strong) / static_cast<double>(weak), 2.64,
              0.4);
}

TEST(WawlTest, TimeShareTracksEnduranceSuperlinearly) {
  // Both couplings together: time share per group should scale roughly like
  // endurance^(2*alpha).
  Wawl wl(256, ramp_view(), 16, 4, 0.35);
  Rng rng(2);
  std::vector<WlPhysWrite> batch;
  std::vector<double> dwell(16, 0);
  for (int i = 0; i < 200000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{9}, rng, batch);
    dwell[wl.translate(LogicalLineAddr{9}) / 16] += 1;
  }
  // Expected ratio strongest/weakest ~ 16^0.7 ~ 7; allow generous slack.
  EXPECT_GT(dwell[15] / std::max(1.0, dwell[0]), 3.0);
  EXPECT_LT(dwell[15] / std::max(1.0, dwell[0]), 20.0);
}

TEST(WawlTest, MappingStaysBijective) {
  Wawl wl(256, ramp_view(), 16, 2, 0.5);
  Rng rng(3);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 5000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{static_cast<std::uint64_t>(i) % 256}, rng,
                batch);
  }
  std::set<std::uint64_t> targets;
  for (std::uint64_t l = 0; l < 256; ++l) {
    targets.insert(wl.translate(LogicalLineAddr{l}));
  }
  EXPECT_EQ(targets.size(), 256u);
}

TEST(WawlTest, ResetClearsDwellState) {
  Wawl wl(256, ramp_view(), 16, 5, 0.35);
  Rng rng(4);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 50; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
  }
  wl.reset();
  for (std::uint64_t l = 0; l < 256; ++l) {
    EXPECT_EQ(wl.translate(LogicalLineAddr{l}), l);
  }
  EXPECT_EQ(wl.overhead_writes(), 0u);
}

TEST(WawlTest, OverheadWritesAccumulate) {
  Wawl wl(256, ramp_view(), 16, 1, 0.35);  // dwell ~1 everywhere
  Rng rng(5);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 100; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
  }
  EXPECT_GT(wl.overhead_writes(), 0u);
}

}  // namespace
}  // namespace nvmsec
