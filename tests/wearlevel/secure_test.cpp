// Tests for the security-oriented (endurance-oblivious) wear levelers:
// TLSR (Security Refresh) and PCM-S.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "wearlevel/pcm_s.h"
#include "wearlevel/security_refresh.h"

namespace nvmsec {
namespace {

std::set<std::uint64_t> mapping_snapshot(const WearLeveler& wl) {
  std::set<std::uint64_t> s;
  for (std::uint64_t l = 0; l < wl.logical_lines(); ++l) {
    s.insert(wl.translate(LogicalLineAddr{l}));
  }
  return s;
}

TEST(SecurityRefreshTest, ConstructionValidation) {
  Rng rng(1);
  EXPECT_THROW(SecurityRefresh(64, 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(SecurityRefresh(64, 10, 0, rng), std::invalid_argument);
  EXPECT_THROW(SecurityRefresh(64, 10, 7, rng), std::invalid_argument);   // no tile
  EXPECT_THROW(SecurityRefresh(64, 10, 64, rng), std::invalid_argument);  // size 1
}

TEST(SecurityRefreshTest, RemapsHammeredAddressWithinBoundedWrites) {
  // A hammered line must move within subregion_lines * interval writes of
  // its sub-region — the scheme's central security property.
  Rng rng(2);
  SecurityRefresh wl(256, /*interval=*/4, /*subregions=*/16, rng);  // 16-line subregions
  std::vector<WlPhysWrite> batch;
  const LogicalLineAddr hot{5};
  const std::uint64_t before = wl.translate(hot);
  bool moved = false;
  for (int i = 0; i < 16 * 4 + 4 && !moved; ++i) {
    batch.clear();
    wl.on_write(hot, rng, batch);
    moved = wl.translate(hot) != before;
  }
  EXPECT_TRUE(moved);
}

TEST(SecurityRefreshTest, MappingStaysBijective) {
  Rng rng(3);
  SecurityRefresh wl(128, 2, 8, rng);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 3000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{static_cast<std::uint64_t>(i) % 128}, rng,
                batch);
  }
  EXPECT_EQ(mapping_snapshot(wl).size(), 128u);
}

TEST(SecurityRefreshTest, RemapChargesTwoMigrationWrites) {
  Rng rng(4);
  SecurityRefresh wl(64, 1, 4, rng);  // refresh step on every write
  std::vector<WlPhysWrite> batch;
  wl.on_write(LogicalLineAddr{0}, rng, batch);
  // Either a 2-write swap happened or the pointer's partner was itself.
  EXPECT_GE(batch.size(), 1u);
  EXPECT_LE(batch.size(), 3u);
  if (batch.size() == 3) {
    EXPECT_TRUE(batch[0].is_overhead);
    EXPECT_TRUE(batch[1].is_overhead);
    EXPECT_FALSE(batch[2].is_overhead);
    EXPECT_EQ(wl.overhead_writes(), 2u);
  }
}

TEST(SecurityRefreshTest, LongRunPlacementIsUniform) {
  // Drive a single hammered address for a long time; the distribution of
  // time spent per working slot should cover most of the space.
  Rng rng(5);
  SecurityRefresh wl(64, 1, 4, rng);
  std::vector<WlPhysWrite> batch;
  std::set<std::uint64_t> hosted;
  for (int i = 0; i < 20000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{7}, rng, batch);
    hosted.insert(wl.translate(LogicalLineAddr{7}));
  }
  EXPECT_GT(hosted.size(), 32u);
}

TEST(SecurityRefreshTest, OuterLevelMigratesAcrossSubregions) {
  // A hammered line must not stay confined to its inner sub-region: once a
  // sub-region has absorbed a sweep's worth of writes, its whole contents
  // migrate to another sub-region (the scheme's second level).
  Rng rng(10);
  SecurityRefresh wl(128, /*interval=*/2, /*subregions=*/8, rng);  // 16-line
  std::vector<WlPhysWrite> batch;
  std::set<std::uint64_t> subregions_visited;
  for (int i = 0; i < 6000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{3}, rng, batch);
    subregions_visited.insert(wl.translate(LogicalLineAddr{3}) / 16);
  }
  EXPECT_GT(subregions_visited.size(), 4u);
}

TEST(SecurityRefreshTest, OuterSwapChargesMigrationWrites) {
  Rng rng(11);
  SecurityRefresh wl(32, /*interval=*/1, /*subregions=*/4, rng);  // 8-line
  std::vector<WlPhysWrite> batch;
  // After interval * lines_per_subregion = 8 writes into one sub-region,
  // an outer swap of 8 line pairs fires: a 16-migration-write batch.
  bool saw_outer = false;
  for (int i = 0; i < 64 && !saw_outer; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
    std::size_t overhead = 0;
    for (const auto& w : batch) overhead += w.is_overhead ? 1 : 0;
    saw_outer = overhead >= 16;
  }
  EXPECT_TRUE(saw_outer);
}

TEST(PcmSTest, ConstructionValidation) {
  EXPECT_THROW(PcmS(64, 0), std::invalid_argument);
}

TEST(PcmSTest, SwapsEveryInterval) {
  PcmS wl(64, 3);
  Rng rng(6);
  std::vector<WlPhysWrite> batch;
  int overhead_batches = 0;
  for (int i = 0; i < 30; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{1}, rng, batch);
    if (batch.size() > 1) ++overhead_batches;
  }
  // Every 3rd write triggers a swap (unless the random partner is itself).
  EXPECT_GE(overhead_batches, 8);
  EXPECT_LE(overhead_batches, 10);
}

TEST(PcmSTest, HammeredLineKeepsMoving) {
  PcmS wl(256, 2);
  Rng rng(7);
  std::vector<WlPhysWrite> batch;
  std::set<std::uint64_t> hosts;
  for (int i = 0; i < 4000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
    hosts.insert(wl.translate(LogicalLineAddr{0}));
  }
  // The swap endpoint is biased to the written line, so it roams widely.
  EXPECT_GT(hosts.size(), 100u);
}

TEST(PcmSTest, MappingStaysBijective) {
  PcmS wl(128, 1);
  Rng rng(8);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 2000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{static_cast<std::uint64_t>(i) % 128}, rng,
                batch);
  }
  EXPECT_EQ(mapping_snapshot(wl).size(), 128u);
}

TEST(PcmSTest, ResetRestoresIdentity) {
  PcmS wl(32, 1);
  Rng rng(9);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 100; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
  }
  wl.reset();
  for (std::uint64_t l = 0; l < 32; ++l) {
    EXPECT_EQ(wl.translate(LogicalLineAddr{l}), l);
  }
  EXPECT_EQ(wl.overhead_writes(), 0u);
}

}  // namespace
}  // namespace nvmsec
