// Tests for the self-tuning wear-leveling decorator: steering direction by
// attack kind, bounded escalation with hold/relax pacing, the retune
// clamping contract every cadence-bearing leveler implements, and
// checkpoint state round trips.
#include "wearlevel/adaptive.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "wearlevel/start_gap.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {
namespace {

constexpr std::uint64_t kLines = 256;
constexpr std::uint64_t kBase = 100;

AdaptivePolicy fast_policy() {
  AdaptivePolicy p;
  p.escalate_factor = 2.0;
  p.max_steps = 3;
  p.hold_windows = 1;  // escalate every alarm window
  p.relax_windows = 2;
  return p;
}

std::unique_ptr<AdaptiveWearLeveler> make_adaptive(
    const AdaptivePolicy& policy = fast_policy()) {
  return std::make_unique<AdaptiveWearLeveler>(
      std::make_unique<StartGap>(kLines, kBase), policy);
}

TEST(AdaptiveWearLevelerTest, ConstructionValidation) {
  AdaptivePolicy p = fast_policy();
  p.escalate_factor = 1.0;
  EXPECT_THROW(make_adaptive(p), std::invalid_argument);
  p = fast_policy();
  p.hold_windows = 0;
  EXPECT_THROW(make_adaptive(p), std::invalid_argument);
  p = fast_policy();
  p.relax_windows = 0;
  EXPECT_THROW(make_adaptive(p), std::invalid_argument);
}

TEST(AdaptiveWearLevelerTest, ForwardsToInnerLeveler) {
  auto wl = make_adaptive();
  EXPECT_EQ(wl->name(), "adaptive(startgap)");
  EXPECT_EQ(wl->remap_interval(), kBase);
  EXPECT_GT(wl->working_lines(), wl->logical_lines());
}

TEST(AdaptiveWearLevelerTest, SweepAlarmLengthensInterval) {
  auto wl = make_adaptive();
  const CadenceChange ch =
      wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  EXPECT_TRUE(ch.changed);
  EXPECT_EQ(ch.old_interval, kBase);
  EXPECT_EQ(ch.new_interval, 2 * kBase);
  EXPECT_EQ(ch.step, 1);
  EXPECT_EQ(wl->remap_interval(), 2 * kBase);
}

TEST(AdaptiveWearLevelerTest, ConcentrationAlarmShortensInterval) {
  auto wl = make_adaptive();
  const CadenceChange ch =
      wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kConcentration);
  EXPECT_TRUE(ch.changed);
  EXPECT_EQ(ch.new_interval, kBase / 2);
  EXPECT_EQ(ch.step, -1);
}

TEST(AdaptiveWearLevelerTest, EscalationIsBoundedAtMaxSteps) {
  auto wl = make_adaptive();
  for (int i = 0; i < 10; ++i) {
    wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  }
  EXPECT_EQ(wl->step(), 3);
  EXPECT_EQ(wl->remap_interval(), 8 * kBase);
  EXPECT_EQ(wl->cadence_changes(), 3u);
}

TEST(AdaptiveWearLevelerTest, HoldWindowsPacesEscalation) {
  AdaptivePolicy p = fast_policy();
  p.hold_windows = 4;
  auto wl = make_adaptive(p);
  // First alarm window escalates immediately; the next step needs 4 more.
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  EXPECT_EQ(wl->step(), 1);
  for (int i = 0; i < 3; ++i) {
    wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
    EXPECT_EQ(wl->step(), 1) << "alarm window " << i + 2;
  }
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  EXPECT_EQ(wl->step(), 2);
}

TEST(AdaptiveWearLevelerTest, SuspiciousFreezesTheController) {
  auto wl = make_adaptive();
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  ASSERT_EQ(wl->step(), 1);
  for (int i = 0; i < 10; ++i) {
    const CadenceChange ch =
        wl->on_window(AlarmLevel::kSuspicious, AttackKind::kSweep);
    EXPECT_FALSE(ch.changed);
  }
  EXPECT_EQ(wl->step(), 1);
}

TEST(AdaptiveWearLevelerTest, BenignWindowsRelaxTowardBase) {
  auto wl = make_adaptive();  // relax_windows = 2
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  ASSERT_EQ(wl->step(), 2);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  EXPECT_EQ(wl->step(), 2);  // one benign window is not enough
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  EXPECT_EQ(wl->step(), 1);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  EXPECT_EQ(wl->step(), 0);
  EXPECT_EQ(wl->remap_interval(), kBase);
  // At base, further benign windows change nothing.
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  EXPECT_EQ(wl->step(), 0);
}

TEST(AdaptiveWearLevelerTest, AlarmResetsRelaxProgress) {
  auto wl = make_adaptive();
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  // The alarm returns before the second benign window: relax restarts.
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  EXPECT_EQ(wl->step(), 2);
}

TEST(AdaptiveWearLevelerTest, ShortenSaturatesAtIntervalOne) {
  AdaptivePolicy p = fast_policy();
  p.max_steps = 10;
  auto wl = std::make_unique<AdaptiveWearLeveler>(
      std::make_unique<StartGap>(kLines, 2), p);
  for (int i = 0; i < 10; ++i) {
    wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kConcentration);
  }
  // 2 -> 1, then the interval floors at 1 while the logical step keeps
  // descending so the relax path unwinds symmetrically.
  EXPECT_EQ(wl->remap_interval(), 1u);
  EXPECT_EQ(wl->cadence_changes(), 1u);
  EXPECT_EQ(wl->step(), -10);
}

TEST(AdaptiveWearLevelerTest, ExternalRetuneRebasesTheLadder) {
  auto wl = make_adaptive();
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  ASSERT_EQ(wl->remap_interval(), 2 * kBase);
  ASSERT_TRUE(wl->set_remap_interval(500));
  EXPECT_EQ(wl->base_interval(), 500u);
  EXPECT_EQ(wl->step(), 0);
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  EXPECT_EQ(wl->remap_interval(), 1000u);
}

TEST(AdaptiveWearLevelerTest, CadenceBearingLevelersHonorRetune) {
  // The decorator is only as good as the retune contract underneath it:
  // every cadence-bearing leveler must accept a new interval and clamp its
  // internal countdowns so writes_until_remap never underflows.
  EnduranceView view(kLines);
  for (std::size_t i = 0; i < view.size(); ++i) {
    view[i] = 1000.0 + static_cast<double>(i);
  }
  Rng rng(3);
  WearLevelerParams params;
  params.swap_interval = kBase;
  const std::vector<std::string> levelers{"startgap", "tlsr",  "pcms",
                                          "bwl",      "wawl", "twl"};
  for (const std::string& name : levelers) {
    auto wl = make_wear_leveler(name, kLines, view, params, rng);
    ASSERT_EQ(wl->remap_interval(), kBase) << name;
    // Burn most of the current countdown, then shrink the interval below
    // the writes already spent: the counter must clamp, not wrap.
    std::vector<WlPhysWrite> batch;
    for (int i = 0; i < 90; ++i) {
      batch.clear();
      wl->on_write(LogicalLineAddr{static_cast<std::uint64_t>(i % 7)}, rng,
                   batch);
    }
    ASSERT_TRUE(wl->set_remap_interval(10)) << name;
    EXPECT_EQ(wl->remap_interval(), 10u) << name;
    EXPECT_LE(wl->writes_until_remap(), 10u) << name;
    EXPECT_FALSE(wl->set_remap_interval(0)) << name;
  }
  // The no-op leveler has no cadence and must refuse the retune.
  auto none = make_wear_leveler("none", kLines, view, params, rng);
  EXPECT_EQ(none->remap_interval(), 0u);
  EXPECT_FALSE(none->set_remap_interval(10));
}

TEST(AdaptiveWearLevelerTest, StateRoundTripRestoresControllerAndCadence) {
  auto wl = make_adaptive();
  Rng rng(9);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 57; ++i) {
    batch.clear();
    wl->on_write(LogicalLineAddr{static_cast<std::uint64_t>(i % kLines)}, rng,
                 batch);
  }
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  wl->on_window(AlarmLevel::kUnderAttack, AttackKind::kSweep);
  ASSERT_EQ(wl->step(), 2);

  StateWriter w;
  wl->save_state(w);
  auto restored = make_adaptive();
  StateReader r(w.buffer());
  ASSERT_TRUE(restored->load_state(r).ok());
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(restored->step(), 2);
  EXPECT_EQ(restored->base_interval(), kBase);
  EXPECT_EQ(restored->remap_interval(), 4 * kBase);
  EXPECT_EQ(restored->cadence_changes(), wl->cadence_changes());
  EXPECT_EQ(restored->writes_until_remap(), wl->writes_until_remap());
  EXPECT_EQ(restored->translate(LogicalLineAddr{13}),
            wl->translate(LogicalLineAddr{13}));
  // The restored controller keeps relaxing from where the original was.
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  wl->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  restored->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  restored->on_window(AlarmLevel::kBenign, AttackKind::kNone);
  EXPECT_EQ(restored->step(), wl->step());
  EXPECT_EQ(restored->remap_interval(), wl->remap_interval());
}

}  // namespace
}  // namespace nvmsec
