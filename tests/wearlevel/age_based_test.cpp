#include "wearlevel/age_based.h"

#include <gtest/gtest.h>

#include <set>

namespace nvmsec {
namespace {

TEST(AgeBasedTest, ConstructionValidation) {
  EXPECT_THROW(AgeBased(64, 0, 10, 5), std::invalid_argument);
  EXPECT_THROW(AgeBased(64, 8, 0, 5), std::invalid_argument);
  EXPECT_THROW(AgeBased(64, 8, 10, 0), std::invalid_argument);
}

TEST(AgeBasedTest, AgesTrackWrites) {
  AgeBased wl(64, 8, 1000000, 10);  // swaps effectively disabled
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 25; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{5}, rng, batch);
  }
  EXPECT_EQ(wl.age(5), 25u);
  EXPECT_EQ(wl.age(6), 0u);
  EXPECT_EQ(wl.bucket_of(5), 2u);  // 25 / 10
  EXPECT_EQ(wl.bucket_of(6), 0u);
}

TEST(AgeBasedTest, BucketIndexSaturates) {
  AgeBased wl(8, 4, 1000000, 2);
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 100; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
  }
  EXPECT_EQ(wl.bucket_of(0), 3u);  // clamped to the last bucket
}

TEST(AgeBasedTest, HotLineMigratesToYoungSlots) {
  AgeBased wl(64, 8, 4, 4);
  Rng rng(2);
  std::vector<WlPhysWrite> batch;
  std::set<std::uint64_t> hosts;
  for (int i = 0; i < 2000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
    hosts.insert(wl.translate(LogicalLineAddr{0}));
  }
  // The hammered address keeps being swapped onto young victims, so it
  // visits a large share of the slots.
  EXPECT_GT(hosts.size(), 30u);
}

TEST(AgeBasedTest, EqualizesObservedWearUnderSkew) {
  AgeBased wl(64, 8, 4, 4);
  Rng rng(3);
  std::vector<WlPhysWrite> batch;
  // 80% of traffic to 4 addresses, the rest sweeping.
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t la = (i % 5 != 4)
                                 ? static_cast<std::uint64_t>(i % 4)
                                 : static_cast<std::uint64_t>(i) % 64;
    batch.clear();
    wl.on_write(LogicalLineAddr{la}, rng, batch);
  }
  std::uint64_t max_age = 0, min_age = UINT64_MAX;
  for (std::uint64_t s = 0; s < 64; ++s) {
    max_age = std::max(max_age, wl.age(s));
    min_age = std::min(min_age, wl.age(s));
  }
  // Without leveling the hot slots would take ~4000 writes and cold ones
  // ~60; with leveling the spread must collapse to a small factor.
  EXPECT_LT(max_age, 8 * std::max<std::uint64_t>(1, min_age));
}

TEST(AgeBasedTest, MappingStaysBijective) {
  AgeBased wl(64, 8, 2, 4);
  Rng rng(4);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 3000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{static_cast<std::uint64_t>(i) % 64}, rng,
                batch);
  }
  std::set<std::uint64_t> targets;
  for (std::uint64_t l = 0; l < 64; ++l) {
    targets.insert(wl.translate(LogicalLineAddr{l}));
  }
  EXPECT_EQ(targets.size(), 64u);
}

TEST(AgeBasedTest, ResetRestoresYouth) {
  AgeBased wl(16, 4, 2, 2);
  Rng rng(5);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 100; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{1}, rng, batch);
  }
  wl.reset();
  for (std::uint64_t s = 0; s < 16; ++s) {
    EXPECT_EQ(wl.age(s), 0u);
    EXPECT_EQ(wl.bucket_of(s), 0u);
  }
}

TEST(AgeBasedTest, FactoryConstructs) {
  Rng rng(6);
  WearLevelerParams params;
  params.swap_interval = 8;
  EnduranceView view(64, 100.0);
  auto wl = make_wear_leveler("agebased", 64, view, params, rng);
  EXPECT_EQ(wl->name(), "agebased");
}

}  // namespace
}  // namespace nvmsec
