#include "wearlevel/twl.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nvmsec {
namespace {

// 128 lines in 8 groups of 16; group g has endurance 100*(g+1).
EnduranceView ramp_view() {
  EnduranceView v(128);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 100.0 * (static_cast<double>(i / 16) + 1.0);
  }
  return v;
}

TEST(TwlTest, ConstructionValidation) {
  const EnduranceView v = ramp_view();
  EXPECT_THROW(Twl(64, v, 16, 10), std::invalid_argument);   // size mismatch
  EXPECT_THROW(Twl(128, v, 0, 10), std::invalid_argument);   // zero group
  EXPECT_THROW(Twl(128, v, 17, 10), std::invalid_argument);  // no tile
  EXPECT_THROW(Twl(128, v, 16, 0), std::invalid_argument);   // zero interval
  // Odd group count cannot be bonded pairwise.
  EnduranceView odd(48, 1.0);
  EXPECT_THROW(Twl(48, odd, 16, 10), std::invalid_argument);
}

TEST(TwlTest, BondsAreAntitoneInvolutions) {
  Twl wl(128, ramp_view(), 16, 10);
  // Weakest group 0 bonds with strongest group 7, 1 with 6, etc.
  for (std::uint64_t g = 0; g < 8; ++g) {
    EXPECT_EQ(wl.bonded_group(g), 7 - g);
    EXPECT_EQ(wl.bonded_group(wl.bonded_group(g)), g);
  }
}

TEST(TwlTest, StayProbabilityTracksEnduranceShare) {
  Twl wl(128, ramp_view(), 16, 10);
  // Pair (0, 7): endurances 100 and 800 -> stay probabilities 1/9 and 8/9.
  EXPECT_NEAR(wl.stay_probability(0), 100.0 / 900.0, 1e-12);
  EXPECT_NEAR(wl.stay_probability(7), 800.0 / 900.0, 1e-12);
  EXPECT_NEAR(wl.stay_probability(0) + wl.stay_probability(7), 1.0, 1e-12);
}

TEST(TwlTest, TossesStayWithinTheBondedPair) {
  Twl wl(128, ramp_view(), 16, 1);  // toss on every write
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  // Logical line 3 starts in group 0, whose bond partner is group 7.
  for (int i = 0; i < 500; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{3}, rng, batch);
    const std::uint64_t group = wl.translate(LogicalLineAddr{3}) / 16;
    EXPECT_TRUE(group == 0 || group == 7) << group;
    // Offset within the group is preserved by the toss.
    EXPECT_EQ(wl.translate(LogicalLineAddr{3}) % 16, 3u);
  }
}

TEST(TwlTest, DwellShareMatchesStayProbability) {
  Twl wl(128, ramp_view(), 16, 1);
  Rng rng(2);
  std::vector<WlPhysWrite> batch;
  int on_strong = 0;
  constexpr int kWrites = 20000;
  for (int i = 0; i < kWrites; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{3}, rng, batch);
    if (wl.translate(LogicalLineAddr{3}) / 16 == 7) ++on_strong;
  }
  // Stationary share on the strong side ~ 8/9.
  EXPECT_NEAR(static_cast<double>(on_strong) / kWrites, 8.0 / 9.0, 0.03);
}

TEST(TwlTest, MappingStaysBijective) {
  Twl wl(128, ramp_view(), 16, 2);
  Rng rng(3);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 3000; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{static_cast<std::uint64_t>(i) % 128}, rng,
                batch);
  }
  std::set<std::uint64_t> targets;
  for (std::uint64_t l = 0; l < 128; ++l) {
    targets.insert(wl.translate(LogicalLineAddr{l}));
  }
  EXPECT_EQ(targets.size(), 128u);
}

TEST(TwlTest, FactoryConstructsTwl) {
  Rng rng(4);
  WearLevelerParams params;
  params.swap_interval = 5;
  params.group_lines = 16;
  const EnduranceView v = ramp_view();
  auto wl = make_wear_leveler("twl", 128, v, params, rng);
  EXPECT_EQ(wl->name(), "twl");
}

}  // namespace
}  // namespace nvmsec
